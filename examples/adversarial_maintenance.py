#!/usr/bin/env python
"""Adversarial maintenance scenario for the worst-case construction.

An operator must *guarantee* a working n x n torus while an adversary (or
a pessimistic SLA) chooses which k components fail — the regime of
Theorem 13.  We build ``D^2_{n,k}``, attack it with every campaign in the
adversary suite (including edge faults and mixed node+edge sets), and show
zero losses at the rated budget, plus what happens beyond the rating.

Run:  python examples/adversarial_maintenance.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DnParams, DTorus
from repro.errors import ReconstructionError
from repro.faults.adversary import ADVERSARY_PATTERNS, adversarial_node_faults
from repro.util.rng import spawn_rng
from repro.util.tables import Table


def main() -> None:
    params = DnParams(d=2, n=70, b=2)
    dt = DTorus(params)
    print(params.describe())
    print(f"rated fault budget: k = {params.k} (any nodes and/or edges)")
    print()

    table = Table(
        ["campaign", "faults", "recovered", "notes"],
        title=f"Adversarial campaigns at the rated budget (k = {params.k})",
    )
    for pattern in sorted(ADVERSARY_PATTERNS):
        wins, total = 0, 5
        for trial in range(total):
            faults = adversarial_node_faults(
                params.shape, params.k, pattern, spawn_rng(trial, "maint", pattern)
            )
            try:
                rec = dt.recover(faults)
                assert not faults.ravel()[rec.phi].any()
                wins += 1
            except ReconstructionError:
                pass
        table.add_row([pattern, params.k, f"{wins}/{total}", "nodes"])

    # Edge faults: ascribed to an endpoint, exactly as the paper prescribes.
    edges = dt.graph().edges()
    rng = spawn_rng(0, "maint-edges")
    sel = rng.choice(len(edges), size=params.k, replace=False)
    ok = dt.tolerates(np.zeros(params.shape, dtype=bool), faulty_edges=edges[sel])
    table.add_row(["random-edges", params.k, f"{int(ok)}/1", "edges only"])

    # Mixed: half nodes, half edges.
    f = adversarial_node_faults(params.shape, params.k // 2, "cluster", rng)
    sel = rng.choice(len(edges), size=params.k - params.k // 2, replace=False)
    ok = dt.tolerates(f, faulty_edges=edges[sel])
    table.add_row(["mixed", params.k, f"{int(ok)}/1", "nodes + edges"])
    table.print()

    print()
    print("Beyond the rating (graceful degradation, random faults):")
    over = Table(["faults injected", "recovered (of 5)"])
    for mult in (1, 2, 4, 8, 16):
        k = mult * params.k
        wins = 0
        for trial in range(5):
            f = adversarial_node_faults(
                params.shape, k, "random", spawn_rng(trial, "beyond", mult)
            )
            wins += dt.tolerates(f)
        over.add_row([k, wins])
    over.print()
    print()
    print("The guarantee is sharp at k; beyond it the pigeonhole capacity")
    print("degrades gracefully for random faults but offers no certainty.")


if __name__ == "__main__":
    main()
