#!/usr/bin/env python
"""General-d walkthrough: B^3 and D^3 (the paper's "for each fixed d >= 2").

Everything in the library is dimension-generic: bands become winding
*surfaces* over a 2-D column space (interpolated multilinearly per tile),
and D's pigeonhole cascades through three band widths b, b^2, b^4.

Run:  python examples/three_dimensional.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BnParams, BTorus, DnParams, DTorus
from repro.faults.adversary import adversarial_node_faults
from repro.util.rng import spawn_rng


def bn3_demo() -> None:
    params = BnParams(d=3, b=3, s=1, t=2)
    print("=== B^3 (Theorem 2, d = 3) ===")
    print(params.describe())
    bt = BTorus(params)
    faults = np.zeros(params.shape, dtype=bool)
    faults[20, 20, 20] = True
    faults[45, 5, 30] = True
    rec = bt.recover(faults, strategy="paper")  # force the winding-surface path
    print(f"recovered {params.n}^3 torus; checks: {rec.stats}")
    wander = int((rec.bands.bottoms != rec.bands.bottoms[:, :1]).any(axis=1).sum())
    print(f"bands that wind over the 2-D column space: {wander}/{rec.bands.num_bands}")
    print()


def dn3_demo() -> None:
    params = DnParams(d=3, n=260, b=2)
    print("=== D^3 (Theorem 3, d = 3) ===")
    print(params.describe())
    print(f"band widths per dimension: "
          f"{[params.width(i) for i in (1, 2, 3)]}, rated k = {params.k}")
    dt = DTorus(params)
    faults = adversarial_node_faults(params.shape, params.k, "random", spawn_rng(0, "d3"))
    rec = dt.recover(faults, verify=False)  # full edge verification is heavy at n=260
    for axis, um in enumerate(rec.unmasked):
        gaps = np.unique(np.diff(np.concatenate([um, [um[0] + params.shape[axis]]])))
        print(f"  dim {axis}: {len(um)} unmasked coords, gap set {gaps.tolist()} "
              f"(1 = torus edge, {params.width(axis + 1) + 1} = jump edge)")
    assert not faults.ravel()[rec.phi[::1009]].any()
    print(f"spot-checked embedding avoids all {params.k} faults")


if __name__ == "__main__":
    bn3_demo()
    dn3_demo()
