#!/usr/bin/env python
"""Wafer-yield scenario: how much redundancy buys how much survival.

The paper's motivation (Section 1): a massively parallel machine is
manufactured with defective processors ("when the network is huge, some
nodes are bound to be faulty").  A machine architect choosing between the
constructions cares about three axes:

* node overhead (extra silicon),
* router degree (extra ports),
* survival probability at the process's defect rate.

This example compares, at a common target torus size:

* ``B^2_n``  (Theorem 2)  — constant degree 10, needs a low defect rate,
* ``A^2_n``  (Theorem 1)  — degree O(log log n), shrugs off 20-30% defects,
* FKP-style replication   — degree O(log n), the pre-paper state of the art.

Run:  python examples/wafer_yield.py
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarlo
from repro.baselines.replication import ReplicatedTorus
from repro.core import BnParams, BTorus
from repro.core.an import ATorus, an_params_for_reliability
from repro.core.bn import TrialOutcome
from repro.errors import ReconstructionError
from repro.util.tables import Table

TRIALS = 12


def bn_row(defect_rate: float) -> list:
    params = BnParams(d=2, b=3, s=1, t=2)
    bt = BTorus(params)
    mc = MonteCarlo(lambda seed: bt.trial(defect_rate, seed))
    res = mc.run(TRIALS)
    return [
        "B^2 (Thm 2)",
        params.n,
        params.num_nodes,
        f"{params.redundancy:.2f}x",
        params.degree,
        defect_rate,
        f"{res.success_rate:.2f}",
    ]


def an_row(defect_rate: float) -> list:
    base = BnParams(d=2, b=3, s=1, t=2)
    params = an_params_for_reliability(base, k_sub=2, p=defect_rate, q=0.0)
    at = ATorus(params)

    def trial(seed: int) -> TrialOutcome:
        try:
            at.recover(at.sample_faults(defect_rate, 0.0, seed))
            return TrialOutcome(success=True, category="ok")
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category)

    res = MonteCarlo(trial).run(TRIALS)
    return [
        "A^2 (Thm 1)",
        params.n,
        params.num_nodes,
        f"{params.c_effective:.2f}x",
        params.degree,
        defect_rate,
        f"{res.success_rate:.2f}",
    ]


def replication_row(defect_rate: float, n: int = 72) -> list:
    rt = ReplicatedTorus(n, 2, c_r=1.0)

    def trial(seed: int) -> TrialOutcome:
        ok = rt.survives(defect_rate, seed)
        return TrialOutcome(success=ok, category="ok" if ok else "supernode")

    res = MonteCarlo(trial).run(TRIALS)
    return [
        "FKP-style replication",
        n,
        rt.num_nodes,
        f"{rt.redundancy:.2f}x",
        rt.degree,
        defect_rate,
        f"{res.success_rate:.2f}",
    ]


def main() -> None:
    table = Table(
        ["construction", "n", "built nodes", "overhead", "degree", "defect rate", "survival"],
        title="Wafer-yield comparison (Monte-Carlo, verified recoveries only)",
    )
    # B^2 lives in the low-defect regime the theorem prescribes...
    table.add_row(bn_row(BnParams(d=2, b=3, s=1, t=2).paper_fault_probability))
    # ...A^2 and replication shrug off constant defect rates.
    for rate in (0.1, 0.3):
        table.add_row(an_row(rate))
        table.add_row(replication_row(rate))
    table.print()
    print()
    print("Reading: A^2 matches replication's survival at constant defect")
    print("rates with asymptotically smaller degree (O(log log n) vs O(log n));")
    print("B^2 keeps constant degree but needs the defect rate to fall with n.")


if __name__ == "__main__":
    main()
