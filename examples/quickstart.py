#!/usr/bin/env python
"""Quickstart: build B^2_n, break it, recover the fault-free torus.

This walks the paper's Theorem 2 end to end:

1. pick exact construction parameters (band width b, segments-per-tile-row
   s, scale t),
2. inject i.i.d. node faults at the paper's rate ``p = b^{-3d}``,
3. check healthiness (Lemma 4), place bands (Lemma 5), extract the torus
   (Lemma 6) — every step verified,
4. print the recovered embedding's statistics and an ASCII band picture.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BnParams, BTorus
from repro.util.rng import spawn_rng
from repro.viz.ascii_art import render_bands


def main() -> None:
    # The smallest legal instance: n = 36 torus inside a 54 x 36 host.
    params = BnParams(d=2, b=3, s=1, t=2)
    print("construction:", params.describe())
    print(f"theorem regime: p = b^-3d = {params.paper_fault_probability:.4g}")
    print()

    bt = BTorus(params)
    rng = spawn_rng(2024, "quickstart")
    faults = bt.sample_faults(params.paper_fault_probability, rng)
    print(f"injected {int(faults.sum())} node faults")

    health = bt.check_health(faults)
    print("healthiness:", health.summary())

    recovery = bt.recover(faults)  # raises ReconstructionError on failure
    print("recovered torus:", recovery.stats)
    print()

    print(render_bands(params, recovery.bands, faults))
    print()
    print("every guest edge was checked against the host construction —")
    print(f"{recovery.stats['edges_checked']} edges, all fault-free.")


if __name__ == "__main__":
    main()
