#!/usr/bin/env python
"""Run stencil / FFT-style traffic on a torus recovered from faults.

The end-to-end claim behind the whole paper: after recovery, applications
see *exactly* an ``n x n`` torus — the embedding has dilation 1 (every
guest edge maps onto one host edge), so communication latency is identical
to a pristine machine.  We demonstrate by routing four classic traffic
patterns over (a) a pristine torus and (b) a torus recovered from faults,
and comparing latency statistics, which match exactly.

Run:  python examples/routing_on_survivor.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BnParams, BTorus
from repro.sim import latency_stats, make_traffic, simulate
from repro.sim.routing import all_pairs_mean_distance
from repro.util.rng import spawn_rng
from repro.util.tables import Table


def main() -> None:
    params = BnParams(d=2, b=3, s=1, t=2)
    bt = BTorus(params)

    # Find a recoverable fault draw.
    recovery = None
    for seed in range(20):
        rng = spawn_rng(seed, "routing-example")
        faults = bt.sample_faults(params.paper_fault_probability, rng)
        try:
            recovery = bt.recover(faults)
            break
        except Exception:
            continue
    assert recovery is not None
    shape = recovery.guest_shape()
    print(f"recovered a {shape} torus from {int(faults.sum())} faults "
          f"({recovery.stats['edges_checked']} edges verified)")
    print(f"mean torus distance (closed form): {all_pairs_mean_distance(shape):.2f}")
    print()

    table = Table(
        ["pattern", "messages", "mean lat", "p99 lat", "throughput"],
        title="Traffic on the RECOVERED torus (cycles; store-and-forward)",
    )
    for pattern in ("uniform", "transpose", "neighbor", "hotspot"):
        rng = spawn_rng(7, "traffic", pattern)
        traffic = make_traffic(shape, pattern, 300, rng)
        stats = latency_stats(simulate(shape, traffic))
        table.add_row(
            [pattern, stats["total"], f"{stats['mean']:.1f}", f"{stats['p99']:.0f}",
             f"{stats['throughput']:.2f}"]
        )
    table.print()

    print()
    print("Sanity: identical traffic on a PRISTINE torus (same seeds):")
    table2 = Table(["pattern", "mean lat", "p99 lat"])
    for pattern in ("uniform", "transpose", "neighbor", "hotspot"):
        rng = spawn_rng(7, "traffic", pattern)
        traffic = make_traffic(shape, pattern, 300, rng)
        stats = latency_stats(simulate(shape, traffic))
        table2.add_row([pattern, f"{stats['mean']:.1f}", f"{stats['p99']:.0f}"])
    table2.print()
    print()
    print("The tables match row for row: recovery is dilation-1, so the")
    print("surviving machine routes exactly like a fault-free one.")


if __name__ == "__main__":
    main()
