"""Tests for bands and band-set validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bands import Band, BandSet
from repro.errors import BandPlacementError


def straight_set(params, offset=0):
    K = params.num_bands
    spacing = params.m // K
    return BandSet.straight(params, np.arange(K) * spacing + offset)


class TestBandMasking:
    def test_band_masks_window(self, bn2_small):
        p = bn2_small
        band = Band(np.full(p.n, 10, dtype=np.int64), p.b, p.m)
        rows = np.array([9, 10, 12, 13])
        cols = np.zeros(4, dtype=np.int64)
        assert band.masks(rows, cols).tolist() == [False, True, True, False]

    def test_band_masks_wraps(self, bn2_small):
        p = bn2_small
        band = Band(np.full(p.n, p.m - 1, dtype=np.int64), p.b, p.m)
        assert band.masks(np.array([p.m - 1, 0, 1, 2]), np.zeros(4, dtype=int)).tolist() == [
            True,
            True,
            True,
            False,
        ]


class TestBandSetValidation:
    def test_valid_straight_set(self, bn2_small):
        bs = straight_set(bn2_small)
        bs.validate()  # no faults

    def test_wrong_count(self, bn2_small):
        p = bn2_small
        bs = BandSet.straight(p, np.array([0]))
        with pytest.raises(BandPlacementError, match="band count"):
            bs.validate()

    def test_untouching_violation(self, bn2_small):
        p = bn2_small
        bottoms = np.arange(p.num_bands) * (p.m // p.num_bands)
        bottoms[1] = bottoms[0] + p.b  # gap b < b+1
        bs = BandSet.straight(p, bottoms)
        with pytest.raises(BandPlacementError, match="untouching"):
            bs.validate()

    def test_slope_violation(self, bn2_small):
        p = bn2_small
        bs = straight_set(p)
        bottoms = bs.bottoms.copy()
        bottoms[0, 3] += 2  # jump of 2 between adjacent columns
        with pytest.raises(BandPlacementError, match="slope"):
            BandSet(p, bottoms).validate()

    def test_slope_wraparound_checked(self, bn2_small):
        p = bn2_small
        bs = straight_set(p)
        bottoms = bs.bottoms.copy()
        # ramp 0..n-1 breaks only at the wrap edge
        bottoms[0] = (bottoms[0, 0] + np.minimum(np.arange(p.n), 5)) % p.m
        bottoms[0, -1] = bottoms[0, 0] + 5
        with pytest.raises(BandPlacementError, match="slope"):
            BandSet(p, bottoms).validate()

    def test_coverage(self, bn2_small):
        p = bn2_small
        bs = straight_set(p)
        faults = np.zeros(p.shape, dtype=bool)
        faults[int(bs.bottoms[0, 0]) + 1, 5] = True  # masked
        bs.validate(faults)
        faults2 = np.zeros(p.shape, dtype=bool)
        unmasked_row = int(bs.unmasked_rows(0)[0])
        faults2[unmasked_row, 0] = True
        with pytest.raises(BandPlacementError, match="unmasked"):
            bs.validate(faults2)


class TestMaskAccounting:
    def test_unmasked_rows_count_is_n(self, bn2_small):
        p = bn2_small
        bs = straight_set(p)
        for col in (0, 1, p.n - 1):
            assert len(bs.unmasked_rows(col)) == p.n

    def test_mask_total(self, bn2_small):
        p = bn2_small
        bs = straight_set(p)
        mask = bs.mask()
        assert mask.shape == p.shape
        assert mask.sum() == (p.m - p.n) * p.n ** (p.d - 1)

    def test_mask_consistent_with_unmasked_rows(self, bn2_small):
        p = bn2_small
        bs = straight_set(p, offset=7)
        mask = bs.mask()
        um = np.flatnonzero(~mask[:, 3])
        assert (um == bs.unmasked_rows(3)).all()

    def test_wrong_bottoms_shape(self, bn2_small):
        with pytest.raises(ValueError):
            BandSet(bn2_small, np.zeros((2, 3), dtype=np.int64))
