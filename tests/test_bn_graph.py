"""Tests for the B^d_n structure (Theorem 2, claims 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn_graph import BnGraph
from repro.core.params import BnParams


@pytest.fixture(scope="module")
def bn(bn2_small):
    return BnGraph(bn2_small)


class TestDegreeAndCount:
    def test_exact_degree_2d(self, bn):
        degs = bn.graph().degrees()
        assert degs.min() == degs.max() == 10  # 6d-2 with d=2

    def test_exact_degree_3d(self):
        # small custom 3d instance to keep this fast
        p = BnParams(d=3, b=3, s=1, t=2)
        g = BnGraph(p).graph()
        degs = g.degrees()
        assert degs.min() == degs.max() == 16  # 6*3-2

    def test_node_count_claim(self, bn, bn2_small):
        stats = bn.verify_structure()
        assert stats["num_nodes"] <= stats["claimed_max_nodes"] + 1e-9
        assert stats["num_nodes"] == bn2_small.m * bn2_small.n

    def test_edge_count(self, bn):
        g = bn.graph()
        assert g.num_edges == g.num_nodes * 10 // 2


class TestEdgeFamilies:
    def test_contains_plain_torus(self, bn, bn2_small):
        """B^d_n contains the torus C_m x C_n as a subgraph (torus edges)."""
        from repro.topology.torus import torus_edges

        e = torus_edges(bn2_small.shape)
        assert bn.graph().has_edges(e[:, 0], e[:, 1]).all()

    def test_vertical_jump_edges(self, bn, bn2_small):
        p = bn2_small
        idx = bn.codec.all_indices()
        vs = bn.codec.shift(idx, 0, p.b + 1, wrap=True)
        assert bn.graph().has_edges(idx, vs).all()

    def test_diagonal_jump_edges(self, bn, bn2_small):
        p = bn2_small
        idx = bn.codec.all_indices()
        stepped = bn.codec.shift(idx, 1, +1, wrap=True)
        for delta in (p.b, -p.b):
            vs = bn.codec.shift(stepped, 0, delta, wrap=True)
            assert bn.graph().has_edges(idx, vs).all()

    def test_no_other_edges(self, bn):
        """Analytic is_adjacent must agree with the materialised graph."""
        g = bn.graph()
        rng = np.random.default_rng(0)
        us = rng.integers(0, g.num_nodes, 4000)
        vs = rng.integers(0, g.num_nodes, 4000)
        keep = us != vs
        us, vs = us[keep], vs[keep]
        assert (bn.is_adjacent(us, vs) == g.has_edges(us, vs)).all()

    def test_is_adjacent_on_edges(self, bn):
        e = bn.graph().edges()
        assert bn.is_adjacent(e[:, 0], e[:, 1]).all()

    def test_is_adjacent_symmetry(self, bn):
        rng = np.random.default_rng(1)
        us = rng.integers(0, bn.num_nodes, 1000)
        vs = rng.integers(0, bn.num_nodes, 1000)
        assert (bn.is_adjacent(us, vs) == bn.is_adjacent(vs, us)).all()


class TestEdgeFamiliesDescriptor:
    def test_family_inventory(self, bn, bn2_small):
        fam = bn.edge_families()
        assert len(fam["torus"]) == bn2_small.d
        assert fam["vertical"] == [(0, bn2_small.b + 1)]
        assert len(fam["diagonal"]) == 2 * (bn2_small.d - 1)
