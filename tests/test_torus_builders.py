"""Torus/mesh/product builders agree with networkx references (Section 2)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topology.product import direct_product
from repro.topology.torus import cycle_graph, mesh_graph, path_graph, torus_graph


class TestFactors:
    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_cycle(self, n):
        g = cycle_graph(n)
        # networkx's cycle_graph(1) has a self-loop; ours is an isolated node
        # (the right semantics for direct products).
        ref = nx.empty_graph(1) if n == 1 else nx.cycle_graph(n)
        assert nx.is_isomorphic(g.to_networkx(), ref)

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_path(self, n):
        g = path_graph(n)
        assert nx.is_isomorphic(g.to_networkx(), nx.path_graph(n))

    def test_bad_n(self):
        with pytest.raises(ValueError):
            cycle_graph(0)
        with pytest.raises(ValueError):
            path_graph(0)


class TestTorus:
    @pytest.mark.parametrize("shape", [(3, 4), (5, 5), (2, 3), (3, 3, 3)])
    def test_matches_networkx(self, shape):
        g = torus_graph(shape)
        ref = nx.cycle_graph(shape[0])
        for n in shape[1:]:
            ref = nx.cartesian_product(ref, nx.cycle_graph(n))
        assert nx.is_isomorphic(g.to_networkx(), ref)

    def test_degree_regular(self):
        g = torus_graph((5, 6))
        assert set(g.degrees().tolist()) == {4}

    def test_node_and_edge_counts(self):
        g = torus_graph((4, 7))
        assert g.num_nodes == 28
        assert g.num_edges == 2 * 28  # 2d * N / 2


class TestMesh:
    @pytest.mark.parametrize("shape", [(3, 4), (2, 2), (4, 3, 2)])
    def test_matches_networkx(self, shape):
        g = mesh_graph(shape)
        ref = nx.path_graph(shape[0])
        for n in shape[1:]:
            ref = nx.cartesian_product(ref, nx.path_graph(n))
        assert nx.is_isomorphic(g.to_networkx(), ref)

    def test_mesh_is_subgraph_of_torus(self):
        mesh = mesh_graph((4, 5))
        torus = torus_graph((4, 5))
        assert torus.has_edges(mesh.edges()[:, 0], mesh.edges()[:, 1]).all()


class TestDirectProduct:
    def test_product_of_cycles_is_torus(self):
        g = direct_product([cycle_graph(4), cycle_graph(5)])
        assert nx.is_isomorphic(g.to_networkx(), torus_graph((4, 5)).to_networkx())

    def test_product_of_paths_is_mesh(self):
        g = direct_product([path_graph(3), path_graph(4)])
        assert nx.is_isomorphic(g.to_networkx(), mesh_graph((3, 4)).to_networkx())

    def test_submesh_of_torus_claim(self):
        """Section 2: the torus contains the same-size mesh as a subgraph."""
        torus = torus_graph((5, 5))
        mesh = mesh_graph((5, 5))
        assert torus.has_edges(mesh.edges()[:, 0], mesh.edges()[:, 1]).all()

    def test_empty_factor_list(self):
        with pytest.raises(ValueError):
            direct_product([])
