"""The docs drift gate (tools/check_docs.py).

Two halves: the repo's own docs must pass the gate (the same check the
CI lint job runs), and each of the three checks must demonstrably
*fire* on an injected violation — a gate that cannot fail is not a
gate.  The tool is loaded from its file path (tools/ is not a package)
and pointed at synthetic repo trees via its module-level ``ROOT``.
"""

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


# ---------------------------------------------------------------------------
# The real repo passes the gate


def test_repo_docs_pass_the_gate(capsys):
    assert check_docs.main() == 0
    assert "ok" in capsys.readouterr().out


def test_every_doc_is_linked_from_readme():
    errors = []
    check_docs.check_readme_coverage(errors)
    assert errors == []


def test_all_relative_links_resolve():
    errors = []
    check_docs.check_relative_links(errors)
    assert errors == []


def test_docs_name_only_real_subcommands():
    errors = []
    check_docs.check_cli_drift(errors)
    assert errors == []


def test_cli_parse_finds_the_known_subcommands():
    subs = check_docs.cli_subcommands()
    assert {"run", "lifetime", "traffic", "conformance", "serve",
            "loadgen"} <= subs


# ---------------------------------------------------------------------------
# Each check fires on an injected violation


@pytest.fixture
def fake_repo(tmp_path, monkeypatch):
    """A minimal tree the checker accepts, retargeted via ROOT."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "cli.py").write_text(
        'def build(sub):\n'
        '    sub.add_parser("run", help="x")\n'
        '    sub.add_parser("traffic", help="x")\n'
    )
    (tmp_path / "docs" / "guide.md").write_text(
        "# Guide\n\n```bash\nrepro-ft run --trials 2\n```\n"
    )
    (tmp_path / "README.md").write_text(
        "# Readme\n\nSee [the guide](docs/guide.md).\n"
    )
    monkeypatch.setattr(check_docs, "ROOT", tmp_path)
    return tmp_path


def _all_errors():
    errors = []
    check_docs.check_readme_coverage(errors)
    check_docs.check_relative_links(errors)
    check_docs.check_cli_drift(errors)
    return errors


def test_fake_repo_baseline_is_clean(fake_repo):
    assert _all_errors() == []


def test_unlinked_doc_fires(fake_repo):
    (fake_repo / "docs" / "orphan.md").write_text("# Orphan\n")
    errors = _all_errors()
    assert any("orphan.md" in e and "does not link" in e for e in errors)


def test_broken_link_fires(fake_repo):
    (fake_repo / "docs" / "guide.md").write_text(
        "# Guide\n\nSee [gone](missing.md).\n"
    )
    errors = _all_errors()
    assert any("broken link" in e and "missing.md" in e for e in errors)


def test_stale_subcommand_fires(fake_repo):
    (fake_repo / "docs" / "guide.md").write_text(
        "# Guide\n\nRun `repro-ft frobnicate --now`.\n"
    )
    errors = _all_errors()
    assert any("frobnicate" in e for e in errors)


def test_readme_fragment_links_resolve_to_the_file(fake_repo):
    (fake_repo / "README.md").write_text(
        "# Readme\n\nSee [the guide](docs/guide.md#patterns).\n"
    )
    assert _all_errors() == []


# ---------------------------------------------------------------------------
# Invocation-parsing unit behaviour


def test_global_option_with_value_is_skipped():
    got = check_docs.invoked_subcommands("repro-ft --log-level info serve")
    assert got == {"serve"}


def test_bare_version_flag_yields_nothing():
    assert check_docs.invoked_subcommands("repro-ft --version") == set()


def test_trailing_comment_is_ignored():
    got = check_docs.invoked_subcommands(
        "repro-ft --version   # version of the checkout"
    )
    assert got == set()


def test_subcommand_before_options():
    got = check_docs.invoked_subcommands(
        "repro-ft traffic --router adaptive --qos-classes 2"
    )
    assert got == {"traffic"}


def test_prose_mentions_do_not_count(tmp_path):
    doc = tmp_path / "x.md"
    doc.write_text(
        "the `repro-ft` console script is nice\n\n"
        "but `repro-ft run --trials 2` is code\n"
    )
    got = check_docs.invoked_subcommands(check_docs.code_text(doc))
    assert got == {"run"}
