"""Tests for torus extraction (Lemmas 6-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn_graph import BnGraph
from repro.core.placement import place_bands
from repro.core.reconstruction import _transition, extract_torus
from repro.errors import ReconstructionError


def faults_at(params, coords):
    f = np.zeros(params.shape, dtype=bool)
    for c in coords:
        f[c] = True
    return f


class TestTransition:
    def test_unmasked_rows_pass_through(self, bn2_small):
        p = bn2_small
        bot = np.array([20])
        rows = np.array([0, 5, 19, 23])  # none masked by [20, 23)
        out = _transition(rows, bot, bot, p.m, p.b)
        assert (out == rows).all()

    def test_upward_jump(self, bn2_small):
        p = bn2_small
        # band at 20 on source column, 19 on destination: row 19 unmasked at
        # source, masked at destination -> jumps up by b
        out = _transition(np.array([19]), np.array([20]), np.array([19]), p.m, p.b)
        assert out[0] == 19 + p.b

    def test_downward_jump(self, bn2_small):
        p = bn2_small
        # band at 20 at source (masks 20..22), 21 at destination (masks
        # 21..23): row 23 unmasked at source, masked at destination
        out = _transition(np.array([23]), np.array([20]), np.array([21]), p.m, p.b)
        assert out[0] == 23 - p.b

    def test_inconsistent_band_raises(self, bn2_small):
        p = bn2_small
        # destination masks row 10 but source band is nowhere near: invalid
        with pytest.raises(ReconstructionError):
            _transition(np.array([10]), np.array([40]), np.array([10]), p.m, p.b)


class TestExtraction:
    def test_fault_free_extraction(self, bn2_small):
        bn = BnGraph(bn2_small)
        f = faults_at(bn2_small, [])
        bands = place_bands(bn2_small, f)
        rec = extract_torus(bn, bands, f)
        assert rec.stats["nodes"] == bn2_small.n ** 2
        assert rec.stats["edges_checked"] == 2 * bn2_small.n ** 2

    def test_injective_and_column_preserving(self, bn2_small):
        p = bn2_small
        bn = BnGraph(p)
        f = faults_at(p, [(20, 20)])
        bands = place_bands(p, f)
        rec = extract_torus(bn, bands, f)
        # guest (i, z) maps into host column z
        host_cols = bn.codec.axis_coord(rec.phi, 1)
        guest_cols = np.tile(np.arange(p.n), p.n)
        assert (host_cols == guest_cols).all()

    def test_wandering_bands_exercise_jumps(self, bn2_small):
        """A paper-strategy placement with a real region forces diagonal
        jumps; the verified embedding proves Lemma 6's row construction."""
        p = bn2_small
        bn = BnGraph(p)
        f = faults_at(p, [(0, 0), (p.b, 20)])  # forces paper strategy
        bands = place_bands(p, f, strategy="paper")
        rec = extract_torus(bn, bands, f)
        # at least one row must use a diagonal jump (bands are not straight)
        assert not (bands.bottoms == bands.bottoms[:, :1]).all()
        assert rec.stats["consistency_edges"] == p.n  # d=2: n column edges

    def test_avoids_faults(self, bn2_small):
        p = bn2_small
        f = faults_at(p, [(20, 20), (40, 10)])
        bn = BnGraph(p)
        bands = place_bands(p, f)
        rec = extract_torus(bn, bands, f)
        assert not f.ravel()[rec.phi].any()

    def test_3d_extraction(self, bn3_small):
        p = bn3_small
        bn = BnGraph(p)
        f = faults_at(p, [(20, 20, 20)])
        bands = place_bands(p, f, strategy="paper")
        rec = extract_torus(bn, bands, f)
        assert rec.stats["nodes"] == p.n ** 3

    def test_verify_false_skips_checks(self, bn2_small):
        p = bn2_small
        bn = BnGraph(p)
        f = faults_at(p, [])
        bands = place_bands(p, f)
        rec = extract_torus(bn, bands, f, verify=False)
        assert "nodes" not in rec.stats
