"""Fault-timeline generators: determinism, step grouping, repair composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.timeline import (
    TIMELINE_KINDS,
    AdversarialTimeline,
    BernoulliTimeline,
    BurstTimeline,
    RepairTimeline,
    UniformTimeline,
    make_timeline,
)
from repro.util.rng import spawn_rng

SHAPE = (12, 9)
SIZE = 12 * 9


def events_of(tl, seed=0):
    return list(tl.events(SHAPE, spawn_rng(seed, "tl-test")))


class TestKinds:
    def test_uniform_is_a_permutation(self):
        evs = events_of(UniformTimeline())
        assert [e.kind for e in evs] == ["fault"] * SIZE
        assert sorted(e.node for e in evs) == list(range(SIZE))
        assert [e.step for e in evs] == list(range(SIZE))

    def test_uniform_matches_raw_permutation_stream(self):
        """The single upfront permutation draw is the historical
        fault_lifetime sampling, bit for bit."""
        evs = events_of(UniformTimeline(), seed=7)
        order = spawn_rng(7, "tl-test").permutation(SIZE)
        assert [e.node for e in evs] == [int(x) for x in order]

    def test_bernoulli_rate_and_bounds(self):
        tl = BernoulliTimeline(rate=0.05, steps=40)
        evs = events_of(tl)
        assert evs and all(e.kind == "fault" for e in evs)
        assert max(e.step for e in evs) < 40
        # Roughly rate * size * steps arrivals (loose: 3 sigma)
        expect = 0.05 * SIZE * 40
        assert 0.3 * expect < len(evs) < 2.5 * expect

    def test_burst_groups_per_step(self):
        tl = BurstTimeline(burst=5, steps=6)
        evs = events_of(tl)
        per_step = {s: [e for e in evs if e.step == s] for s in range(6)}
        assert all(len(v) == 5 for v in per_step.values())

    @pytest.mark.parametrize("pattern", ["random", "diagonal", "cluster"])
    def test_adversarial_follows_campaign(self, pattern):
        tl = AdversarialTimeline(pattern=pattern, k=10)
        evs = events_of(tl)
        assert len(evs) == 10
        assert len({e.node for e in evs}) == 10

    @pytest.mark.parametrize("kind", TIMELINE_KINDS)
    def test_deterministic_given_seed(self, kind):
        tl = make_timeline(
            kind, rate=0.02, burst=3, pattern="random", max_steps=20
        )
        a = [(e.step, e.kind, e.node) for e in events_of(tl, seed=5)]
        b = [(e.step, e.kind, e.node) for e in events_of(tl, seed=5)]
        assert a == b


class TestRepair:
    def test_repairs_only_touch_faulty_nodes(self):
        tl = RepairTimeline(inner=UniformTimeline(), repair_rate=0.5)
        faulty = set()
        for ev in events_of(tl, seed=3):
            if ev.kind == "fault":
                faulty.add(ev.node)
            else:
                assert ev.node in faulty
                faulty.discard(ev.node)

    def test_repair_events_present_and_rate_scaled(self):
        lo = sum(
            e.kind == "repair"
            for e in events_of(RepairTimeline(UniformTimeline(), 0.05), seed=1)
        )
        hi = sum(
            e.kind == "repair"
            for e in events_of(RepairTimeline(UniformTimeline(), 0.9), seed=1)
        )
        assert 0 < lo < hi

    def test_repairs_run_on_arrival_free_steps(self):
        """Sparse inner timelines leave most steps without arrivals; the
        repair process must still get a pass on every one of them (and on
        trailing steps after the last arrival)."""
        tl = RepairTimeline(BernoulliTimeline(rate=0.0008, steps=400), repair_rate=0.9)
        evs = events_of(tl, seed=2)
        fault_steps = {e.step for e in evs if e.kind == "fault"}
        repair_steps = {e.step for e in evs if e.kind == "repair"}
        assert len(fault_steps) < 400  # the premise: most steps are empty
        # With rho=0.9 nearly every arrival is repaired within a step or
        # two, so repairs land on steps that had no arrival of their own.
        assert repair_steps - fault_steps

    def test_bernoulli_can_refault_repaired_nodes(self):
        tl = RepairTimeline(BernoulliTimeline(rate=0.2, steps=60), repair_rate=0.5)
        seen_refault = False
        repaired: set[int] = set()
        for ev in events_of(tl, seed=9):
            if ev.kind == "repair":
                repaired.add(ev.node)
            elif ev.node in repaired:
                seen_refault = True
                repaired.discard(ev.node)
        assert seen_refault


class TestFactory:
    def test_registry_covers_all_kinds(self):
        assert set(TIMELINE_KINDS) == {"uniform", "bernoulli", "burst", "adversarial"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown timeline kind"):
            make_timeline("flaky")

    def test_step_driven_kinds_need_max_steps(self):
        with pytest.raises(ValueError, match="max_steps"):
            make_timeline("bernoulli", rate=0.1)
        with pytest.raises(ValueError, match="max_steps"):
            make_timeline("burst", burst=2)

    def test_repair_wrapping(self):
        tl = make_timeline("uniform", repair_rate=0.3)
        assert isinstance(tl, RepairTimeline)
        assert isinstance(tl.inner, UniformTimeline)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BernoulliTimeline(rate=0.0, steps=5)
        with pytest.raises(ValueError):
            BurstTimeline(burst=0, steps=5)
        with pytest.raises(ValueError):
            AdversarialTimeline(pattern="sneaky")
        with pytest.raises(ValueError):
            RepairTimeline(UniformTimeline(), repair_rate=1.5)

    def test_events_cover_shape(self):
        evs = events_of(make_timeline("adversarial", pattern="rows", k=8))
        arr = np.zeros(SHAPE, dtype=bool)
        arr.ravel()[[e.node for e in evs]] = True
        assert arr.sum() == 8
