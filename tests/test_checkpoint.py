"""Streaming execution: checkpoint/resume, incremental merge, budgets.

The hard contract under test is byte-identity: however a run is
executed (serial, pooled, sub-chunk-streamed under a starved byte
budget) and however it is interrupted (a journal cut at any chunk
boundary or mid-line), the final canonical JSON must equal the
uninterrupted serial reference.  See docs/scaling.md.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.analysis.montecarlo import MCResult
from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec
from repro.api.journal import JOURNAL_FORMAT, ChunkJournal
from repro.api.lifetime import LifetimeResult
from repro.api.protocol import LifetimeSpec, TrafficSpec
from repro.api.traffic import TrafficOutcome, TrafficResult
from repro.errors import JournalError

#: Cheap spec with several chunks per point and two points, so chunk
#: boundaries, per-point folds and out-of-order arrival all genuinely
#: occur.  chunk_size=7 does not divide trials — the short tail chunk
#: rides along in every case.
SPEC = ExperimentSpec(
    construction="replication",
    params={"n": 8, "d": 2, "replication": 3},
    grid=(FaultSpec(p=0.05), FaultSpec(p=0.2)),
    trials=20,
    chunk_size=7,
    name="ckpt",
)

BN_SPEC = ExperimentSpec(
    construction="bn",
    params={"d": 2, "b": 3, "s": 1, "t": 2},
    grid=(FaultSpec(p=1e-3),),
    trials=20,
    chunk_size=6,
    name="ckpt-bn",
)


def run_bytes(spec, tmp_path, tag, runner=None, **run_kw) -> bytes:
    runner = runner or ExperimentRunner(workers=1)
    out = tmp_path / f"{tag}.json"
    runner.run(spec, **run_kw).save(out)
    return out.read_bytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("ref")
    return run_bytes(SPEC, tmp, "ref")


class TestMergeAccumulators:
    """merged() and the incremental merger are the same fold by
    construction — pin it anyway so a refactor cannot split them."""

    def test_mc_incremental_equals_one_shot(self):
        parts = [
            MCResult(trials=7, successes=6, mean_faults=1.25),
            MCResult(trials=7, successes=7, mean_faults=0.5),
            MCResult(trials=6, successes=5, mean_faults=2.0),
        ]
        merge = MCResult.merger()
        for part in parts:
            merge.add(part)
        assert merge.finish() == MCResult.merged(parts)

    def test_lifetime_incremental_equals_one_shot(self):
        parts = [
            LifetimeResult(trials=2, lifetimes=[3, 9], masked=4, replaced=1),
            LifetimeResult(trials=1, lifetimes=[5], exhausted=1),
        ]
        merge = LifetimeResult.merger()
        for part in parts:
            merge.add(part)
        assert merge.finish() == LifetimeResult.merged(parts)

    def test_traffic_incremental_equals_one_shot(self):
        out = TrafficOutcome(offered=4, delivered=4, timed_out=0, cycles=9,
                             max_queue=2, throughput=0.5, mean_latency=3.0,
                             p50=3.0, p99=4.0, max_latency=4.0)
        parts = [TrafficResult(trials=1, outcomes=[out]),
                 TrafficResult(trials=1, outcomes=[out])]
        merge = TrafficResult.merger()
        for part in parts:
            merge.add(part)
        assert merge.finish() == TrafficResult.merged(parts)


class TestCheckpointResume:
    def journal_lines(self, tmp_path) -> list[bytes]:
        journal = tmp_path / "full.ndjson"
        run_bytes(SPEC, tmp_path, "full", checkpoint=journal)
        return journal.read_bytes().split(b"\n")[:-1]

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("batch", [None, False])
    def test_resume_at_every_chunk_boundary(self, tmp_path, reference,
                                            workers, batch):
        lines = self.journal_lines(tmp_path)
        journal = tmp_path / "cut.ndjson"
        for keep in range(len(lines)):  # 0 chunks .. all chunks
            journal.write_bytes(b"\n".join(lines[: keep + 1]) + b"\n")
            got = run_bytes(
                SPEC, tmp_path, f"res{keep}",
                runner=ExperimentRunner(workers=workers, batch=batch),
                checkpoint=journal, resume=True,
            )
            assert got == reference, f"divergence resuming after {keep} chunks"

    def test_resume_after_mid_line_kill(self, tmp_path, reference):
        lines = self.journal_lines(tmp_path)
        journal = tmp_path / "torn.ndjson"
        for cut in (1, 10, len(lines[-1]) - 1):  # torn at several offsets
            journal.write_bytes(b"\n".join(lines[:-1]) + b"\n" + lines[-1][:cut])
            got = run_bytes(SPEC, tmp_path, f"torn{cut}",
                            checkpoint=journal, resume=True)
            assert got == reference

    def test_fully_journaled_resume_runs_nothing(self, tmp_path, reference):
        lines = self.journal_lines(tmp_path)
        journal = tmp_path / "done.ndjson"
        journal.write_bytes(b"\n".join(lines) + b"\n")
        got = run_bytes(SPEC, tmp_path, "done", checkpoint=journal, resume=True)
        assert got == reference

    def test_resume_missing_file_starts_fresh(self, tmp_path, reference):
        journal = tmp_path / "never-written.ndjson"
        got = run_bytes(SPEC, tmp_path, "fresh", checkpoint=journal, resume=True)
        assert got == reference
        assert journal.exists()

    def test_checkpoint_without_resume_restarts_journal(self, tmp_path):
        journal = tmp_path / "restart.ndjson"
        run_bytes(SPEC, tmp_path, "a", checkpoint=journal)
        first = journal.read_bytes()
        run_bytes(SPEC, tmp_path, "b", checkpoint=journal)
        assert journal.read_bytes() == first  # rewritten from scratch, same run

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="checkpoint"):
            ExperimentRunner().run(SPEC, resume=True)

    def test_resume_with_different_budget_and_workers(self, tmp_path, reference):
        lines = self.journal_lines(tmp_path)
        journal = tmp_path / "mixed.ndjson"
        journal.write_bytes(b"\n".join(lines[:3]) + b"\n")
        got = run_bytes(
            SPEC, tmp_path, "mixed",
            runner=ExperimentRunner(workers=2, max_batch_bytes=512),
            checkpoint=journal, resume=True,
        )
        assert got == reference


class TestJournalValidation:
    def make_journal(self, tmp_path) -> list[bytes]:
        journal = tmp_path / "v.ndjson"
        ExperimentRunner().run(SPEC, checkpoint=journal)
        return journal.read_bytes().split(b"\n")[:-1]

    def resume(self, tmp_path, content: bytes):
        journal = tmp_path / "bad.ndjson"
        journal.write_bytes(content)
        return ExperimentRunner().run(SPEC, checkpoint=journal, resume=True)

    def test_corrupt_non_final_line_rejected(self, tmp_path):
        lines = self.make_journal(tmp_path)
        bad = b"\n".join([lines[0], b"{not json", *lines[2:]]) + b"\n"
        with pytest.raises(JournalError, match="corrupt journal line"):
            self.resume(tmp_path, bad)

    def test_unknown_format_rejected(self, tmp_path):
        lines = self.make_journal(tmp_path)
        header = json.loads(lines[0])
        header["format"] = "repro-chunk-journal-v999"
        bad = b"\n".join([json.dumps(header).encode(), *lines[1:]]) + b"\n"
        with pytest.raises(JournalError, match="format"):
            self.resume(tmp_path, bad)

    def test_spec_mismatch_rejected(self, tmp_path):
        journal = tmp_path / "other.ndjson"
        ExperimentRunner().run(BN_SPEC, checkpoint=journal)
        with pytest.raises(JournalError, match="different spec"):
            ExperimentRunner().run(SPEC, checkpoint=journal, resume=True)

    def test_out_of_range_chunk_rejected(self, tmp_path):
        lines = self.make_journal(tmp_path)
        rec = json.loads(lines[1])
        rec["chunk"] = 99
        bad = b"\n".join([lines[0], json.dumps(rec).encode(), *lines[2:]]) + b"\n"
        with pytest.raises(JournalError, match="outside"):
            self.resume(tmp_path, bad)

    def test_header_only_fragment_starts_fresh(self, tmp_path, caplog):
        # A kill during the very first write leaves a torn header: not an
        # error — the journal is rebuilt from scratch.
        journal = tmp_path / "torn-header.ndjson"
        journal.write_bytes(b'{"format": "repro-chu')
        with caplog.at_level(logging.WARNING, logger="repro.api.journal"):
            ExperimentRunner().run(SPEC, checkpoint=journal, resume=True)
        assert "no complete header" in caplog.text
        assert json.loads(journal.read_text().splitlines()[0])["format"] == \
            JOURNAL_FORMAT

    def test_journal_format_shape(self, tmp_path):
        lines = self.make_journal(tmp_path)
        header = json.loads(lines[0])
        assert header["format"] == JOURNAL_FORMAT
        assert header["spec"] == SPEC.to_dict()
        assert header["total_chunks"] == len(lines) - 1
        for line in lines[1:]:
            rec = json.loads(line)
            assert set(rec) == {"point", "chunk", "result"}


class TestStreamingEdges:
    def test_chunk_size_larger_than_trials(self, tmp_path):
        spec = ExperimentSpec(
            construction="replication", params={"n": 8, "d": 2, "replication": 3},
            grid=(FaultSpec(p=0.05),), trials=3, chunk_size=100, name="one-chunk",
        )
        journal = tmp_path / "one.ndjson"
        a = run_bytes(spec, tmp_path, "a", checkpoint=journal)
        assert len(journal.read_bytes().split(b"\n")[:-1]) == 2  # header + 1
        b = run_bytes(spec, tmp_path, "b",
                      runner=ExperimentRunner(workers=4),
                      checkpoint=journal, resume=True)
        assert a == b

    def test_tiny_byte_budget_is_byte_identical(self, tmp_path):
        ref = run_bytes(BN_SPEC, tmp_path, "ref")
        # 1-byte budget -> every kernel degenerates to one-trial slices.
        starved = run_bytes(BN_SPEC, tmp_path, "starved",
                            runner=ExperimentRunner(max_batch_bytes=1))
        assert starved == ref

    def test_lifetime_and_traffic_streamed_chunks(self, tmp_path):
        spec = ExperimentSpec(
            construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(LifetimeSpec(), TrafficSpec(pattern="uniform", messages=24)),
            trials=10, chunk_size=4, name="mixed",
        )
        ref = run_bytes(spec, tmp_path, "ref")
        starved = run_bytes(spec, tmp_path, "starved",
                            runner=ExperimentRunner(max_batch_bytes=256))
        assert starved == ref
        journal = tmp_path / "mixed.ndjson"
        run_bytes(spec, tmp_path, "full", checkpoint=journal)
        lines = journal.read_bytes().split(b"\n")[:-1]
        journal.write_bytes(b"\n".join(lines[:4]) + b"\n")
        resumed = run_bytes(spec, tmp_path, "resumed",
                            runner=ExperimentRunner(workers=2),
                            checkpoint=journal, resume=True)
        assert resumed == ref

    def test_progress_lines_logged(self, caplog):
        runner = ExperimentRunner(progress_interval=0.0)
        with caplog.at_level(logging.INFO, logger="repro.api.experiment"):
            runner.run(SPEC)
        progress = [r.getMessage() for r in caplog.records
                    if "progress:" in r.getMessage()]
        assert len(progress) == 6  # 2 points x 3 chunks, interval 0 logs all
        assert "trials/s" in progress[-1] and "peak buffer" in progress[-1]
        assert progress[-1].startswith("progress: 6/6 chunks (100%)")
