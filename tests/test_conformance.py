"""The committed golden artifacts and the conformance suite end to end.

The golden gate runs against the *committed* snapshots under
``tests/golden/`` — a failure here means serialization or RNG streams
drifted (see docs/testing.md for the update workflow).  The full quick
suite and the CLI wiring are exercised under the ``slow`` marker; CI
runs the same thing via ``repro-ft conformance --quick``.
"""

from __future__ import annotations

import pytest

from repro.testkit.golden import GOLDEN_CASES, check_golden, default_golden_dir

pytestmark = pytest.mark.conformance


class TestCommittedGoldens:
    def test_registry_covers_all_five_pillars(self):
        from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec

        experiments = [c for c in GOLDEN_CASES if c.kind == "experiment"]
        kinds = {
            type(point)
            for case in experiments
            for point in case.spec.grid
        }
        assert kinds == {FaultSpec, LifetimeSpec, TrafficSpec}
        constructions = {case.spec.construction for case in experiments}
        assert {"bn", "an", "dn"} <= constructions
        # the fifth pillar: the canned serve session rides the same gate
        assert any(case.kind == "serve" for case in GOLDEN_CASES)

    def test_every_golden_artifact_is_committed(self):
        directory = default_golden_dir()
        for case in GOLDEN_CASES:
            assert (directory / case.filename).exists(), case.name

    @pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.name)
    def test_golden_artifact_fresh(self, case):
        check_golden(case).raise_on_mismatch()


@pytest.mark.slow
class TestQuickSuiteEndToEnd:
    def test_cli_quick_tier_green(self, capsys):
        from repro.cli import main

        assert main(["conformance", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "conformance (quick):" in out and "0 failed" in out
        assert "repair-modes: ok" in out

    def test_cli_update_then_tamper_round_trip(self, tmp_path, capsys):
        """--update-golden writes a passing snapshot set; tampering one
        field then flips the exit code and surfaces the field path.
        (One combined test: each CLI invocation runs the whole quick
        suite, so this is the expensive way to exercise the golden gate —
        the cheap per-case mutations live in tests/test_testkit.py.)"""
        import json

        from repro.cli import main

        assert main(["conformance", "--quick", "--update-golden",
                     "--golden-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "rewritten" in out
        for case in GOLDEN_CASES:
            assert (tmp_path / case.filename).exists()
        victim = tmp_path / GOLDEN_CASES[0].filename
        payload = json.loads(victim.read_text())
        payload["points"][0]["result"]["successes"] += 1
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        assert main(["conformance", "--quick", "--golden-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "1 failed" in out
        assert "points[0].result.successes" in out
