"""Tests for tile / brick / frame geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.topology.grid import TileGeometry


@pytest.fixture()
def geo():
    # b=3 -> tile 9; shape (54, 36) -> grid (6, 4)
    return TileGeometry((54, 36), 3)


class TestConstruction:
    def test_grid_shape(self, geo):
        assert geo.grid_shape == (6, 4)
        assert geo.tile_side == 9

    def test_rejects_indivisible(self):
        with pytest.raises(ParameterError):
            TileGeometry((50, 36), 3)

    def test_rejects_small_b(self):
        with pytest.raises(ParameterError):
            TileGeometry((16, 16), 2)

    def test_rejects_tiny_grid(self):
        # grid would be 2x2 < b=3 tiles
        with pytest.raises(ParameterError):
            TileGeometry((18, 18), 3)


class TestTiles:
    def test_tile_of_coords(self, geo):
        assert geo.tile_of_coords(np.array([10, 30])).tolist() == [1, 3]

    def test_tile_fault_counts(self, geo):
        faults = np.zeros((54, 36), dtype=bool)
        faults[0, 0] = True
        faults[1, 2] = True  # same tile (0,0)
        faults[53, 35] = True  # tile (5,3)
        counts = geo.tile_fault_counts(faults)
        assert counts[0, 0] == 2
        assert counts[5, 3] == 1
        assert counts.sum() == 3

    def test_count_shape_mismatch(self, geo):
        with pytest.raises(ValueError):
            geo.tile_fault_counts(np.zeros((10, 10), dtype=bool))


class TestBricks:
    def test_brick_count(self, geo):
        assert len(list(geo.brick_corners())) == 6 * 4

    def test_brick_tiles_span_b_wide(self, geo):
        tiles = geo.brick_tiles((0, 0))
        # 1 tile tall x b=3 tiles wide
        assert len(tiles) == 3
        coords = geo.grid.unravel(tiles)
        assert set(coords[:, 0].tolist()) == {0}
        assert sorted(coords[:, 1].tolist()) == [0, 1, 2]

    def test_brick_node_block_shape_and_wrap(self, geo):
        faults = np.zeros((54, 36), dtype=bool)
        faults[0, 0] = True
        block = geo.brick_node_block(faults, (0, 3))  # wraps columns 27..36+... -> 27..53 mod 36
        assert block.shape == (9, 27)
        assert block.sum() == 1  # column 0 == wrapped column 36


class TestFrames:
    def test_frame_and_interior_sizes(self, geo):
        frame, interior = geo.frame_and_interior((0, 0), 3)
        assert len(frame) == 8 and len(interior) == 1
        assert len(np.intersect1d(frame, interior)) == 0

    def test_frame_too_small(self, geo):
        with pytest.raises(ValueError):
            geo.frame_and_interior((0, 0), 2)

    def test_frame_too_large(self, geo):
        with pytest.raises(ValueError):
            geo.frame_and_interior((0, 0), 5)  # grid min is 4 -> s <= 4

    def test_enclosing_corners_contain_tile(self, geo):
        tile = (2, 1)
        for corner in geo.enclosing_corners(tile, 3):
            _, interior = geo.frame_and_interior(corner, 3)
            flat = geo.grid.ravel(np.array(tile))
            assert flat in interior

    def test_concentric_corner_is_enclosing(self, geo):
        tile = (4, 2)
        corner = geo.concentric_corners(tile, 3)
        _, interior = geo.frame_and_interior(corner, 3)
        assert geo.grid.ravel(np.array(tile)) in interior


class TestExtent:
    def test_extent_simple(self, geo):
        tiles = geo.grid.ravel(np.array([[0, 0], [0, 2]]))
        assert geo.tile_extent(tiles, 1) == 3

    def test_extent_wraps(self, geo):
        tiles = geo.grid.ravel(np.array([[0, 3], [0, 0]]))
        # columns 3 and 0 are cyclically adjacent in a 4-grid -> extent 2
        assert geo.tile_extent(tiles, 1) == 2

    def test_extent_full(self, geo):
        tiles = geo.grid.ravel(np.array([[0, 0], [0, 1], [0, 2], [0, 3]]))
        assert geo.tile_extent(tiles, 1) == 4
