"""Tests for adversarial fault campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.adversary import ADVERSARY_PATTERNS, adversarial_node_faults
from repro.util.rng import spawn_rng


@pytest.mark.parametrize("pattern", sorted(ADVERSARY_PATTERNS))
class TestEveryPattern:
    def test_exact_count(self, pattern):
        f = adversarial_node_faults((30, 30), 17, pattern, spawn_rng(0, pattern))
        assert f.sum() == 17

    def test_shape_and_dtype(self, pattern):
        f = adversarial_node_faults((12, 9, 8), 5, pattern, spawn_rng(1, pattern))
        assert f.shape == (12, 9, 8) and f.dtype == bool
        assert f.sum() == 5

    def test_deterministic(self, pattern):
        a = adversarial_node_faults((20, 20), 9, pattern, spawn_rng(3, pattern))
        b = adversarial_node_faults((20, 20), 9, pattern, spawn_rng(3, pattern))
        assert (a == b).all()


class TestPatternShapes:
    def test_cluster_is_compact(self):
        f = adversarial_node_faults((40, 40), 16, "cluster", spawn_rng(5))
        rows, cols = np.nonzero(f)
        # a 16-fault cluster fits in a small box (cyclic extents <= 4+1 slack)
        def extent(vals, period):
            present = np.zeros(period, dtype=bool)
            present[vals] = True
            from repro.util.cyclic import max_free_run

            return period - max_free_run(present)

        assert extent(rows, 40) <= 6
        assert extent(cols, 40) <= 6

    def test_rows_spread_hits_many_rows(self):
        f = adversarial_node_faults((40, 40), 20, "rows", spawn_rng(6))
        rows = np.nonzero(f)[0]
        assert len(np.unique(rows)) >= 15

    def test_cols_spread_hits_many_cols(self):
        f = adversarial_node_faults((40, 40), 20, "cols", spawn_rng(7))
        cols = np.nonzero(f)[1]
        assert len(np.unique(cols)) >= 15

    def test_residue_concentrates_rows(self):
        f = adversarial_node_faults((60, 60), 24, "residue", spawn_rng(8))
        rows = np.nonzero(f)[0]
        # most faults share a residue class mod (k^(1/3)+1 = 3+1... hint default)
        period = max(2, int(round(24 ** (1 / 3))) + 1)
        counts = np.bincount(rows % period, minlength=period)
        assert counts.max() >= 0.7 * 24

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            adversarial_node_faults((10, 10), 3, "nope", spawn_rng(0))

    def test_k_larger_than_grid_clips(self):
        f = adversarial_node_faults((4, 4), 100, "random", spawn_rng(0))
        assert f.sum() == 16
