"""Tests for random fault models (node, half-edge, edge folding)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.faults.models import (
    BernoulliNodeFaults,
    HalfEdgeFaults,
    fold_edge_faults_into_nodes,
    paper_node_failure_probability,
)
from repro.util.rng import spawn_rng


class TestBernoulliNodeFaults:
    def test_rate_matches(self):
        rng = spawn_rng(0, "faults")
        f = BernoulliNodeFaults(0.1).sample((200, 200), rng)
        assert f.shape == (200, 200)
        assert abs(f.mean() - 0.1) < 0.01

    def test_zero_and_one(self):
        rng = spawn_rng(0)
        assert not BernoulliNodeFaults(0.0).sample((10, 10), rng).any()
        assert BernoulliNodeFaults(1.0).sample((10, 10), rng).all()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            BernoulliNodeFaults(1.5)

    def test_expected_faults(self):
        assert BernoulliNodeFaults(0.25).expected_faults((4, 4)) == 4.0

    def test_deterministic_given_rng(self):
        a = BernoulliNodeFaults(0.3).sample((20, 20), spawn_rng(7))
        b = BernoulliNodeFaults(0.3).sample((20, 20), spawn_rng(7))
        assert (a == b).all()


class TestPaperRegime:
    def test_formula(self):
        assert paper_node_failure_probability(256, 2) == pytest.approx(8.0 ** -6)

    def test_decreasing_in_n_and_d(self):
        assert paper_node_failure_probability(1024, 2) < paper_node_failure_probability(64, 2)
        assert paper_node_failure_probability(256, 3) < paper_node_failure_probability(256, 2)

    def test_too_small(self):
        with pytest.raises(ValueError):
            paper_node_failure_probability(2, 2)


class TestHalfEdgeFaults:
    def test_edge_rate_is_q(self):
        he = HalfEdgeFaults(0.04, root_seed=3)
        # edge faulty iff both halves faulty -> rate q
        block = he.edge_block(0, 1, 300, 300)
        assert abs(block.mean() - 0.04) < 0.005

    def test_half_rate_is_sqrt_q(self):
        he = HalfEdgeFaults(0.04, root_seed=3)
        half = he.half_block(5, 6, (300, 300))
        assert abs(half.mean() - 0.2) < 0.01

    def test_deterministic_per_ordered_pair(self):
        he = HalfEdgeFaults(0.5, root_seed=9)
        a = he.half_block(1, 2, (8, 8))
        b = he.half_block(1, 2, (8, 8))
        assert (a == b).all()

    def test_directions_independent(self):
        he = HalfEdgeFaults(0.5, root_seed=9)
        a = he.half_block(1, 2, (64, 64))
        b = he.half_block(2, 1, (64, 64))
        assert not (a == b.T).all()

    def test_q_zero_shortcut(self):
        he = HalfEdgeFaults(0.0, root_seed=1)
        assert not he.half_block(0, 0, (5, 5)).any()

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            HalfEdgeFaults(-0.1, root_seed=0)


class TestEdgeFolding:
    def test_zero_q_identity(self):
        f = np.zeros((5, 5), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.0, 10, spawn_rng(0))
        assert out is f

    def test_rate_upper_bound(self):
        f = np.zeros((300, 300), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.01, 10, spawn_rng(0))
        expect = 1 - (1 - 0.005) ** 10
        assert abs(out.mean() - expect) < 0.005

    def test_preserves_existing_faults(self):
        f = np.ones((4, 4), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.5, 4, spawn_rng(0))
        assert out.all()
