"""Tests for random fault models (node, half-edge, edge folding)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.faults.models import (
    BernoulliNodeFaults,
    ComponentFaults,
    HalfEdgeFaults,
    NeighborFaults,
    fold_edge_faults_into_nodes,
    paper_node_failure_probability,
)
from repro.faults.registry import fault_model_names, make_fault_model, model_token
from repro.util.rng import spawn_rng


class TestBernoulliNodeFaults:
    def test_rate_matches(self):
        rng = spawn_rng(0, "faults")
        f = BernoulliNodeFaults(0.1).sample((200, 200), rng)
        assert f.shape == (200, 200)
        assert abs(f.mean() - 0.1) < 0.01

    def test_zero_and_one(self):
        rng = spawn_rng(0)
        assert not BernoulliNodeFaults(0.0).sample((10, 10), rng).any()
        assert BernoulliNodeFaults(1.0).sample((10, 10), rng).all()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            BernoulliNodeFaults(1.5)

    def test_expected_faults(self):
        assert BernoulliNodeFaults(0.25).expected_faults((4, 4)) == 4.0

    def test_deterministic_given_rng(self):
        a = BernoulliNodeFaults(0.3).sample((20, 20), spawn_rng(7))
        b = BernoulliNodeFaults(0.3).sample((20, 20), spawn_rng(7))
        assert (a == b).all()


class TestPaperRegime:
    def test_formula(self):
        assert paper_node_failure_probability(256, 2) == pytest.approx(8.0 ** -6)

    def test_decreasing_in_n_and_d(self):
        assert paper_node_failure_probability(1024, 2) < paper_node_failure_probability(64, 2)
        assert paper_node_failure_probability(256, 3) < paper_node_failure_probability(256, 2)

    def test_too_small(self):
        with pytest.raises(ValueError):
            paper_node_failure_probability(2, 2)


class TestHalfEdgeFaults:
    def test_edge_rate_is_q(self):
        he = HalfEdgeFaults(0.04, root_seed=3)
        # edge faulty iff both halves faulty -> rate q
        block = he.edge_block(0, 1, 300, 300)
        assert abs(block.mean() - 0.04) < 0.005

    def test_half_rate_is_sqrt_q(self):
        he = HalfEdgeFaults(0.04, root_seed=3)
        half = he.half_block(5, 6, (300, 300))
        assert abs(half.mean() - 0.2) < 0.01

    def test_deterministic_per_ordered_pair(self):
        he = HalfEdgeFaults(0.5, root_seed=9)
        a = he.half_block(1, 2, (8, 8))
        b = he.half_block(1, 2, (8, 8))
        assert (a == b).all()

    def test_directions_independent(self):
        he = HalfEdgeFaults(0.5, root_seed=9)
        a = he.half_block(1, 2, (64, 64))
        b = he.half_block(2, 1, (64, 64))
        assert not (a == b.T).all()

    def test_q_zero_shortcut(self):
        he = HalfEdgeFaults(0.0, root_seed=1)
        assert not he.half_block(0, 0, (5, 5)).any()

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            HalfEdgeFaults(-0.1, root_seed=0)


class TestEdgeFolding:
    def test_zero_q_identity(self):
        f = np.zeros((5, 5), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.0, 10, spawn_rng(0))
        assert out is f

    def test_rate_upper_bound(self):
        f = np.zeros((300, 300), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.01, 10, spawn_rng(0))
        expect = 1 - (1 - 0.005) ** 10
        assert abs(out.mean() - expect) < 0.005

    def test_preserves_existing_faults(self):
        f = np.ones((4, 4), dtype=bool)
        out = fold_edge_faults_into_nodes(f, 0.5, 4, spawn_rng(0))
        assert out.all()


class TestNeighborFaults:
    def test_closed_neighborhoods_fail_together(self):
        # Every center's torus neighbors are faulty along with it.
        sample = NeighborFaults(0.05).sample((12, 12), spawn_rng(2, "nbr"))
        padded = sample.astype(int)
        for axis in (0, 1):
            for off in (1, -1):
                shifted = np.roll(sample, off, axis=axis)
                # A lone faulty node with a healthy full neighborhood is
                # impossible: faults come in closed-neighborhood plates, so
                # each faulty node has at least one faulty torus neighbor
                # (itself a center or a co-victim) unless p drew nothing.
                padded += np.roll(sample, off, axis=axis).astype(int)
        if sample.any():
            assert (padded[sample] >= 2).all()

    def test_expected_faults_is_exact(self):
        model = NeighborFaults(0.01)
        trials = 400
        total = 0
        for i in range(trials):
            total += int(model.sample((10, 10), spawn_rng(i, "nbr-mean")).sum())
        expect = model.expected_faults((10, 10))
        assert expect == pytest.approx(100 * (1 - (1 - 0.01) ** 5))
        assert total / trials == pytest.approx(expect, rel=0.15)

    def test_p_zero_and_validation(self):
        assert not NeighborFaults(0.0).sample((6, 6), spawn_rng(0)).any()
        with pytest.raises(ValueError):
            NeighborFaults(-0.1)


class TestComponentFaults:
    def test_faults_are_axis_slabs(self):
        sample = ComponentFaults(0.1, width=2).sample((9, 9), spawn_rng(4, "comp"))
        # The fault set is a union of full rows and full columns: every
        # faulty cell lies on a fully-faulty hyperplane.
        rows = sample.all(axis=1)
        cols = sample.all(axis=0)
        rebuilt = rows[:, None] | cols[None, :]
        assert np.array_equal(sample, rebuilt)

    def test_width_widens_the_slab(self):
        starts_only = ComponentFaults(0.08, width=1).sample((20, 20), spawn_rng(5, "w"))
        widened = ComponentFaults(0.08, width=3).sample((20, 20), spawn_rng(5, "w"))
        # Same start draws (same rng keying), strictly more coverage.
        assert (starts_only <= widened).all()
        assert widened.sum() > starts_only.sum()

    def test_expected_faults_is_exact(self):
        model = ComponentFaults(0.02, width=2)
        assert model.expected_faults((10, 10)) == pytest.approx(
            100 * (1 - (1 - 0.02) ** 4)
        )
        trials = 400
        total = sum(
            int(model.sample((10, 10), spawn_rng(i, "comp-mean")).sum())
            for i in range(trials)
        )
        assert total / trials == pytest.approx(model.expected_faults((10, 10)), rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentFaults(0.1, width=0)
        with pytest.raises(ValueError):
            ComponentFaults(2.0)


class TestRegistry:
    def test_round_trip_through_dicts(self):
        for name in fault_model_names():
            model = make_fault_model(dict(FAULT_MODEL_EXAMPLES[name]))
            assert model.name == name
            assert make_fault_model(model.to_dict()) == model

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="bernoulli"):
            make_fault_model({"name": "gamma-ray"})

    def test_bad_parameters_name_the_model(self):
        with pytest.raises(ValueError, match="bernoulli"):
            make_fault_model({"name": "bernoulli", "zeta": 1})

    def test_model_token_is_order_insensitive(self):
        a = model_token({"name": "component", "rate": 0.1, "width": 2})
        b = model_token({"width": 2, "rate": 0.1, "name": "component"})
        assert a == b


FAULT_MODEL_EXAMPLES = {
    "bernoulli": {"name": "bernoulli", "p": 0.01},
    "halfedge": {"name": "halfedge", "q": 0.02},
    "byzantine": {"name": "byzantine", "rate": 0.05, "drop": 2.0},
    "neighbor": {"name": "neighbor", "p": 0.01},
    "component": {"name": "component", "rate": 0.02, "width": 2},
}
