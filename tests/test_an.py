"""Tests for the A^2_n construction (Theorem 1)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.an import ATorus, an_params_for, an_params_for_reliability
from repro.core.params import BnParams
from repro.errors import ReconstructionError


@pytest.fixture(scope="module")
def ap(bn2_small):
    return an_params_for_reliability(bn2_small, k_sub=2, p=0.3, q=0.0)


@pytest.fixture(scope="module")
def at(ap):
    return ATorus(ap)


class TestParamsHelpers:
    def test_overhead_helper(self, bn2_small):
        ap = an_params_for(bn2_small, k_sub=2, c=3.0)
        assert ap.c_effective == pytest.approx(3.0, rel=0.15)

    def test_reliability_helper_meets_threshold(self, bn2_small):
        ap = an_params_for_reliability(bn2_small, k_sub=2, p=0.3, q=0.0)
        # expected good nodes comfortably above k^2
        assert (1 - 0.3) * ap.h > ap.k_sub ** 2

    def test_reliability_helper_rejects_infeasible_q(self, bn2_small):
        with pytest.raises(ValueError, match="inequality"):
            an_params_for_reliability(bn2_small, k_sub=2, p=0.2, q=0.01)

    def test_degree_is_loglog_scale(self, bn2_small):
        """Degree grows with h = Theta(k^2) = Theta(log log n) while the
        host degree stays constant — the paper's headline tradeoff."""
        ap = an_params_for_reliability(bn2_small, k_sub=2, p=0.3, q=0.0)
        assert ap.degree == (ap.h - 1) + bn2_small.degree * ap.h


class TestGoodNodes:
    def test_q_zero_good_is_nonfaulty(self, at):
        state = at.sample_faults(p=0.3, q=0.0, seed=0)
        good = at.good_nodes(state)
        assert (good == ~state.node_faults).all()

    def test_good_supernode_threshold(self, at, ap):
        state = at.sample_faults(p=0.3, q=0.0, seed=0)
        good = at.good_nodes(state)
        sup = at.good_supernodes(good, 0.0)
        counts = good.sum(axis=1)
        assert ((counts >= ap.k_sub ** 2) == sup).all()

    def test_q_positive_good_subset(self, at):
        state = at.sample_faults(p=0.2, q=0.002, seed=1)
        good_q = at.good_nodes(state)
        assert (good_q <= ~state.node_faults).all()  # good => non-faulty


class TestRecovery:
    def test_recovers_at_constant_p(self, at):
        state = at.sample_faults(p=0.3, q=0.0, seed=2)
        rec = at.recover(state)
        assert rec.stats["nodes"] == at.params.n ** 2
        assert rec.stats["edges_checked"] == 2 * at.params.n ** 2

    def test_phi_avoids_faulty_nodes(self, at):
        state = at.sample_faults(p=0.3, q=0.0, seed=3)
        rec = at.recover(state)
        assert not state.node_faults.ravel()[rec.phi].any()

    def test_each_submesh_in_one_supernode(self, at, ap):
        state = at.sample_faults(p=0.3, q=0.0, seed=4)
        rec = at.recover(state)
        n, k, h = ap.n, ap.k_sub, ap.h
        supers = (rec.phi // h).reshape(n, n)
        for bx in range(n // k):
            for by in range(n // k):
                block = supers[bx * k : (bx + 1) * k, by * k : (by + 1) * k]
                assert len(np.unique(block)) == 1

    def test_with_edge_faults(self, bn2_small):
        ap = an_params_for_reliability(bn2_small, k_sub=2, p=0.2, q=0.002)
        at = ATorus(ap)
        state = at.sample_faults(p=0.2, q=0.002, seed=5)
        rec = at.recover(state)
        assert rec.stats["nodes"] == ap.n ** 2

    def test_all_faulty_raises(self, at):
        state = at.sample_faults(p=1.0, q=0.0, seed=6)
        with pytest.raises(ReconstructionError):
            at.recover(state)

    def test_survives_wrapper(self, at):
        assert at.survives(p=0.0, q=0.0, seed=7)
        assert not at.survives(p=1.0, q=0.0, seed=7)


class TestClaims:
    def test_node_count_linear(self, ap):
        """Theorem 1(1): cn^2 nodes for a constant c."""
        assert ap.num_nodes == ap.c_effective * ap.n ** 2

    def test_survival_rate_at_constant_p(self, at):
        wins = sum(at.survives(p=0.3, q=0.0, seed=s) for s in range(8))
        assert wins >= 7


class TestGeneralDimension:
    """The paper: "A proof for the general constant d can be obtained by
    simply changing some constants" — exercised at d = 3."""

    def test_a3_end_to_end(self):
        base = BnParams(d=3, b=3, s=1, t=2)
        ap = an_params_for_reliability(base, k_sub=1, p=0.3, q=0.0)
        at = ATorus(ap)
        rec = at.recover(at.sample_faults(0.3, 0.0, seed=0))
        assert rec.stats["nodes"] == ap.n ** 3
        assert rec.stats["edges_checked"] == 3 * ap.n ** 3

    def test_a3_threshold_uses_k_cubed(self):
        base = BnParams(d=3, b=3, s=1, t=2)
        ap = an_params_for_reliability(base, k_sub=2, p=0.2, q=0.0)
        assert ap.good_node_threshold(0.0) == 8
        assert ap.h > 8

    def test_a3_submesh_blocks(self):
        base = BnParams(d=3, b=3, s=1, t=2)
        ap = an_params_for_reliability(base, k_sub=2, p=0.1, q=0.0)
        at = ATorus(ap)
        rec = at.recover(at.sample_faults(0.1, 0.0, seed=1))
        n, k, h = ap.n, ap.k_sub, ap.h
        supers = (rec.phi // h).reshape(n, n, n)
        block = supers[:k, :k, :k]
        assert len(np.unique(block)) == 1
