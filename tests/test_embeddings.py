"""Tests for embedding verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmbeddingError
from repro.topology.embeddings import verify_mesh_embedding, verify_torus_embedding
from repro.topology.graph import CSRGraph
from repro.topology.torus import mesh_graph, torus_graph


def predicates_from(g: CSRGraph, dead=()):
    dead = set(dead)

    def node_ok(ids):
        return np.array([i not in dead for i in np.asarray(ids).ravel()]).reshape(
            np.asarray(ids).shape
        )

    def edge_ok(us, vs):
        return g.has_edges(us, vs)

    return node_ok, edge_ok


class TestTorusEmbedding:
    def test_identity_embedding(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g)
        stats = verify_torus_embedding((4, 5), np.arange(20), node_ok, edge_ok)
        assert stats["nodes"] == 20
        assert stats["edges_checked"] == 40

    def test_rejects_non_injective(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g)
        phi = np.zeros(20, dtype=int)
        with pytest.raises(EmbeddingError, match="injective"):
            verify_torus_embedding((4, 5), phi, node_ok, edge_ok)

    def test_rejects_faulty_image(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g, dead=[7])
        with pytest.raises(EmbeddingError, match="faulty"):
            verify_torus_embedding((4, 5), np.arange(20), node_ok, edge_ok)

    def test_rejects_missing_edge(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g)
        phi = np.arange(20)
        phi[0], phi[7] = phi[7], phi[0]  # scramble adjacency
        with pytest.raises(EmbeddingError, match="missing"):
            verify_torus_embedding((4, 5), phi, node_ok, edge_ok)

    def test_wrong_size(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g)
        with pytest.raises(EmbeddingError, match="entries"):
            verify_torus_embedding((4, 5), np.arange(19), node_ok, edge_ok)

    def test_rotation_is_valid_automorphism(self):
        g = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(g)
        # shifting rows by 1 is an automorphism of the torus
        phi = (np.arange(20).reshape(4, 5)[np.roll(np.arange(4), 1)]).ravel()
        verify_torus_embedding((4, 5), phi, node_ok, edge_ok)


class TestMeshEmbedding:
    def test_mesh_into_torus(self):
        host = torus_graph((4, 5))
        node_ok, edge_ok = predicates_from(host)
        verify_mesh_embedding((4, 5), np.arange(20), node_ok, edge_ok)

    def test_mesh_identity(self):
        host = mesh_graph((3, 3))
        node_ok, edge_ok = predicates_from(host)
        stats = verify_mesh_embedding((3, 3), np.arange(9), node_ok, edge_ok)
        assert stats["edges_checked"] == 12

    def test_mesh_rotation_not_valid(self):
        # rotating rows is NOT an automorphism of the mesh (no wrap edges)
        host = mesh_graph((4, 5))
        node_ok, edge_ok = predicates_from(host)
        phi = (np.arange(20).reshape(4, 5)[np.roll(np.arange(4), 1)]).ravel()
        with pytest.raises(EmbeddingError):
            verify_mesh_embedding((4, 5), phi, node_ok, edge_ok)

    def test_side_length_two_wrap_dedup(self):
        # shape with n=2: torus == mesh in that axis plus one doubled edge
        host = torus_graph((2, 4))
        node_ok, edge_ok = predicates_from(host)
        verify_torus_embedding((2, 4), np.arange(8), node_ok, edge_ok)
