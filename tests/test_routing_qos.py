"""Fault-adaptive routing, QoS classes and credit flow control (ISSUE 7).

Four layers:

* router properties — hypothesis over shapes/workloads asserting the
  fault-free identity (adaptive returns the dimension-ordered route
  byte for byte) and, under random fault masks, the delivery contract:
  the adaptive router returns a healthy minimal path exactly when the
  endpoints are connected on the surviving subgraph (checked against
  :func:`repro.testkit.oracles.adaptive_router_oracle`'s independent
  BFS);
* engine semantics — the headline claim (adaptive reports zero
  ``undeliverable`` wherever dimension-order reports some, on every
  connected fault set), default-knob equivalence with the historical
  engine, priority arbitration and credit admission on hand-built
  deterministic scenarios;
* backend identity — scalar vs vectorized engines field for field under
  router/class/credit knobs (hypothesis), and the pillar-level
  ``trial_backend_oracle`` over QoS-bearing :class:`TrafficSpec` draws;
* spec plumbing — TrafficSpec validation/round-trip, the
  default-omission rule that keeps pre-QoS result JSON byte-stable, and
  per-class stats accounting.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.protocol import TrafficSpec
from repro.api.registry import get
from repro.api.traffic import message_classes, run_traffic_trial
from repro.fastpath.traffic_batch import (
    build_routes_batch,
    routes_health_mask,
    sim_results_identical,
    simulate_batch,
)
from repro.sim.engine import simulate
from repro.sim.metrics import per_class_stats
from repro.sim.routing import (
    ROUTERS,
    adaptive_route,
    dimension_ordered_route,
    fault_predicates,
    route_is_healthy,
)
from repro.sim.traffic import make_traffic
from repro.testkit.oracles import adaptive_router_oracle, compare_sim_results
from repro.testkit.strategies import patterns_for, shapes, traffic_specs
from repro.util.rng import spawn_rng


def _random_faults(shape, seed, density):
    size = int(np.prod(shape))
    return spawn_rng(seed, "routing-qos-faults", str(shape)).random(size) < density


# ---------------------------------------------------------------------------
# Router properties
# ---------------------------------------------------------------------------


class TestAdaptiveRouter:
    @settings(max_examples=60, deadline=None)
    @given(shape=shapes(), seed=st.integers(0, 500), n=st.integers(1, 20))
    def test_fault_free_identity(self, shape, seed, n):
        """With no faults the adaptive router IS the dimension-ordered
        router — same nodes, same order, for every message."""
        traffic = make_traffic(shape, "uniform", n, spawn_rng(seed, "ffi"))
        for src, dst in traffic:
            a = adaptive_route(shape, int(src), int(dst))
            d = dimension_ordered_route(shape, int(src), int(dst))
            assert np.array_equal(a, d)

    @settings(max_examples=40, deadline=None)
    @given(
        shape=shapes(),
        seed=st.integers(0, 200),
        density=st.sampled_from((0.05, 0.15, 0.3)),
    )
    def test_delivery_contract_vs_bfs(self, shape, seed, density):
        """Adaptive routes exist iff endpoints are connected on the healthy
        subgraph, are themselves healthy, and are minimal — per the
        independent-BFS oracle."""
        faults = _random_faults(shape, seed, density)
        traffic = make_traffic(shape, "uniform", 15, spawn_rng(seed, "dc"))
        adaptive_router_oracle(shape, traffic, faults).raise_on_mismatch()

    def test_route_is_healthy_and_detour(self):
        shape = (6, 6)
        faults = np.zeros(36, dtype=bool)
        node_ok, edge_ok = fault_predicates(faults)
        dim = dimension_ordered_route(shape, 0, 3)
        assert route_is_healthy(dim, node_ok, edge_ok)
        faults[dim[1]] = True  # break the e-cube path mid-route
        assert not route_is_healthy(dim, node_ok, edge_ok)
        detour = adaptive_route(shape, 0, 3, node_ok=node_ok, edge_ok=edge_ok)
        assert detour is not None and route_is_healthy(detour, node_ok, edge_ok)

    def test_faulty_endpoints_refused(self):
        shape = (4, 4)
        faults = np.zeros(16, dtype=bool)
        faults[5] = True
        node_ok, edge_ok = fault_predicates(faults)
        assert adaptive_route(shape, 5, 9, node_ok=node_ok, edge_ok=edge_ok) is None
        assert adaptive_route(shape, 9, 5, node_ok=node_ok, edge_ok=edge_ok) is None
        # A faulty node is unreachable even from itself.
        assert adaptive_route(shape, 5, 5, node_ok=node_ok, edge_ok=edge_ok) is None

    def test_unknown_router_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown router"):
            simulate((4, 4), [(0, 3)], router="wormhole")
        with pytest.raises(ValueError, match="unknown router"):
            simulate_batch((4, 4), [(0, 3)], router="wormhole")
        assert set(ROUTERS) == {"dimension", "adaptive"}


# ---------------------------------------------------------------------------
# Engine semantics
# ---------------------------------------------------------------------------


class TestEngineSemantics:
    @settings(max_examples=30, deadline=None)
    @given(
        shape=shapes(),
        seed=st.integers(0, 200),
        density=st.sampled_from((0.05, 0.15)),
    )
    def test_adaptive_delivers_every_connected_message(self, shape, seed, density):
        """The headline claim: wherever dimension-order refuses messages,
        the adaptive router refuses only genuinely disconnected pairs —
        and the rest all arrive (below saturation there is no timeout)."""
        faults = _random_faults(shape, seed, density)
        node_ok, edge_ok = fault_predicates(faults)
        traffic = make_traffic(shape, "uniform", 30, spawn_rng(seed, "conn"))
        dim = simulate(shape, traffic, node_ok=node_ok, edge_ok=edge_ok)
        ada = simulate(
            shape, traffic, router="adaptive", node_ok=node_ok, edge_ok=edge_ok
        )
        # Count the genuinely disconnected pairs with the router itself
        # (its iff-connected contract is proven against BFS above).
        disconnected = sum(
            1
            for src, dst in traffic
            if adaptive_route(shape, int(src), int(dst),
                              node_ok=node_ok, edge_ok=edge_ok) is None
        )
        assert ada.undeliverable == disconnected <= dim.undeliverable
        assert ada.delivered == len(traffic) - disconnected
        assert ada.timed_out == 0
        assert dim.delivered + dim.timed_out + dim.undeliverable == len(traffic)

    def test_default_knobs_reproduce_historical_engine(self):
        shape = (4, 4)
        traffic = make_traffic(shape, "transpose", 24, spawn_rng(3, "hist"))
        old = simulate(shape, traffic)
        new = simulate(
            shape, traffic, router="dimension",
            classes=np.zeros(len(traffic), dtype=np.int64), credits=0,
        )
        assert sim_results_identical(old, new)
        assert old.undeliverable == 0

    def test_priority_class_wins_contended_link(self):
        """Two messages, same first link, one per class: the class-0
        message advances first even though it has the higher id."""
        shape = (6,)
        traffic = np.array([[0, 2], [0, 3]])  # both route forward via 0->1
        classes = np.array([1, 0])  # message 1 is the high-priority one
        r = simulate(shape, traffic, classes=classes)
        # id order would deliver message 0 first (latency 2 vs 3+1); class
        # order must flip the winner: message 1 (3 hops) is never blocked,
        # message 0 (2 hops) loses cycle 0 and finishes one cycle late.
        assert list(r.message_latencies) == [3, 3]
        flipped = simulate(shape, traffic, classes=np.array([0, 1]))
        assert list(flipped.message_latencies) == [2, 4]

    def test_credits_gate_admission(self):
        """credits=1: one message in flight per class; the next enters only
        after a delivery frees its credit."""
        shape = (6,)
        traffic = np.array([[0, 1], [2, 3], [4, 5]])  # disjoint links
        free = simulate(shape, traffic)
        assert list(free.message_latencies) == [1, 1, 1]
        gated = simulate(shape, traffic, credits=1)
        # Admitted in id order, one at a time; latency counts from the
        # scheduled inject cycle, so queueing at the source is visible.
        assert list(gated.message_latencies) == [1, 2, 3]
        assert sim_results_identical(gated, simulate_batch(shape, traffic, credits=1))

    def test_generous_credits_equal_unlimited(self):
        shape = (4, 4)
        traffic = make_traffic(shape, "uniform", 40, spawn_rng(9, "gen"))
        classes = message_classes(len(traffic), 3)
        a = simulate(shape, traffic, classes=classes, credits=0)
        b = simulate(shape, traffic, classes=classes, credits=len(traffic))
        assert sim_results_identical(a, b)

    def test_bad_knobs_rejected(self):
        shape = (4, 4)
        t = [(0, 3)]
        with pytest.raises(ValueError, match="classes"):
            simulate(shape, t, classes=np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="credits"):
            simulate(shape, t, credits=-1)
        with pytest.raises(ValueError, match="classes"):
            simulate_batch(shape, t, classes=np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="credits"):
            simulate_batch(shape, t, credits=-1)


# ---------------------------------------------------------------------------
# Backend identity under the new knobs
# ---------------------------------------------------------------------------


class TestBackendIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=shapes(),
        seed=st.integers(0, 300),
        router=st.sampled_from(ROUTERS),
        density=st.sampled_from((0.0, 0.1, 0.25)),
        qos=st.sampled_from((1, 2, 3)),
        credits=st.sampled_from((0, 1, 5)),
        max_cycles=st.sampled_from((4, 10_000)),
    )
    def test_engines_identical_under_all_knobs(
        self, shape, seed, router, density, qos, credits, max_cycles
    ):
        faults = _random_faults(shape, seed, density)
        node_ok, edge_ok = fault_predicates(faults) if density else (None, None)
        traffic = make_traffic(shape, "uniform", 25, spawn_rng(seed, "ident"))
        classes = message_classes(len(traffic), qos)
        kwargs = dict(
            router=router, node_ok=node_ok, edge_ok=edge_ok,
            classes=classes, credits=credits, max_cycles=max_cycles,
        )
        a = simulate(shape, traffic, **kwargs)
        b = simulate_batch(shape, traffic, **kwargs)
        assert not compare_sim_results(a, b), "\n".join(
            m.describe() for m in compare_sim_results(a, b)
        )
        assert a.undeliverable == b.undeliverable

    @settings(max_examples=15, deadline=None)
    @given(spec=traffic_specs(with_qos=True, patterns=("uniform", "hotspot")))
    def test_trial_backend_oracle_with_qos_specs(self, spec):
        """The pillar-level scalar-vs-batch contract holds for every
        QoS-bearing TrafficSpec the strategy can draw."""
        from repro.testkit.oracles import trial_backend_oracle

        bn = get("bn", d=2, b=3, s=1, t=2)
        trial_backend_oracle(bn, spec, range(2)).raise_on_mismatch()

    def test_batch_route_builder_matches_scalar_routes(self):
        shape = (6, 6)
        faults = _random_faults(shape, 21, 0.15)
        node_ok, edge_ok = fault_predicates(faults)
        traffic = make_traffic(shape, "uniform", 40, spawn_rng(21, "routes"))
        nodes, lengths, routable = build_routes_batch(
            shape, traffic, router="adaptive", node_ok=node_ok, edge_ok=edge_ok
        )
        assert routes_health_mask(nodes, node_ok, edge_ok)[routable].all()
        for i, (src, dst) in enumerate(traffic):
            r = adaptive_route(shape, int(src), int(dst),
                               node_ok=node_ok, edge_ok=edge_ok)
            if r is None:
                assert not routable[i] and lengths[i] == 0
                assert (nodes[i] == -1).all()
            else:
                assert routable[i] and lengths[i] == len(r) - 1
                assert np.array_equal(nodes[i, : len(r)], r)


# ---------------------------------------------------------------------------
# Spec plumbing and per-class stats
# ---------------------------------------------------------------------------


class TestSpecPlumbing:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(router="wormhole")
        with pytest.raises(ValueError):
            TrafficSpec(qos_classes=0)
        with pytest.raises(ValueError):
            TrafficSpec(qos_classes=4)
        with pytest.raises(ValueError):
            TrafficSpec(credits=-1)

    def test_default_specs_serialize_as_before(self):
        """Specs at default knobs must omit the new keys — the rule that
        keeps every pre-QoS golden artifact byte-stable."""
        d = TrafficSpec(pattern="uniform", messages=10).to_dict()
        assert "router" not in d and "qos_classes" not in d and "credits" not in d
        full = TrafficSpec(
            pattern="uniform", messages=10, router="adaptive",
            qos_classes=2, credits=8,
        ).to_dict()
        assert (full["router"], full["qos_classes"], full["credits"]) == (
            "adaptive", 2, 8,
        )
        assert TrafficSpec.from_dict(full) == TrafficSpec.from_dict(dict(full))

    @settings(max_examples=30, deadline=None)
    @given(spec=traffic_specs())
    def test_spec_round_trips(self, spec):
        assert TrafficSpec.from_dict(spec.to_dict()) == spec
        label = spec.label()
        if spec.router != "dimension":
            assert "adaptive" in label
        if spec.qos_classes > 1:
            assert f"qos={spec.qos_classes}" in label

    def test_outcome_carries_per_class_rows(self):
        spec = TrafficSpec(pattern="uniform", messages=30, qos_classes=3)
        out = run_traffic_trial((4, 4), spec, seed=1)
        assert out.per_class is not None
        assert [row["qos_class"] for row in out.per_class] == [0, 1, 2]
        assert sum(row["offered"] for row in out.per_class) == out.offered
        assert sum(row["delivered"] for row in out.per_class) == out.delivered
        d = out.to_dict()
        assert d["per_class"] == out.per_class
        # Single-class outcomes serialize exactly as before.
        plain = run_traffic_trial(
            (4, 4), TrafficSpec(pattern="uniform", messages=30), seed=1
        ).to_dict()
        assert "per_class" not in plain and "undeliverable" not in plain

    def test_same_workload_across_routers(self):
        """The RNG stream keys only on workload-shaping fields, so the
        router/QoS knobs compare service on *identical* message sets."""
        from repro.api.traffic import traffic_rng

        base = dict(pattern="uniform", messages=40)
        r1 = traffic_rng(TrafficSpec(**base), 7)
        r2 = traffic_rng(
            TrafficSpec(**base, router="adaptive", qos_classes=3, credits=4), 7
        )
        assert r1.integers(1 << 30) == r2.integers(1 << 30)

    def test_per_class_stats_shape_guard(self):
        r = simulate((4,), [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="classes shape"):
            per_class_stats(r, np.zeros(5, dtype=np.int64))

    @settings(max_examples=10, deadline=None)
    @given(shape=shapes(), seed=st.integers(0, 50))
    def test_patterns_guarded(self, shape, seed):
        # QoS knobs must not break any valid pattern on any pooled shape.
        for pattern in patterns_for(shape):
            spec = TrafficSpec(pattern=pattern, messages=8, qos_classes=2, credits=3)
            out = run_traffic_trial(shape, spec, seed)
            assert out.offered == 8


# ---------------------------------------------------------------------------
# Per-class conservation under route-breaking fault masks
# ---------------------------------------------------------------------------


class TestPerClassConservation:
    """Every per-class row obeys ``offered == delivered + timed_out +
    undeliverable + dropped`` with each loss bucket attributed by the
    engine's own classification (never inferred from the ``-1`` latency
    sentinel), and the rows are field-identical scalar vs batch."""

    @settings(max_examples=25, deadline=None)
    @given(
        shape=shapes(),
        seed=st.integers(0, 300),
        density=st.sampled_from((0.15, 0.3)),
        qos=st.sampled_from((2, 3)),
        credits=st.sampled_from((0, 3)),
        max_cycles=st.sampled_from((5, 10_000)),
    )
    def test_conservation_and_backend_identity_under_adaptive(
        self, shape, seed, density, qos, credits, max_cycles
    ):
        faults = _random_faults(shape, seed, density)
        node_ok, edge_ok = fault_predicates(faults)
        traffic = make_traffic(shape, "uniform", 30, spawn_rng(seed, "cons"))
        classes = message_classes(len(traffic), qos)
        kwargs = dict(
            router="adaptive", node_ok=node_ok, edge_ok=edge_ok,
            classes=classes, credits=credits, max_cycles=max_cycles,
        )
        a = simulate(shape, traffic, **kwargs)
        b = simulate_batch(shape, traffic, **kwargs)
        rows_a = per_class_stats(a, classes)
        rows_b = per_class_stats(b, classes)
        # Canonical-JSON equality: field-identical rows, NaN-tolerant for
        # classes that delivered nothing (NaN != NaN under dict equality).
        assert json.dumps(rows_a, sort_keys=True) == json.dumps(rows_b, sort_keys=True)
        for row in rows_a:
            assert row["offered"] == (
                row["delivered"] + row["timed_out"]
                + row.get("undeliverable", 0) + row.get("dropped", 0)
            ), row
        # The rows tile the aggregate counters exactly.
        assert sum(r["timed_out"] for r in rows_a) == a.timed_out
        assert sum(r.get("undeliverable", 0) for r in rows_a) == a.undeliverable
        assert sum(r.get("dropped", 0) for r in rows_a) == a.dropped

    def test_undeliverable_never_counted_as_timed_out(self):
        # Isolate node 5 on a (4, 4) torus: messages touching it are
        # undeliverable, and must not leak into the timeout bucket even
        # though both carry the -1 latency sentinel.
        shape = (4, 4)
        faults = np.zeros(16, dtype=bool)
        faults[5] = True
        node_ok, edge_ok = fault_predicates(faults)
        traffic = np.array([[5, 9], [0, 5], [1, 2], [2, 1]])
        classes = np.array([0, 0, 1, 1])
        r = simulate(shape, traffic, router="adaptive",
                     node_ok=node_ok, edge_ok=edge_ok, classes=classes)
        rows = per_class_stats(r, classes)
        assert rows[0]["undeliverable"] == 2 and rows[0]["timed_out"] == 0
        assert rows[0]["delivered"] == 0
        assert rows[1]["delivered"] == 2
        assert "undeliverable" not in rows[1] and "dropped" not in rows[1]
