"""The testkit's own tests: strategies are valid, oracles actually fire.

An oracle that silently passes on corrupted inputs is worse than no
oracle — it certifies broken backends.  The mutation tests here inject
one precise defect per oracle (a corrupted embedding edge, a dropped
delivered message, a perturbed outcome field, a broken router, a lying
health record, a tampered golden artifact) and assert the oracle
reports a *structured* field-level mismatch naming that defect — never
a silent pass, never a bare ``False``.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec, get
from repro.api.protocol import LifetimeSpec, TrafficSpec
from repro.core.healthiness import check_healthiness
from repro.sim.engine import simulate
from repro.sim.routing import dimension_ordered_route
from repro.sim.traffic import make_traffic
from repro.testkit import strategies as tks
from repro.testkit.golden import GoldenCase, check_golden, write_golden
from repro.testkit.oracles import (
    audit_embedding,
    brute_force_healthiness,
    check_routes_bfs,
    compare_sim_results,
    diff_values,
    health_record,
    sim_engines_oracle,
    trial_backend_oracle,
)
from repro.util.rng import spawn_rng

pytestmark = pytest.mark.conformance


# ---------------------------------------------------------------------------
# Strategies: every draw is a valid, well-formed spec
# ---------------------------------------------------------------------------


class TestStrategies:
    @settings(max_examples=40, deadline=None)
    @given(spec=tks.fault_specs())
    def test_fault_specs_valid(self, spec):
        assert isinstance(spec, FaultSpec)
        if spec.adversarial:
            assert spec.pattern in tks.ADVERSARY_PATTERN_NAMES
            assert spec.k is not None and spec.k >= 0
        else:
            assert 0.0 <= spec.p <= 1.0 and 0.0 <= spec.q <= 1.0
        FaultSpec.from_dict(spec.to_dict())  # round-trips

    @settings(max_examples=40, deadline=None)
    @given(spec=tks.lifetime_specs())
    def test_lifetime_specs_valid(self, spec):
        assert isinstance(spec, LifetimeSpec)
        if spec.timeline in ("bernoulli", "burst"):
            assert spec.max_steps is not None
        if spec.timeline == "adversarial":
            assert spec.pattern in tks.ADVERSARY_PATTERN_NAMES
        LifetimeSpec.from_dict(spec.to_dict())

    @settings(max_examples=40, deadline=None)
    @given(spec=tks.traffic_specs())
    def test_traffic_specs_valid(self, spec):
        assert isinstance(spec, TrafficSpec)
        if spec.open_loop:
            assert 0 <= spec.warmup < spec.cycles
        else:
            assert spec.messages >= 1
        TrafficSpec.from_dict(spec.to_dict())

    def test_timeline_cases_cover_every_kind(self):
        cases = tks.timeline_cases()
        assert len(cases) >= 200
        kinds = {spec.timeline for _, spec in cases}
        assert kinds == {"uniform", "bernoulli", "burst", "adversarial"}
        assert any(spec.repair_rate > 0 for _, spec in cases)

    def test_small_constructions_instantiate(self):
        for name, params in tks.SMALL_CONSTRUCTIONS:
            c = get(name, **params)
            assert c.name == name and c.num_nodes > 0

    def test_name_pools_are_registry_derived(self):
        """The pools are *derived* from the registries (no hand-kept
        mirrors left): each assertion is the one-line proof that the
        production table and the testkit pool share a source."""
        from repro.api.registry import available
        from repro.faults import registry as fault_registry
        from repro.faults.adversary import ADVERSARY_PATTERNS
        from repro.sim.routing import ROUTERS
        from repro.sim.traffic import TRAFFIC_PATTERNS

        assert tks.ADVERSARY_PATTERN_NAMES is fault_registry.ADVERSARY_PATTERN_NAMES
        assert set(ADVERSARY_PATTERNS) == set(fault_registry.ADVERSARY_PATTERN_NAMES)
        assert set(tks.TRAFFIC_PATTERN_NAMES) == set(TRAFFIC_PATTERNS)
        assert set(tks.ROUTER_NAMES) == set(ROUTERS)
        assert {name for name, _ in tks.SMALL_CONSTRUCTIONS} == set(available())

    def test_fault_model_cases_cover_the_registry(self):
        from repro.faults.registry import fault_model_names, make_fault_model

        names = {m["name"] for m in tks.FAULT_MODEL_CASES}
        assert names == set(fault_model_names())
        for m in tks.FAULT_MODEL_CASES:
            make_fault_model(m)  # every case resolves and validates

    @settings(max_examples=30, deadline=None)
    @given(spec=tks.fault_specs(with_model=True))
    def test_model_bearing_fault_specs_valid(self, spec):
        assert spec.fault_model is not None and not spec.adversarial
        assert spec.label().startswith("model/")
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=tks.lifetime_specs(with_model=True))
    def test_model_bearing_lifetime_specs_valid(self, spec):
        from repro.faults.registry import get_model_class

        assert spec.fault_model is not None
        assert get_model_class(spec.fault_model["name"]).behavior == "crash"
        assert LifetimeSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=tks.traffic_specs(with_model=True))
    def test_model_bearing_traffic_specs_valid(self, spec):
        assert spec.fault_model is not None
        assert f"model={spec.fault_model['name']}" in spec.label()
        assert TrafficSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# The structural diff underneath every oracle
# ---------------------------------------------------------------------------


class TestDiffValues:
    def kw(self):
        return dict(oracle="t", left="a", right="b")

    def test_equal_payloads_no_mismatch(self):
        payload = {"x": [1, 2.5, {"y": "z", "nan": float("nan")}]}
        other = json.loads(json.dumps(payload))
        assert diff_values(payload, other, **self.kw()) == []

    def test_nan_equals_nan_but_not_numbers(self):
        assert diff_values(float("nan"), float("nan"), **self.kw()) == []
        ms = diff_values({"lat": float("nan")}, {"lat": 3.0}, **self.kw())
        assert [m.path for m in ms] == ["lat"] and math.isnan(ms[0].expected)

    def test_nested_path_reported(self):
        a = {"points": [{"result": {"successes": 5}}]}
        b = {"points": [{"result": {"successes": 6}}]}
        (m,) = diff_values(a, b, **self.kw())
        assert m.path == "points[0].result.successes"
        assert (m.expected, m.actual) == (5, 6)
        assert "points[0].result.successes" in m.describe()

    def test_missing_key_and_length(self):
        ms = diff_values({"a": 1}, {"b": 1}, **self.kw())
        assert {m.path for m in ms} == {"a", "b"}
        (m,) = diff_values([1, 2], [1, 2, 3], **self.kw())
        assert m.path == "length" and (m.expected, m.actual) == (2, 3)

    def test_int_float_type_drift_is_a_mismatch(self):
        # 5 and 5.0 serialise differently; byte identity demands the diff
        # refuses to conflate them.
        assert diff_values({"v": 5}, {"v": 5.0}, **self.kw()) != []


# ---------------------------------------------------------------------------
# Mutation: perturb one outcome field in a runner payload
# ---------------------------------------------------------------------------


class TestRunnerPayloadMutation:
    def test_perturbed_outcome_field_is_reported_at_its_path(self):
        spec = ExperimentSpec(
            construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(FaultSpec(p=1e-3),), trials=3, name="mut",
        )
        ref = ExperimentRunner().run(spec).to_dict()
        tampered = json.loads(json.dumps(ref))
        tampered["points"][0]["result"]["successes"] += 1
        ms = diff_values(ref, tampered, oracle="runner-backends",
                         left="serial/scalar", right="tampered")
        assert [m.path for m in ms] == ["points[0].result.successes"]
        assert ms[0].actual == ms[0].expected + 1


# ---------------------------------------------------------------------------
# Mutation: drop a delivered message from a SimResult
# ---------------------------------------------------------------------------


class TestSimResultMutation:
    def test_dropped_delivery_is_reported_field_by_field(self):
        shape = (6, 6)
        t = make_traffic(shape, "uniform", 20, spawn_rng(3))
        honest = simulate(shape, t)
        assert honest.delivered == 20
        lying_msg = honest.message_latencies.copy()
        dropped = int(np.flatnonzero(lying_msg >= 0)[-1])
        lying_msg[dropped] = -1
        lying = dataclasses.replace(
            honest,
            delivered=honest.delivered - 1,
            timed_out=honest.timed_out + 1,
            latencies=lying_msg[lying_msg >= 0],
            message_latencies=lying_msg,
        )
        ms = compare_sim_results(honest, lying)
        paths = {m.path for m in ms}
        assert "delivered" in paths and "timed_out" in paths
        assert any(p.startswith("message_latencies") for p in paths)
        assert all(m.oracle == "sim-engines" for m in ms)

    def test_engines_agree_when_nothing_is_dropped(self):
        shape = (6, 6)
        t = make_traffic(shape, "transpose", 30, spawn_rng(4))
        report = sim_engines_oracle(shape, t)
        assert report.ok and report.cases == 1


# ---------------------------------------------------------------------------
# Mutation: corrupt an embedding edge
# ---------------------------------------------------------------------------


class TestEmbeddingAuditMutation:
    @pytest.fixture(scope="class")
    def recovered(self, bn2_small):
        from repro.core.bn import BTorus

        bt = BTorus(bn2_small)
        rng = spawn_rng(5, "audit")
        faults = bt.sample_faults(bn2_small.paper_fault_probability, rng)
        return bt, bt.recover(faults), faults

    def test_honest_recovery_passes(self, recovered):
        bt, rec, faults = recovered
        report = audit_embedding(bt, rec, faults)
        assert report.ok and report.cases > 1

    def test_swapped_phi_entries_fire_edge_mismatches(self, recovered):
        bt, rec, faults = recovered
        phi = rec.phi.copy()
        phi[[0, 1]] = phi[[1, 0]]  # still injective; adjacency now broken
        report = audit_embedding(bt, dataclasses.replace(rec, phi=phi), faults)
        assert not report.ok
        assert any("guest-edge" in m.path for m in report.mismatches)
        assert all(m.oracle == "embedding-audit" for m in report.mismatches)

    def test_faulty_host_node_fires(self, recovered):
        bt, rec, faults = recovered
        worse = faults.copy()
        worse.ravel()[int(rec.phi[0])] = True  # break the mapped host node
        report = audit_embedding(bt, rec, worse)
        assert any(m.path == "phi[0]" for m in report.mismatches)

    def test_non_injective_phi_fires(self, recovered):
        bt, rec, faults = recovered
        phi = rec.phi.copy()
        phi[1] = phi[0]
        report = audit_embedding(bt, dataclasses.replace(rec, phi=phi), faults)
        assert any(m.path == "phi.injective" for m in report.mismatches)


# ---------------------------------------------------------------------------
# Mutation: break the router under the BFS validity oracle
# ---------------------------------------------------------------------------


class TestRouteBfsMutation:
    def test_production_router_is_minimal_and_adjacent(self):
        shape = (5, 7)
        t = make_traffic(shape, "uniform", 25, spawn_rng(6))
        report = check_routes_bfs(shape, t)
        assert report.ok and report.cases == 25

    def test_teleporting_router_fires_adjacency(self):
        def teleport(shape, src, dst):
            return np.array([src, dst], dtype=np.int64)

        t = np.array([[0, 12]])  # distant pair on (5, 7)
        report = check_routes_bfs((5, 7), t, router=teleport)
        assert not report.ok
        assert any(".hop[" in m.path for m in report.mismatches)

    def test_detouring_router_fires_minimality(self):
        def detour(shape, src, dst):
            r = dimension_ordered_route(shape, src, dst)
            if len(r) >= 2:  # step out and back once: valid hops, +2 length
                r = np.concatenate([r[:2], r])
            return r

        t = np.array([[0, 12]])
        report = check_routes_bfs((5, 7), t, router=detour)
        assert any(m.path.endswith(".hops") for m in report.mismatches)
        m = next(m for m in report.mismatches if m.path.endswith(".hops"))
        assert m.expected == m.actual + 2  # router hops vs BFS distance

    def test_wrong_endpoint_fires(self):
        def wrong_end(shape, src, dst):
            r = dimension_ordered_route(shape, src, dst)
            return r[:-1] if len(r) > 1 else r

        t = np.array([[0, 12]])
        report = check_routes_bfs((5, 7), t, router=wrong_end)
        assert any(m.path.endswith(".end") for m in report.mismatches)


# ---------------------------------------------------------------------------
# Brute-force healthiness: agrees with production, flags each condition
# ---------------------------------------------------------------------------


class TestBruteForceHealthiness:
    def test_clean_instance_all_ok(self, bn2_small):
        faults = np.zeros(bn2_small.shape, dtype=bool)
        rec = brute_force_healthiness(bn2_small, faults)
        assert rec["cond1_ok"] and rec["cond2_ok"] and rec["cond3_ok"]
        assert rec == health_record(check_healthiness(bn2_small, faults))

    def test_condition1_row_starvation_flagged(self, bn2_small):
        faults = np.zeros(bn2_small.shape, dtype=bool)
        faults[:: bn2_small.b, 0] = True  # a fault every b rows: no 2b-run
        rec = brute_force_healthiness(bn2_small, faults)
        assert not rec["cond1_ok"]
        assert rec == health_record(check_healthiness(bn2_small, faults))

    def test_condition2_brick_overload_flagged(self, bn2_small):
        faults = np.zeros(bn2_small.shape, dtype=bool)
        faults[0, 0] = faults[1, 1] = True  # two faults in one brick, s=1
        rec = brute_force_healthiness(bn2_small, faults)
        assert not rec["cond2_ok"]
        assert rec["max_brick_faults"] >= 2
        assert rec == health_record(check_healthiness(bn2_small, faults))

    def test_lying_health_record_is_caught_by_the_diff(self, bn2_small):
        rng = spawn_rng(9, "lying-health")
        faults = rng.random(bn2_small.shape) < 0.01
        honest = health_record(check_healthiness(bn2_small, faults))
        lying = json.loads(json.dumps(honest))
        lying["cond2_ok"] = not lying["cond2_ok"]
        ms = diff_values(brute_force_healthiness(bn2_small, faults), lying,
                         oracle="healthiness", left="brute-force", right="claimed")
        assert [m.path for m in ms] == ["cond2_ok"]


# ---------------------------------------------------------------------------
# Backend-capability probing mirrors the runner's
# ---------------------------------------------------------------------------


class TestTrialBackendOracle:
    def test_skips_incapable_backends_with_a_reason(self):
        dn = get("dn", d=2, n=70, b=2)
        report = trial_backend_oracle(dn, FaultSpec(pattern="random", k=8), range(2))
        assert report.ok and report.cases == 0
        assert "batch kernel" in report.skipped

    def test_diffs_capable_backends(self):
        bn = get("bn", d=2, b=3, s=1, t=2)
        report = trial_backend_oracle(bn, FaultSpec(p=1e-3), range(3))
        assert report.ok and report.cases == 3 and not report.skipped


# ---------------------------------------------------------------------------
# Mutation: break a fault-model sampler under the model oracle
# ---------------------------------------------------------------------------


class TestFaultModelOracleMutation:
    def test_every_registered_model_passes_honestly(self):
        from repro.testkit.oracles import fault_model_oracle

        for model_dict in tks.FAULT_MODEL_CASES:
            report = fault_model_oracle(
                model_dict, shapes=((6, 6),), seeds=range(2), empirical_draws=40
            )
            assert report.ok, report.describe()
            assert report.cases > 0

    def test_wrong_probability_sampler_fires(self):
        from repro.testkit.oracles import fault_model_oracle

        def wrong_p(shape, rng):
            return rng.random(tuple(shape)) < 0.5  # model says p=0.01

        report = fault_model_oracle(
            {"name": "bernoulli", "p": 0.01}, sample_fn=wrong_p,
            shapes=((6, 6),), seeds=range(2),
        )
        assert not report.ok
        assert any(m.path.startswith("sample[") for m in report.mismatches)
        assert all(m.oracle == "fault-model" for m in report.mismatches)

    def test_fault_dropping_sampler_fires(self):
        from repro.faults.registry import make_fault_model
        from repro.testkit.oracles import fault_model_oracle

        model = make_fault_model({"name": "neighbor", "p": 0.005})

        def drops_one(shape, rng):
            out = model.sample(shape, rng)
            hit = np.flatnonzero(out.ravel())
            if len(hit):
                out.ravel()[hit[0]] = False
            return out

        report = fault_model_oracle(
            {"name": "neighbor", "p": 0.005}, sample_fn=drops_one,
            shapes=((6, 6),), seeds=range(4),
        )
        assert not report.ok
        assert any(m.path.startswith("sample[") for m in report.mismatches)

    def test_byzantine_engine_divergence_fires(self):
        """A SimResult whose integrity fields are tampered must be caught
        by the same record diff the Byzantine cross-check runs on."""
        import dataclasses

        from repro.sim.routing import ByzantinePlan
        from repro.testkit.oracles import compare_sim_results

        shape = (6, 6)
        t = make_traffic(shape, "uniform", 48, spawn_rng(3, "byz-mut"))
        mask = spawn_rng(5, "byz-mut-mask").random(shape) < 0.15
        plan = ByzantinePlan(mask, (1 / 3, 1 / 3, 1 / 3), spawn_rng(7, "byz-mut-p"))
        honest = simulate(shape, t, byzantine=plan)
        assert honest.dropped + honest.corrupted + honest.misrouted > 0
        lying = dataclasses.replace(
            honest, dropped=honest.dropped + 1, delivered=honest.delivered - 1
        )
        ms = compare_sim_results(honest, lying)
        assert {m.path for m in ms} >= {"dropped", "delivered"}


# ---------------------------------------------------------------------------
# Mutation: tamper a golden artifact
# ---------------------------------------------------------------------------


class TestGoldenGateMutation:
    @pytest.fixture(scope="class")
    def small_case(self):
        return GoldenCase(
            "mut-bn",
            ExperimentSpec(
                construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
                grid=(FaultSpec(p=1e-3),), trials=2, name="mut-bn",
            ),
        )

    def test_fresh_snapshot_passes(self, small_case, tmp_path):
        write_golden(small_case, tmp_path)
        report = check_golden(small_case, tmp_path)
        assert report.ok

    def test_tampered_field_reported_with_path(self, small_case, tmp_path):
        path = write_golden(small_case, tmp_path)
        payload = json.loads(path.read_text())
        payload["points"][0]["result"]["mean_faults"] += 1.0
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        report = check_golden(small_case, tmp_path)
        assert not report.ok
        assert any(m.path == "points[0].result.mean_faults" for m in report.mismatches)

    def test_non_canonical_bytes_reported(self, small_case, tmp_path):
        path = write_golden(small_case, tmp_path)
        # Same fields, different serialisation: still a gate failure.
        path.write_text(json.dumps(json.loads(path.read_text())) + "\n")
        report = check_golden(small_case, tmp_path)
        assert any(m.path == "<canonical-json>" for m in report.mismatches)

    def test_missing_snapshot_is_an_explicit_failure(self, small_case, tmp_path):
        report = check_golden(small_case, tmp_path / "empty")
        assert not report.ok
        assert "missing" in str(report.mismatches[0].actual)
        assert "update-golden" in str(report.mismatches[0].actual)
