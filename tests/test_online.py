"""Tests for online fault arrival and lifetime measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn import BTorus
from repro.core.online import OnlineRecovery, fault_lifetime
from repro.errors import ReconstructionError


@pytest.fixture()
def online(bn2_small):
    return OnlineRecovery(BTorus(bn2_small))


class TestOnlineRecovery:
    def test_starts_clean(self, online):
        assert online.num_faults == 0
        assert online.recovery is not None

    def test_masked_fault_is_noop(self, online):
        # a node under band 0 of column 0 is already masked
        bottom = int(online.recovery.bands.bottoms[0, 0])
        ev = online.add_fault((bottom, 0))
        assert ev.action == "masked"

    def test_unmasked_fault_triggers_replacement(self, online):
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        ev = online.add_fault((row, 0))
        assert ev.action == "replaced"
        # new placement must mask it
        assert online._already_masked((row, 0))

    def test_embedding_avoids_all_registered_faults(self, online):
        rows = online.recovery.bands.unmasked_rows(5)
        for r in rows[:2]:
            online.add_fault((int(r), 5))
        assert not online.faults.ravel()[online.recovery.phi].any()

    def test_failure_keeps_previous_state(self, online, bn2_small):
        # saturate: add faults until failure, previous recovery stays valid
        rng = np.random.default_rng(0)
        failed = False
        for flat in rng.permutation(bn2_small.num_nodes)[:60]:
            coord = np.unravel_index(int(flat), bn2_small.shape)
            try:
                online.add_fault(coord)
            except ReconstructionError:
                failed = True
                break
        assert failed
        online.recovery.bands.validate()  # previous placement still valid

    def test_repair_fraction(self, online):
        bottom = int(online.recovery.bands.bottoms[0, 0])
        online.add_fault((bottom, 0))
        assert online.repair_fraction() == 0.0


class TestLifetime:
    def test_lifetime_positive_and_reproducible(self, bn2_small):
        bt = BTorus(bn2_small)
        a = fault_lifetime(bt, seed=1, max_faults=40)
        b = fault_lifetime(bt, seed=1, max_faults=40)
        assert a == b
        assert a >= 3  # survives at least a few random faults

    def test_lifetime_cap(self, bn2_small):
        bt = BTorus(bn2_small)
        assert fault_lifetime(bt, seed=2, max_faults=2) <= 2
