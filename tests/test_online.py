"""Tests for online fault arrival, incremental repair and lifetime measurement.

The load-bearing assertion is the incremental-repair contract: the
incremental pipeline (placement recomputed from the maintained row
profile, embedding rebuilt by the straight fast extraction) must produce
the *same* placements, event sequences and lifetimes as the
full-recompute reference mode — asserted here over 200 random timelines
spanning every timeline kind (the ISSUE 3 acceptance bar).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.protocol import LifetimeSpec
from repro.core.bn import BTorus
from repro.core.online import OnlineRecovery, fault_lifetime, run_online_timeline
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng


@pytest.fixture()
def online(bn2_small):
    return OnlineRecovery(BTorus(bn2_small))


class TestOnlineRecovery:
    def test_starts_clean(self, online):
        assert online.num_faults == 0
        assert online.recovery is not None

    def test_masked_fault_is_noop(self, online):
        # a node under band 0 of column 0 is already masked
        bottom = int(online.recovery.bands.bottoms[0, 0])
        ev = online.add_fault((bottom, 0))
        assert ev.action == "masked"

    def test_masked_fault_keeps_placement_object_identity(self, online):
        """The incremental-repair contract: masked events may not touch the
        placement — not even rebuild an equal one."""
        rec_before = online.recovery
        bands_before = online.recovery.bands
        bottom = int(online.recovery.bands.bottoms[0, 0])
        online.add_fault((bottom, 0))
        assert online.recovery is rec_before
        assert online.recovery.bands is bands_before

    def test_unmasked_fault_triggers_replacement(self, online):
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        ev = online.add_fault((row, 0))
        assert ev.action == "replaced"
        assert ev.mode == "incremental"
        # new placement must mask it
        assert online._already_masked((row, 0))

    def test_fault_on_already_faulty_coordinate(self, online):
        """A repeat arrival on a faulty node is absorbed as masked: the
        fault count, row profile and placement all stay put."""
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        online.add_fault((row, 0))
        n_before = online.num_faults
        rec_before = online.recovery
        profile_before = online._row_faults.copy()
        ev = online.add_fault((row, 0))
        assert ev.action == "masked"
        assert online.num_faults == n_before
        assert online.recovery is rec_before
        assert (online._row_faults == profile_before).all()

    def test_embedding_avoids_all_registered_faults(self, online):
        rows = online.recovery.bands.unmasked_rows(5)
        for r in rows[:2]:
            online.add_fault((int(r), 5))
        assert not online.faults.ravel()[online.recovery.phi].any()

    def test_failure_keeps_previous_state(self, online, bn2_small):
        # saturate: add faults until failure, previous recovery stays valid
        rng = np.random.default_rng(0)
        failed = False
        for flat in rng.permutation(bn2_small.num_nodes)[:60]:
            coord = np.unravel_index(int(flat), bn2_small.shape)
            try:
                online.add_fault(coord)
            except ReconstructionError:
                failed = True
                break
        assert failed
        online.recovery.bands.validate()  # previous placement still valid

    def test_remove_fault_never_recomputes(self, online):
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        online.add_fault((row, 0))
        rec = online.recovery
        ev = online.remove_fault((row, 0))
        assert ev.action == "repaired"
        assert online.recovery is rec
        assert online.num_faults == 0
        assert online._row_faults.sum() == 0

    def test_repair_fraction_ignores_repair_events(self, online):
        bottom = int(online.recovery.bands.bottoms[0, 0])
        online.add_fault((bottom, 0))
        online.remove_fault((bottom, 0))
        assert online.repair_fraction() == 0.0

    def test_masked_check_uses_shared_band_predicate(self, online):
        """_already_masked delegates to BandSet.covers — the same predicate
        coverage validation uses — for every node of a column."""
        bands = online.recovery.bands
        for row in range(online.bt.params.m):
            assert online._already_masked((row, 3)) == bool(
                bands.covers(np.array([row]), np.array([3]))[0]
            )


# ---------------------------------------------------------------------------
# Incremental == full recompute (ISSUE 3 acceptance: >= 200 random timelines)
# ---------------------------------------------------------------------------


def _timeline_specs():
    """200 seeded timeline points across every kind."""
    cases = []
    for seed in range(80):
        cases.append((seed, LifetimeSpec()))
    for seed in range(40):
        cases.append(
            (1000 + seed, LifetimeSpec(timeline="uniform", repair_rate=0.2, max_steps=80))
        )
    for seed in range(30):
        cases.append(
            (2000 + seed, LifetimeSpec(timeline="bernoulli", rate=0.002, max_steps=60))
        )
    for seed in range(25):
        cases.append((3000 + seed, LifetimeSpec(timeline="burst", burst=3, max_steps=40)))
    for pattern in ("random", "cluster", "rows", "diagonal", "residue"):
        for seed in range(5):
            cases.append(
                (4000 + seed, LifetimeSpec(timeline="adversarial", pattern=pattern))
            )
    assert len(cases) >= 200
    return cases


class TestIncrementalEqualsFull:
    def test_200_random_timelines(self, bn2_small):
        bt = BTorus(bn2_small)
        for seed, spec in _timeline_specs():
            inc = OnlineRecovery(bt, incremental=True)
            full = OnlineRecovery(bt, incremental=False)
            out_inc = run_online_timeline(inc, spec, spawn_rng(seed, "eq", spec.label()))
            out_full = run_online_timeline(full, spec, spawn_rng(seed, "eq", spec.label()))
            key = (seed, spec.label())
            assert (
                out_inc.lifetime,
                out_inc.steps,
                out_inc.category,
                out_inc.failed,
                out_inc.masked,
                out_inc.replaced,
                out_inc.repaired,
            ) == (
                out_full.lifetime,
                out_full.steps,
                out_full.category,
                out_full.failed,
                out_full.masked,
                out_full.replaced,
                out_full.repaired,
            ), key
            # Same surviving placement, and both valid for the fault set.
            assert (inc.faults == full.faults).all(), key
            assert (
                inc.recovery.bands.bottoms == full.recovery.bands.bottoms
            ).all(), key
            assert (inc.recovery.phi == full.recovery.phi).all(), key
            # The surviving placement is structurally valid; it also covers
            # every fault except (when the trial died) the killing arrival.
            inc.recovery.bands.validate(None if out_inc.failed else inc.faults)

    def test_fault_lifetime_modes_agree(self, bn2_small):
        bt = BTorus(bn2_small)
        for seed in range(20):
            assert fault_lifetime(bt, seed, incremental=True) == fault_lifetime(
                bt, seed, incremental=False
            )

    def test_full_recompute_oracle_matches_current_state(self, online):
        rows = online.recovery.bands.unmasked_rows(0)
        for r in rows[:3]:
            online.add_fault((int(r), 0))
        oracle = online.full_recompute()
        assert (oracle.bands.bottoms == online.recovery.bands.bottoms).all()
        assert (oracle.phi == online.recovery.phi).all()


class TestLifetime:
    def test_lifetime_positive_and_reproducible(self, bn2_small):
        bt = BTorus(bn2_small)
        a = fault_lifetime(bt, seed=1, max_faults=40)
        b = fault_lifetime(bt, seed=1, max_faults=40)
        assert a == b
        assert a >= 3  # survives at least a few random faults

    def test_lifetime_cap(self, bn2_small):
        bt = BTorus(bn2_small)
        assert fault_lifetime(bt, seed=2, max_faults=2) <= 2
        assert fault_lifetime(bt, seed=2, max_faults=0) == 0

    def test_lifetime_seed_determinism_across_instances(self, bn2_small):
        """Same seed, fresh BTorus objects: identical lifetime (the stream
        is keyed by (seed, 'lifetime', n, d), not object state)."""
        a = fault_lifetime(BTorus(bn2_small), seed=11)
        b = fault_lifetime(BTorus(bn2_small), seed=11)
        assert a == b
        assert fault_lifetime(BTorus(bn2_small), seed=12) >= 0  # different stream runs

    def test_run_online_timeline_outcome_fields(self, bn2_small):
        bt = BTorus(bn2_small)
        online = OnlineRecovery(bt)
        out = run_online_timeline(online, LifetimeSpec(), spawn_rng(0, "fields"))
        assert out.failed and out.category != "ok"
        assert out.lifetime == out.masked + out.replaced
        assert out.steps == out.lifetime + 1  # the killing arrival consumed a step

    def test_log_consistency(self, bn2_small):
        """Event log mirrors the outcome tallies and masked events carry no
        mode tag."""
        bt = BTorus(bn2_small)
        online = OnlineRecovery(bt)
        out = run_online_timeline(
            online, LifetimeSpec(timeline="uniform", repair_rate=0.3, max_steps=60),
            spawn_rng(4, "log"),
        )
        log = online.log
        assert sum(e.action == "masked" for e in log) == out.masked
        assert sum(e.action == "replaced" for e in log) == out.replaced
        assert sum(e.action == "repaired" for e in log) == out.repaired
        assert all(e.mode == "" for e in log if e.action != "replaced")
