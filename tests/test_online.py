"""Tests for online fault arrival, incremental repair and lifetime measurement.

The load-bearing assertion is the incremental-repair contract: the
incremental pipeline (placement recomputed from the maintained row
profile, embedding rebuilt by the straight fast extraction) must produce
the *same* placements, event sequences and lifetimes as the
full-recompute reference mode — asserted over 200 random timelines
spanning every timeline kind (the ISSUE 3 acceptance bar).  The case
list and the field-for-field comparison now live in ``repro.testkit``
(``strategies.timeline_cases``, ``oracles.repair_mode_oracle``); this
file invokes them and keeps the targeted event-level unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.protocol import LifetimeSpec
from repro.core.bn import BTorus
from repro.core.online import OnlineRecovery, fault_lifetime, run_online_timeline
from repro.errors import ReconstructionError
from repro.testkit.oracles import repair_mode_oracle
from repro.testkit.strategies import timeline_cases
from repro.util.rng import spawn_rng


@pytest.fixture()
def online(bn2_small):
    return OnlineRecovery(BTorus(bn2_small))


class TestOnlineRecovery:
    def test_starts_clean(self, online):
        assert online.num_faults == 0
        assert online.recovery is not None

    def test_masked_fault_is_noop(self, online):
        # a node under band 0 of column 0 is already masked
        bottom = int(online.recovery.bands.bottoms[0, 0])
        ev = online.add_fault((bottom, 0))
        assert ev.action == "masked"

    def test_masked_fault_keeps_placement_object_identity(self, online):
        """The incremental-repair contract: masked events may not touch the
        placement — not even rebuild an equal one."""
        rec_before = online.recovery
        bands_before = online.recovery.bands
        bottom = int(online.recovery.bands.bottoms[0, 0])
        online.add_fault((bottom, 0))
        assert online.recovery is rec_before
        assert online.recovery.bands is bands_before

    def test_unmasked_fault_triggers_replacement(self, online):
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        ev = online.add_fault((row, 0))
        assert ev.action == "replaced"
        assert ev.mode == "incremental"
        # new placement must mask it
        assert online._already_masked((row, 0))

    def test_fault_on_already_faulty_coordinate(self, online):
        """A repeat arrival on a faulty node is absorbed as masked: the
        fault count, row profile and placement all stay put."""
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        online.add_fault((row, 0))
        n_before = online.num_faults
        rec_before = online.recovery
        profile_before = online._row_faults.copy()
        ev = online.add_fault((row, 0))
        assert ev.action == "masked"
        assert online.num_faults == n_before
        assert online.recovery is rec_before
        assert (online._row_faults == profile_before).all()

    def test_embedding_avoids_all_registered_faults(self, online):
        rows = online.recovery.bands.unmasked_rows(5)
        for r in rows[:2]:
            online.add_fault((int(r), 5))
        assert not online.faults.ravel()[online.recovery.phi].any()

    def test_failure_keeps_previous_state(self, online, bn2_small):
        # saturate: add faults until failure, previous recovery stays valid
        rng = np.random.default_rng(0)
        failed = False
        for flat in rng.permutation(bn2_small.num_nodes)[:60]:
            coord = np.unravel_index(int(flat), bn2_small.shape)
            try:
                online.add_fault(coord)
            except ReconstructionError:
                failed = True
                break
        assert failed
        online.recovery.bands.validate()  # previous placement still valid

    def test_remove_fault_never_recomputes(self, online):
        row = int(online.recovery.bands.unmasked_rows(0)[0])
        online.add_fault((row, 0))
        rec = online.recovery
        ev = online.remove_fault((row, 0))
        assert ev.action == "repaired"
        assert online.recovery is rec
        assert online.num_faults == 0
        assert online._row_faults.sum() == 0

    def test_repair_fraction_ignores_repair_events(self, online):
        bottom = int(online.recovery.bands.bottoms[0, 0])
        online.add_fault((bottom, 0))
        online.remove_fault((bottom, 0))
        assert online.repair_fraction() == 0.0

    def test_masked_check_uses_shared_band_predicate(self, online):
        """_already_masked delegates to BandSet.covers — the same predicate
        coverage validation uses — for every node of a column."""
        bands = online.recovery.bands
        for row in range(online.bt.params.m):
            assert online._already_masked((row, 3)) == bool(
                bands.covers(np.array([row]), np.array([3]))[0]
            )


# ---------------------------------------------------------------------------
# Incremental == full recompute (ISSUE 3 acceptance: >= 200 random timelines)
# ---------------------------------------------------------------------------


class TestIncrementalEqualsFull:
    def test_200_random_timelines(self, bn2_small):
        """The full contract — identical outcomes, fault sets, placements
        and embeddings, plus structural validity of the survivor — over
        the canonical >= 200 timeline cases, via the testkit oracle."""
        cases = timeline_cases()
        assert len(cases) >= 200
        report = repair_mode_oracle(bn2_small, cases)
        assert report.cases == len(cases)
        report.raise_on_mismatch()

    def test_fault_lifetime_modes_agree(self, bn2_small):
        bt = BTorus(bn2_small)
        for seed in range(20):
            assert fault_lifetime(bt, seed, incremental=True) == fault_lifetime(
                bt, seed, incremental=False
            )

    def test_full_recompute_oracle_matches_current_state(self, online):
        rows = online.recovery.bands.unmasked_rows(0)
        for r in rows[:3]:
            online.add_fault((int(r), 0))
        oracle = online.full_recompute()
        assert (oracle.bands.bottoms == online.recovery.bands.bottoms).all()
        assert (oracle.phi == online.recovery.phi).all()


class TestLifetime:
    def test_lifetime_positive_and_reproducible(self, bn2_small):
        bt = BTorus(bn2_small)
        a = fault_lifetime(bt, seed=1, max_faults=40)
        b = fault_lifetime(bt, seed=1, max_faults=40)
        assert a == b
        assert a >= 3  # survives at least a few random faults

    def test_lifetime_cap(self, bn2_small):
        bt = BTorus(bn2_small)
        assert fault_lifetime(bt, seed=2, max_faults=2) <= 2
        assert fault_lifetime(bt, seed=2, max_faults=0) == 0

    def test_lifetime_seed_determinism_across_instances(self, bn2_small):
        """Same seed, fresh BTorus objects: identical lifetime (the stream
        is keyed by (seed, 'lifetime', n, d), not object state)."""
        a = fault_lifetime(BTorus(bn2_small), seed=11)
        b = fault_lifetime(BTorus(bn2_small), seed=11)
        assert a == b
        assert fault_lifetime(BTorus(bn2_small), seed=12) >= 0  # different stream runs

    def test_run_online_timeline_outcome_fields(self, bn2_small):
        bt = BTorus(bn2_small)
        online = OnlineRecovery(bt)
        out = run_online_timeline(online, LifetimeSpec(), spawn_rng(0, "fields"))
        assert out.failed and out.category != "ok"
        assert out.lifetime == out.masked + out.replaced
        assert out.steps == out.lifetime + 1  # the killing arrival consumed a step

    def test_log_consistency(self, bn2_small):
        """Event log mirrors the outcome tallies and masked events carry no
        mode tag."""
        bt = BTorus(bn2_small)
        online = OnlineRecovery(bt)
        out = run_online_timeline(
            online, LifetimeSpec(timeline="uniform", repair_rate=0.3, max_steps=60),
            spawn_rng(4, "log"),
        )
        log = online.log
        assert sum(e.action == "masked" for e in log) == out.masked
        assert sum(e.action == "replaced" for e in log) == out.replaced
        assert sum(e.action == "repaired" for e in log) == out.repaired
        assert all(e.mode == "" for e in log if e.action != "replaced")
