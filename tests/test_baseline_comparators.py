"""Tests for replication, spare-rows and BCH comparators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bch import (
    bch_mesh_degree,
    bch_mesh_nodes,
    bch_tolerated_for_linear_redundancy,
    tamaki_tolerated_for_linear_redundancy,
)
from repro.baselines.replication import ReplicatedTorus
from repro.baselines.sparerows import SpareRowsTorus
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng


class TestReplicatedTorus:
    def test_degree_is_log_scale(self):
        rt = ReplicatedTorus(64, 2, c_r=1.0)
        assert rt.r == 6  # log2(64)
        assert rt.degree == (6 - 1) + 4 * 6

    def test_survival_probability_exact(self):
        rt = ReplicatedTorus(8, 2, replication=3)
        p = 0.3
        expect = (1 - p ** 3) ** 64
        assert rt.survival_probability(p) == pytest.approx(expect)

    def test_recover_picks_good_nodes(self):
        rt = ReplicatedTorus(8, 2, replication=4)
        faults = rt.sample_faults(0.3, seed=0)
        try:
            rec = rt.recover(faults)
        except ReconstructionError:
            pytest.skip("unlucky cluster wipe")
        assert not faults.ravel()[rec.phi].any()

    def test_dead_cluster_raises(self):
        rt = ReplicatedTorus(4, 2, replication=2)
        faults = np.zeros((16, 2), dtype=bool)
        faults[5] = True
        with pytest.raises(ReconstructionError):
            rt.recover(faults)

    def test_monte_carlo_matches_closed_form(self):
        rt = ReplicatedTorus(8, 2, replication=3)
        p = 0.25
        wins = sum(rt.survives(p, seed) for seed in range(200))
        expect = rt.survival_probability(p)
        assert abs(wins / 200 - expect) < 0.1

    def test_replication_for_target(self):
        rt = ReplicatedTorus(16, 2)
        r = rt.replication_for_target(0.3, 1e-3)
        assert 1 - (1 - 0.3 ** r) ** rt.num_clusters <= 1e-3


class TestSpareRows:
    def test_tolerates_sigma_faults(self):
        sr = SpareRowsTorus(20, sigma=5)
        faults = np.zeros((25, 20), dtype=bool)
        rng = spawn_rng(0)
        rows = rng.choice(25, size=5, replace=False)
        for r in rows:
            faults[r, rng.integers(0, 20)] = True
        rec = sr.recover(faults)
        assert not faults.ravel()[rec.phi].any()
        assert rec.stats["dropped_rows"] == 5

    def test_fails_beyond_sigma(self):
        sr = SpareRowsTorus(20, sigma=3)
        faults = np.zeros((23, 20), dtype=bool)
        for r in range(4):
            faults[r * 5, 0] = True
        assert not sr.tolerates(faults)

    def test_degree_grows_linearly(self):
        assert SpareRowsTorus(20, sigma=3).degree == 10
        assert SpareRowsTorus(20, sigma=6).degree == 16

    def test_multiple_faults_one_row_cost_one(self):
        sr = SpareRowsTorus(10, sigma=1)
        faults = np.zeros((11, 10), dtype=bool)
        faults[4, :] = True  # a whole faulty row = 10 faults, 1 row
        rec = sr.recover(faults)
        assert rec.stats["dropped_rows"] == 1


class TestBCHFormulas:
    def test_nodes_formula(self):
        assert bch_mesh_nodes(10, 2) == 108

    def test_degree_constant(self):
        assert bch_mesh_degree() == 13

    def test_crossover_claim(self):
        """Section 1: with linear redundancy, BCH tolerates O(n^{2/3}),
        Tamaki O(n^{3/4}) — Tamaki must win for all large n."""
        for n in (10 ** 3, 10 ** 4, 10 ** 5):
            assert tamaki_tolerated_for_linear_redundancy(n) > bch_tolerated_for_linear_redundancy(n)

    def test_bch_wins_small_k_overhead(self):
        """BCH's n^2 + k^3 beats any fixed-eps linear blowup for small k."""
        n, k = 100, 3
        tamaki_nodes = 1.33 * n * n
        assert bch_mesh_nodes(n, k) < tamaki_nodes
