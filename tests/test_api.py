"""The unified Construction protocol, registry and experiment runner.

The conformance suite is the acceptance contract of the API: one
parametrized test body runs against every registry entry, so a new
construction only has to register a factory to inherit the whole suite.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    Construction,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    FaultSpec,
    TrialOutcome,
    available,
    get,
)
from repro.analysis.montecarlo import MCResult
from repro.util.rng import spawn_rng

#: Tiny-but-real parameters plus a tame fault point per construction.
CASES = {
    "bn": (dict(d=2, b=3, s=1, t=2), FaultSpec(p=3.0 ** -6)),
    "an": (dict(d=2, b=3, s=1, t=2, k_sub=2, h=8), FaultSpec(p=0.1)),
    "dn": (dict(d=2, n=70, b=2), FaultSpec(pattern="random")),
    "alon_chung": (dict(n=20, blowup=3.0), FaultSpec(p=0.1)),
    "replication": (dict(n=8, d=2, replication=3), FaultSpec(p=0.05)),
    "sparerows": (dict(n=10, sigma=4), FaultSpec(pattern="random")),
}


class TestRegistry:
    def test_all_six_registered(self):
        assert set(available()) == set(CASES)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown construction"):
            get("nonesuch")

    def test_factory_kwargs(self):
        c = get("dn", d=2, n=70, b=2)
        assert c.params.k == 8


@pytest.mark.parametrize("name", sorted(CASES))
class TestConformance:
    """Every registry entry satisfies the same protocol contract."""

    def test_protocol_shape(self, name):
        c = get(name, **CASES[name][0])
        assert isinstance(c, Construction)
        assert c.name == name
        assert c.num_nodes > 0
        assert c.degree > 0

    def test_graph_matches_claims_and_is_cached(self, name):
        c = get(name, **CASES[name][0])
        g = c.graph()
        assert g.num_nodes == c.num_nodes
        assert g.max_degree() == c.degree
        assert c.graph() is g

    def test_sample_recover_roundtrip(self, name):
        params, spec = CASES[name]
        c = get(name, **params)
        faults = c.sample_faults(spec, spawn_rng(0, "conformance", name))
        c.recover(faults)  # tame spec at a pinned seed: must succeed

    def test_trial_returns_outcome_and_is_deterministic(self, name):
        params, spec = CASES[name]
        c = get(name, **params)
        a = c.trial(spec, 3)
        b = c.trial(spec, 3)
        assert isinstance(a, TrialOutcome)
        assert a.category and isinstance(a.category, str)
        assert (a.success, a.category, a.num_faults) == (b.success, b.category, b.num_faults)

    def test_sample_seeds_vary_faults(self, name):
        params, spec = CASES[name]
        c = get(name, **params)

        def fault_bits(seed):
            faults = c.sample_faults(spec, spawn_rng(seed, "vary", name))
            arr = faults if isinstance(faults, np.ndarray) else faults.node_faults
            return arr.tobytes()

        assert len({fault_bits(seed) for seed in range(6)}) > 1


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(p=1.5)
        with pytest.raises(ValueError):
            FaultSpec(k=-1)

    def test_roundtrip(self):
        fs = FaultSpec(p=0.1, q=1e-3, pattern="bernoulli")
        assert FaultSpec.from_dict(fs.to_dict()) == fs

    def test_labels(self):
        assert FaultSpec(p=0.1).label() == "p=0.1"
        assert FaultSpec(p=0.1, q=0.01).label() == "p=0.1 q=0.01"
        assert FaultSpec(pattern="diagonal", k=8).label() == "diagonal/k=8"


class TestFaultModelSerialization:
    """Model-free specs serialise without the ``fault_model`` key — the
    byte-stability contract of docs/faults.md — and model-bearing ones
    round-trip the dict."""

    def test_key_absent_at_the_default(self):
        from repro.api import LifetimeSpec, TrafficSpec

        for spec in (FaultSpec(p=0.01), LifetimeSpec(), TrafficSpec(messages=8)):
            assert "fault_model" not in spec.to_dict(), type(spec).__name__
            assert type(spec).from_dict(spec.to_dict()) == spec

    def test_model_round_trips_and_labels(self):
        from repro.api import LifetimeSpec, TrafficSpec

        model = {"name": "neighbor", "p": 0.002}
        fs = FaultSpec(fault_model=dict(model))
        assert fs.to_dict()["fault_model"] == model
        assert FaultSpec.from_dict(fs.to_dict()) == fs
        assert fs.label() == "model/neighbor p=0.002"
        ls = LifetimeSpec(fault_model=dict(model), repair_rate=0.2, max_steps=40)
        assert LifetimeSpec.from_dict(ls.to_dict()) == ls
        assert ls.label() == "life/model/neighbor rho=0.2 steps=40"
        ts = TrafficSpec(messages=8, fault_model={"name": "byzantine", "rate": 0.1})
        assert TrafficSpec.from_dict(ts.to_dict()) == ts
        assert ts.label() == "traffic/uniform m=8 model=byzantine"

    def test_mixing_vocabularies_rejected(self):
        from repro.api import LifetimeSpec

        with pytest.raises(ValueError):
            FaultSpec(p=0.1, fault_model={"name": "bernoulli", "p": 0.01})
        with pytest.raises(ValueError):
            LifetimeSpec(timeline="burst", burst=3,
                         fault_model={"name": "bernoulli", "p": 0.01})
        with pytest.raises(ValueError):
            FaultSpec(fault_model={"name": "gamma-ray"})


class TestTrafficSpec:
    def test_validation(self):
        from repro.api import TrafficSpec

        with pytest.raises(ValueError, match="pattern"):
            TrafficSpec(pattern="nope")
        with pytest.raises(ValueError, match="injection"):
            TrafficSpec(injection="nope")
        with pytest.raises(ValueError, match="messages"):
            TrafficSpec(messages=0)
        with pytest.raises(ValueError, match="rate"):
            TrafficSpec(injection="bernoulli", rate=0.0, cycles=10)
        with pytest.raises(ValueError, match="cycles"):
            TrafficSpec(injection="bernoulli", rate=0.1, cycles=0)
        with pytest.raises(ValueError, match="warmup"):
            TrafficSpec(injection="bernoulli", rate=0.1, cycles=10, warmup=10)

    def test_roundtrip_and_labels(self):
        from repro.api import TrafficSpec

        closed = TrafficSpec(pattern="transpose", messages=128)
        assert TrafficSpec.from_dict(closed.to_dict()) == closed
        assert closed.label() == "traffic/transpose m=128"
        assert not closed.open_loop
        open_ = TrafficSpec(
            pattern="uniform", injection="periodic", rate=0.05, cycles=200, warmup=50
        )
        assert TrafficSpec.from_dict(open_.to_dict()) == open_
        assert open_.label() == "traffic/uniform periodic rate=0.05 cycles=200"
        assert open_.open_loop

    def test_grid_point_discrimination(self):
        """A persisted grid rebuilds each point as its own spec type."""
        from repro.api import LifetimeSpec, TrafficSpec

        spec = ExperimentSpec.from_grid(
            "bn", {"b": 3}, p_values=[0.001],
            lifetimes=[LifetimeSpec()],
            traffic=[TrafficSpec(messages=16)],
            trials=2,
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert [type(pt).__name__ for pt in again.grid] == [
            "FaultSpec", "LifetimeSpec", "TrafficSpec",
        ]


class TestExperimentSpec:
    def test_roundtrip(self):
        spec = ExperimentSpec.from_grid(
            "dn", {"n": 70, "b": 2}, patterns=["random", "diagonal"], k=8,
            p_values=[0.001], trials=5, seed0=7, name="rt",
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec
        assert len(spec.grid) == 3  # two patterns + one probability

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            ExperimentSpec(construction="bn", grid=(), trials=5)


class TestMCResultSerialization:
    def test_roundtrip(self):
        from collections import Counter

        res = MCResult(
            trials=10, successes=7, categories=Counter(ok=7, capacity=3),
            healthy=4, sufficient=3, health_checked=5, mean_faults=2.5,
            strategies=Counter(straight=6, paper=1),
        )
        again = MCResult.from_dict(res.to_dict())
        assert again == res
        # and the dict is JSON-stable
        assert json.loads(json.dumps(res.to_dict())) == res.to_dict()

    def test_merged(self):
        a = MCResult(trials=4, successes=4, mean_faults=2.0)
        b = MCResult(trials=6, successes=3, mean_faults=7.0)
        m = MCResult.merged([a, b])
        assert (m.trials, m.successes) == (10, 7)
        assert m.mean_faults == pytest.approx(5.0)


class TestExperimentRunner:
    SPEC = ExperimentSpec.from_grid(
        "replication", {"n": 8, "d": 2, "replication": 3},
        p_values=[0.05, 0.2], trials=40, name="runner-test",
    )

    def test_serial_parallel_byte_identical(self):
        r1 = ExperimentRunner(workers=1).run(self.SPEC)
        r4 = ExperimentRunner(workers=4).run(self.SPEC)
        j1 = json.dumps(r1.to_dict(), sort_keys=True)
        j4 = json.dumps(r4.to_dict(), sort_keys=True)
        assert j1 == j4

    def test_matches_direct_trials(self):
        """The runner is a pure function of (construction, spec, seeds)."""
        result = ExperimentRunner().run(self.SPEC)
        c = get("replication", n=8, d=2, replication=3)
        for pt in result.points:
            wins = sum(c.trial(pt.fault_spec, seed).success for seed in range(40))
            assert pt.result.successes == wins

    def test_save_load_roundtrip(self, tmp_path):
        result = ExperimentRunner().run(self.SPEC)
        path = tmp_path / "res.json"
        result.save(path)
        again = ExperimentResult.load(path)
        assert again.spec == result.spec
        assert [pt.result for pt in again.points] == [pt.result for pt in result.points]
        # canonical JSON: saving the loaded result reproduces the bytes
        path2 = tmp_path / "res2.json"
        again.save(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_getitem_by_label(self):
        result = ExperimentRunner().run(self.SPEC)
        assert result["p=0.05"].trials == 40
        with pytest.raises(KeyError):
            result["p=0.99"]

    def test_chunking_invariance_of_counts(self):
        """Integer tallies are identical whatever the chunk size (floats may
        differ in the last ulp, which is why chunk_size is part of the spec)."""
        small = ExperimentSpec(
            construction="replication", params={"n": 8, "d": 2, "replication": 3},
            grid=(FaultSpec(p=0.2),), trials=30, chunk_size=7, name="odd-chunks",
        )
        base = ExperimentSpec(
            construction="replication", params={"n": 8, "d": 2, "replication": 3},
            grid=(FaultSpec(p=0.2),), trials=30, name="default-chunks",
        )
        a = ExperimentRunner().run(small).points[0].result
        b = ExperimentRunner().run(base).points[0].result
        assert (a.trials, a.successes, a.categories) == (b.trials, b.successes, b.categories)


class TestTrafficRunner:
    """TrafficSpec grid points through the runner (the fourth pillar)."""

    def _spec(self):
        from repro.api import TrafficSpec

        return ExperimentSpec.from_grid(
            "bn", {"b": 3},
            traffic=[
                TrafficSpec(pattern="uniform", messages=60),
                TrafficSpec(pattern="hotspot", injection="bernoulli", rate=0.02,
                            cycles=50, warmup=10),
            ],
            trials=20, name="traffic-runner-test",
        )

    def test_serial_parallel_batch_byte_identical(self):
        spec = self._spec()
        dumps = [
            json.dumps(ExperimentRunner(workers=w, batch=b).run(spec).to_dict(),
                       sort_keys=True)
            for w, b in ((1, False), (2, False), (1, True))
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_matches_direct_trials(self):
        spec = self._spec()
        result = ExperimentRunner().run(spec)
        c = get("bn", b=3)
        for pt in result.points:
            direct = [c.traffic_trial(pt.fault_spec, seed) for seed in range(20)]
            assert pt.result.outcomes == direct

    def test_save_load_roundtrip(self, tmp_path):
        result = ExperimentRunner(batch=True).run(self._spec())
        path = tmp_path / "traffic.json"
        result.save(path)
        again = ExperimentResult.load(path)
        assert [pt.result for pt in again.points] == [pt.result for pt in result.points]
        path2 = tmp_path / "traffic2.json"
        again.save(path2)
        assert path.read_bytes() == path2.read_bytes()

    def test_traffic_incapable_construction_raises(self):
        from repro.api import TrafficSpec

        spec = ExperimentSpec(
            construction="alon_chung", grid=(TrafficSpec(messages=4),), trials=1,
        )
        with pytest.raises(TypeError, match="traffic capability"):
            ExperimentRunner().run(spec)

    def test_guest_shapes(self):
        from repro.api.protocol import TrafficCapable

        expected = {
            "bn": {"b": 3}, "an": {"b": 3}, "dn": {"n": 30},
            "replication": {"n": 6}, "sparerows": {"n": 6},
        }
        for name, params in expected.items():
            c = get(name, **params)
            assert isinstance(c, TrafficCapable)
            shape = c.guest_shape()
            assert all(int(s) >= 2 for s in shape)
        assert not isinstance(get("alon_chung", n=20), TrafficCapable)


class TestLegacyCompat:
    def test_trialoutcome_reexport(self):
        from repro.core.bn import TrialOutcome as LegacyTrialOutcome

        assert LegacyTrialOutcome is TrialOutcome

    def test_bn_trial_stream_unchanged(self):
        """Registry trials reproduce the historical BTorus.trial outcomes."""
        from repro.core.bn import BTorus
        from repro.core.params import BnParams

        params = BnParams(d=2, b=3, s=1, t=2)
        bt = BTorus(params)
        c = get("bn", d=2, b=3, s=1, t=2)
        p = params.paper_fault_probability
        for seed in range(5):
            legacy = bt.trial(p, seed)
            new = c.trial(FaultSpec(p=p), seed)
            assert (legacy.success, legacy.category, legacy.num_faults) == (
                new.success, new.category, new.num_faults
            )

    def test_dn_sweep_stream_unchanged(self, dn2_small):
        from repro.analysis.sweep import sweep_dn_adversarial

        res = sweep_dn_adversarial(dn2_small, ["random"], trials=3)
        c = get("dn", d=dn2_small.d, n=dn2_small.n, b=dn2_small.b)
        wins = sum(
            c.trial(FaultSpec(pattern="random", k=dn2_small.k), seed).success
            for seed in range(3)
        )
        assert res["random"].successes == wins
