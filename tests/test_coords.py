"""Tests for the mixed-radix coordinate codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.coords import CoordCodec


class TestBasics:
    def test_size_and_strides(self):
        c = CoordCodec((4, 5, 6))
        assert c.size == 120
        assert c.strides.tolist() == [30, 6, 1]

    def test_ravel_matches_numpy(self):
        c = CoordCodec((4, 5, 6))
        coords = np.argwhere(np.ones((4, 5, 6), dtype=bool))
        flat = c.ravel(coords)
        expected = np.ravel_multi_index(coords.T, (4, 5, 6))
        assert (flat == expected).all()

    def test_unravel_roundtrip(self):
        c = CoordCodec((3, 7, 2))
        idx = c.all_indices()
        assert (c.ravel(c.unravel(idx)) == idx).all()

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            CoordCodec((0, 3))
        with pytest.raises(ValueError):
            CoordCodec(())

    def test_ravel_wrong_last_axis(self):
        with pytest.raises(ValueError):
            CoordCodec((3, 3)).ravel(np.zeros((5, 3), dtype=int))


class TestShift:
    def test_wrap_shift(self):
        c = CoordCodec((4, 5))
        idx = np.array([0])  # (0, 0)
        assert c.shift(idx, 0, -1)[0] == c.ravel(np.array([3, 0]))
        assert c.shift(idx, 1, -1)[0] == c.ravel(np.array([0, 4]))

    def test_nowrap_boundary(self):
        c = CoordCodec((4, 5))
        idx = np.array([c.ravel(np.array([3, 4]))])
        assert c.shift(idx, 0, +1, wrap=False)[0] == -1
        assert c.shift(idx, 1, +1, wrap=False)[0] == -1
        assert c.shift(idx, 0, -1, wrap=False)[0] == c.ravel(np.array([2, 4]))

    def test_axis_coord(self):
        c = CoordCodec((4, 5))
        idx = c.all_indices()
        assert (c.axis_coord(idx, 0) == idx // 5).all()
        assert (c.axis_coord(idx, 1) == idx % 5).all()

    def test_large_delta_wraps(self):
        c = CoordCodec((6,))
        assert c.shift(np.array([2]), 0, 13)[0] == (2 + 13) % 6


@given(
    st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=4),
    st.data(),
)
def test_shift_matches_coordinate_arithmetic(shape, data):
    c = CoordCodec(shape)
    idx = c.all_indices()
    axis = data.draw(st.integers(min_value=0, max_value=len(shape) - 1))
    delta = data.draw(st.integers(min_value=-10, max_value=10))
    shifted = c.shift(idx, axis, delta, wrap=True)
    coords = c.unravel(idx)
    coords[:, axis] = (coords[:, axis] + delta) % shape[axis]
    assert (shifted == c.ravel(coords)).all()
