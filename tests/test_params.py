"""Tests for construction parameter validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.params import AnParams, BnParams, DnParams, suggest_bn_params
from repro.errors import ParameterError


class TestBnParams:
    def test_smallest_legal(self):
        p = BnParams(d=2, b=3, s=1, t=2)
        assert p.n == 36 and p.m == 54
        assert p.num_nodes == 54 * 36
        assert p.num_bands == 6
        assert p.tile_rows == 6
        assert p.degree == 10

    def test_band_count_identity(self):
        # (m - n)/b == s * (m / b^2): exactly s bands per tile-row
        for b, s, t in [(3, 1, 2), (4, 1, 2), (5, 2, 2), (7, 3, 2)]:
            p = BnParams(d=2, b=b, s=s, t=t)
            assert p.num_bands * p.b == p.m - p.n
            assert p.num_bands == p.s * p.tile_rows

    def test_divisibility(self):
        p = BnParams(d=2, b=5, s=2, t=2)
        assert p.n % p.tile == 0 and p.m % p.tile == 0

    def test_redundancy_formula(self):
        p = BnParams(d=2, b=4, s=1, t=2)
        assert p.redundancy == pytest.approx(1 / (1 - p.eps))
        assert p.num_nodes == pytest.approx((1 + p.eps_redundancy) * p.n ** p.d)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(d=0, b=3, s=1, t=2),
            dict(d=2, b=2, s=1, t=5),  # b < 3
            dict(d=2, b=4, s=2, t=2),  # s/b >= 1/2
            dict(d=2, b=3, s=1, t=1),  # tile grid < b wide
            dict(d=2, b=3, s=0, t=2),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ParameterError):
            BnParams(**kw)

    def test_paper_fault_probability(self):
        p = BnParams(d=2, b=4, s=1, t=2)
        assert p.paper_fault_probability == pytest.approx(4.0 ** -6)

    def test_suggest_targets_n(self):
        p = suggest_bn_params(1000, d=2)
        assert p.d == 2
        assert 0.3 * 1000 <= p.n <= 3 * 1000

    def test_describe_mentions_key_fields(self):
        text = BnParams(d=2, b=3, s=1, t=2).describe()
        assert "b=3" in text and "degree=10" in text


class TestDnParams:
    def test_two_dim_example(self):
        p = DnParams(d=2, n=70, b=2)
        assert p.k == 8  # b^(2^2 - 1)
        assert p.degree == 8
        assert p.width(1) == 2 and p.width(2) == 4

    def test_divisibility_constraints(self):
        p = DnParams(d=2, n=70, b=2)
        for i in (1, 2):
            bi = p.width(i)
            assert p.m[i - 1] % (bi + 1) == 0
            assert (p.m[i - 1] - p.n) % bi == 0
            assert p.m[i - 1] >= p.n + p.b ** (2 ** p.d)

    def test_one_dim(self):
        p = DnParams(d=1, n=10, b=3)
        assert p.k == 3 and p.degree == 4

    def test_three_dim(self):
        p = DnParams(d=3, n=260, b=2)
        assert p.k == 2 ** 7
        assert p.width(3) == 16

    def test_n_below_k_rejected(self):
        with pytest.raises(ParameterError):
            DnParams(d=2, n=7, b=2)  # k=8 > n

    def test_capacity_at_least_k(self):
        p = DnParams(d=2, n=70, b=2)
        assert p.capacity(1) >= p.k

    def test_node_bound(self):
        p = DnParams(d=2, n=70, b=2)
        assert p.num_nodes <= p.paper_node_bound


class TestAnParams:
    def base(self):
        return BnParams(d=2, b=3, s=1, t=2)

    def test_counts(self):
        ap = AnParams(base=self.base(), k_sub=2, h=14)
        assert ap.n == 72
        assert ap.num_nodes == 1944 * 14
        assert ap.degree == 13 + 10 * 14

    def test_general_d_host_allowed(self):
        ap = AnParams(base=BnParams(d=3, b=3, s=1, t=2), k_sub=2, h=9)
        assert ap.d == 3 and ap.n == 72
        assert ap.good_node_threshold(0.0) == 8  # k^d

    def test_requires_d_at_least_2(self):
        with pytest.raises(ParameterError):
            AnParams(base=BnParams(d=1, b=3, s=1, t=2), k_sub=2, h=9)

    def test_h_must_fit_submesh(self):
        with pytest.raises(ParameterError):
            AnParams(base=self.base(), k_sub=3, h=8)

    def test_feasibility_inequality(self):
        ap = AnParams(base=self.base(), k_sub=2, h=14)
        assert ap.feasible_for(0.3, 0.0)
        assert not ap.feasible_for(0.8, 0.0)
