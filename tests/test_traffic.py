"""The traffic pillar: pattern properties, kernel equivalence, workloads.

Three layers, strongest first:

* hypothesis properties over every ``TRAFFIC_PATTERNS`` entry — exact row
  counts (the undercounting regression), ids in range, ``src != dst``
  where the pattern demands it, involutions of the deterministic maps on
  the shapes where they hold, host-adjacency of neighbor traffic, and the
  explicit ``ValueError`` paths for degenerate shapes;
* a hypothesis property asserting the vectorized kernel
  (:func:`repro.fastpath.traffic_batch.simulate_batch`) returns
  ``SimResult``\\ s identical *field for field* to the scalar engine over
  random shapes, patterns, counts, timeouts and injection schedules;
* open-loop workload model coverage (injection order, warmup windows,
  saturation sweep) and the engine's zero-cycle throughput definition.

Shape pools and the pattern-validity guard come from
``repro.testkit.strategies``; the field-for-field ``SimResult``
comparison is ``repro.testkit.oracles.compare_sim_results`` — the same
diff the conformance suite and mutation tests use.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.traffic_batch import (
    routes_batch,
    sim_results_identical,
    simulate_batch,
)
from repro.sim.engine import simulate
from repro.sim.routing import dimension_ordered_route, route_length
from repro.sim.traffic import (
    TRAFFIC_PATTERNS,
    bitreverse_index,
    make_traffic,
    pattern_destinations,
    transpose_index,
)
from repro.sim.workload import make_open_loop, open_loop_stats, saturation_sweep
from repro.testkit.oracles import compare_sim_results
from repro.testkit.strategies import (
    NON_POW2_SHAPES,
    UNIVERSAL_SHAPES,
    patterns_for,
)
from repro.topology.coords import CoordCodec
from repro.util.rng import spawn_rng


# ---------------------------------------------------------------------------
# Pattern properties (ISSUE 4 satellites 1, 2 and 4)
# ---------------------------------------------------------------------------


class TestPatternProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        shape=st.sampled_from(UNIVERSAL_SHAPES + NON_POW2_SHAPES),
        pattern=st.sampled_from(sorted(TRAFFIC_PATTERNS)),
        count=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_exact_count_in_range_and_distinct(self, shape, pattern, count, seed):
        if pattern not in patterns_for(shape):
            return  # covered by the ValueError tests below
        t = make_traffic(shape, pattern, count, spawn_rng(seed, pattern))
        size = int(np.prod(shape))
        # The undercounting regression: exactly the requested row count.
        assert t.shape == (count, 2)
        assert (t >= 0).all() and (t < size).all()
        if pattern != "neighbor":
            assert (t[:, 0] != t[:, 1]).all()

    def test_count_was_undercounted_before(self):
        """The seed-dependent shortfall the old sampler produced is gone."""
        for pattern in sorted(TRAFFIC_PATTERNS):
            for seed in range(5):
                t = make_traffic((4, 4), pattern, 100, spawn_rng(seed, pattern))
                assert len(t) == 100, (pattern, seed)

    def test_deterministic_for_same_rng(self):
        for pattern in sorted(TRAFFIC_PATTERNS):
            a = make_traffic((4, 4), pattern, 50, spawn_rng(7, pattern))
            b = make_traffic((4, 4), pattern, 50, spawn_rng(7, pattern))
            assert (a == b).all()

    @settings(max_examples=20, deadline=None)
    @given(shape=st.sampled_from([(4, 4), (7, 7), (3, 3, 3), (5, 5)]))
    def test_transpose_involution_on_equal_sides(self, shape):
        codec = CoordCodec(shape)
        idx = codec.all_indices()
        once = transpose_index(codec, idx)
        assert len(np.unique(once)) == codec.size  # a permutation
        back = once
        for _ in range(len(shape) - 1):
            back = transpose_index(codec, back)
        # d applications of the rotation give the identity; for d == 2
        # that is the classic involution.
        assert (back == idx).all()

    @settings(max_examples=20, deadline=None)
    @given(shape=st.sampled_from([(2, 8), (5, 7), (3, 9, 2), (4, 2)]))
    def test_transpose_generalizes_to_non_square(self, shape):
        """On non-square shapes the map is the corner-turn permutation:
        rotated coordinates re-flattened in the rotated shape — a
        bijection, never the old '% shape' corruption."""
        codec = CoordCodec(shape)
        idx = codec.all_indices()
        out = transpose_index(codec, idx)
        assert (out >= 0).all() and (out < codec.size).all()
        assert len(np.unique(out)) == codec.size
        rolled_shape = tuple(int(s) for s in np.roll(shape, 1))
        expect = CoordCodec(rolled_shape).ravel(np.roll(codec.unravel(idx), 1, axis=-1))
        assert (out == expect).all()

    def test_transpose_identity_shapes_raise(self):
        for shape in [(8,), (1, 6), (6, 1), (2, 3, 1), (1, 1)]:
            with pytest.raises(ValueError, match="identity"):
                make_traffic(shape, "transpose", 5, spawn_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(shape=st.sampled_from(UNIVERSAL_SHAPES + [(16,), (32,)]))
    def test_bitreverse_involution_on_pow2(self, shape):
        codec = CoordCodec(shape)
        idx = codec.all_indices()
        out = bitreverse_index(codec, idx)
        assert len(np.unique(out)) == codec.size  # a permutation
        assert (bitreverse_index(codec, out) == idx).all()  # involution

    def test_bitreverse_non_pow2_raises(self):
        for shape in [(6, 6), (5, 7), (3,), (36, 36), (2,), (1,)]:
            with pytest.raises(ValueError, match="power-of-two"):
                make_traffic(shape, "bitreverse", 5, spawn_rng(0))

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.sampled_from(UNIVERSAL_SHAPES + NON_POW2_SHAPES),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_neighbor_is_host_adjacent(self, shape, seed):
        t = make_traffic(shape, "neighbor", 60, spawn_rng(seed))
        for s, d in t:
            assert route_length(shape, int(s), int(d)) == 1

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            make_traffic((4, 4), "nope", 5, spawn_rng(0))

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.sampled_from(UNIVERSAL_SHAPES),
        pattern=st.sampled_from(sorted(TRAFFIC_PATTERNS)),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_pattern_destinations_match_pattern_semantics(self, shape, pattern, seed):
        codec = CoordCodec(shape)
        src = spawn_rng(seed, "src").integers(0, codec.size, 80)
        dst = pattern_destinations(shape, src, pattern, spawn_rng(seed, "dst"))
        assert dst.shape == src.shape
        assert (dst >= 0).all() and (dst < codec.size).all()
        if pattern in ("uniform", "hotspot"):
            assert (dst != src).all()  # resampled, never self-addressed
        elif pattern == "neighbor":
            for s, d in zip(src, dst):
                assert route_length(shape, int(s), int(d)) == 1
        elif pattern == "transpose":
            assert (dst == transpose_index(codec, src)).all()
        else:
            assert (dst == bitreverse_index(codec, src)).all()


# ---------------------------------------------------------------------------
# Scalar engine vs vectorized kernel: identical SimResults
# ---------------------------------------------------------------------------


def assert_results_identical(a, b):
    # The testkit's field-level diff first, for readable diagnostics...
    mismatches = compare_sim_results(a, b)
    assert not mismatches, "\n".join(m.describe() for m in mismatches)
    # ...then the shared predicate the benches and CI gate rely on, which
    # iterates the dataclass fields and so also covers any field the
    # record view has not caught up with yet.
    assert sim_results_identical(a, b)


class TestBatchKernelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.sampled_from(UNIVERSAL_SHAPES + NON_POW2_SHAPES),
        pattern=st.sampled_from(sorted(TRAFFIC_PATTERNS)),
        count=st.integers(min_value=0, max_value=150),
        max_cycles=st.sampled_from([1, 2, 7, 10_000]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_closed_loop_identical(self, shape, pattern, count, max_cycles, seed):
        if pattern not in patterns_for(shape):
            return
        t = make_traffic(shape, pattern, count, spawn_rng(seed, pattern))
        assert_results_identical(
            simulate(shape, t, max_cycles=max_cycles),
            simulate_batch(shape, t, max_cycles=max_cycles),
        )

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.sampled_from([(6, 6), (4, 4), (5, 7), (2, 4, 8)]),
        pattern=st.sampled_from(["uniform", "transpose", "neighbor", "hotspot"]),
        injection=st.sampled_from(["bernoulli", "periodic"]),
        rate=st.sampled_from([0.01, 0.05, 0.2]),
        cycles=st.sampled_from([1, 13, 60]),
        max_cycles=st.sampled_from([5, 10_000]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_open_loop_identical(
        self, shape, pattern, injection, rate, cycles, max_cycles, seed
    ):
        traffic, inject = make_open_loop(
            shape, pattern, rate, cycles, spawn_rng(seed, "ol"), injection=injection
        )
        assert_results_identical(
            simulate(shape, traffic, inject=inject, max_cycles=max_cycles),
            simulate_batch(shape, traffic, inject=inject, max_cycles=max_cycles),
        )

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.sampled_from(UNIVERSAL_SHAPES + NON_POW2_SHAPES),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_routes_batch_matches_scalar_routes(self, shape, seed):
        t = make_traffic(shape, "uniform", 40, spawn_rng(seed))
        nodes, lengths = routes_batch(shape, t)
        for i, (s, d) in enumerate(t):
            r = dimension_ordered_route(shape, int(s), int(d))
            assert lengths[i] == len(r) - 1
            assert nodes[i, : lengths[i] + 1].tolist() == r.tolist()
            assert (nodes[i, lengths[i] + 1:] == -1).all()

    def test_edge_cases_identical(self):
        # self-addressed only, empty traffic, mixed
        for t in (
            np.array([[3, 3], [2, 2]]),
            np.empty((0, 2), dtype=np.int64),
            np.array([[0, 1], [5, 5], [1, 0]]),
        ):
            assert_results_identical(simulate((4, 4), t), simulate_batch((4, 4), t))

    def test_inject_validation_matches(self):
        t = np.array([[0, 1]])
        for engine in (simulate, simulate_batch):
            with pytest.raises(ValueError):
                engine((4, 4), t, inject=np.array([1, 2]))
            with pytest.raises(ValueError):
                engine((4, 4), t, inject=np.array([-1]))


# ---------------------------------------------------------------------------
# Engine semantics (ISSUE 4 satellite 3)
# ---------------------------------------------------------------------------


class TestEngineSemantics:
    def test_zero_cycle_throughput_counts_deliveries(self):
        """Self-addressed-only traffic delivers in zero cycles; throughput
        reports delivered-per-(one)-cycle instead of the old 0.0."""
        res = simulate((4, 4), np.array([[3, 3], [7, 7]]))
        assert res.cycles == 0 and res.delivered == 2
        assert res.throughput == 2.0
        empty = simulate((4, 4), np.empty((0, 2), dtype=np.int64))
        assert empty.throughput == 0.0

    def test_message_latencies_align_with_ids(self):
        t = np.array([[0, 3], [5, 5], [0, 3]])
        res = simulate((6, 6), t)
        dist = route_length((6, 6), 0, 3)
        assert res.message_latencies.tolist() == [dist, 0, dist + 1]
        assert res.latencies.tolist() == [dist, 0, dist + 1]

    def test_injected_latency_measured_from_injection(self):
        t = np.array([[0, 3]])
        base = simulate((6, 6), t)
        late = simulate((6, 6), t, inject=np.array([10]))
        assert late.latencies.tolist() == base.latencies.tolist()
        assert late.cycles == base.cycles + 10

    def test_never_injected_counts_timed_out(self):
        t = np.array([[0, 3], [3, 0]])
        res = simulate((6, 6), t, inject=np.array([0, 50]), max_cycles=20)
        assert res.delivered == 1 and res.timed_out == 1


# ---------------------------------------------------------------------------
# Open-loop workload model
# ---------------------------------------------------------------------------


class TestWorkload:
    def test_injection_order_is_cycle_major(self):
        traffic, inject = make_open_loop((6, 6), "uniform", 0.1, 30, spawn_rng(0))
        assert (np.diff(inject) >= 0).all()
        assert len(traffic) == len(inject)
        assert inject.max() < 30

    def test_bernoulli_rate_scales_message_count(self):
        lo = make_open_loop((8, 8), "uniform", 0.01, 100, spawn_rng(1))[0]
        hi = make_open_loop((8, 8), "uniform", 0.2, 100, spawn_rng(1))[0]
        assert len(hi) > len(lo) > 0

    def test_periodic_is_deterministic_and_staggered(self):
        a_t, a_i = make_open_loop((6, 6), "neighbor", 0.25, 24, spawn_rng(2),
                                  injection="periodic")
        b_t, b_i = make_open_loop((6, 6), "neighbor", 0.25, 24, spawn_rng(2),
                                  injection="periodic")
        assert (a_t == b_t).all() and (a_i == b_i).all()
        # period 4: every node injects cycles/period times, phases 0..3
        assert set(np.unique(a_i % 4)) == {0, 1, 2, 3}
        assert len(a_t) == 36 * (24 // 4)

    def test_transpose_fixed_points_not_injected(self):
        traffic, _ = make_open_loop((4, 4), "transpose", 1.0, 1, spawn_rng(3))
        diag = {int(CoordCodec((4, 4)).ravel(np.array([i, i]))) for i in range(4)}
        assert set(traffic[:, 0]).isdisjoint(diag)
        assert (traffic[:, 0] != traffic[:, 1]).all()

    def test_validation(self):
        rng = spawn_rng(0)
        with pytest.raises(ValueError):
            make_open_loop((4, 4), "uniform", 0.0, 10, rng)
        with pytest.raises(ValueError):
            make_open_loop((4, 4), "uniform", 0.1, 0, rng)
        with pytest.raises(ValueError):
            make_open_loop((4, 4), "uniform", 0.1, 10, rng, injection="nope")

    def test_open_loop_stats_warmup_window(self):
        shape = (6, 6)
        traffic, inject = make_open_loop(shape, "uniform", 0.05, 80, spawn_rng(4))
        res = simulate(shape, traffic, inject=inject)
        full = open_loop_stats(res, inject, horizon=80)
        warm = open_loop_stats(res, inject, warmup=40, horizon=80)
        assert full["offered"] == len(traffic)
        assert warm["offered"] == int((inject >= 40).sum()) < full["offered"]
        assert warm["delivered"] + warm["timed_out"] == warm["offered"]
        # The window is the injection span, never the drain-inclusive run.
        assert full["window"] == 80 and warm["window"] == 40

    def test_window_is_injection_span_not_drain(self):
        """Offered load is normalised by the injection horizon: the
        congested drain after injection stops must not dilute it."""
        shape = (4, 4)
        # Everything injected in cycle 0 at once; the drain takes longer.
        t = np.stack([np.zeros(12, dtype=np.int64), np.arange(1, 13)], axis=1)
        inject = np.zeros(12, dtype=np.int64)
        res = simulate(shape, t, inject=inject)
        assert res.cycles > 1
        stats = open_loop_stats(res, inject, horizon=1)
        assert stats["window"] == 1
        assert stats["offered_rate"] == 12.0  # not 12 / drain_length
        # throughput counts only completions inside the window; the rest
        # of the deliveries are drain, still visible in "delivered"
        assert stats["delivered"] == 12
        assert stats["throughput"] < 12.0

    def test_final_window_cycle_delivery_counts(self):
        """A delivery completing in the window's last cycle is in-window
        (the off-by-one the old `finish < window` convention dropped)."""
        t = np.array([[0, 3]])
        inject = np.array([0])
        res = simulate((6, 6), t, inject=inject)
        lat = int(res.latencies[0])
        stats = open_loop_stats(res, inject, horizon=lat)
        assert stats["timed_out"] == 0 and stats["delivered"] == 1
        assert stats["throughput"] * stats["window"] == 1  # completion at lat-1
        # one cycle earlier and the completion is post-horizon drain
        assert open_loop_stats(res, inject, horizon=lat - 1)["throughput"] == 0.0

    def test_saturation_sweep_offered_monotone(self):
        rows = saturation_sweep(
            (6, 6), "uniform", [0.01, 0.05, 0.2], cycles=60, warmup=10, seed=5,
            max_cycles=400,
        )
        offered = [r["offered_rate"] for r in rows]
        assert offered == sorted(offered)
        batch_rows = saturation_sweep(
            (6, 6), "uniform", [0.01, 0.05, 0.2], cycles=60, warmup=10, seed=5,
            max_cycles=400, engine=simulate_batch,
        )
        assert rows == batch_rows  # engines agree row for row
