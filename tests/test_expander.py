"""Tests for explicit expanders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.expander import (
    gabber_galil_expander,
    random_regular_expander,
    spectral_expansion,
)
from repro.util.rng import spawn_rng


class TestGabberGalil:
    def test_size(self):
        g = gabber_galil_expander(7)
        assert g.num_nodes == 49

    def test_degree_bounded_by_8(self):
        g = gabber_galil_expander(11)
        assert g.max_degree() <= 8

    def test_connected(self):
        g = gabber_galil_expander(9)
        labels = g.connected_components()
        assert (labels == 0).all()

    def test_spectral_gap(self):
        # second eigenvalue well separated from the degree bound
        g = gabber_galil_expander(13)
        lam = spectral_expansion(g)
        assert lam < 0.9 * 8

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            gabber_galil_expander(1)


class TestRandomRegular:
    def test_regular_degree(self):
        g = random_regular_expander(60, 4, spawn_rng(0))
        assert set(g.degrees().tolist()) == {4}

    def test_gap_near_ramanujan(self):
        g = random_regular_expander(200, 6, spawn_rng(1))
        lam = spectral_expansion(g)
        assert lam <= 2.3 * np.sqrt(5) + 1e-9


class TestSpectral:
    def test_complete_graph_eigenvalues(self):
        # K_n: eigenvalues n-1 and -1 -> second largest |.| is 1
        import itertools

        from repro.topology.graph import CSRGraph

        n = 8
        e = np.array(list(itertools.combinations(range(n), 2)))
        g = CSRGraph(n, e)
        assert spectral_expansion(g) == pytest.approx(1.0, abs=1e-8)

    def test_cycle_poor_expansion(self):
        from repro.topology.torus import cycle_graph

        lam = spectral_expansion(cycle_graph(50))
        assert lam > 1.9  # cycles are terrible expanders (lambda_2 ~ 2)
