"""Unit + property tests for cyclic interval arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.cyclic import (
    CyclicWindow,
    cyclic_dist,
    cyclic_gap,
    cyclic_range,
    in_window,
    max_free_run,
    merge_windows,
    windows_cover,
)


class TestScalarOps:
    def test_dist_symmetry(self):
        assert cyclic_dist(1, 9, 10) == 2
        assert cyclic_dist(9, 1, 10) == 2

    def test_dist_zero(self):
        assert cyclic_dist(5, 5, 7) == 0

    def test_gap_directional(self):
        assert cyclic_gap(8, 2, 10) == 4
        assert cyclic_gap(2, 8, 10) == 6

    def test_range_wraps(self):
        assert cyclic_range(8, 4, 10).tolist() == [8, 9, 0, 1]

    def test_range_negative_length_raises(self):
        with pytest.raises(ValueError):
            cyclic_range(0, -1, 10)

    def test_in_window_scalar_and_array(self):
        assert in_window(9, 8, 3, 10)
        assert in_window(0, 8, 3, 10)
        assert not in_window(1, 8, 3, 10)
        out = in_window(np.array([7, 8, 0, 1]), 8, 3, 10)
        assert out.tolist() == [False, True, True, False]


class TestCyclicWindow:
    def test_positions_and_stop(self):
        w = CyclicWindow(8, 4, 10)
        assert w.stop == 2
        assert w.positions().tolist() == [8, 9, 0, 1]

    def test_contains(self):
        w = CyclicWindow(8, 4, 10)
        assert w.contains(9) and w.contains(1) and not w.contains(2)

    def test_normalises_start(self):
        assert CyclicWindow(13, 2, 10).start == 3

    def test_bad_length(self):
        with pytest.raises(ValueError):
            CyclicWindow(0, 0, 10)
        with pytest.raises(ValueError):
            CyclicWindow(0, 11, 10)

    def test_overlaps(self):
        a = CyclicWindow(8, 4, 10)
        assert a.overlaps(CyclicWindow(1, 2, 10))
        assert not a.overlaps(CyclicWindow(2, 3, 10))

    def test_gap_after(self):
        a = CyclicWindow(0, 3, 10)
        b = CyclicWindow(5, 2, 10)
        assert a.gap_after(b) == 2


class TestMergeAndCover:
    def test_merge_adjacent(self):
        ws = [CyclicWindow(0, 3, 10), CyclicWindow(3, 2, 10)]
        merged = merge_windows(ws)
        assert len(merged) == 1
        assert merged[0].start == 0 and merged[0].length == 5

    def test_merge_wrap(self):
        ws = [CyclicWindow(8, 3, 10), CyclicWindow(1, 2, 10)]
        merged = merge_windows(ws)
        assert len(merged) == 1
        assert merged[0].start == 8 and merged[0].length == 5

    def test_merge_full_circle(self):
        ws = [CyclicWindow(0, 6, 10), CyclicWindow(5, 6, 10)]
        merged = merge_windows(ws)
        assert merged[0].length == 10

    def test_cover(self):
        ws = [CyclicWindow(8, 3, 10)]
        assert windows_cover(ws, [8, 9, 0])
        assert not windows_cover(ws, [1])

    def test_cover_empty(self):
        assert windows_cover([], [])


class TestMaxFreeRun:
    def test_no_marks(self):
        assert max_free_run(np.zeros(7, dtype=bool)) == 7

    def test_all_marked(self):
        assert max_free_run(np.ones(5, dtype=bool)) == 0

    def test_wraparound_run(self):
        marked = np.array([False, False, True, False, False, False])
        # free run wraps: positions 3,4,5,0,1 -> length 5
        assert max_free_run(marked) == 5


@given(
    st.integers(min_value=2, max_value=60),
    st.data(),
)
def test_merge_windows_equals_mask_property(period, data):
    """merge_windows must produce exactly the covered-position mask."""
    count = data.draw(st.integers(min_value=0, max_value=6))
    ws = [
        CyclicWindow(
            data.draw(st.integers(min_value=0, max_value=period - 1)),
            data.draw(st.integers(min_value=1, max_value=period)),
            period,
        )
        for _ in range(count)
    ]
    mask = np.zeros(period, dtype=bool)
    for w in ws:
        mask[w.positions()] = True
    merged = merge_windows(ws)
    mask2 = np.zeros(period, dtype=bool)
    for w in merged:
        mask2[w.positions()] = True
    assert (mask == mask2).all()
    # merged windows must be disjoint and non-adjacent (unless full circle)
    if len(merged) > 1:
        for i, a in enumerate(merged):
            for b_ in merged[i + 1 :]:
                assert not a.overlaps(b_)


@given(st.lists(st.booleans(), min_size=1, max_size=80))
def test_max_free_run_matches_bruteforce(bits):
    marked = np.array(bits, dtype=bool)
    period = len(marked)
    best = 0
    for start in range(period):
        run = 0
        for k in range(period):
            if marked[(start + k) % period]:
                break
            run += 1
        best = max(best, run)
    assert max_free_run(marked) == best
