"""Tests: adaptive pigeonhole attack, max-density B stress, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn import BTorus
from repro.core.dn import DTorus
from repro.core.params import BnParams, DnParams
from repro.faults.adversary import pigeonhole_attack
from repro.util.rng import spawn_rng
from repro.util.serialization import load_recovery, save_recovery


class TestPigeonholeAttack:
    def test_exact_budget(self, dn2_small):
        f = pigeonhole_attack(dn2_small, spawn_rng(0))
        assert int(f.sum()) == dn2_small.k

    def test_spreads_residues_dim0(self, dn2_small):
        f = pigeonhole_attack(dn2_small, spawn_rng(1))
        rows = np.nonzero(f)[0]
        period = dn2_small.width(1) + 1
        counts = np.bincount(rows % period, minlength=period)
        # near-uniform: min class within 2 of max class
        assert counts.max() - counts.min() <= 2

    def test_theorem_absorbs_the_attack(self, dn2_small):
        """Theorem 13: even the cascade-aware adversary loses at rated k."""
        dt = DTorus(dn2_small)
        for seed in range(5):
            f = pigeonhole_attack(dn2_small, spawn_rng(seed, "attack"))
            rec = dt.recover(f)
            assert not f.ravel()[rec.phi].any()

    def test_attack_on_d3(self):
        p = DnParams(d=3, n=260, b=2)
        dt = DTorus(p)
        f = pigeonhole_attack(p, spawn_rng(2))
        rec = dt.recover(f, verify=False)
        assert not f.ravel()[rec.phi[::997]].any()


class TestMaxDensityB:
    def test_grid_spaced_faults_all_regions(self):
        """Max-density *sufficient* instance: one fault every other tile
        row/column.  Every region is a singleton; the paper pipeline must
        place all bands and recover."""
        p = BnParams(d=2, b=4, s=1, t=3)  # tile grid 12 x 9
        bt = BTorus(p)
        faults = np.zeros(p.shape, dtype=bool)
        tile = p.tile
        # dim-0 spacing 4: dilation (+-1 tile) leaves one white tile-row
        # between regions; dim-1 spacing 3 keeps frames fault-free
        for ti in range(0, 12, 4):
            for tj in range(0, 9, 3):
                faults[ti * tile + tile // 2, tj * tile + tile // 2] = True
        assert faults.sum() == 9
        rec = bt.recover(faults, strategy="paper")
        assert rec.stats["nodes"] == p.n ** 2

    def test_denser_grid_fails_with_category(self):
        """One fault in every tile saturates the frames: categorised fail."""
        from repro.errors import ReconstructionError

        p = BnParams(d=2, b=3, s=1, t=2)
        bt = BTorus(p)
        faults = np.zeros(p.shape, dtype=bool)
        for ti in range(6):
            for tj in range(4):
                faults[ti * 9 + 4, tj * 9 + 4] = True
        with pytest.raises(ReconstructionError) as ei:
            bt.recover(faults, strategy="paper")
        assert ei.value.category in {"no-frame", "region-overflow"}


class TestSerialization:
    def test_roundtrip(self, tmp_path, bn2_small):
        bt = BTorus(bn2_small)
        faults = np.zeros(bn2_small.shape, dtype=bool)
        faults[20, 20] = True
        rec = bt.recover(faults)
        f = tmp_path / "rec.npz"
        save_recovery(f, rec, faults)
        rec2, faults2 = load_recovery(f)
        assert (rec2.phi == rec.phi).all()
        assert (rec2.bands.bottoms == rec.bands.bottoms).all()
        assert (faults2 == faults).all()
        assert rec2.params == bn2_small

    def test_roundtrip_without_faults(self, tmp_path, bn2_small):
        bt = BTorus(bn2_small)
        rec = bt.recover(np.zeros(bn2_small.shape, dtype=bool))
        f = tmp_path / "rec.npz"
        save_recovery(f, rec)
        rec2, faults2 = load_recovery(f)
        assert faults2 is None
        assert rec2.stats.get("nodes") == bn2_small.n ** 2

    def test_load_verifies_tampered_archive(self, tmp_path, bn2_small):
        from repro.errors import ReproError

        bt = BTorus(bn2_small)
        faults = np.zeros(bn2_small.shape, dtype=bool)
        rec = bt.recover(faults)
        f = tmp_path / "rec.npz"
        # tamper: break the embedding's injectivity
        rec.phi[0] = rec.phi[1]
        save_recovery(f, rec, faults)
        with pytest.raises(ReproError):
            load_recovery(f)
        # loading without verification still works (explicit opt-out)
        rec2, _ = load_recovery(f, verify=False)
        assert rec2.phi[0] == rec2.phi[1]

    def test_bad_format_rejected(self, tmp_path):
        import json

        meta = np.frombuffer(json.dumps({"format": "nope"}).encode(), dtype=np.uint8)
        f = tmp_path / "bad.npz"
        np.savez(f, meta=meta, bottoms=np.zeros((1, 1)), phi=np.zeros(1))
        with pytest.raises(ValueError):
            load_recovery(f)
