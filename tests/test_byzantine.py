"""Byzantine fault-model behavior: ByzantinePlan, engine accounting,
scalar-vs-batch identity (docs/faults.md).

The semantics under test: traitor nodes stay up (health predicates never
see them), a message is perturbed at the first traitor *intermediate*
hop and at most once, and the integrity counters obey message
conservation — ``delivered + dropped + timed_out + undeliverable ==
total`` — with corrupted/misrouted messages still counted in
``delivered``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.traffic_batch import simulate_batch
from repro.faults.models import ByzantineNodeFaults
from repro.sim.engine import byzantine_counts, simulate
from repro.sim.routing import (
    BYZ_CORRUPT,
    BYZ_DROP,
    BYZ_MISROUTE,
    BYZ_NONE,
    ByzantinePlan,
    dimension_ordered_route,
    route_length,
)
from repro.util.rng import spawn_rng

SHAPE = (6, 6)


def plan_with(mix, traitors, seed=7, shape=SHAPE):
    """Fresh plan with the given traitor node ids and action mix."""
    mask = np.zeros(shape, dtype=bool).ravel()
    mask[list(traitors)] = True
    return ByzantinePlan(mask, mix, spawn_rng(seed, "test-byz"))


class TestByzantinePlan:
    def test_endpoints_are_trusted(self):
        # Route [0, 1]: no intermediate hops, so even an all-traitor
        # machine perturbs nothing.
        plan = plan_with((1.0, 1.0, 1.0), range(36))
        assert plan.first_traitor_hop(np.array([0, 1])) == -1
        assert plan.first_traitor_hop(np.array([0])) == -1

    def test_first_traitor_intermediate_wins(self):
        # (0,0) -> (0,3): route 0,1,2,3 (tie on the 6-cycle breaks toward +).
        route = dimension_ordered_route(SHAPE, 0, 3)
        assert route.tolist() == [0, 1, 2, 3]
        assert plan_with((1, 1, 1), [2]).first_traitor_hop(route) == 2
        # The endpoint traitor (3) never acts; the first intermediate wins.
        assert plan_with((1, 1, 1), [1, 2, 3]).first_traitor_hop(route) == 1

    def test_apply_is_deterministic(self):
        traffic_routes = [dimension_ordered_route(SHAPE, s, d)
                          for s, d in [(0, 4), (6, 9), (12, 33), (1, 1)]]
        a = plan_with((1, 1, 1), [2, 8, 20]).apply(SHAPE, list(traffic_routes))
        b = plan_with((1, 1, 1), [2, 8, 20]).apply(SHAPE, list(traffic_routes))
        assert np.array_equal(a[1], b[1])
        for ra, rb in zip(a[0], b[0]):
            assert np.array_equal(ra, rb)

    def test_untouched_messages_draw_nothing(self):
        # Only messages that traverse a traitor consume RNG draws: a plan
        # applied to traitor-free routes leaves its stream untouched, so
        # the next touched message draws exactly what it would have drawn
        # first — the contract that keeps scalar and batch plans aligned.
        clean = [dimension_ordered_route(SHAPE, 30, 33)]  # bottom row, no traitor
        hit = [dimension_ordered_route(SHAPE, 0, 3)]
        direct = plan_with((1, 1, 1), [2]).apply(SHAPE, list(hit))
        assert direct[1][0] != BYZ_NONE  # the hit route really was touched
        plan = plan_with((1, 1, 1), [2])
        plan.apply(SHAPE, clean * 5)
        after_clean = plan.apply(SHAPE, list(hit))
        assert np.array_equal(direct[1], after_clean[1])
        assert np.array_equal(direct[0][0], after_clean[0][0])

    def test_drop_truncates_at_the_traitor(self):
        plan = plan_with((0.0, 1.0, 0.0), [2])
        routes, actions = plan.apply(SHAPE, [dimension_ordered_route(SHAPE, 0, 3)])
        assert actions[0] == BYZ_DROP
        assert routes[0].tolist() == [0, 1, 2]

    def test_corrupt_keeps_the_route(self):
        plan = plan_with((0.0, 0.0, 1.0), [2])
        routes, actions = plan.apply(SHAPE, [dimension_ordered_route(SHAPE, 0, 3)])
        assert actions[0] == BYZ_CORRUPT
        assert routes[0].tolist() == [0, 1, 2, 3]

    def test_misroute_detours_through_a_wrong_neighbor(self):
        plan = plan_with((1.0, 0.0, 0.0), [2])
        routes, actions = plan.apply(SHAPE, [dimension_ordered_route(SHAPE, 0, 3)])
        assert actions[0] == BYZ_MISROUTE
        r = routes[0].tolist()
        assert r[:3] == [0, 1, 2] and r[-1] == 3
        assert r[3] != 3  # the wrong forward
        assert len(r) > 4  # genuinely longer than the e-cube route

    def test_none_routes_pass_through(self):
        plan = plan_with((1, 1, 1), [2])
        routes, actions = plan.apply(SHAPE, [None])
        assert routes == [None] and actions[0] == BYZ_NONE


class TestEngineAccounting:
    def traffic(self, rng, m=40):
        size = int(np.prod(SHAPE))
        return rng.integers(0, size, size=(m, 2))

    def test_conservation_and_split(self):
        rng = spawn_rng(3, "byz-traffic")
        traffic = self.traffic(rng)
        plan = plan_with((1, 1, 1), [2, 8, 14, 27], seed=11)
        res = simulate(SHAPE, traffic, byzantine=plan)
        assert res.delivered + res.dropped + res.timed_out + res.undeliverable \
            == res.total
        assert res.dropped + res.corrupted + res.misrouted > 0
        # Dropped messages carry the -1 sentinel; delivered ones do not.
        assert int((res.message_latencies < 0).sum()) == res.dropped + res.timed_out
        assert len(res.latencies) == res.delivered

    def test_drop_only_mix_never_corrupts(self):
        rng = spawn_rng(4, "byz-traffic")
        res = simulate(SHAPE, self.traffic(rng),
                       byzantine=plan_with((0, 1, 0), [2, 8, 14], seed=5))
        assert res.corrupted == res.misrouted == 0
        assert res.dropped > 0

    def test_corrupt_only_mix_delivers_everything(self):
        rng = spawn_rng(5, "byz-traffic")
        traffic = self.traffic(rng)
        base = simulate(SHAPE, traffic)
        res = simulate(SHAPE, traffic,
                       byzantine=plan_with((0, 0, 1), [2, 8, 14], seed=5))
        # Corruption damages payloads, not schedules: identical delivery.
        assert res.delivered == base.delivered == res.total
        assert res.corrupted > 0 and res.dropped == res.misrouted == 0
        assert np.array_equal(res.message_latencies, base.message_latencies)

    def test_misroute_only_mix_arrives_late(self):
        plan = plan_with((1, 0, 0), [2], seed=5)
        res = simulate(SHAPE, np.array([[0, 3]]), byzantine=plan)
        assert res.misrouted == 1 and res.delivered == 1
        assert int(res.latencies[0]) > route_length(SHAPE, 0, 3)

    def test_no_traitors_matches_plain_engine(self):
        rng = spawn_rng(6, "byz-traffic")
        traffic = self.traffic(rng)
        base = simulate(SHAPE, traffic)
        res = simulate(SHAPE, traffic, byzantine=plan_with((1, 1, 1), []))
        assert res.dropped == res.corrupted == res.misrouted == 0
        assert res.delivered == base.delivered
        assert np.array_equal(res.message_latencies, base.message_latencies)

    def test_byzantine_counts_reclassifies_drops(self):
        actions = np.array([BYZ_NONE, BYZ_DROP, BYZ_CORRUPT, BYZ_MISROUTE, BYZ_DROP])
        done = np.array([True, True, True, True, False])
        latencies = np.array([3, 2, 4, 9, -1])
        dropped, corrupted, misrouted = byzantine_counts(actions, done, latencies)
        assert (dropped, corrupted, misrouted) == (1, 1, 1)
        # The done drop reverted to the sentinel; the not-done one (a drop
        # whose truncated route timed out) is someone else's count.
        assert latencies.tolist() == [3, -1, 4, 9, -1]


class TestScalarBatchIdentity:
    @pytest.mark.parametrize("mix_weights", [(1, 1, 1), (0.5, 2.0, 0.5)])
    def test_simulate_batch_is_field_identical(self, mix_weights):
        model = ByzantineNodeFaults(rate=0.12, misroute=mix_weights[0],
                                    drop=mix_weights[1], corrupt=mix_weights[2])
        mask = model.sample(SHAPE, spawn_rng(9, "byz-mask"))
        rng = spawn_rng(9, "byz-traffic")
        size = int(np.prod(SHAPE))
        traffic = rng.integers(0, size, size=(60, 2))

        def plan():
            # The plan's stream advances during apply, so each engine gets
            # its own identically-seeded instance.
            return ByzantinePlan(mask, model.mix(), spawn_rng(9, "byz-plan"))

        scalar = simulate(SHAPE, traffic, byzantine=plan())
        batch = simulate_batch(SHAPE, traffic, byzantine=plan())
        for f in ("delivered", "total", "cycles", "max_queue", "timed_out",
                  "undeliverable", "dropped", "corrupted", "misrouted"):
            assert getattr(scalar, f) == getattr(batch, f), f
        assert np.array_equal(scalar.message_latencies, batch.message_latencies)
        assert np.array_equal(scalar.latencies, batch.latencies)


class TestByzantineModel:
    def test_mix_normalises(self):
        model = ByzantineNodeFaults(rate=0.1, misroute=0.5, drop=2.0, corrupt=0.5)
        mix = model.mix()
        assert mix == (1 / 6, 4 / 6, 1 / 6)
        assert abs(sum(mix) - 1.0) < 1e-12

    def test_rate_zero_samples_nothing_without_rng(self):
        model = ByzantineNodeFaults(rate=0.0)
        rng = spawn_rng(1, "untouched")
        assert not model.sample(SHAPE, rng).any()
        assert float(rng.random()) == float(spawn_rng(1, "untouched").random())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ByzantineNodeFaults(rate=1.5)
        with pytest.raises(ValueError):
            ByzantineNodeFaults(rate=0.1, drop=-1.0)
        with pytest.raises(ValueError):
            ByzantineNodeFaults(rate=0.1, misroute=0.0, drop=0.0, corrupt=0.0)


class TestPerClassByzantineConservation:
    """Per-class rows under drop-heavy Byzantine mixes: drops land in the
    ``dropped`` bucket (never misclassified as ``timed_out`` despite the
    shared ``-1`` latency sentinel), conservation holds per row, and the
    rows are field-identical scalar vs batch."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 200),
        rate=st.sampled_from((0.1, 0.25)),
        drop=st.sampled_from((2.0, 5.0)),
        qos=st.sampled_from((2, 3)),
    )
    def test_rows_conserve_and_match_across_engines(self, seed, rate, drop, qos):
        import json

        from repro.api.traffic import message_classes
        from repro.sim.metrics import per_class_stats

        model = ByzantineNodeFaults(rate=rate, misroute=0.5, drop=drop,
                                    corrupt=0.5)
        mask = model.sample(SHAPE, spawn_rng(seed, "byz-cons-mask"))
        size = int(np.prod(SHAPE))
        traffic = spawn_rng(seed, "byz-cons-traffic").integers(
            0, size, size=(50, 2))
        classes = message_classes(len(traffic), qos)

        def plan():
            return ByzantinePlan(mask, model.mix(),
                                 spawn_rng(seed, "byz-cons-plan"))

        scalar = simulate(SHAPE, traffic, byzantine=plan(), classes=classes)
        batch = simulate_batch(SHAPE, traffic, byzantine=plan(),
                               classes=classes)
        rows_s = per_class_stats(scalar, classes)
        rows_b = per_class_stats(batch, classes)
        assert json.dumps(rows_s, sort_keys=True) == json.dumps(
            rows_b, sort_keys=True)
        for row in rows_s:
            assert row["offered"] == (
                row["delivered"] + row["timed_out"]
                + row.get("undeliverable", 0) + row.get("dropped", 0)
            ), row
        assert sum(r.get("dropped", 0) for r in rows_s) == scalar.dropped
        assert sum(r["timed_out"] for r in rows_s) == scalar.timed_out

    def test_certain_drop_is_dropped_not_timed_out(self):
        from repro.sim.metrics import per_class_stats

        # A drop-only all-traitor machine: every multi-hop message is
        # dropped at its first intermediate hop; none may count as a
        # timeout even though both outcomes share the -1 sentinel.
        plan = plan_with((0, 1, 0), range(36), seed=3)
        traffic = np.array([[0, 3], [6, 9], [12, 15]])
        classes = np.array([0, 0, 1])
        res = simulate(SHAPE, traffic, byzantine=plan, classes=classes)
        assert res.dropped == 3 and res.timed_out == 0
        rows = per_class_stats(res, classes)
        assert rows[0]["dropped"] == 2 and rows[0]["timed_out"] == 0
        assert rows[1]["dropped"] == 1 and rows[1]["delivered"] == 0
