"""Tests for the Section 6 probes and host graph properties."""

from __future__ import annotations

import numpy as np

from repro.analysis.graphprops import (
    bfs_distances,
    dim0_cut_edges,
    mean_distance,
    sampled_diameter,
)
from repro.analysis.openproblems import bn_constant_p_decay, one_dimensional_answer
from repro.core.bn_graph import BnGraph
from repro.topology.torus import torus_graph
from repro.util.rng import spawn_rng


class TestGraphProps:
    def test_bfs_on_cycle(self):
        from repro.topology.torus import cycle_graph

        g = cycle_graph(8)
        dist = bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_sampled_diameter_torus(self):
        g = torus_graph((6, 6))
        # exact diameter of C6 x C6 is 6
        assert sampled_diameter(g, 36, spawn_rng(0)) == 6

    def test_mean_distance_reasonable(self):
        g = torus_graph((6, 6))
        md = mean_distance(g, 10, spawn_rng(1))
        assert 2.5 < md < 3.5  # exact mean is 3.0

    def test_bn_jumps_shrink_dim0_distances(self, bn2_small):
        """B's vertical/diagonal jumps act as an express level in dim 0:
        its diameter is strictly below the plain m x n torus's."""
        bn = BnGraph(bn2_small)
        host = bn.graph()
        plain = torus_graph(bn2_small.shape)
        rng = spawn_rng(2)
        d_host = sampled_diameter(host, 6, rng)
        d_plain = sampled_diameter(plain, 6, spawn_rng(2))
        assert d_host < d_plain

    def test_dim0_cut_counts(self, bn2_small):
        bn = BnGraph(bn2_small)
        g = bn.graph()
        coord0 = bn.codec.axis_coord(np.arange(g.num_nodes), 0)
        crossing = dim0_cut_edges(g, coord0, bn2_small.m // 2)
        # at least the torus edges cross (n of them), plus jumps
        assert crossing >= bn2_small.n


class TestOpenProblems:
    def test_bn_dies_at_constant_p(self):
        rows = bn_constant_p_decay(p=0.01, trials=6)
        # constant-degree B at constant p: survival collapses as size grows
        assert rows[0].degree == rows[-1].degree == 10
        assert rows[-1].survival <= rows[0].survival
        assert rows[-1].survival <= 0.5

    def test_one_dimensional_is_solved(self):
        rows = one_dimensional_answer(p=0.05, trials=6, sizes=(40, 80))
        for r in rows:
            assert r.degree <= 8  # constant degree
            assert r.survival >= 0.8  # survives constant p
        # linear size
        assert rows[1].size <= 4 * 80
