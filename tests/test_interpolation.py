"""Tests for the multilinear interpolation machinery (Lemmas 9-11)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.interpolation import (
    default_corner_value,
    interpolate_strip_band,
    multilinear_on_columns,
)
from repro.core.params import BnParams


class TestDefaults:
    def test_bottom_band_rule(self, bn2_small):
        # paper: the bottom band's free corners sit at >= b
        assert default_corner_value(bn2_small, 0) == bn2_small.b

    def test_gap_exactly_b_plus_1(self):
        p = BnParams(d=2, b=5, s=2, t=2)
        assert default_corner_value(p, 1) - default_corner_value(p, 0) == p.b + 1

    def test_top_band_under_cross_strip_limit(self):
        for b, s in [(3, 1), (5, 2), (7, 3), (9, 4)]:
            p = BnParams(d=2, b=b, s=s, t=2)
            assert default_corner_value(p, s - 1) <= p.tile - p.b - 1


class TestMultilinear:
    def test_constant_corners_constant_function(self, bn2_small):
        p = bn2_small
        corners = np.full((p.n // p.tile,), 7.0)
        out = multilinear_on_columns(corners, p.n, p.tile)
        assert np.allclose(out, 7.0)

    def test_interpolates_between_corners_1d(self, bn2_small):
        p = bn2_small
        g = p.n // p.tile
        corners = np.zeros(g)
        corners[1] = 9.0
        out = multilinear_on_columns(corners, p.n, p.tile)
        # values rise from ~0 to 9 across tile 0 and fall across tile 1
        assert out.min() >= 0.0 and out.max() <= 9.0
        assert out[p.tile // 2] < out[p.tile - 1]

    def test_lemma9_corner_reproduction_limit(self, bn2_small):
        """Lemma 9: the multilinear extension matches boundary values.
        Columns sit at half-offsets so we check the limit at corners via
        symmetry: adjacent tiles agree across the shared corner."""
        p = bn2_small
        g = p.n // p.tile
        rng = np.random.default_rng(0)
        corners = rng.uniform(0, p.tile - 1, g)
        out = multilinear_on_columns(corners, p.n, p.tile)
        # step across every tile boundary is <= slope bound (continuity)
        diffs = np.abs(np.diff(np.concatenate([out, out[:1]])))
        assert diffs.max() <= 1.0 + 1e-9

    def test_lemma11_slope_bound_2d(self):
        """|f(z) - f(z')| <= 1 for adjacent columns, any corner values in
        [0, b^2): the scaled Lemma 11."""
        p = BnParams(d=3, b=3, s=1, t=2)
        g = p.n // p.tile
        rng = np.random.default_rng(1)
        corners = rng.uniform(0, p.tile - 1, (g, g))
        out = multilinear_on_columns(corners, p.n, p.tile)
        for axis in range(2):
            d = np.abs(np.roll(out, -1, axis=axis) - out)
            assert d.max() <= 1.0 + 1e-9


class TestInterpolateStripBand:
    def test_black_tiles_pinned_exactly(self, bn2_small):
        p = bn2_small
        g = p.n // p.tile
        corner_black = np.zeros(g, dtype=bool)
        corner_value = np.zeros(g, dtype=np.int64)
        # pin tile 1: its corners are lattice points 1 and 2 (values must be
        # local to the strip, i.e. < b^2 = 9)
        corner_black[1] = corner_black[2] = True
        corner_value[1] = corner_value[2] = 7
        out = interpolate_strip_band(p, 0, corner_black, corner_value)
        # columns of tile 1 (9..17) must be exactly 7
        assert (out[9:18] == 7).all()

    def test_output_within_strip(self, bn2_small):
        p = bn2_small
        g = p.n // p.tile
        out = interpolate_strip_band(
            p, 0, np.zeros(g, dtype=bool), np.zeros(g, dtype=np.int64)
        )
        assert (out >= 0).all() and (out < p.tile).all()

    def test_free_corners_default(self, bn2_small):
        p = bn2_small
        g = p.n // p.tile
        out = interpolate_strip_band(
            p, 0, np.zeros(g, dtype=bool), np.zeros(g, dtype=np.int64)
        )
        assert (out == p.b).all()  # all-default = straight at c_0 = b


@settings(max_examples=50)
@given(st.data())
def test_floor_preserves_slope_property(data):
    """Property: for random corner values in [0, b^2), the floored band has
    cyclic slope <= 1 between adjacent columns (Lemma 11 + floor rounding)."""
    p = BnParams(d=2, b=3, s=1, t=2)
    g = p.n // p.tile
    corners = np.array(
        [
            data.draw(st.floats(min_value=0, max_value=p.tile - 1))
            for _ in range(g)
        ]
    )
    out = np.floor(multilinear_on_columns(corners, p.n, p.tile)).astype(int)
    d = np.abs(np.diff(np.concatenate([out, out[:1]])))
    assert d.max() <= 1
