"""Focused tests for internal helpers that end-to-end tests cross lightly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import _cover_linear, _pad_cyclic
from repro.errors import BandPlacementError


class TestCoverLinear:
    def test_latest_variant_maximises_reach(self):
        order = np.array([0, 2, 9])
        # latest: bottom 0 covers 0-2 (b=3), bottom 9 covers 9-11
        out = _cover_linear(order, 3, "latest")
        assert out == [0, 9]

    def test_earliest_variant_packs_left(self):
        order = np.array([0, 3])
        out = _cover_linear(order, 3, "earliest")
        assert out == [-2, 2]
        # both faults covered
        for r, bot in [(0, -2), (3, 2)]:
            assert bot <= r <= bot + 2

    def test_latest_raises_on_tight_pair(self):
        with pytest.raises(BandPlacementError):
            _cover_linear(np.array([0, 3]), 3, "latest")

    def test_earliest_raises_when_impossible(self):
        # rows 0,3,6,9 provably need a 12-span; none exists
        with pytest.raises(BandPlacementError):
            _cover_linear(np.array([0, 3, 6, 9]), 3, "earliest")

    def test_skips_covered_rows(self):
        out = _cover_linear(np.array([5, 6, 7]), 3, "latest")
        assert out == [5]


class TestPadCyclic:
    def test_pads_to_exact_count(self):
        out = _pad_cyclic([0, 20], 54, 3, 6)
        assert len(out) == 6
        srt = sorted(x % 54 for x in out)
        gaps = np.diff(np.concatenate([srt, [srt[0] + 54]]))
        assert (gaps >= 4).all()

    def test_noop_when_full(self):
        assert _pad_cyclic([0, 10, 20], 54, 3, 3) == [0, 10, 20]

    def test_raises_when_no_room(self):
        # 54 rows, need 13 bands with spacing >= 4: 13*4 = 52 fits, 14 doesn't
        with pytest.raises(BandPlacementError):
            _pad_cyclic([0], 54, 3, 15)


class TestAssignedNeighborsGeneralD:
    def test_interior_node_has_axis_predecessors(self):
        from repro.core.an import _assigned_neighbors
        from repro.topology.coords import CoordCodec

        codec = CoordCodec((5, 5))
        out = _assigned_neighbors(np.array([2, 3]), 5, 2, codec)
        assert set(out) == {codec.ravel(np.array([1, 3])), codec.ravel(np.array([2, 2]))}

    def test_origin_has_none(self):
        from repro.core.an import _assigned_neighbors
        from repro.topology.coords import CoordCodec

        codec = CoordCodec((5, 5))
        assert _assigned_neighbors(np.array([0, 0]), 5, 2, codec) == []

    def test_last_slice_adds_wrap(self):
        from repro.core.an import _assigned_neighbors
        from repro.topology.coords import CoordCodec

        codec = CoordCodec((5, 5))
        out = _assigned_neighbors(np.array([4, 4]), 5, 2, codec)
        assert len(out) == 4  # -1 and wrap on both axes

    def test_3d_count_bound(self):
        from repro.core.an import _assigned_neighbors
        from repro.topology.coords import CoordCodec

        codec = CoordCodec((4, 4, 4))
        out = _assigned_neighbors(np.array([3, 3, 3]), 4, 3, codec)
        assert len(out) == 6  # 2d with d=3


class TestPaintingInternals:
    def test_king_offsets_count(self):
        from repro.core.painting import _king_offsets

        assert len(_king_offsets(2)) == 8
        assert len(_king_offsets(3)) == 26

    def test_dilate_dim0_wraps(self):
        from repro.core.painting import _dilate_dim0

        black = np.zeros((6, 4), dtype=bool)
        black[0, 1] = True
        out = _dilate_dim0(black)
        assert out[5, 1] and out[1, 1] and out[0, 1]
        assert out.sum() == 3


class TestChernoffInternals:
    def test_prediction_fields(self, bn2_medium):
        from repro.analysis.chernoff import predict_healthiness

        pred = predict_healthiness(bn2_medium, 1e-6)
        assert pred.total_bound <= (
            pred.cond1_bound + pred.cond2_bound + pred.cond3_bound + 1e-12
        )
        row = pred.as_row()
        assert row[0] == 1e-6 and len(row) == 5

    def test_tiny_p_gives_meaningful_bound(self, bn2_medium):
        """At small enough p the union bound finally drops below 1 —
        the asymptotic regime the paper's Lemma 4 lives in."""
        from repro.analysis.chernoff import predict_healthiness

        pred = predict_healthiness(bn2_medium, 1e-8)
        assert pred.cond2_bound < 0.1


class TestBnTrialEdgeCases:
    def test_trial_with_zero_p_always_straight(self, bn2_small):
        from repro.core.bn import BTorus

        out = BTorus(bn2_small).trial(0.0, seed=5)
        assert out.success and out.num_faults == 0

    def test_survives_strategy_paper(self, bn2_small):
        from repro.core.bn import BTorus

        bt = BTorus(bn2_small)
        faults = np.zeros(bn2_small.shape, dtype=bool)
        faults[20, 20] = True
        assert bt.survives(faults, strategy="paper")


class TestSimEngineEdgeCases:
    def test_zero_length_route(self):
        from repro.sim.engine import simulate

        res = simulate((4, 4), np.array([[3, 3]]))
        assert res.delivered == 1 and res.latencies[0] == 0

    def test_max_cycles_cutoff(self):
        from repro.sim.engine import simulate
        from repro.sim.traffic import make_traffic
        from repro.util.rng import spawn_rng

        t = make_traffic((8, 8), "uniform", 100, spawn_rng(0))
        res = simulate((8, 8), t, max_cycles=2)
        assert res.delivered < res.total
        assert res.cycles == 2

    def test_empty_traffic(self):
        from repro.sim.engine import simulate

        res = simulate((4, 4), np.empty((0, 2), dtype=int))
        assert res.total == 0 and res.throughput == 0.0
