"""Serve subsystem: protocol, daemon, concurrency, determinism.

Covers the wire contract (round-trips, malformed/oversized frames,
version-mismatch rejection), per-machine mutation ordering under
concurrent clients, subscriber backpressure, graceful shutdown
mid-stream, and the determinism contract: ingesting the scripted event
sequence online — directly or over TCP — leaves byte-identical machine
state to the offline LifetimeSpec path.

No pytest-asyncio here: each test drives its own ``asyncio.run`` so the
suite runs on the stock toolchain.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.protocol import LifetimeSpec
from repro.serve import protocol
from repro.serve.client import LoadGenConfig, LoadGenerator, ServeClient, ServeRequestError
from repro.serve.server import ReproServer, ServeConfig, ServeError
from repro.serve.state import (
    MachineState,
    offline_digest,
    scripted_events,
    scripted_session,
)
from repro.serve.telemetry import LatencyHistogram

BN_PARAMS = {"d": 2, "b": 3, "s": 1, "t": 2}
BN_SPEC = LifetimeSpec(timeline="bernoulli", rate=0.0005, repair_rate=0.3, max_steps=40)


def canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


async def _started_server(**overrides) -> ReproServer:
    server = ReproServer(ServeConfig(port=0, **overrides))
    await server.start()
    return server


async def _stop(server: ReproServer) -> None:
    server.request_shutdown()
    await server.serve_until_shutdown()


class TestProtocol:
    def test_round_trip_all_frame_shapes(self):
        frames = [
            protocol.request_frame("event", 7, machine="m", kind="fault", node=3),
            protocol.ok_response(7, {"seq": 1}),
            protocol.error_response(7, "unknown-machine", "no such machine"),
            protocol.event_frame("telemetry", snapshot={"alive": True}),
        ]
        for frame in frames:
            assert protocol.decode_frame(protocol.encode_frame(frame)) == frame

    def test_canonical_bytes_are_stable(self):
        a = protocol.encode_frame({"v": 1, "b": 2, "a": 1})
        b = protocol.encode_frame({"a": 1, "v": 1, "b": 2})
        assert a == b  # sorted keys, compact separators

    def test_malformed_frames_rejected(self):
        for line in (b"not json\n", b"[1, 2, 3]\n", b'"just a string"\n', b"\xff\xfe\n"):
            with pytest.raises(protocol.ProtocolError) as err:
                protocol.decode_frame(line)
            assert err.value.code == "malformed"

    def test_version_mismatch_rejected_as_version_not_parse_error(self):
        for bad in ({"v": 2, "op": "ping"}, {"op": "ping"}, {"v": "1", "op": "ping"}):
            with pytest.raises(protocol.ProtocolError) as err:
                protocol.decode_frame(json.dumps(bad).encode() + b"\n")
            assert err.value.code == "version"

    def test_oversized_frames_rejected_both_directions(self):
        blob = {"v": protocol.PROTOCOL_VERSION, "pad": "x" * protocol.MAX_FRAME_BYTES}
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.encode_frame(blob)
        assert err.value.code == "oversized"
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))
        assert err.value.code == "oversized"


class TestServerBasics:
    def test_ping_version_create_list(self):
        async def go():
            server = await _started_server()
            try:
                c = await ServeClient.connect("127.0.0.1", server.port)
                assert await c.request("ping") == {"pong": True}
                version = await c.request("version")
                assert version["protocol"] == protocol.PROTOCOL_VERSION
                info = await c.request(
                    "create", machine="m0", construction="bn", params=BN_PARAMS
                )
                assert info["num_nodes"] > 0
                assert info["incremental"] is True
                listing = await c.request("list")
                assert [m["name"] for m in listing["machines"]] == ["m0"]
                await c.close()
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_op_errors_keep_connection_alive(self):
        async def go():
            server = await _started_server()
            try:
                c = await ServeClient.connect("127.0.0.1", server.port)
                with pytest.raises(ServeRequestError) as err:
                    await c.request("event", machine="ghost", kind="fault", node=0)
                assert err.value.code == "unknown-machine"
                with pytest.raises(ServeRequestError) as err:
                    await c.request("frobnicate")
                assert err.value.code == "unknown-op"
                with pytest.raises(ServeRequestError) as err:
                    await c.request("create", machine="m", construction="nope")
                assert err.value.code == "unknown-construction"
                # the connection survived all three op-level errors
                assert await c.request("ping") == {"pong": True}
                await c.close()
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_create_twice_conflicts_unless_exist_ok(self):
        async def go():
            server = await _started_server()
            try:
                c = await ServeClient.connect("127.0.0.1", server.port)
                await c.request("create", machine="m", construction="sparerows",
                                params={"n": 8, "sigma": 2})
                with pytest.raises(ServeRequestError) as err:
                    await c.request("create", machine="m", construction="sparerows",
                                    params={"n": 8, "sigma": 2})
                assert err.value.code == "exists"
                again = await c.request("create", machine="m", construction="sparerows",
                                        params={"n": 8, "sigma": 2}, exist_ok=True)
                assert again["name"] == "m"
                await c.close()
            finally:
                await _stop(server)

        asyncio.run(go())


class TestWireViolations:
    """Framing violations answer with a stable code, then close."""

    async def _raw_exchange(self, server: ReproServer, raw: bytes) -> tuple[dict, bytes]:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port, limit=protocol.MAX_FRAME_BYTES + 1
        )
        writer.write(raw)
        await writer.drain()
        line = await reader.readline()
        rest = await reader.read()  # EOF ⇒ the server closed on us
        writer.close()
        await writer.wait_closed()
        return json.loads(line), rest

    def test_malformed_then_close(self):
        async def go():
            server = await _started_server()
            try:
                frame, rest = await self._raw_exchange(server, b"this is not json\n")
                assert frame["ok"] is False
                assert frame["error"]["code"] == "malformed"
                assert rest == b""
                assert server.telemetry.protocol_errors == 1
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_version_mismatch_then_close(self):
        async def go():
            server = await _started_server()
            try:
                raw = json.dumps({"v": 99, "id": 1, "op": "ping"}).encode() + b"\n"
                frame, rest = await self._raw_exchange(server, raw)
                assert frame["error"]["code"] == "version"
                assert rest == b""
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_oversized_line_rejected(self):
        async def go():
            server = await _started_server()
            try:
                raw = b'{"v":1,"pad":"' + b"x" * (protocol.MAX_FRAME_BYTES + 16) + b'"}\n'
                try:
                    frame, _ = await self._raw_exchange(server, raw)
                    assert frame["error"]["code"] == "oversized"
                except (ConnectionError, OSError):
                    pass  # the server may drop the socket before our read
                assert server.telemetry.protocol_errors == 1
            finally:
                await _stop(server)

        asyncio.run(go())


class TestConcurrentMutation:
    def test_seq_is_a_total_order_across_clients(self):
        """4 clients hammer one machine; every applied mutation gets a
        unique, gap-free sequence number — the actor lock's total order."""

        async def client_work(port: int, node: int, rounds: int) -> list[int]:
            c = await ServeClient.connect("127.0.0.1", port)
            seqs = []
            for i in range(rounds):
                kind = "fault" if i % 2 == 0 else "repair"
                result = await c.request("event", machine="m", kind=kind, node=node)
                assert result["alive"] is True
                seqs.append(result["seq"])
            await c.close()
            return seqs

        async def go():
            server = await _started_server()
            try:
                setup = await ServeClient.connect("127.0.0.1", server.port)
                await setup.request("create", machine="m", construction="bn",
                                    params=BN_PARAMS)
                # Spread each client's node across the host array so the
                # concurrent fault sets never crowd one brick.
                per_client = await asyncio.gather(
                    *(client_work(server.port, node, 24)
                      for node in (0, 450, 900, 1350))
                )
                all_seqs = sorted(s for seqs in per_client for s in seqs)
                assert all_seqs == list(range(1, 4 * 24 + 1))
                for seqs in per_client:  # each client saw its own order
                    assert seqs == sorted(seqs)
                await setup.close()
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_events_batch_is_atomic(self):
        """A batched ingest holds the lock once: its seqs are contiguous
        even while another client floods single events."""

        async def go():
            server = await _started_server()
            try:
                a = await ServeClient.connect("127.0.0.1", server.port)
                b = await ServeClient.connect("127.0.0.1", server.port)
                await a.request("create", machine="m", construction="bn",
                                params=BN_PARAMS)
                flood = asyncio.ensure_future(_flood(b))
                for _ in range(5):
                    batch = [["fault", 900], ["repair", 900]] * 3
                    results = (await a.request("events", machine="m",
                                               events=batch))["results"]
                    seqs = [r["seq"] for r in results]
                    assert seqs == list(range(seqs[0], seqs[0] + len(batch)))
                flood.cancel()
                try:
                    await flood
                except asyncio.CancelledError:
                    pass
                await a.close()
                await b.close()
            finally:
                await _stop(server)

        async def _flood(client: ServeClient) -> None:
            i = 0
            while True:
                kind = "fault" if i % 2 == 0 else "repair"
                await client.request("event", machine="m", kind=kind, node=5)
                i += 1

        asyncio.run(go())


class TestStreamingAndShutdown:
    def test_graceful_shutdown_mid_stream(self):
        """A telemetry subscriber sees snapshots, then the final
        ``shutdown`` event frame, then EOF — never a bare disconnect."""

        async def go():
            server = await _started_server(telemetry_interval=0.02)
            try:
                sub = await ServeClient.connect("127.0.0.1", server.port)
                await sub.request("create", machine="m", construction="sparerows",
                                  params={"n": 8, "sigma": 2})
                assert (await sub.request("subscribe", machine="m"))["subscribed"]
                seen = 0
                while seen < 3:
                    frame = await sub.next_event(timeout=5.0)
                    assert frame["event"] == "telemetry"
                    assert frame["snapshot"]["machine"] == "m"
                    seen += 1
                other = await ServeClient.connect("127.0.0.1", server.port)
                assert (await other.request("shutdown"))["stopping"] is True
                # drain: telemetry frames may still be queued ahead of the
                # farewell, but the farewell must arrive before EOF
                while True:
                    frame = await sub.next_event(timeout=5.0)
                    if frame["event"] == "shutdown":
                        break
                    assert frame["event"] == "telemetry"
                with pytest.raises((ConnectionError, asyncio.TimeoutError)):
                    await sub.next_event(timeout=1.0)
                await sub.close()
                await other.close()
            finally:
                await _stop(server)

        asyncio.run(go())

    def test_slow_subscriber_drops_snapshots_not_the_server(self):
        async def go():
            server = await _started_server(
                telemetry_interval=0.005, subscriber_queue=1
            )
            try:
                sub = await ServeClient.connect("127.0.0.1", server.port)
                await sub.request("subscribe")
                # Simulate a consumer wedged mid-write (kernel buffers make
                # a merely-idle reader absorb small frames forever): stall
                # the pump so the bounded queue actually fills.
                (conn,) = server._conns
                conn.sub_task.cancel()
                await asyncio.sleep(0.3)
                assert server.telemetry.snapshots_dropped > 0
                # meanwhile the daemon still answers everyone else promptly
                other = await ServeClient.connect("127.0.0.1", server.port)
                assert await other.request("ping") == {"pong": True}
                await other.close()
                await sub.close()
            finally:
                await _stop(server)

        asyncio.run(go())


class TestDeterminism:
    """Online ingestion ≡ offline LifetimeSpec path, byte for byte."""

    def test_bn_online_matches_offline_digest(self):
        events = scripted_events("bn", BN_PARAMS, BN_SPEC, seed=3)
        assert events, "spec must produce a non-trivial event sequence"
        state = MachineState("m", "bn", BN_PARAMS)
        for kind, node in events:
            state.apply_event(kind, node)
        assert canonical(state.digest()) == canonical(
            offline_digest("bn", BN_PARAMS, BN_SPEC, seed=3)
        )

    def test_generic_construction_matches_offline_even_through_death(self):
        params = {"n": 8, "sigma": 2}
        spec = LifetimeSpec(timeline="uniform", repair_rate=0.1, max_steps=200)
        for seed in (0, 1, 2):
            events = scripted_events("sparerows", params, spec, seed)
            state = MachineState("m", "sparerows", params)
            for kind, node in events:
                state.apply_event(kind, node)
            assert canonical(state.digest()) == canonical(
                offline_digest("sparerows", params, spec, seed)
            )

    def test_online_over_the_wire_matches_offline_digest(self):
        async def go() -> dict:
            server = await _started_server()
            try:
                c = await ServeClient.connect("127.0.0.1", server.port)
                await c.request("create", machine="m", construction="bn",
                                params=BN_PARAMS)
                events = scripted_events("bn", BN_PARAMS, BN_SPEC, seed=3)
                half = len(events) // 2
                for kind, node in events[:half]:  # singles ...
                    await c.request("event", machine="m", kind=kind, node=node)
                await c.request(  # ... then one atomic batch
                    "events", machine="m",
                    events=[[k, n] for k, n in events[half:]],
                )
                digest = await c.request("digest", machine="m")
                await c.close()
                return digest
            finally:
                await _stop(server)

        wire_digest = asyncio.run(go())
        assert canonical(wire_digest) == canonical(
            offline_digest("bn", BN_PARAMS, BN_SPEC, seed=3)
        )

    def test_scripted_session_is_reproducible(self):
        a, b = scripted_session(), scripted_session()
        assert canonical(a) == canonical(b)
        assert a["digest"]["alive"] is True
        assert a["telemetry"]["traffic"]["queries"] == 3
        # The scripted session's third query pins the adaptive/QoS path.
        adaptive = a["queries"][2]
        assert adaptive["router"] == "adaptive"
        assert [row["qos_class"] for row in adaptive["per_class"]] == [0, 1]


class TestTelemetryPrimitives:
    def test_latency_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in (1.0,) * 98 + (100.0, 200.0):
            hist.record(ms)
        assert hist.count == 100
        assert hist.percentile(50) <= 2.0
        assert hist.percentile(99) >= 50.0
        assert hist.percentile(100) == 200.0
        summary = hist.to_dict()
        assert summary["count"] == 100 and summary["max_ms"] == 200.0

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.to_dict() == {"count": 0}
        assert hist.percentile(50) != hist.percentile(50)  # NaN

    def test_machine_telemetry_in_snapshot(self):
        state = MachineState("m", "sparerows", {"n": 8, "sigma": 2})
        state.apply_event("fault", 3)
        state.apply_event("repair", 3)
        snap = state.telemetry_snapshot()
        assert snap["events"] == {
            "faults": 1, "repairs": 1, "masked": 0, "replaced": 1,
            "rejected_dead": 0,
        }
        assert snap["live_faults"] == 0 and snap["seq"] == 2


class TestLoadGenerator:
    def test_small_burst_sustains_zero_errors(self):
        async def go() -> dict:
            server = await _started_server()
            try:
                config = LoadGenConfig(
                    port=server.port, clients=4, requests=60, messages=8, seed=7
                )
                return await LoadGenerator(config).run()
            finally:
                await _stop(server)

        report = asyncio.run(go())
        totals = report["totals"]
        assert totals["requests"] == 60
        assert totals["errors"] == 0 and totals["client_exceptions"] == 0
        assert not totals["machine_died"]
        assert report["latency"]["count"] == 60
        assert report["telemetry"]["alive"] is True


class TestModelTaggedEvents:
    """Fault-model tags on ingested events (docs/faults.md): per-tag
    tallies in digest/telemetry, surfaced only when nonempty."""

    def test_untagged_sessions_keep_byte_identical_digests(self):
        state = MachineState("m", "sparerows", {"n": 8, "sigma": 2})
        state.apply_event("fault", 3)
        assert "model_faults" not in state.digest()
        assert "model_faults" not in state.telemetry_snapshot()

    def test_tagged_faults_tally_per_model(self):
        state = MachineState("m", "sparerows", {"n": 8, "sigma": 2})
        state.apply_event("fault", 3, model="neighbor")
        state.apply_event("fault", 11, model="neighbor")
        state.apply_event("fault", 20, model="component")
        # Repairs are not arrivals: no tally even when tagged.
        state.apply_event("repair", 3, model="neighbor")
        expect = {"component": 1, "neighbor": 2}
        assert state.digest()["model_faults"] == expect
        assert state.telemetry_snapshot()["model_faults"] == expect

    def test_unknown_tag_rejected_with_registry_names(self):
        state = MachineState("m", "sparerows", {"n": 8, "sigma": 2})
        with pytest.raises(ValueError, match="bernoulli"):
            state.apply_event("fault", 3, model="gamma-ray")
        # The rejected event mutated nothing.
        assert state.seq == 0 and state.num_faults == 0

    def test_tags_flow_over_the_wire_in_both_event_ops(self):
        async def go() -> tuple[dict, dict]:
            server = await _started_server()
            try:
                c = await ServeClient.connect("127.0.0.1", server.port)
                await c.request("create", machine="m", construction="sparerows",
                                params={"n": 8, "sigma": 2})
                await c.request("event", machine="m", kind="fault", node=3,
                                model="neighbor")
                await c.request(
                    "events", machine="m",
                    events=[["repair", 3], ["fault", 11, "component"],
                            ["fault", 20, "component"]],
                )
                with pytest.raises(ServeRequestError) as err:
                    await c.request("event", machine="m", kind="fault", node=0,
                                    model="gamma-ray")
                digest = await c.request("digest", machine="m")
                await c.close()
                return digest, {"code": err.value.code}
            finally:
                await _stop(server)

        digest, err = asyncio.run(go())
        assert digest["model_faults"] == {"component": 2, "neighbor": 1}
        assert err["code"] == "bad-request"


class TestServeErrors:
    def test_create_machine_validation(self):
        server = ReproServer()
        with pytest.raises(ServeError):
            server.create_machine("", "bn", {})
        with pytest.raises(ServeError) as err:
            server.create_machine("m", "bn", {"bogus": 1})
        assert err.value.code == "bad-request"
