"""Tests for the CSR graph substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.graph import CSRGraph


def triangle() -> CSRGraph:
    return CSRGraph(3, np.array([[0, 1], [1, 2], [2, 0]]))


class TestConstruction:
    def test_dedupes_and_canonicalises(self):
        g = CSRGraph(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([[0, 0]]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph(2, np.array([[0, 2]]))

    def test_empty_graph(self):
        g = CSRGraph(4, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]


class TestQueries:
    def test_neighbors(self):
        g = triangle()
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_degrees(self):
        assert triangle().degrees().tolist() == [2, 2, 2]

    def test_has_edge(self):
        g = CSRGraph(4, np.array([[0, 1], [2, 3]]))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_has_edges_vectorised(self):
        g = CSRGraph(4, np.array([[0, 1], [2, 3]]))
        out = g.has_edges(np.array([0, 1, 0, 3]), np.array([1, 0, 3, 2]))
        assert out.tolist() == [True, True, False, True]


class TestComponents:
    def test_two_components(self):
        g = CSRGraph(5, np.array([[0, 1], [1, 2], [3, 4]]))
        labels = g.connected_components()
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_alive_mask_splits(self):
        g = CSRGraph(3, np.array([[0, 1], [1, 2]]))
        alive = np.array([True, False, True])
        labels = g.connected_components(alive)
        assert labels[1] == -1
        assert labels[0] != labels[2]

    def test_largest_component_size(self):
        g = CSRGraph(5, np.array([[0, 1], [1, 2], [3, 4]]))
        assert g.largest_component_size() == 3


class TestConversions:
    def test_networkx_roundtrip(self):
        import networkx as nx

        g = triangle()
        gx = g.to_networkx()
        assert nx.is_isomorphic(gx, nx.cycle_graph(3))
        back = CSRGraph.from_networkx(gx)
        assert back.num_edges == 3


@given(st.data())
def test_csr_agrees_with_networkx(data):
    import networkx as nx

    n = data.draw(st.integers(min_value=2, max_value=12))
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda p: p[0] != p[1]),
            max_size=30,
        )
    )
    g = CSRGraph(n, np.array(pairs, dtype=np.int64).reshape(-1, 2))
    gx = nx.Graph()
    gx.add_nodes_from(range(n))
    gx.add_edges_from(pairs)
    assert g.num_edges == gx.number_of_edges()
    assert g.degrees().tolist() == [gx.degree(v) for v in range(n)]
    labels = g.connected_components()
    for comp in nx.connected_components(gx):
        comp = list(comp)
        assert len({labels[v] for v in comp}) == 1
