"""Tests for the analysis stack (stats, Monte-Carlo, sweeps, predictions)."""

from __future__ import annotations

import pytest

from repro.analysis.chernoff import predict_healthiness
from repro.analysis.montecarlo import MCResult, MonteCarlo
from repro.analysis.stats import binomial_tail, wilson_interval
from repro.analysis.sweep import (
    estimate_threshold,
    sweep_bn_threshold,
    sweep_dn_adversarial,
    ThresholdPoint,
)
from repro.core.bn import TrialOutcome


class TestStats:
    def test_wilson_contains_p_hat(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_wilson_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and hi < 0.25

    def test_wilson_range_check(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_binomial_tail_exact(self):
        # P[Bin(3, 0.5) > 1] = 4/8
        assert binomial_tail(3, 0.5, 1) == pytest.approx(0.5)

    def test_binomial_tail_edge(self):
        assert binomial_tail(5, 0.3, 5) == 0.0


class TestMonteCarlo:
    def test_aggregation(self):
        def fn(seed):
            ok = seed % 3 != 0
            return TrialOutcome(
                success=ok, category="ok" if ok else "unhealthy", num_faults=seed
            )

        res = MonteCarlo(fn).run(9)
        assert res.successes == 6
        assert res.categories["unhealthy"] == 3
        assert res.mean_faults == pytest.approx(4.0)
        assert "unhealthy" in res.summary()

    def test_ci_property(self):
        res = MCResult(trials=10, successes=10)
        lo, hi = res.ci
        assert lo > 0.7 and hi == 1.0

    def test_seed0_offset(self):
        seen = []

        def fn(seed):
            seen.append(seed)
            return TrialOutcome(success=True, category="ok")

        MonteCarlo(fn).run(3, seed0=100)
        assert seen == [100, 101, 102]


class TestSweeps:
    def test_bn_threshold_monotone_shape(self, bn2_small):
        pts = sweep_bn_threshold(
            bn2_small, [bn2_small.paper_fault_probability, 0.05], trials=6
        )
        assert pts[0].result.success_rate >= pts[1].result.success_rate

    def test_dn_campaign_all_ok(self, dn2_small):
        res = sweep_dn_adversarial(dn2_small, ["random", "diagonal"], trials=3)
        for pattern, r in res.items():
            assert r.success_rate == 1.0, pattern

    def test_estimate_threshold_interpolates(self):
        pts = [
            ThresholdPoint(0.001, MCResult(trials=10, successes=10)),
            ThresholdPoint(0.01, MCResult(trials=10, successes=5)),
            ThresholdPoint(0.1, MCResult(trials=10, successes=0)),
        ]
        th = estimate_threshold(pts, level=0.5)
        assert 0.001 < th <= 0.01

    def test_estimate_threshold_all_above(self):
        pts = [ThresholdPoint(0.1, MCResult(trials=5, successes=5))]
        assert estimate_threshold(pts) == 0.1


class TestPredictions:
    def test_bounds_decrease_with_p(self, bn2_medium):
        hi = predict_healthiness(bn2_medium, 1e-3)
        lo = predict_healthiness(bn2_medium, 1e-5)
        assert lo.total_bound <= hi.total_bound

    def test_bounds_are_probabilities(self, bn2_medium):
        pred = predict_healthiness(bn2_medium, 1e-4)
        for v in (pred.cond1_bound, pred.cond2_bound, pred.cond3_bound, pred.total_bound):
            assert 0.0 <= v <= 1.0

    def test_bound_actually_bounds_measured(self, bn2_medium):
        """The union bound must upper-bound the measured unhealthiness
        (sampled) — the whole point of E4."""
        from repro.core.bn import BTorus

        p = 1e-5
        pred = predict_healthiness(bn2_medium, p)
        bt = BTorus(bn2_medium)
        fails = 0
        trials = 10
        for s in range(trials):
            out = bt.trial(p, seed=s, check_health=True)
            fails += not out.health.healthy
        assert fails / trials <= pred.total_bound + 0.35  # slack for tiny sample
