"""Tests for figure regeneration and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.viz import figure1, figure2, render_bands


class TestFigures:
    def test_figure1_structure(self):
        fig = figure1()
        assert "Figure 1" in fig.title
        assert fig.meta["bands"] == 6
        assert fig.meta["wandering_bands"] >= 1  # bands wind around regions
        # the fault is masked: 'X' present, '!' absent
        assert "X" in fig.text and "!" not in fig.text

    def test_figure2_has_jumps(self):
        fig = figure2()
        assert fig.meta["jumps"] >= 1
        assert "*" in fig.text
        assert fig.meta["verified_nodes"] == 36 ** 2

    def test_render_rejects_3d(self, bn3_small):
        import numpy as np

        from repro.core.placement import place_bands

        bands = place_bands(bn3_small, np.zeros(bn3_small.shape, dtype=bool))
        with pytest.raises(ValueError):
            render_bands(bn3_small, bands)


class TestCLI:
    def test_info_bn(self, capsys):
        assert main(["info", "bn", "--b", "4", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "B^2_96" in out and "degree=10" in out

    def test_info_dn(self, capsys):
        assert main(["info", "dn", "--n", "70", "--b", "2"]) == 0
        out = capsys.readouterr().out
        assert "k = 8" in out

    def test_bn_trial(self, capsys):
        assert main(["bn-trial", "--trials", "3"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_dn_attack(self, capsys):
        assert main(["dn-attack", "--trials", "1", "--patterns", "random"]) == 0
        out = capsys.readouterr().out
        assert "random" in out

    def test_figures_cmd(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out

    def test_route_cmd(self, capsys):
        assert main(["route", "--messages", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_lifetime_cmd(self, capsys):
        assert main(["lifetime", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "median=" in out and "theory scale" in out

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
