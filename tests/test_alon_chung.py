"""Tests for the Alon–Chung baseline (Theorem 12, Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.alon_chung import AlonChungMesh, AlonChungPath, deep_dfs_path
from repro.baselines.expander import gabber_galil_expander
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng


class TestDeepDFS:
    def test_full_graph_path_is_long(self):
        g = gabber_galil_expander(8)
        alive = np.ones(g.num_nodes, dtype=bool)
        path = deep_dfs_path(g, alive)
        assert len(path) >= g.num_nodes // 2

    def test_path_is_simple_and_valid(self):
        g = gabber_galil_expander(8)
        alive = np.ones(g.num_nodes, dtype=bool)
        path = deep_dfs_path(g, alive)
        assert len(np.unique(path)) == len(path)
        assert g.has_edges(path[:-1], path[1:]).all()

    def test_empty_when_all_dead(self):
        g = gabber_galil_expander(5)
        assert len(deep_dfs_path(g, np.zeros(g.num_nodes, dtype=bool))) == 0


class TestAlonChungPath:
    def test_no_faults(self):
        ac = AlonChungPath(50, blowup=2.0)
        rec = ac.recover(np.zeros(ac.num_nodes, dtype=bool))
        assert len(rec.path) == 50

    def test_random_linear_faults(self):
        ac = AlonChungPath(60, blowup=3.0)
        rng = spawn_rng(0, "ac")
        wins = 0
        for seed in range(5):
            faulty = spawn_rng(seed, "ac-f").random(ac.num_nodes) < 0.15
            wins += ac.survives(faulty, rng=spawn_rng(seed, "ac-d"))
        assert wins >= 4

    def test_adversarial_fraction(self):
        # kill an eighth of the nodes adversarially (lowest-degree-first
        # stand-in: first ids) — expander still has a long path
        ac = AlonChungPath(50, blowup=3.0)
        faulty = np.zeros(ac.num_nodes, dtype=bool)
        faulty[: ac.num_nodes // 8] = True
        assert ac.survives(faulty)

    def test_too_many_faults_raise(self):
        ac = AlonChungPath(50, blowup=2.0)
        faulty = np.ones(ac.num_nodes, dtype=bool)
        faulty[:10] = False
        with pytest.raises(ReconstructionError):
            ac.recover(faulty)

    def test_random_regular_backend(self):
        ac = AlonChungPath(40, blowup=2.5, kind="random-regular", degree=6, rng=spawn_rng(2))
        rec = ac.recover(np.zeros(ac.num_nodes, dtype=bool))
        assert len(rec.path) == 40

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            AlonChungPath(10, kind="nope")


class TestAlonChungMesh:
    def test_2d_mesh_recovery(self):
        acm = AlonChungMesh(12, 2, blowup=3.0)
        faulty = np.zeros(acm.num_nodes, dtype=bool)
        # kill a handful of scattered nodes (each kills one supernode)
        rng = spawn_rng(3)
        faulty[rng.choice(acm.num_nodes, size=8, replace=False)] = True
        phi = acm.recover(faulty)
        assert len(phi) == 12 ** 2
        assert not faulty[phi].any()

    def test_mesh_edges_exist(self):
        """Verify the product-structure embedding edge-by-edge."""
        from repro.topology.embeddings import verify_mesh_embedding

        acm = AlonChungMesh(8, 2, blowup=3.0)
        faulty = np.zeros(acm.num_nodes, dtype=bool)
        phi = acm.recover(faulty)
        host = acm.path_host.graph
        sup = acm.super_size

        def node_ok(ids):
            return ~faulty[np.asarray(ids)]

        def edge_ok(us, vs):
            us, vs = np.asarray(us), np.asarray(vs)
            su, sv = us // sup, vs // sup
            ru, rv = us % sup, vs % sup
            same_super = (su == sv) & (np.abs(ru - rv) == 1)  # (L_n)^{d-1} edge, d=2
            cross = (ru == rv) & host.has_edges(su, sv)
            return same_super | cross

        verify_mesh_embedding((8, 8), phi, node_ok, edge_ok)

    def test_tolerates_wrapper(self):
        acm = AlonChungMesh(10, 2, blowup=3.0)
        assert acm.tolerates(np.zeros(acm.num_nodes, dtype=bool))
