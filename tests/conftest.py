"""Shared fixtures: small-but-real construction parameter sets.

The smallest legal ``B^2`` instance (b=3, s=1, t=2) has 1944 nodes and a
6x4 tile grid — large enough to exercise every code path (bricks, frames,
painting, interpolation, wrap-around) while keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import BnParams, DnParams


@pytest.fixture(scope="session")
def bn2_small() -> BnParams:
    """Smallest legal 2-D B instance: n=36, m=54."""
    return BnParams(d=2, b=3, s=1, t=2)


@pytest.fixture(scope="session")
def bn2_medium() -> BnParams:
    """b=4 instance: n=96, m=128 (12288 nodes)."""
    return BnParams(d=2, b=4, s=1, t=2)


@pytest.fixture(scope="session")
def bn3_small() -> BnParams:
    """Smallest legal 3-D B instance: n=36, m=54 (69984 nodes)."""
    return BnParams(d=3, b=3, s=1, t=2)


@pytest.fixture(scope="session")
def dn2_small() -> DnParams:
    """2-D worst-case instance: n=70, b=2 -> k=8 faults tolerated."""
    return DnParams(d=2, n=70, b=2)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
