"""Tests for mesh views of recovered tori (the title's 'and hence the mesh')."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn import BTorus
from repro.core.mesh import mesh_phi, submesh_phi, verify_recovered_mesh


@pytest.fixture(scope="module")
def recovered(bn2_small):
    bt = BTorus(bn2_small)
    faults = np.zeros(bn2_small.shape, dtype=bool)
    faults[20, 20] = True
    rec = bt.recover(faults, strategy="paper")
    return bt, faults, rec


class TestSubmeshPhi:
    def test_full_mesh_is_torus_nodes(self, recovered):
        _, _, rec = recovered
        mp = mesh_phi(rec)
        assert (np.sort(mp) == np.sort(rec.phi)).all()

    def test_submesh_size(self, recovered):
        _, _, rec = recovered
        mp = submesh_phi(rec.guest_shape(), rec.phi, (3, 5), (4, 7))
        assert mp.shape == (28,)

    def test_submesh_wraps(self, recovered):
        _, _, rec = recovered
        n = rec.params.n
        mp = submesh_phi(rec.guest_shape(), rec.phi, (n - 2, n - 2), (4, 4))
        assert len(np.unique(mp)) == 16

    def test_bad_sizes(self, recovered):
        _, _, rec = recovered
        with pytest.raises(ValueError):
            submesh_phi(rec.guest_shape(), rec.phi, (0, 0), (0, 5))
        with pytest.raises(ValueError):
            submesh_phi(rec.guest_shape(), rec.phi, (0,), (5,))


class TestVerifiedMesh:
    def test_full_mesh_verifies(self, recovered):
        bt, faults, rec = recovered
        stats = verify_recovered_mesh(rec, faults, bt.bn)
        n = rec.params.n
        assert stats["nodes"] == n * n
        assert stats["edges_checked"] == 2 * n * (n - 1)

    def test_submesh_verifies(self, recovered):
        bt, faults, rec = recovered
        stats = verify_recovered_mesh(rec, faults, bt.bn, corner=(10, 30), sizes=(9, 8))
        assert stats["nodes"] == 72

    def test_3d_mesh(self, bn3_small):
        bt = BTorus(bn3_small)
        faults = np.zeros(bn3_small.shape, dtype=bool)
        rec = bt.recover(faults)
        stats = verify_recovered_mesh(rec, faults, bt.bn, sizes=(6, 6, 6), corner=(0, 0, 0))
        assert stats["nodes"] == 216

    def test_d_construction_mesh_restriction(self, dn2_small):
        """Theorem 13 also covers the mesh: restrict a D recovery."""
        from repro.core.dn import DTorus
        from repro.faults.adversary import adversarial_node_faults
        from repro.topology.embeddings import verify_mesh_embedding
        from repro.util.rng import spawn_rng

        dt = DTorus(dn2_small)
        faults = adversarial_node_faults(
            dn2_small.shape, dn2_small.k, "random", spawn_rng(9)
        )
        rec = dt.recover(faults)
        fault_flat = faults.ravel()
        n = dn2_small.n
        stats = verify_mesh_embedding(
            (n, n),
            rec.phi,
            lambda ids: ~fault_flat[ids],
            lambda us, vs: dt.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs],
        )
        assert stats["nodes"] == n * n
        assert stats["edges_checked"] == 2 * n * (n - 1)
