"""The lifetime subsystem's API layer: specs, aggregates, runner dispatch.

Mirrors tests/test_api.py for the third pillar: LifetimeSpec validation
and serialisation, LifetimeResult aggregation/merging, LifetimeCapable
coverage of the registry, ExperimentRunner dispatch (serial == parallel
== batch, byte-identical JSON), and the CLI front end.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    LifetimeCapable,
    LifetimeOutcome,
    LifetimeResult,
    LifetimeSpec,
    aggregate_lifetimes,
    available,
    get,
)

BN = {"d": 2, "b": 3, "s": 1, "t": 2}


def _spec(grid=(LifetimeSpec(),), trials=6, construction="bn", params=BN):
    return ExperimentSpec(
        construction=construction, params=params, grid=grid, trials=trials,
        name="lifetime-api",
    )


class TestLifetimeSpec:
    def test_defaults_and_label(self):
        assert LifetimeSpec().label() == "life/uniform"
        assert "rho=0.1" in LifetimeSpec(repair_rate=0.1).label()
        assert "rate=0.01" in LifetimeSpec(
            timeline="bernoulli", rate=0.01, max_steps=50
        ).label()
        assert "diagonal" in LifetimeSpec(
            timeline="adversarial", pattern="diagonal"
        ).label()

    def test_round_trip(self):
        spec = LifetimeSpec(timeline="burst", burst=4, max_steps=30, repair_rate=0.2)
        assert LifetimeSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeline="nope"),
            dict(timeline="bernoulli", rate=0.1),       # missing max_steps
            dict(timeline="bernoulli", max_steps=10),   # missing rate
            dict(timeline="burst", max_steps=10),       # missing burst
            dict(timeline="adversarial"),               # missing pattern
            dict(rate=1.5),
            dict(repair_rate=-0.1),
            dict(max_steps=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LifetimeSpec(**kwargs)


class TestLifetimeResult:
    def _outcomes(self):
        return [
            LifetimeOutcome(lifetime=5, steps=6, category="no-frame", failed=True,
                            masked=2, replaced=3),
            LifetimeOutcome(lifetime=9, steps=10, category="capacity", failed=True,
                            masked=4, replaced=5, repaired=1),
            LifetimeOutcome(lifetime=12, steps=12, category="ok", failed=False,
                            masked=6, replaced=6),
        ]

    def test_aggregate(self):
        res = aggregate_lifetimes(self._outcomes())
        assert res.trials == 3
        assert res.lifetimes == [5, 9, 12]
        assert res.median_lifetime == 9
        assert res.min_lifetime == 5 and res.max_lifetime == 12
        assert res.exhausted == 1
        assert res.repaired == 1
        assert res.categories["no-frame"] == 1

    def test_survival_curve_and_repair_fraction(self):
        res = aggregate_lifetimes(self._outcomes())
        assert res.survival_curve([0, 6, 10, 13]) == [1.0, 2 / 3, 1 / 3, 0.0]
        assert res.repair_fraction() == pytest.approx(14 / 26)

    def test_round_trip_and_merge(self):
        res = aggregate_lifetimes(self._outcomes())
        assert LifetimeResult.from_dict(res.to_dict()).to_dict() == res.to_dict()
        parts = [
            aggregate_lifetimes(self._outcomes()[:1]),
            aggregate_lifetimes(self._outcomes()[1:]),
        ]
        assert LifetimeResult.merged(parts).to_dict() == res.to_dict()

    def test_summary_mentions_median(self):
        assert "median=" in aggregate_lifetimes(self._outcomes()).summary()


class TestStepsAccounting:
    def test_exhausted_step_driven_timeline_reports_full_span(self):
        """Sparse bernoulli trials consume all max_steps steps even when the
        trailing ones emit no arrivals."""
        bn = get("bn", **BN)
        spec = LifetimeSpec(timeline="bernoulli", rate=0.00005, max_steps=50)
        out = bn.lifetime_trial(spec, seed=1)
        if not out.failed:  # ~0.1 arrivals/step: exhaustion is the norm
            assert out.steps == 50

    def test_uniform_death_step_is_killing_arrival(self):
        bn = get("bn", **BN)
        out = bn.lifetime_trial(LifetimeSpec(), seed=0)
        assert out.failed and out.steps == out.lifetime + 1


class TestCapability:
    def test_every_registered_construction_is_lifetime_capable(self):
        params = {
            "bn": BN,
            "an": {**BN, "k_sub": 2, "h": 8},
            "dn": {"d": 2, "n": 70, "b": 2},
            "alon_chung": {"n": 20},
            "replication": {"n": 8, "replication": 3},
            "sparerows": {"n": 10, "sigma": 4},
        }
        # max_steps keeps the slow generic full-recompute adapters (an
        # especially: ~3k arrivals to first failure) out of the test budget.
        spec = LifetimeSpec(max_steps=40)
        for name in available():
            c = get(name, **params[name])
            assert isinstance(c, LifetimeCapable), name
            out = c.lifetime_trial(spec, seed=0)
            assert out.lifetime >= 0 and (out.failed or out.category == "ok")

    def test_lifetime_trials_are_deterministic(self):
        dn = get("dn", d=2, n=70, b=2)
        spec = LifetimeSpec(timeline="adversarial", pattern="random")
        a, b = dn.lifetime_trial(spec, 3), dn.lifetime_trial(spec, 3)
        assert (a.lifetime, a.category, a.masked, a.replaced) == (
            b.lifetime, b.category, b.masked, b.replaced,
        )

    def test_bn_batch_gate(self):
        bn = get("bn", **BN)
        assert bn.supports_lifetime_batch(LifetimeSpec())
        assert not bn.supports_lifetime_batch(LifetimeSpec(repair_rate=0.5))
        assert not bn.supports_lifetime_batch(
            LifetimeSpec(timeline="bernoulli", rate=0.01, max_steps=10)
        )
        assert not get("bn", **BN, strategy="paper").supports_lifetime_batch(
            LifetimeSpec()
        )


class TestRunnerDispatch:
    def test_serial_parallel_batch_byte_identical(self, tmp_path):
        # 20 trials span two 16-seed chunks, so workers=2 genuinely uses
        # the pool (a single-chunk spec short-circuits to the serial path)
        # and the chunk-merge path is exercised.
        paths = {}
        for tag, runner in {
            "w1": ExperimentRunner(workers=1, batch=False),
            "w2": ExperimentRunner(workers=2, batch=False),
            "batch": ExperimentRunner(workers=1, batch=True),
        }.items():
            p = tmp_path / f"{tag}.json"
            runner.run(_spec(trials=20)).save(p)
            paths[tag] = p.read_bytes()
        assert paths["w1"] == paths["w2"] == paths["batch"]

    def test_mixed_grid(self):
        """Fault points and lifetime points coexist in one spec."""
        from repro.api import FaultSpec

        spec = _spec(grid=(FaultSpec(p=0.001), LifetimeSpec()), trials=4)
        result = ExperimentRunner().run(spec)
        assert result["p=0.001"].trials == 4
        assert result["life/uniform"].trials == 4
        assert isinstance(result["life/uniform"], LifetimeResult)

    def test_result_round_trip(self, tmp_path):
        result = ExperimentRunner().run(_spec(trials=4))
        p = tmp_path / "r.json"
        result.save(p)
        loaded = ExperimentResult.load(p)
        loaded.save(tmp_path / "r2.json")
        assert p.read_bytes() == (tmp_path / "r2.json").read_bytes()
        assert isinstance(loaded.spec.grid[0], LifetimeSpec)

    def test_generic_construction_via_runner(self):
        spec = _spec(
            construction="dn", params={"d": 2, "n": 70, "b": 2},
            grid=(LifetimeSpec(timeline="adversarial", pattern="random"),), trials=3,
        )
        res = ExperimentRunner(batch=True).run(spec)  # no capability: scalar path
        assert res.points[0].result.trials == 3

    def test_from_grid_lifetimes_param(self):
        spec = ExperimentSpec.from_grid(
            "bn", BN, p_values=[0.001], lifetimes=[LifetimeSpec()], trials=2,
        )
        assert len(spec.grid) == 2 and isinstance(spec.grid[1], LifetimeSpec)


class TestCLI:
    def test_lifetime_out_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "life.json"
        assert main(["lifetime", "--trials", "3", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-experiment-v1"
        assert payload["points"][0]["lifetime_spec"]["timeline"] == "uniform"
        assert payload["points"][0]["result"]["kind"] == "lifetime"
        assert len(payload["points"][0]["result"]["lifetimes"]) == 3
        capsys.readouterr()

    def test_lifetime_serial_parallel_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "w1.json", tmp_path / "w2.json"
        args = ["lifetime", "--trials", "20"]  # 2 chunks: workers=2 fans out
        assert main(args + ["--workers", "1", "--out", str(a)]) == 0
        assert main(args + ["--workers", "2", "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_lifetime_timeline_flags(self, capsys):
        from repro.cli import main

        assert main(["lifetime", "--timeline", "bernoulli", "--rate", "0.002",
                     "--max-steps", "30", "--trials", "2"]) == 0
        assert "life/bernoulli" in capsys.readouterr().out

    def test_lifetime_traffic_snapshots(self, capsys):
        from repro.cli import main

        assert main(["lifetime", "--trials", "2", "--traffic", "uniform",
                     "--checkpoints", "2,4", "--messages", "30"]) == 0
        out = capsys.readouterr().out
        assert "traffic snapshots" in out and "pristine=yes" in out

    def test_lifetime_bad_spec_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["lifetime", "--timeline", "bernoulli", "--trials", "2"]) == 2
        assert "max_steps" in capsys.readouterr().err

    def test_lifetime_other_construction(self, capsys):
        from repro.cli import main

        assert main(["lifetime", "--construction", "sparerows", "--n", "10",
                     "--sigma", "4", "--trials", "2"]) == 0
        assert "median=" in capsys.readouterr().out
