"""Theorem 2 with explicit edge faults (the paper's reduction, verified)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bn import BTorus
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng


@pytest.fixture(scope="module")
def bt(bn2_small):
    return BTorus(bn2_small)


class TestSampling:
    def test_rate(self, bt):
        fe = bt.sample_edge_faults(0.05, spawn_rng(0))
        total = bt.bn.graph().num_edges
        assert abs(len(fe) / total - 0.05) < 0.02

    def test_zero_q_empty(self, bt):
        assert len(bt.sample_edge_faults(0.0, spawn_rng(0))) == 0


class TestRecoveryWithEdgeFaults:
    def test_embedding_avoids_faulty_edges(self, bt, bn2_small):
        rng = spawn_rng(1, "bef")
        faults = np.zeros(bn2_small.shape, dtype=bool)
        fe = bt.sample_edge_faults(3e-4, rng)
        if len(fe) == 0:
            fe = bt.bn.graph().edges()[:2]
        rec = bt.recover(faults, faulty_edges=fe)
        # double-check by hand: no guest edge maps onto a listed faulty edge
        n_nodes = bt.bn.num_nodes
        bad = set(
            (min(int(a), int(b)), max(int(a), int(b))) for a, b in fe
        )
        from repro.topology.coords import CoordCodec

        gc = CoordCodec(rec.guest_shape())
        idx = gc.all_indices()
        for axis in range(bn2_small.d):
            us = rec.phi[idx]
            vs = rec.phi[gc.shift(idx, axis, +1, wrap=True)]
            for a, b in zip(us.tolist(), vs.tolist()):
                assert (min(a, b), max(a, b)) not in bad

    def test_blamed_endpoint_excluded(self, bt, bn2_small):
        # fault exactly one edge; its first endpoint must leave the image
        edge = bt.bn.graph().edges()[100:101]
        rec = bt.recover(np.zeros(bn2_small.shape, dtype=bool), faulty_edges=edge)
        assert int(edge[0, 0]) not in set(rec.phi.tolist())

    def test_node_and_edge_faults_combined(self, bt, bn2_small):
        faults = np.zeros(bn2_small.shape, dtype=bool)
        faults[20, 20] = True
        edge = bt.bn.graph().edges()[5000:5002]
        rec = bt.recover(faults, faulty_edges=edge)
        assert not faults.ravel()[rec.phi].any()

    def test_many_edge_faults_fail_gracefully(self, bt, bn2_small):
        edges = bt.bn.graph().edges()
        fe = edges[spawn_rng(2).random(len(edges)) < 0.2]
        with pytest.raises(ReconstructionError):
            bt.recover(np.zeros(bn2_small.shape, dtype=bool), faulty_edges=fe)
