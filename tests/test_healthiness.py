"""Tests for the healthiness checker (Lemma 4's three conditions)."""

from __future__ import annotations

import numpy as np

from repro.core.healthiness import check_healthiness, find_enclosing_frame
from repro.topology.grid import TileGeometry


def empty_faults(p):
    return np.zeros(p.shape, dtype=bool)


class TestNoFaults:
    def test_fault_free_is_healthy(self, bn2_small):
        rep = check_healthiness(bn2_small, empty_faults(bn2_small))
        assert rep.healthy
        assert rep.num_faults == 0
        assert "healthy=True" in rep.summary()


class TestCondition1:
    def test_dense_rows_violate(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        # one fault every 2 rows in rows 0..17 of column 0: no run of
        # 2b = 6 consecutive fault-free rows in the brick at row-tile 0/1
        faults[0:18:2, 0] = True
        rep = check_healthiness(p, faults)
        assert not rep.cond1_ok
        assert rep.cond1_violations

    def test_sparse_rows_ok(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        faults[0, 0] = True
        rep = check_healthiness(p, faults)
        assert rep.cond1_ok


class TestCondition2:
    def test_many_faults_in_one_brick(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        # s = 1, so two faults in one brick violate condition 2 (but give
        # them distance so condition 1 survives)
        faults[0, 0] = True
        faults[8, 3] = True
        rep = check_healthiness(p, faults)
        assert not rep.cond2_ok
        assert rep.max_brick_faults >= 2

    def test_single_fault_ok(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        faults[20, 20] = True
        rep = check_healthiness(p, faults)
        assert rep.cond2_ok


class TestCondition3:
    def test_isolated_fault_has_frame(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        faults[0, 0] = True
        rep = check_healthiness(p, faults)
        # The faulty tile itself is enclosable (what Lemma 5 needs)...
        assert rep.cond3_faulty_ok
        assert rep.sufficient
        # ...but at b=3 the strict every-node condition already fails for
        # the neighbours of the faulty tile (their only 3-frame contains it).
        assert not rep.cond3_ok

    def test_fault_lattice_blocks_frames(self, bn2_small):
        p = bn2_small
        faults = empty_faults(p)
        # a fault in every second tile leaves no fault-free 3-frame
        geo = TileGeometry(p.shape, p.b)
        for r in range(0, geo.grid_shape[0], 2):
            for c in range(geo.grid_shape[1]):
                faults[r * geo.tile_side, c * geo.tile_side] = True
        rep = check_healthiness(p, faults)
        assert not rep.cond3_ok


class TestFindEnclosingFrame:
    def test_finds_centred_frame(self, bn2_small):
        p = bn2_small
        geo = TileGeometry(p.shape, p.b)
        tf = np.zeros(geo.grid.size, dtype=bool)
        tf[geo.grid.ravel(np.array([2, 2]))] = True
        found = find_enclosing_frame(geo, tf, (2, 2))
        assert found is not None
        corner, s = found
        assert s == 3
        _, interior = geo.frame_and_interior(corner, s)
        assert geo.grid.ravel(np.array([2, 2])) in interior

    def test_none_when_saturated(self, bn2_small):
        p = bn2_small
        geo = TileGeometry(p.shape, p.b)
        tf = np.ones(geo.grid.size, dtype=bool)
        assert find_enclosing_frame(geo, tf, (0, 0)) is None


class TestHealthinessVsRecovery:
    def test_sufficient_instances_always_recover(self, bn2_small):
        """The paper's Lemma 5: (sufficient) healthiness => reconstructible.
        We check the implication empirically on random instances."""
        from repro.core.bn import BTorus
        from repro.util.rng import spawn_rng

        bt = BTorus(bn2_small)
        p_fault = bn2_small.paper_fault_probability
        tested = 0
        for seed in range(30):
            rng = spawn_rng(seed, "health-vs-recovery")
            faults = bt.sample_faults(p_fault, rng)
            rep = bt.check_health(faults)
            assert rep.sufficient or not rep.healthy  # healthy => sufficient
            if rep.sufficient:
                tested += 1
                assert bt.survives(faults), f"sufficient instance failed (seed {seed})"
        # s=1 makes condition 2 strict (any brick with 2 faults fails), so
        # only require a meaningful sample of sufficient instances here.
        assert tested >= 8
