"""Doctest integration + D-recovery rendering tests."""

from __future__ import annotations

import doctest

import numpy as np
import pytest

import repro.analysis.stats
import repro.core.bn
import repro.util.cyclic
import repro.util.rng
import repro.util.tables


@pytest.mark.parametrize(
    "module",
    [
        repro.util.cyclic,
        repro.util.rng,
        repro.util.tables,
        repro.analysis.stats,
        repro.core.bn,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tested = doctest.testmod(module, raise_on_error=False).failed, True
    assert failures == 0


class TestRenderDn:
    def _recovery(self, dn2_small, with_faults=True):
        from repro.core.dn import DTorus
        from repro.faults.adversary import adversarial_node_faults
        from repro.util.rng import spawn_rng

        dt = DTorus(dn2_small)
        faults = (
            adversarial_node_faults(dn2_small.shape, dn2_small.k, "random", spawn_rng(0))
            if with_faults
            else np.zeros(dn2_small.shape, dtype=bool)
        )
        return dt.recover(faults), faults

    def test_renders_grid(self, dn2_small):
        from repro.viz.dn_art import render_dn

        rec, faults = self._recovery(dn2_small)
        text = render_dn(rec, faults)
        assert "row bands" in text
        assert "#" in text
        assert "!" not in text  # every fault masked

    def test_faults_marked(self, dn2_small):
        from repro.viz.dn_art import render_dn

        rec, faults = self._recovery(dn2_small)
        assert "X" in render_dn(rec, faults)

    def test_band_counts_in_header(self, dn2_small):
        from repro.viz.dn_art import render_dn

        rec, _ = self._recovery(dn2_small, with_faults=False)
        assert f"k={dn2_small.k}" in render_dn(rec)

    def test_rejects_non_2d(self):
        from repro.core.dn import DTorus
        from repro.core.params import DnParams
        from repro.viz.dn_art import render_dn

        p = DnParams(d=1, n=20, b=2)
        rec = DTorus(p).recover(np.zeros(p.shape, dtype=bool))
        with pytest.raises(ValueError):
            render_dn(rec)
