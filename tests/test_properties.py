"""Cross-module property-based tests (hypothesis).

These target the deep invariants the constructions rest on:

* ANY valid band set — not just ones our placement produces — yields a
  verified torus extraction (Lemma 6 is about band sets, not placements);
* the straight/paper placements agree with each other's validity checks;
* sparse and dense D recoveries are equivalent;
* submesh restriction commutes with coordinates.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.bands import BandSet
from repro.core.bn_graph import BnGraph
from repro.core.interpolation import interpolate_strip_band
from repro.core.params import BnParams
from repro.core.reconstruction import extract_torus

PARAMS = BnParams(d=2, b=3, s=1, t=2)
BN = BnGraph(PARAMS)


def random_valid_bands(data) -> BandSet:
    """Generate a random valid band set via random per-strip corner grids.

    Bands are built exactly like the paper strategy's interpolation step
    but with *arbitrary* pinned corner values in stacked slots — by
    construction they satisfy slope and untouching, which we re-validate.
    """
    p = PARAMS
    g = p.n // p.tile
    bottoms = []
    for strip in range(p.tile_rows):
        for j in range(p.s):
            # random corner heights within the slot usually pinned by
            # defaults; keep them in the j-th slot's safe range.
            lo = p.b + j * (p.b + 1)
            hi = p.tile - p.b - 1 - (p.s - 1 - j) * (p.b + 1)
            corners = np.array(
                [data.draw(st.integers(min_value=lo, max_value=max(lo, hi))) for _ in range(g)]
            )
            local = interpolate_strip_band(
                p, j, np.ones(g, dtype=bool), corners
            )
            bottoms.append((strip * p.tile + local) % p.m)
    return BandSet(p, np.stack(bottoms, axis=0))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_any_valid_bandset_extracts_a_torus(data):
    """Lemma 6 as a property: valid bands => verified fault-free torus."""
    bands = random_valid_bands(data)
    bands.validate()
    rec = extract_torus(BN, bands, None)
    assert rec.stats["nodes"] == PARAMS.n ** 2


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_extraction_column_cycles_use_legal_gaps(data):
    """Column cycles only ever step +1 (torus edge) or +(b+1) (vertical jump)."""
    bands = random_valid_bands(data)
    p = PARAMS
    for col in (0, p.n // 2, p.n - 1):
        rows = bands.unmasked_rows(col)
        gaps = np.diff(np.concatenate([rows, [rows[0] + p.m]]))
        assert set(np.unique(gaps)) <= {1, p.b + 1}


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dn_sparse_dense_equivalence(dn2_small, data):
    """Sparse (coords) and dense (array) D recoveries produce identical
    band placements and embeddings."""
    from repro.core.dn import DTorus

    dt = DTorus(dn2_small)
    count = data.draw(st.integers(min_value=0, max_value=dn2_small.k))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    dense = np.zeros(dn2_small.shape, dtype=bool)
    if count:
        flat = rng.choice(dn2_small.num_nodes, size=count, replace=False)
        dense.ravel()[flat] = True
    coords = np.argwhere(dense)
    rec_dense = dt.recover(dense, verify=False)
    rec_sparse = dt.recover(fault_coords=coords, verify=False)
    for a, b in zip(rec_dense.bottoms, rec_sparse.bottoms):
        assert (a == b).all()
    assert (rec_dense.phi == rec_sparse.phi).all()


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_submesh_phi_matches_manual_lookup(data):
    from repro.core.mesh import submesh_phi

    n = 12
    phi = np.arange(n * n) * 7 + 3  # arbitrary injective map
    corner = (
        data.draw(st.integers(min_value=0, max_value=n - 1)),
        data.draw(st.integers(min_value=0, max_value=n - 1)),
    )
    sizes = (
        data.draw(st.integers(min_value=1, max_value=n)),
        data.draw(st.integers(min_value=1, max_value=n)),
    )
    sub = submesh_phi((n, n), phi, corner, sizes)
    for i in range(sizes[0]):
        for j in range(sizes[1]):
            gx = (corner[0] + i) % n
            gy = (corner[1] + j) % n
            assert sub[i * sizes[1] + j] == phi[gx * n + gy]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_transition_preserves_unmasked_sets(seed):
    """The Lemma-6 transition maps column z's unmasked set bijectively onto
    column z2's unmasked set (order-preserving rotation)."""
    from repro.core.placement import place_bands
    from repro.core.reconstruction import _transition

    p = PARAMS
    rng = np.random.default_rng(seed)
    faults = np.zeros(p.shape, dtype=bool)
    flat = rng.choice(p.num_nodes, size=2, replace=False)
    faults.ravel()[flat] = True
    try:
        bands = place_bands(p, faults)
    except Exception:
        return  # unlucky draw; placement properties tested elsewhere
    for z in (0, 5):
        z2 = z + 1
        src = bands.unmasked_rows(z)
        out = _transition(src, bands.bottoms[:, z], bands.bottoms[:, z2], p.m, p.b)
        assert (np.sort(out) == bands.unmasked_rows(z2)).all()
