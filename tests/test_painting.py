"""Tests for the painting procedure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.painting import paint_tiles
from repro.errors import ReconstructionError
from repro.topology.grid import TileGeometry


@pytest.fixture()
def geo(bn2_small):
    return TileGeometry(bn2_small.shape, bn2_small.b)


def faults_at(params, coords):
    f = np.zeros(params.shape, dtype=bool)
    for c in coords:
        f[c] = True
    return f


class TestBasicPainting:
    def test_no_faults_no_regions(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, []), geo)
        assert not res.black.any()
        assert res.regions == []

    def test_single_fault_single_region(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(20, 20)]), geo)
        assert len(res.regions) == 1
        # the faulty tile (2,2) must be black
        assert res.black[2, 2]

    def test_faulty_tiles_black(self, bn2_small, geo):
        coords = [(0, 0), (27, 18)]  # tiles (0,0) and (3,2): frames disjoint
        res = paint_tiles(bn2_small, faults_at(bn2_small, coords), geo)
        for (r, c) in coords:
            assert res.black[r // 9, c // 9]

    def test_dilation_along_dim0(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(20, 20)]), geo)
        # tile (2,2) faulty -> tiles (1,2) and (3,2) dilated black
        assert res.black[1, 2] and res.black[3, 2]

    def test_labels_match_black(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(20, 20), (0, 0)]), geo)
        assert ((res.labels >= 0) == res.black).all()


class TestRegions:
    def test_far_faults_separate_regions(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(0, 0), (27, 18)]), geo)
        assert len(res.regions) == 2

    def test_near_faults_merge(self, bn2_small, geo):
        # same tile -> one region
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(20, 20), (21, 21)]), geo)
        assert len(res.regions) == 1

    def test_strip_range_contiguous(self, bn2_small, geo):
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(20, 20)]), geo)
        region = res.regions[0]
        rows = np.unique(geo.grid.unravel(region.tiles_flat)[..., 0])
        assert region.strip_count == len(rows)

    def test_region_wrap_strip_range(self, bn2_small, geo):
        # fault in tile-row 0: dilation wraps to the last tile-row
        res = paint_tiles(bn2_small, faults_at(bn2_small, [(0, 20)]), geo)
        region = res.regions[0]
        assert region.strip_count == 3
        assert region.strip_start == geo.grid_shape[0] - 1  # starts at wrapped row


class TestFailureModes:
    def test_saturated_grid_no_frame(self, bn2_small, geo):
        p = bn2_small
        coords = []
        for r in range(0, geo.grid_shape[0], 2):
            for c in range(geo.grid_shape[1]):
                coords.append((r * 9, c * 9))
        with pytest.raises(ReconstructionError) as ei:
            paint_tiles(p, faults_at(p, coords), geo)
        assert ei.value.category == "no-frame"
