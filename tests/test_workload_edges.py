"""Edge cases of the open-loop workload model (``sim/workload.py``).

Degenerate-but-legal inputs the saturation methodology must survive: a
sweep with a single rate, a horizon that injects nothing, identity-
degenerate shapes under ``pattern_destinations`` (the PR-4
``ValueError`` contracts), and periodic injection whose period exceeds
the run.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api.protocol import TrafficSpec
from repro.api.traffic import run_traffic_trial
from repro.sim.engine import simulate
from repro.sim.traffic import pattern_destinations
from repro.sim.workload import make_open_loop, open_loop_stats, saturation_sweep
from repro.util.rng import spawn_rng


class TestSaturationSweepSingleRate:
    def test_single_rate_yields_one_complete_row(self):
        rows = saturation_sweep((6, 6), "uniform", [0.05], cycles=40, warmup=10,
                                seed=3, max_cycles=500)
        assert len(rows) == 1
        (row,) = rows
        assert row["rate"] == 0.05
        for key in ("offered", "delivered", "timed_out", "window",
                    "offered_rate", "throughput", "mean", "p50", "p99", "max"):
            assert key in row
        assert row["window"] == 30  # cycles - warmup, never the drain

    def test_single_rate_matches_the_same_point_of_a_ladder(self):
        """Seed discipline: each rate draws its own keyed stream, so a
        1-rate sweep equals that rate's row in any larger sweep."""
        solo = saturation_sweep((6, 6), "uniform", [0.05], cycles=40, seed=3)
        ladder = saturation_sweep((6, 6), "uniform", [0.01, 0.05, 0.2],
                                  cycles=40, seed=3)
        assert solo[0] == ladder[1]


class TestZeroInjectionHorizon:
    #: A rate this small injects nothing over one cycle for any realistic
    #: seed; the workload model must degrade to empty arrays, not crash.
    TINY = 1e-12

    def test_empty_workload_arrays(self):
        traffic, inject = make_open_loop((4, 4), "uniform", self.TINY, 1,
                                         spawn_rng(0))
        assert traffic.shape == (0, 2) and inject.shape == (0,)

    def test_stats_on_empty_injection(self):
        traffic, inject = make_open_loop((4, 4), "uniform", self.TINY, 1,
                                         spawn_rng(0))
        res = simulate((4, 4), traffic, inject=inject)
        stats = open_loop_stats(res, inject, horizon=1)
        assert stats["offered"] == stats["delivered"] == stats["timed_out"] == 0
        assert stats["offered_rate"] == 0.0 and stats["throughput"] == 0.0
        assert math.isnan(stats["mean"]) and math.isnan(stats["p99"])

    def test_traffic_trial_on_empty_injection(self):
        spec = TrafficSpec(pattern="uniform", injection="bernoulli",
                           rate=self.TINY, cycles=1)
        out = run_traffic_trial((4, 4), spec, seed=0)
        assert out.offered == 0 and out.delivered == 0 and out.timed_out == 0
        assert math.isnan(out.mean_latency) and math.isnan(out.p50)

    def test_warmup_can_exclude_every_injection(self):
        """All messages injected before the warmup line: the measured
        window is legitimately empty while deliveries still happen."""
        traffic, inject = make_open_loop((4, 4), "uniform", 0.3, 5, spawn_rng(1))
        assert len(traffic) > 0 and inject.max() < 5
        res = simulate((4, 4), traffic, inject=inject)
        stats = open_loop_stats(res, inject, warmup=5, horizon=6)
        assert stats["offered"] == 0 and stats["throughput"] == 0.0
        assert math.isnan(stats["mean"])


class TestPatternDestinationsDegenerateShapes:
    def test_transpose_identity_shapes_raise(self):
        src = np.array([0])
        for shape in [(8,), (1, 6), (6, 1), (2, 3, 1), (1, 1)]:
            with pytest.raises(ValueError, match="identity"):
                pattern_destinations(shape, src, "transpose", spawn_rng(0))

    def test_bitreverse_non_pow2_raises(self):
        src = np.array([0])
        for shape in [(6, 6), (5, 7), (3,), (2,), (1,)]:
            with pytest.raises(ValueError, match="power-of-two"):
                pattern_destinations(shape, src, "bitreverse", spawn_rng(0))

    def test_single_node_random_patterns_raise(self):
        src = np.array([0])
        for pattern in ("uniform", "hotspot"):
            with pytest.raises(ValueError, match="at least 2 nodes"):
                pattern_destinations((1,), src, pattern, spawn_rng(0))

    def test_unit_axis_neighbor_raises(self):
        with pytest.raises(ValueError, match="every side >= 2"):
            pattern_destinations((1, 6), np.array([0]), "neighbor", spawn_rng(0))

    def test_open_loop_propagates_the_same_errors(self):
        with pytest.raises(ValueError, match="identity"):
            make_open_loop((1, 6), "transpose", 0.5, 4, spawn_rng(0))
        with pytest.raises(ValueError, match="power-of-two"):
            make_open_loop((6, 6), "bitreverse", 0.5, 4, spawn_rng(0))


class TestPeriodicPeriodLongerThanRun:
    def test_only_low_phase_nodes_inject_once(self):
        # rate 0.02 -> period 50 > cycles 10: node n injects at cycle
        # n % 50, so exactly nodes 0..9 inject, once each, at cycle == id.
        traffic, inject = make_open_loop((6, 6), "uniform", 0.02, 10,
                                         spawn_rng(2), injection="periodic")
        assert len(traffic) == 10
        assert traffic[:, 0].tolist() == list(range(10))
        assert inject.tolist() == list(range(10))

    def test_period_beyond_every_phase_still_legal(self):
        # 4 nodes, period 50, horizon 3: only phases 0..2 fire.
        traffic, inject = make_open_loop((2, 2), "neighbor", 0.02, 3,
                                         spawn_rng(3), injection="periodic")
        assert traffic[:, 0].tolist() == [0, 1, 2]
        assert inject.tolist() == [0, 1, 2]
        res = simulate((2, 2), traffic, inject=inject)
        stats = open_loop_stats(res, inject, horizon=3)
        assert stats["offered"] == 3
