"""Tests for the worst-case construction D^d_{n,k} (Theorems 3 and 13)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dn import DTorus
from repro.core.params import DnParams
from repro.faults.adversary import ADVERSARY_PATTERNS, adversarial_node_faults
from repro.util.rng import spawn_rng


@pytest.fixture(scope="module")
def dt(dn2_small):
    return DTorus(dn2_small)


class TestStructure:
    def test_degree_exactly_4d(self, dt):
        degs = dt.graph().degrees()
        assert degs.min() == degs.max() == 8

    def test_degree_1d(self):
        p = DnParams(d=1, n=20, b=3)
        g = DTorus(p).graph()
        assert g.degrees().min() == g.degrees().max() == 4

    def test_node_bound(self, dn2_small):
        assert dn2_small.num_nodes <= dn2_small.paper_node_bound

    def test_is_adjacent_matches_graph(self, dt):
        g = dt.graph()
        e = g.edges()
        assert dt.is_adjacent(e[:, 0], e[:, 1]).all()
        rng = np.random.default_rng(0)
        us = rng.integers(0, g.num_nodes, 3000)
        vs = rng.integers(0, g.num_nodes, 3000)
        keep = us != vs
        us, vs = us[keep], vs[keep]
        assert (dt.is_adjacent(us, vs) == g.has_edges(us, vs)).all()


class TestRecovery:
    def test_no_faults(self, dt, dn2_small):
        rec = dt.recover(np.zeros(dn2_small.shape, dtype=bool))
        assert rec.stats["nodes"] == dn2_small.n ** 2

    @pytest.mark.parametrize("pattern", sorted(ADVERSARY_PATTERNS))
    def test_tolerates_k_faults_every_pattern(self, dt, dn2_small, pattern):
        """Theorem 13: ANY k faults are tolerated."""
        for trial in range(3):
            f = adversarial_node_faults(
                dn2_small.shape, dn2_small.k, pattern, spawn_rng(trial, pattern)
            )
            rec = dt.recover(f)
            assert not f.ravel()[rec.phi].any()

    def test_edge_faults_ascribed(self, dt, dn2_small):
        e = dt.graph().edges()
        rng = spawn_rng(1, "edges")
        sel = rng.choice(len(e), size=dn2_small.k, replace=False)
        rec = dt.recover(np.zeros(dn2_small.shape, dtype=bool), faulty_edges=e[sel])
        assert rec.stats["nodes"] == dn2_small.n ** 2

    def test_mixed_node_and_edge_faults(self, dt, dn2_small):
        k = dn2_small.k
        f = adversarial_node_faults(dn2_small.shape, k // 2, "random", spawn_rng(2))
        e = dt.graph().edges()
        sel = spawn_rng(3).choice(len(e), size=k - k // 2, replace=False)
        assert dt.tolerates(f, faulty_edges=e[sel])

    def test_unmasked_gaps_match_jumps(self, dt, dn2_small):
        f = adversarial_node_faults(dn2_small.shape, dn2_small.k, "random", spawn_rng(4))
        rec = dt.recover(f)
        for axis in range(2):
            um = rec.unmasked[axis]
            gaps = np.diff(np.concatenate([um, [um[0] + dn2_small.shape[axis]]]))
            w = dn2_small.width(axis + 1)
            assert set(np.unique(gaps)) <= {1, w + 1}

    def test_three_dimensional(self):
        p = DnParams(d=3, n=260, b=2)
        dtorus = DTorus(p)
        f = adversarial_node_faults(p.shape, p.k, "random", spawn_rng(5))
        rec = dtorus.recover(f, verify=False)  # full verify is heavy at n=260
        # spot-verify: per-dimension unmasked counts and fault avoidance
        for um in rec.unmasked:
            assert len(um) == p.n
        assert not f.ravel()[rec.phi[:: 997]].any()

    def test_one_dimensional(self):
        p = DnParams(d=1, n=30, b=3)
        dtorus = DTorus(p)
        f = np.zeros(p.shape, dtype=bool)
        f[[0, 5, 11]] = True  # k = 3 faults
        rec = dtorus.recover(f)
        assert rec.stats["nodes"] == 30


class TestBeyondK:
    def test_graceful_beyond_k(self, dt, dn2_small):
        """More than k faults: best effort — either recovers or raises a
        categorised error, never returns an invalid embedding."""
        from repro.errors import ReconstructionError

        f = adversarial_node_faults(dn2_small.shape, 6 * dn2_small.k, "random", spawn_rng(6))
        try:
            rec = dt.recover(f)
            assert not f.ravel()[rec.phi].any()
        except ReconstructionError as exc:
            assert exc.category != "unspecified"


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_any_k_faults_tolerated_property(dn2_small, data):
    """Property: D tolerates arbitrary fault sets of size <= k."""
    dt = DTorus(dn2_small)
    count = data.draw(st.integers(min_value=0, max_value=dn2_small.k))
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    f = np.zeros(dn2_small.shape, dtype=bool)
    if count:
        f.ravel()[rng.choice(dn2_small.num_nodes, size=count, replace=False)] = True
    rec = dt.recover(f)
    assert not f.ravel()[rec.phi].any()
