"""Tests for block decomposition and pigeonhole segments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import (
    _pad_stack,
    build_region_stacks,
    region_fault_rows,
    segments_for_block,
    split_blocks,
)
from repro.core.painting import paint_tiles
from repro.core.params import BnParams
from repro.errors import BandPlacementError
from repro.topology.grid import TileGeometry


class TestSplitBlocks:
    def test_empty(self):
        assert split_blocks(np.array([], dtype=int), 3, 54) == []

    def test_single_row(self):
        blocks = split_blocks(np.array([10]), 3, 54)
        assert len(blocks) == 1 and blocks[0].tolist() == [10]

    def test_split_on_2b_gap(self):
        # gap between 10 and 17 is 6 = 2b -> split
        blocks = split_blocks(np.array([10, 17]), 3, 54)
        assert len(blocks) == 2

    def test_no_split_below_2b(self):
        blocks = split_blocks(np.array([10, 15]), 3, 54)
        assert len(blocks) == 1

    def test_wraparound_cluster(self):
        # rows 52 and 1 are 2 apart cyclically (m=54): one block, unwrapped
        blocks = split_blocks(np.array([1, 52]), 3, 54)
        assert len(blocks) == 1
        block = blocks[0]
        assert block[-1] - block[0] == 3


class TestSegmentsForBlock:
    def test_single_fault_single_segment(self):
        p = BnParams(d=2, b=3, s=1, t=2)
        segs = segments_for_block(np.array([10]), p)
        assert len(segs) == 1
        bot = segs[0] % p.m
        assert (10 - bot) % p.m < p.b  # covers the fault

    def test_cluster_coverable_by_one(self):
        p = BnParams(d=2, b=3, s=1, t=2)
        segs = segments_for_block(np.array([10, 11, 12]), p)
        # 3 = b consecutive faults always fit one width-b segment
        assert len(segs) == 1

    def test_segments_cover_and_untouch(self):
        p = BnParams(d=2, b=5, s=2, t=2)
        block = np.array([100, 103, 110, 113])
        segs = segments_for_block(block, p)
        for r in block:
            assert any((r - s_) % p.m < p.b for s_ in segs)
        segs_sorted = sorted(s_ % p.m for s_ in segs)
        for a, b_ in zip(segs_sorted, segs_sorted[1:]):
            assert b_ - a >= p.b + 1

    def test_too_tall_block_rejected(self):
        p = BnParams(d=2, b=3, s=1, t=2)
        with pytest.raises(BandPlacementError, match="spans"):
            segments_for_block(np.array([0, 2 * p.tile + 5]), p)

    def test_all_residues_hit_rejected(self):
        p = BnParams(d=2, b=3, s=1, t=2)
        # b+1 = 4 faults hitting all residues mod 4
        with pytest.raises(BandPlacementError):
            segments_for_block(np.array([0, 1, 2, 3]), p)


class TestPadStack:
    def test_pads_empty(self):
        out, prev = _pad_stack([], 2, 0, 8, None, 3)
        assert out == [0, 4]
        assert prev == 4

    def test_respects_prev(self):
        out, _ = _pad_stack([], 1, 9, 17, 7, 3)
        assert out == [11]  # prev 7 + b+1

    def test_keeps_existing(self):
        out, _ = _pad_stack([5], 2, 0, 8, None, 3)
        assert 5 in out and len(out) == 2
        assert sorted(out) == out
        diffs = np.diff(sorted(out))
        assert (diffs >= 4).all()

    def test_existing_first_when_tight(self):
        # existing at 2, low bound 0: gap < b+1 so existing must be taken first
        out, _ = _pad_stack([2], 2, 0, 8, None, 3)
        assert out[0] == 2

    def test_infeasible_raises(self):
        with pytest.raises(BandPlacementError):
            _pad_stack([], 3, 0, 5, None, 3)  # needs 3*(b+1) > 6 rows

    def test_existing_conflict_raises(self):
        with pytest.raises(BandPlacementError):
            _pad_stack([0], 1, 0, 8, -2, 3)  # prev forces low=2 > existing 0


class TestBuildRegionStacks:
    def _setup(self, params, fault_coords):
        faults = np.zeros(params.shape, dtype=bool)
        for c in fault_coords:
            faults[c] = True
        geo = TileGeometry(params.shape, params.b)
        paint = paint_tiles(params, faults, geo)
        return faults, geo, paint

    def test_single_fault_stacks(self, bn2_small):
        p = bn2_small
        faults, geo, paint = self._setup(p, [(20, 20)])
        region = paint.regions[0]
        stacks = build_region_stacks(region, faults, p, geo)
        # every strip of the region gets exactly s = 1 bottoms in [0, b^2)
        assert set(stacks.local) == {
            (region.strip_start + i) % p.tile_rows for i in range(region.strip_count)
        }
        for v in stacks.local.values():
            assert len(v) == p.s
            assert (0 <= v).all() and (v < p.tile).all()

    def test_fault_is_covered_by_its_strip_stack(self, bn2_small):
        p = bn2_small
        faults, geo, paint = self._setup(p, [(20, 20)])
        stacks = build_region_stacks(paint.regions[0], faults, p, geo)
        strip = 20 // p.tile
        local = stacks.local[strip]
        bottoms = strip * p.tile + local
        assert any((20 - bo) % p.m < p.b for bo in bottoms)

    def test_region_fault_rows(self, bn2_small):
        p = bn2_small
        faults, geo, paint = self._setup(p, [(20, 20), (22, 21)])
        rows = region_fault_rows(paint.regions[0], faults, geo)
        assert rows.tolist() == [20, 22]
