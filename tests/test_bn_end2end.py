"""End-to-end tests of Theorem 2's construction + recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BTorus
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng


@pytest.fixture(scope="module")
def bt(bn2_small):
    return BTorus(bn2_small)


class TestRecoverAPI:
    def test_fault_free(self, bt, bn2_small):
        rec = bt.recover(np.zeros(bn2_small.shape, dtype=bool))
        assert rec.stats["nodes"] == bn2_small.n ** 2

    def test_survives_wrapper(self, bt, bn2_small):
        assert bt.survives(np.zeros(bn2_small.shape, dtype=bool))

    def test_recovery_phi_avoids_faults(self, bt, bn2_small):
        rng = spawn_rng(3, "e2e")
        faults = bt.sample_faults(bn2_small.paper_fault_probability, rng)
        try:
            rec = bt.recover(faults)
        except ReconstructionError:
            pytest.skip("unlucky draw (tiny instance)")
        assert not faults.ravel()[rec.phi].any()

    def test_impossible_instance_raises_categorised(self, bt, bn2_small):
        faults = np.ones(bn2_small.shape, dtype=bool)
        with pytest.raises(ReconstructionError) as ei:
            bt.recover(faults)
        assert ei.value.category != "unspecified"


class TestTrial:
    def test_trial_reproducible(self, bt, bn2_small):
        p = bn2_small.paper_fault_probability
        a = bt.trial(p, seed=11)
        b = bt.trial(p, seed=11)
        assert a.success == b.success and a.num_faults == b.num_faults

    def test_trial_categories(self, bt):
        out = bt.trial(0.0, seed=0)
        assert out.success and out.category == "ok"
        out_bad = bt.trial(1.0, seed=0)
        assert not out_bad.success and out_bad.category != "ok"

    def test_trial_health_flag(self, bt, bn2_small):
        out = bt.trial(bn2_small.paper_fault_probability, seed=1, check_health=True)
        assert out.health is not None
        assert out.healthy in (True, False)

    def test_keep_recovery(self, bt):
        out = bt.trial(0.0, seed=0, keep_recovery=True)
        assert out.recovery is not None

    def test_strategy_used_reported(self, bt):
        out = bt.trial(0.0, seed=0)
        assert out.strategy_used == "straight"


class TestSurvivalRegime:
    def test_paper_regime_mostly_survives(self, bt, bn2_small):
        """Theorem 2's whp claim, at laptop scale: survival >= 80% at
        p = b^{-3d} even on the smallest instance."""
        p = bn2_small.paper_fault_probability
        wins = sum(bt.trial(p, seed=s).success for s in range(25))
        assert wins >= 20

    def test_lower_p_survives_more(self, bt, bn2_small):
        p = bn2_small.paper_fault_probability
        lo = sum(bt.trial(p / 8, seed=s).success for s in range(15))
        hi = sum(bt.trial(min(40 * p, 0.9), seed=s).success for s in range(15))
        assert lo >= hi

    def test_edge_fault_folding_path(self, bt, bn2_small):
        out = bt.trial(bn2_small.paper_fault_probability, seed=2, q=1e-4)
        assert out.category in {"ok"} | {
            "unhealthy",
            "no-frame",
            "region-overflow",
            "block-overflow",
            "segment-overflow",
            "padding",
            "coverage",
            "band-invalid",
            "capacity",
            "embedding",
        }


class TestThreeDimensional:
    def test_3d_end_to_end(self, bn3_small):
        bt3 = BTorus(bn3_small)
        out = bt3.trial(bn3_small.paper_fault_probability, seed=0)
        assert out.success

    def test_3d_with_explicit_fault(self, bn3_small):
        bt3 = BTorus(bn3_small)
        faults = np.zeros(bn3_small.shape, dtype=bool)
        faults[10, 10, 10] = True
        rec = bt3.recover(faults)
        assert rec.stats["nodes"] == bn3_small.n ** 3
