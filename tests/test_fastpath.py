"""The batched-backend contract: identical outcomes, byte-identical JSON.

Three layers of assurance, strongest first:

* a hypothesis property drawing random ``BnParams``, fault rates, edge
  rates and health-checking flags, asserting the batched backend returns
  the *identical* ``TrialOutcome`` sequence to the scalar per-trial loop
  for the same seeds (ISSUE 2's equivalence satellite);
* targeted equivalence for the batched healthiness checker (every report
  field, including the bounded violation samples) and for the an
  backend's analytic classification;
* end-to-end byte-identity of experiment JSON between
  ``ExperimentRunner(batch=True)`` / ``batch=False`` and between the CLI
  ``--batch`` / ``--no-batch`` flags.

Parameter pools and the per-record comparison views come from
``repro.testkit`` (``strategies.BN_PARAM_SETS``, ``oracles.*_record``) —
the same generators every other conformance consumer uses.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    BatchCapable,
    ExperimentRunner,
    ExperimentSpec,
    FaultSpec,
    LifetimeSpec,
    get,
)
from repro.core.healthiness import check_healthiness, check_healthiness_batch
from repro.core.params import BnParams
from repro.fastpath.bn_batch import sample_bn_faults_batch, straight_survival_batch
from repro.testkit.oracles import health_record, lifetime_record, outcome_record
from repro.testkit.strategies import BN_PARAM_SETS
from repro.util.rng import spawn_rng


# ---------------------------------------------------------------------------
# The equivalence property (ISSUE 2 satellite)
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    params=st.sampled_from(BN_PARAM_SETS),
    p_mult=st.sampled_from([0.0, 0.25, 1.0, 8.0, 64.0, 256.0]),
    q=st.sampled_from([0.0, 0.001, 0.01]),
    check_health=st.booleans(),
    seed0=st.integers(min_value=0, max_value=10_000),
)
def test_bn_batch_equals_scalar(params, p_mult, q, check_health, seed0):
    bn = get("bn", **params, check_health=check_health)
    p = min(1.0, p_mult * bn.params.paper_fault_probability)
    spec = FaultSpec(p=p, q=q)
    seeds = list(range(seed0, seed0 + 6))
    batch = bn.run_batch(spec, seeds)
    scalar = [bn.trial(spec, s) for s in seeds]
    assert [outcome_record(o) for o in batch] == [outcome_record(o) for o in scalar]
    assert [health_record(o.health) for o in batch] == [
        health_record(o.health) for o in scalar
    ]


@pytest.mark.parametrize("p", [0.05, 0.2, 0.5])
def test_an_batch_equals_scalar(p):
    an = get("an", d=2, b=3, s=1, t=2, k_sub=2, h=8)
    spec = FaultSpec(p=p)
    seeds = list(range(8))
    batch = an.run_batch(spec, seeds)
    scalar = [an.trial(spec, s) for s in seeds]
    assert [outcome_record(o) for o in batch] == [outcome_record(o) for o in scalar]


def test_bn_strategy_straight_batch_equals_scalar():
    """The pure-straight strategy also batches; failures keep their scalar
    categories via the fallback path."""
    bn = get("bn", d=2, b=3, s=1, t=2, strategy="straight")
    spec = FaultSpec(p=0.02)  # dense enough that some covers fail
    seeds = list(range(12))
    batch = bn.run_batch(spec, seeds)
    scalar = [bn.trial(spec, s) for s in seeds]
    assert [outcome_record(o) for o in batch] == [outcome_record(o) for o in scalar]
    assert any(not o.success for o in batch)  # the point: mixed outcomes


# ---------------------------------------------------------------------------
# The batched lifetime kernel (ISSUE 3 acceptance: identical first-failure
# times, trial for trial)
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    params=st.sampled_from(BN_PARAM_SETS),
    strategy=st.sampled_from(["auto", "straight"]),
    max_steps=st.sampled_from([None, 5, 60]),
    seed0=st.integers(min_value=0, max_value=10_000),
)
def test_bn_lifetime_batch_equals_scalar(params, strategy, max_steps, seed0):
    bn = get("bn", **params, strategy=strategy)
    spec = LifetimeSpec(max_steps=max_steps)
    assert bn.supports_lifetime_batch(spec)
    seeds = list(range(seed0, seed0 + 5))
    batch = bn.run_lifetime_batch(spec, seeds)
    scalar = [bn.lifetime_trial(spec, s) for s in seeds]
    assert [lifetime_record(o) for o in batch] == [lifetime_record(o) for o in scalar]


def test_lifetime_runner_batch_json_byte_identical(tmp_path):
    spec = ExperimentSpec(
        construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
        grid=(LifetimeSpec(),), trials=20, name="lifetime-bi",  # 2 chunks
    )
    a, b = tmp_path / "batch.json", tmp_path / "scalar.json"
    ExperimentRunner(batch=True).run(spec).save(a)
    ExperimentRunner(batch=False).run(spec).save(b)
    assert a.read_bytes() == b.read_bytes()


def test_lifetime_batch_falls_back_for_unsupported_spec():
    """Repair timelines have no kernel; the runner must dispatch them to
    the scalar path with unchanged results."""
    bn = get("bn", d=2, b=3, s=1, t=2)
    spec = LifetimeSpec(repair_rate=0.3, max_steps=50)
    assert not bn.supports_lifetime_batch(spec)
    scalar = [bn.lifetime_trial(spec, s) for s in range(3)]
    es = ExperimentSpec(
        construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
        grid=(spec,), trials=3, name="fallback",
    )
    res = ExperimentRunner(batch=True).run(es)
    assert res.points[0].result.lifetimes == [o.lifetime for o in scalar]


# ---------------------------------------------------------------------------
# Batched healthiness checker
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("params_kw", BN_PARAM_SETS)
def test_health_batch_equals_scalar(params_kw):
    params = BnParams(**params_kw)
    rng = spawn_rng(7, "health-batch", params.n, params.d)
    # Densities straddling all three conditions' breaking points.
    stack = np.stack(
        [rng.random(params.shape) < p for p in (0.0, 0.001, 0.01, 0.05, 0.3)]
    )
    batch_reports = check_healthiness_batch(params, stack)
    for i in range(stack.shape[0]):
        assert health_record(check_healthiness(params, stack[i])) == health_record(
            batch_reports[i]
        )


def test_health_batch_rejects_bad_shape():
    params = BnParams(d=2, b=3, s=1, t=2)
    with pytest.raises(ValueError, match="fault stack shape"):
        check_healthiness_batch(params, np.zeros(params.shape, dtype=bool))


# ---------------------------------------------------------------------------
# Kernel internals
# ---------------------------------------------------------------------------


def test_sampler_matches_scalar_streams():
    from repro.core.bn import BTorus

    params = BnParams(d=2, b=3, s=1, t=2)
    bt = BTorus(params)
    stack = sample_bn_faults_batch(bt, 0.01, 0.001, [3, 4, 5])
    for i, seed in enumerate([3, 4, 5]):
        rng = spawn_rng(seed, "bn-trial", params.n, params.d)
        assert (stack[i] == bt.sample_faults(0.01, rng, q=0.001)).all()


def test_straight_survival_batch_classification():
    params = BnParams(d=2, b=3, s=1, t=2)
    faults = np.zeros((3,) + params.shape, dtype=bool)
    faults[1, 0, 0] = True                       # one fault: coverable
    faults[2, :: params.b, 0] = True             # a fault every b rows: hopeless
    covered, fault_rows = straight_survival_batch(params, faults)
    assert covered.tolist() == [True, True, False]
    assert fault_rows.shape == (3, params.m)
    assert fault_rows[1].sum() == 1


def test_batch_capability_surface():
    """Capability advertisement matches what the backends implement."""
    bn = get("bn", d=2, b=3, s=1, t=2)
    an = get("an", d=2, b=3, s=1, t=2, k_sub=2, h=8)
    dn = get("dn", d=2, n=70, b=2)
    assert isinstance(bn, BatchCapable) and isinstance(an, BatchCapable)
    assert not isinstance(dn, BatchCapable)
    assert bn.supports_batch(FaultSpec(p=0.001))
    assert not bn.supports_batch(FaultSpec(pattern="random", k=4))
    assert not get("bn", d=2, b=3, s=1, t=2, strategy="paper").supports_batch(
        FaultSpec(p=0.001)
    )
    assert an.supports_batch(FaultSpec(p=0.1))
    assert not an.supports_batch(FaultSpec(p=0.1, q=0.001))


# ---------------------------------------------------------------------------
# End-to-end byte-identity
# ---------------------------------------------------------------------------


def _spec():
    return ExperimentSpec.from_grid(
        "bn", {"d": 2, "b": 4, "s": 1, "t": 2},
        p_values=[2.44140625e-04, 2e-3],
        trials=20,
        name="fastpath-bi",
    )


def test_runner_batch_json_byte_identical(tmp_path):
    a, b = tmp_path / "batch.json", tmp_path / "scalar.json"
    ExperimentRunner(batch=True).run(_spec()).save(a)
    ExperimentRunner(batch=False).run(_spec()).save(b)
    assert a.read_bytes() == b.read_bytes()


def test_runner_batch_dispatch_falls_back_for_unsupported():
    """Constructions without the capability run per-trial under batch=True
    with unchanged results."""
    spec = ExperimentSpec.from_grid(
        "dn", {"d": 2, "n": 70, "b": 2}, patterns=["random"], k=8, trials=4,
        name="dn-batch",
    )
    ra = ExperimentRunner(batch=True).run(spec)
    rb = ExperimentRunner(batch=False).run(spec)
    assert json.dumps(ra.to_dict(), sort_keys=True) == json.dumps(
        rb.to_dict(), sort_keys=True
    )


def test_cli_batch_flag_byte_identical(tmp_path, capsys):
    from repro.cli import main

    a, b = tmp_path / "with.json", tmp_path / "without.json"
    args = ["run", "--construction", "bn", "--b", "3", "--p", "0.001",
            "--trials", "4"]
    assert main(args + ["--batch", "--out", str(a)]) == 0
    assert main(args + ["--no-batch", "--out", str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


def test_traffic_runner_batch_json_byte_identical(tmp_path):
    """The fourth batched kernel honours the same contract: a TrafficSpec
    grid serialises byte-identically whichever engine ran it (the
    field-level SimResult identity lives in tests/test_traffic.py)."""
    from repro.api import TrafficSpec

    spec = ExperimentSpec(
        construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
        grid=(
            TrafficSpec(pattern="transpose", messages=48),
            TrafficSpec(pattern="uniform", injection="bernoulli", rate=0.02,
                        cycles=40, warmup=10),
        ),
        trials=20, name="traffic-bi",  # 2 chunks, so parallel runs fan out
    )
    a, b = tmp_path / "batch.json", tmp_path / "scalar.json"
    ExperimentRunner(batch=True).run(spec).save(a)
    ExperimentRunner(batch=False, workers=2).run(spec).save(b)
    assert a.read_bytes() == b.read_bytes()


def test_cli_traffic_batch_flag_byte_identical(tmp_path, capsys):
    from repro.cli import main

    a, b = tmp_path / "with.json", tmp_path / "without.json"
    args = ["traffic", "--construction", "bn", "--b", "3",
            "--pattern", "uniform", "--messages", "32", "--trials", "4"]
    assert main(args + ["--batch", "--out", str(a)]) == 0
    assert main(args + ["--no-batch", "--out", str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
