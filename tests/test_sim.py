"""Tests for the routing simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import simulate
from repro.sim.metrics import latency_stats
from repro.sim.routing import (
    all_pairs_mean_distance,
    dimension_ordered_route,
    route_length,
)
from repro.sim.traffic import TRAFFIC_PATTERNS, make_traffic
from repro.util.rng import spawn_rng


class TestRouting:
    def test_route_endpoints(self):
        path = dimension_ordered_route((5, 5), 0, 24)
        assert path[0] == 0 and path[-1] == 24

    def test_route_steps_are_torus_edges(self):
        shape = (6, 7)
        path = dimension_ordered_route(shape, 3, 40)
        from repro.topology.torus import torus_graph

        g = torus_graph(shape)
        assert g.has_edges(path[:-1], path[1:]).all()

    def test_route_is_minimal(self):
        shape = (8, 8)
        rng = spawn_rng(0)
        for _ in range(30):
            s, d = rng.integers(0, 64, 2)
            path = dimension_ordered_route(shape, int(s), int(d))
            assert len(path) - 1 == route_length(shape, int(s), int(d))

    def test_wraparound_shorter(self):
        # 0 -> 7 on C_8 must go backwards (1 hop), not 7 hops
        assert route_length((8,), 0, 7) == 1

    def test_mean_distance_formula(self):
        # C_4: distances 0,1,2,1 -> mean 1; two axes -> 2
        assert all_pairs_mean_distance((4, 4)) == pytest.approx(2.0)


class TestTraffic:
    @pytest.mark.parametrize("pattern", sorted(TRAFFIC_PATTERNS))
    def test_pairs_in_range_and_exact_count(self, pattern):
        # (8, 8): power-of-two size, so every pattern (incl. bitreverse)
        # is defined; exactly the requested number of rows comes back.
        t = make_traffic((8, 8), pattern, 50, spawn_rng(1, pattern))
        assert t.shape == (50, 2)
        assert (t >= 0).all() and (t < 64).all()

    def test_neighbor_pattern_distance_one(self):
        t = make_traffic((8, 8), "neighbor", 40, spawn_rng(2))
        for s, d in t:
            assert route_length((8, 8), int(s), int(d)) == 1

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            make_traffic((4, 4), "nope", 5, spawn_rng(0))


class TestEngine:
    def test_all_delivered(self):
        t = make_traffic((6, 6), "uniform", 40, spawn_rng(3))
        res = simulate((6, 6), t)
        assert res.delivered == res.total

    def test_single_message_latency_is_distance(self):
        t = np.array([[0, 8]])
        res = simulate((4, 4), t)
        assert res.latencies[0] == route_length((4, 4), 0, 8)

    def test_contention_increases_latency(self):
        # many messages into one destination > isolated latencies
        hot = 0
        srcs = np.arange(1, 13)
        t = np.stack([srcs, np.full_like(srcs, hot)], axis=1)
        res = simulate((6, 6), t)
        iso = max(route_length((6, 6), int(s), hot) for s in srcs)
        assert res.latencies.max() > iso

    def test_latency_stats_fields(self):
        t = make_traffic((5, 5), "uniform", 20, spawn_rng(4))
        stats = latency_stats(simulate((5, 5), t))
        assert stats["delivered"] == stats["total"]
        assert stats["p99"] >= stats["p50"]

    def test_arbitration_lowest_id_first(self):
        """Deterministic link arbitration: when several messages contend for
        the same link every cycle, they must drain in ascending message-id
        order — latencies are exactly distance, distance+1, distance+2, ...
        regardless of how the contenders were interleaved internally."""
        shape = (6, 6)
        # Three identical messages: same source, same destination, same route.
        t = np.array([[0, 3], [0, 3], [0, 3]])
        res = simulate(shape, t)
        dist = route_length(shape, 0, 3)
        assert res.latencies.tolist() == [dist, dist + 1, dist + 2]

    def test_simulation_is_deterministic(self):
        t = make_traffic((5, 5), "uniform", 30, spawn_rng(11))
        a = simulate((5, 5), t)
        b = simulate((5, 5), t)
        assert a.latencies.tolist() == b.latencies.tolist()
        assert (a.cycles, a.max_queue, a.delivered) == (b.cycles, b.max_queue, b.delivered)

    def test_timeout_counts_undelivered_and_filters_sentinels(self):
        """When max_cycles cuts the run short, undelivered messages are
        reported via ``timed_out`` and their -1 sentinels never reach
        ``latencies``."""
        t = make_traffic((6, 6), "uniform", 40, spawn_rng(3))
        res = simulate((6, 6), t, max_cycles=2)
        assert res.timed_out == res.total - res.delivered > 0
        assert (res.latencies >= 0).all()
        assert len(res.latencies) == res.delivered
        stats = latency_stats(res)
        assert stats["timed_out"] == res.timed_out

    def test_no_timeout_when_all_delivered(self):
        t = make_traffic((6, 6), "uniform", 30, spawn_rng(8))
        res = simulate((6, 6), t)
        assert res.timed_out == 0
        assert latency_stats(res)["timed_out"] == 0

    def test_recovered_torus_routes_identically(self, bn2_small):
        """Dilation-1 embedding: the recovered torus is exactly an n^d torus,
        so hop counts match the pristine torus."""
        from repro.core.bn import BTorus

        bt = BTorus(bn2_small)
        rec = bt.recover(np.zeros(bn2_small.shape, dtype=bool))
        shape = rec.guest_shape()
        t = make_traffic(shape, "transpose", 30, spawn_rng(5))
        res = simulate(shape, t)
        assert res.delivered == res.total


class TestLifetimeTraffic:
    def test_snapshots_on_evolving_network(self, bn2_small):
        from repro.api.protocol import LifetimeSpec
        from repro.core.bn import BTorus
        from repro.sim.lifetime_traffic import lifetime_traffic_snapshots

        report = lifetime_traffic_snapshots(
            BTorus(bn2_small), LifetimeSpec(), seed=0,
            checkpoints=[2, 4, 10_000], messages=60,
        )
        assert report["lifetime"] > 0
        # every requested checkpoint appears; those beyond the lifetime are
        # explicit "reached": False entries, never silent omissions
        arrivals = [s["arrivals"] for s in report["snapshots"]]
        assert arrivals == [2, 4, 10_000]
        by_arrival = {s["arrivals"]: s for s in report["snapshots"]}
        assert not by_arrival[10_000]["reached"]
        assert "stats" not in by_arrival[10_000]
        for snap in report["snapshots"]:
            if not snap["reached"]:
                continue
            # The nontrivial per-checkpoint claim: the aged embedding still
            # verifies end to end against the host graph and fault set.
            assert snap["embedding_verified"]
            assert snap["matches_pristine"]
            assert snap["stats"]["timed_out"] == 0
            assert 0 < snap["num_faults"] <= snap["arrivals"]

    def test_live_traffic_measures_and_matches(self, bn2_small):
        from repro.api.protocol import LifetimeSpec
        from repro.core.bn import BTorus
        from repro.sim.lifetime_traffic import lifetime_traffic_snapshots

        live = lifetime_traffic_snapshots(
            BTorus(bn2_small), LifetimeSpec(), seed=0,
            checkpoints=[2], messages=60, live_traffic=True,
        )
        assumed = lifetime_traffic_snapshots(
            BTorus(bn2_small), LifetimeSpec(), seed=0,
            checkpoints=[2], messages=60,
        )
        snap = live["snapshots"][0]
        assert snap["reached"] and snap["matches_pristine"]
        # every route's mapped host elements checked out healthy...
        assert snap["stats"]["undeliverable"] == 0
        # ...and the re-measured stats equal the assumed (pristine) ones —
        # the dilation-1 claim, verified empirically instead of asserted
        measured = {k: v for k, v in snap["stats"].items() if k != "undeliverable"}
        assert measured == assumed["snapshots"][0]["stats"]

    def test_route_health_mask_detects_broken_embedding(self, bn2_small):
        """The live-traffic measurement is not vacuous: a fault landing on
        a host node the embedding still maps through makes exactly the
        routes over it undeliverable."""
        import numpy as np

        from repro.core.bn import BTorus
        from repro.sim.lifetime_traffic import route_health_mask

        bt = BTorus(bn2_small)
        rec = bt.recover(np.zeros(bn2_small.shape, dtype=bool))
        shape = rec.guest_shape()
        traffic = make_traffic(shape, "uniform", 50, spawn_rng(9))
        fault_flat = np.zeros(bt.bn.codec.size, dtype=bool)
        healthy = route_health_mask(
            shape, traffic, rec.phi, fault_flat, bt.bn.is_adjacent
        )
        assert healthy.all()  # pristine machine: everything deliverable
        # Break the host node under one message's source: every message
        # whose mapped route visits it (at least that one) goes dark.
        phi = np.asarray(rec.phi, dtype=np.int64).ravel()
        victim = int(phi[traffic[0, 0]])
        fault_flat[victim] = True
        broken = route_health_mask(
            shape, traffic, rec.phi, fault_flat, bt.bn.is_adjacent
        )
        assert not broken[0]
        assert broken.sum() < len(traffic)

