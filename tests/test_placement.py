"""Tests for band placement strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import BnParams
from repro.core.placement import place_bands, place_paper, place_straight
from repro.errors import BandPlacementError, ReconstructionError


def faults_at(params, coords):
    f = np.zeros(params.shape, dtype=bool)
    for c in coords:
        f[c] = True
    return f


class TestStraight:
    def test_no_faults(self, bn2_small):
        bs = place_straight(bn2_small, faults_at(bn2_small, []))
        bs.validate()

    def test_single_fault(self, bn2_small):
        f = faults_at(bn2_small, [(10, 5)])
        bs = place_straight(bn2_small, f)
        bs.validate(f)

    def test_cluster(self, bn2_small):
        f = faults_at(bn2_small, [(10, 5), (11, 30), (12, 0)])
        bs = place_straight(bn2_small, f)
        bs.validate(f)

    def test_rows_exactly_b_apart_need_earliest_variant(self, bn2_small):
        p = bn2_small
        # faults in rows 0 and b defeat the latest-bottom greedy (bottoms
        # exactly b apart); the earliest-bottom sweep resolves it.
        f = faults_at(p, [(0, 0), (p.b, 0)])
        bs = place_straight(p, f)
        bs.validate(f)

    def test_periodic_rows_defeat_both_greedies(self, bn2_small):
        p = bn2_small
        # rows 0, b, 2b, 3b: period b vs window period b+1 -> no straight
        # cover exists with untouching bottoms
        f = faults_at(p, [(i * p.b, 0) for i in range(4)])
        with pytest.raises(ReconstructionError):
            place_straight(p, f)

    def test_too_many_fault_rows(self, bn2_small):
        p = bn2_small
        # more spread fault rows than K * b can mask
        rows = list(range(0, p.m, p.b + 2))
        f = faults_at(p, [(r, 0) for r in rows])
        with pytest.raises(BandPlacementError):
            place_straight(p, f)


class TestPaper:
    def test_no_faults(self, bn2_small):
        f = faults_at(bn2_small, [])
        bs = place_paper(bn2_small, f)
        bs.validate(f)

    def test_single_fault(self, bn2_small):
        f = faults_at(bn2_small, [(20, 20)])
        bs = place_paper(bn2_small, f)
        bs.validate(f)

    def test_fault_at_origin_wraps(self, bn2_small):
        f = faults_at(bn2_small, [(0, 0)])
        bs = place_paper(bn2_small, f)
        bs.validate(f)

    def test_two_regions(self, bn2_small):
        f = faults_at(bn2_small, [(20, 20), (45, 2)])
        bs = place_paper(bn2_small, f)
        bs.validate(f)

    def test_multi_fault_region_s1_overflows_but_auto_recovers(self, bn2_small):
        """With s=1, two faults needing distinct segments in one tile-row is
        exactly what healthiness condition 2 excludes: the paper pipeline
        must fail with ``segment-overflow``, and the auto strategy must
        still rescue the instance with straight bands."""
        p = bn2_small
        f = faults_at(p, [(20, 20), (24, 22)])
        with pytest.raises(BandPlacementError) as ei:
            place_paper(p, f)
        assert ei.value.category == "segment-overflow"
        bs = place_bands(p, f, strategy="auto")
        bs.validate(f)

    def test_multi_fault_region_s2(self):
        """With s=2 the same shape is within the paper pipeline's budget."""
        p = BnParams(d=2, b=5, s=2, t=2)
        f = faults_at(p, [(60, 60), (64, 62)])
        bs = place_paper(p, f)
        bs.validate(f)

    def test_s2_instance(self):
        p = BnParams(d=2, b=5, s=2, t=2)
        f = faults_at(p, [(60, 60), (63, 64), (70, 61), (100, 100)])
        bs = place_paper(p, f)
        bs.validate(f)

    def test_3d_single_fault(self, bn3_small):
        f = faults_at(bn3_small, [(20, 20, 20)])
        bs = place_paper(bn3_small, f)
        bs.validate(f)


class TestAuto:
    def test_prefers_straight(self, bn2_small):
        f = faults_at(bn2_small, [(10, 5)])
        bs = place_bands(bn2_small, f, strategy="auto")
        # straight placement => constant bottoms
        assert (bs.bottoms == bs.bottoms[:, :1]).all()

    def test_falls_back_to_paper(self):
        # fault rows 0, 4, 8, 12, 16 have period b = 4 < window period b+1:
        # no straight cover exists (window span argument), but the regions
        # are isolated enough for painting + pigeonhole + interpolation
        p = BnParams(d=2, b=4, s=1, t=3)
        f = faults_at(p, [(0, 0), (4, 0), (8, 48), (12, 96), (16, 96)])
        with pytest.raises(ReconstructionError):
            place_straight(p, f)
        bs = place_bands(p, f, strategy="auto")
        bs.validate(f)
        assert not (bs.bottoms == bs.bottoms[:, :1]).all()

    def test_unknown_strategy(self, bn2_small):
        with pytest.raises(ValueError):
            place_bands(bn2_small, faults_at(bn2_small, []), strategy="bogus")

    def test_shape_mismatch(self, bn2_small):
        with pytest.raises(ValueError):
            place_bands(bn2_small, np.zeros((3, 3), dtype=bool))


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_placement_valid_or_categorised_property(data):
    """Property: for ANY random fault set, place_bands either returns a
    fully valid covering band set or raises a categorised error."""
    p = BnParams(d=2, b=3, s=1, t=2)
    count = data.draw(st.integers(min_value=0, max_value=8))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    f = np.zeros(p.shape, dtype=bool)
    if count:
        flat = rng.choice(p.num_nodes, size=count, replace=False)
        f.ravel()[flat] = True
    try:
        bs = place_bands(p, f, strategy="auto")
    except ReconstructionError as exc:
        assert exc.category != "unspecified"
    else:
        bs.validate(f)  # re-validate: must not raise
