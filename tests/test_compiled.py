"""The compiled kernel tier: cores vs their numpy twins, and dispatch.

The cores in :mod:`repro.fastpath.compiled` are plain Python functions
when numba is absent (the offline-container default), so *these tests
run everywhere* — core-vs-numpy equivalence is proven whether or not the
JIT actually engages.  Tier availability and the fail-fast contract of
:mod:`repro.fastpath.dispatch` are covered either way: assertions branch
on :func:`compiled_available` so no behavior is silently untested on
either kind of machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendUnavailableError
from repro.fastpath.compiled import (
    COMPILED_AVAILABLE,
    bn_cover_core,
    lifetime_step_core,
    longest_false_run_core,
    traffic_arbitrate_core,
)
from repro.fastpath.dispatch import (
    BACKENDS,
    TIERS,
    available_tiers,
    compiled_available,
    resolve_backend,
)
from repro.util.rng import spawn_rng


class TestBnCoverCore:
    def rand_case(self, seed, trials=16, m=12, b=3, k=4):
        rng = spawn_rng(seed, "cover-core")
        fault_rows = rng.random((trials, m)) < 0.3
        bottoms = rng.integers(0, m, size=(trials, k)).astype(np.int64)
        # Greedy-failed trials carry -1 rows, as in straight_survival_batch.
        bottoms[rng.random(trials) < 0.2] = -1
        return fault_rows, bottoms, m, b

    def numpy_twin(self, fault_rows, bottoms, m, b):
        rows = np.arange(m)
        masked = ((rows[None, :, None] - bottoms[:, None, :]) % m < b).any(axis=2)
        return (~fault_rows | masked).all(axis=1)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_numpy_twin(self, seed):
        fault_rows, bottoms, m, b = self.rand_case(seed)
        got = bn_cover_core(fault_rows, bottoms, m, b)
        want = self.numpy_twin(fault_rows, bottoms, m, b)
        assert np.array_equal(got, want)

    def test_no_faults_always_covered(self):
        fault_rows = np.zeros((3, 10), dtype=bool)
        bottoms = np.full((3, 2), -1, dtype=np.int64)
        assert bn_cover_core(fault_rows, bottoms, 10, 2).all()


class TestLongestFalseRunCore:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_python_reference(self, seed):
        rng = spawn_rng(seed, "streak-core")
        marked = rng.random((8, 20)) < 0.4
        got = longest_false_run_core(marked)
        for i in range(marked.shape[0]):
            best = run = 0
            for v in marked[i]:
                run = 0 if v else run + 1
                best = max(best, run)
            assert got[i] == best

    def test_all_false_and_all_true(self):
        assert longest_false_run_core(np.zeros((1, 7), dtype=bool))[0] == 7
        assert longest_false_run_core(np.ones((1, 7), dtype=bool))[0] == 0


class TestLifetimeStepCore:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_numpy_twin(self, seed):
        rng = spawn_rng(seed, "step-core")
        trials, m, b, k = 24, 12, 3, 4
        r = rng.integers(0, m, size=trials).astype(np.int64)
        bottoms = rng.integers(0, m, size=(trials, k)).astype(np.int64)
        got = lifetime_step_core(r, bottoms, m, b)
        want = ((r[:, None] - bottoms) % m < b).any(axis=1)
        assert np.array_equal(got, want)


class TestTrafficArbitrateCore:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_lexsort_twin(self, seed):
        rng = spawn_rng(seed, "arb-core")
        n, num_classes = int(rng.integers(1, 40)), int(rng.integers(1, 4))
        live = np.sort(rng.choice(200, size=n, replace=False)).astype(np.int64)
        wanted = rng.integers(0, 12, size=n).astype(np.int64)
        cls_live = rng.integers(0, num_classes, size=n).astype(np.int64)

        win_pos, depth = traffic_arbitrate_core(wanted, cls_live, num_classes)

        order = np.lexsort((live, cls_live, wanted))
        lk = wanted[order]
        first = np.flatnonzero(np.r_[True, lk[1:] != lk[:-1]])
        queue_depths = np.diff(np.r_[first, lk.size])
        assert np.array_equal(live[win_pos], live[order[first]])
        assert depth == queue_depths.max()

    def test_single_message_wins_with_depth_one(self):
        win_pos, depth = traffic_arbitrate_core(
            np.array([5], dtype=np.int64), np.array([0], dtype=np.int64), 1
        )
        assert win_pos.tolist() == [0] and depth == 1

    def test_priority_class_beats_lower_id(self):
        # Same link: message 1 (class 0) must beat message 0 (class 1).
        wanted = np.array([7, 7], dtype=np.int64)
        cls_live = np.array([1, 0], dtype=np.int64)
        win_pos, depth = traffic_arbitrate_core(wanted, cls_live, 2)
        assert win_pos.tolist() == [1] and depth == 2


class TestDispatch:
    def test_vocabulary(self):
        assert TIERS == ("scalar", "batch", "compiled")
        assert BACKENDS == ("auto", "scalar", "batch", "compiled")
        assert set(available_tiers()) <= set(TIERS)
        assert "scalar" in available_tiers() and "batch" in available_tiers()

    def test_resolve_fixed_tiers(self):
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("batch") == "batch"

    def test_resolve_auto_prefers_best_available(self):
        expect = "compiled" if compiled_available() else "batch"
        assert resolve_backend("auto") == expect
        assert resolve_backend(None) == expect

    def test_unknown_backend_is_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_compiled_resolution_matches_availability(self):
        if compiled_available():
            assert resolve_backend("compiled") == "compiled"
        else:
            with pytest.raises(BackendUnavailableError, match="numba"):
                resolve_backend("compiled")

    def test_availability_flags_agree(self):
        assert compiled_available() == COMPILED_AVAILABLE
        assert ("compiled" in available_tiers()) == COMPILED_AVAILABLE

    def test_unavailable_error_is_value_error(self):
        # The CLI catches ValueError for clean exit-2 diagnostics; the
        # dedicated class must stay in that hierarchy.
        assert issubclass(BackendUnavailableError, ValueError)


class TestRunnerBackendArg:
    def test_runner_rejects_backend_plus_legacy_batch(self):
        from repro.api.experiment import ExperimentRunner

        with pytest.raises(ValueError, match="not both"):
            ExperimentRunner(backend="batch", batch=True)

    def test_runner_resolves_eagerly(self):
        from repro.api.experiment import ExperimentRunner

        assert ExperimentRunner(backend="scalar").backend == "scalar"
        assert ExperimentRunner(batch=False).backend == "scalar"
        assert ExperimentRunner(batch=True).backend == "batch"
        if not compiled_available():
            with pytest.raises(BackendUnavailableError, match="available tiers"):
                ExperimentRunner(backend="compiled")

    def test_legacy_default_resolves_auto(self):
        from repro.api.experiment import ExperimentRunner

        assert ExperimentRunner().backend == resolve_backend("auto")
