"""End-to-end CLI coverage: every subcommand via ``main([...])``.

Tiny parameters throughout; each test asserts the exit code and that the
output parses (tables render, JSON loads), not exact survival numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_bn(self, capsys):
        assert main(["info", "bn", "--b", "4", "--t", "2"]) == 0
        out = capsys.readouterr().out
        assert "B^2_96" in out and "p = b^-3d" in out

    def test_dn(self, capsys):
        assert main(["info", "dn", "--n", "70", "--b", "2"]) == 0
        assert "k = 8" in capsys.readouterr().out


class TestBnTrial:
    def test_default_params(self, capsys):
        assert main(["bn-trial", "--trials", "2"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_with_health(self, capsys):
        assert main(["bn-trial", "--trials", "2", "--health"]) == 0
        assert "healthy=" in capsys.readouterr().out


class TestDnAttack:
    def test_two_patterns(self, capsys):
        assert main(["dn-attack", "--n", "70", "--b", "2", "--trials", "2",
                     "--patterns", "random,diagonal"]) == 0
        out = capsys.readouterr().out
        assert "random" in out and "diagonal" in out


class TestLifetime:
    def test_runs(self, capsys):
        assert main(["lifetime", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "median=" in out and "theory scale" in out


class TestTraffic:
    def test_closed_loop_runs(self, capsys):
        assert main(["traffic", "--construction", "bn", "--b", "3",
                     "--pattern", "uniform,transpose", "--messages", "40",
                     "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "traffic/uniform m=40" in out and "traffic/transpose m=40" in out
        assert "delivered" in out

    def test_open_loop_with_output(self, capsys, tmp_path):
        out_path = tmp_path / "traffic.json"
        assert main(["traffic", "--construction", "bn", "--b", "3",
                     "--pattern", "uniform", "--rate", "0.01,0.05",
                     "--cycles", "40", "--warmup", "10", "--trials", "2",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-experiment-v1"
        assert len(payload["points"]) == 2  # one per rate
        pt = payload["points"][0]
        assert pt["traffic_spec"]["injection"] == "bernoulli"
        assert pt["result"]["kind"] == "traffic"
        assert pt["result"]["trials"] == 2

    def test_invalid_rate_rejected(self, capsys):
        assert main(["traffic", "--construction", "bn", "--b", "3",
                     "--rate", "1.5", "--cycles", "10", "--trials", "1"]) == 2
        assert "invalid traffic point" in capsys.readouterr().err

    def test_incapable_construction_rejected(self, capsys):
        assert main(["traffic", "--construction", "alon_chung", "--n", "20",
                     "--trials", "1"]) == 2
        assert "traffic capability" in capsys.readouterr().err

    def test_route_invalid_pattern_exits_cleanly(self, capsys):
        # bitreverse on the (36, 36) guest (1296 nodes, not a power of
        # two): a clean exit-2 diagnostic, not a traceback
        assert main(["route", "--pattern", "bitreverse", "--messages", "5"]) == 2
        assert "power-of-two" in capsys.readouterr().err
        assert main(["lifetime", "--construction", "bn", "--b", "3",
                     "--trials", "1", "--traffic", "bitreverse",
                     "--checkpoints", "1"]) == 2
        assert "power-of-two" in capsys.readouterr().err

    def test_lifetime_snapshot_flags(self, capsys):
        assert main(["lifetime", "--construction", "bn", "--b", "3",
                     "--trials", "1", "--traffic", "uniform",
                     "--checkpoints", "1,99999", "--messages", "30",
                     "--live-traffic"]) == 0
        out = capsys.readouterr().out
        assert "live" in out and "not reached" in out


class TestConformanceParser:
    """Flag wiring only — the suite itself runs in tests/test_conformance.py
    (and in CI as `repro-ft conformance --quick`)."""

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["conformance", "--quick", "--update-golden", "--golden-dir", "/tmp/g"]
        )
        assert args.quick and args.update_golden and args.golden_dir == "/tmp/g"
        defaults = build_parser().parse_args(["conformance"])
        assert not defaults.quick and not defaults.update_golden
        assert defaults.fn is not None


class TestFigures:
    def test_renders_both(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out


class TestRoute:
    def test_runs(self, capsys):
        assert main(["route", "--messages", "20", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "routing" in out and "p50" in out


class TestRun:
    def test_bernoulli_grid(self, capsys):
        assert main(["run", "--construction", "bn", "--p", "0.001,0.004",
                     "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "p=0.001" in out and "p=0.004" in out

    def test_adversarial_with_output(self, capsys, tmp_path):
        out_path = tmp_path / "res.json"
        assert main(["run", "--construction", "dn", "--n", "70", "--b", "2",
                     "--pattern", "random", "--trials", "2",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-experiment-v1"
        assert payload["spec"]["construction"] == "dn"
        assert payload["points"][0]["result"]["trials"] == 2

    def test_parallel_workers(self, capsys):
        assert main(["run", "--construction", "replication", "--n", "8",
                     "--replication", "3", "--p", "0.05", "--trials", "8",
                     "--workers", "2"]) == 0
        assert "replication" in capsys.readouterr().out

    def test_every_construction_smokes(self, capsys):
        cases = [
            ["--construction", "bn", "--p", "0.001"],
            ["--construction", "an", "--k-sub", "2", "--h", "8", "--p", "0.1"],
            ["--construction", "dn", "--n", "70", "--b", "2", "--pattern", "random"],
            ["--construction", "alon_chung", "--n", "20", "--p", "0.1"],
            ["--construction", "replication", "--n", "8", "--replication", "3",
             "--p", "0.05"],
            ["--construction", "sparerows", "--n", "10", "--sigma", "4",
             "--pattern", "random"],
        ]
        for extra in cases:
            assert main(["run", *extra, "--trials", "2"]) == 0, extra
            assert "trials/point" in capsys.readouterr().out

    def test_no_fault_points_is_usage_error(self, capsys):
        assert main(["run", "--construction", "bn", "--trials", "2"]) == 2
        assert "--p, --pattern and/or --fault-model" in capsys.readouterr().err

    def test_unknown_pattern_is_usage_error(self, capsys):
        assert main(["run", "--construction", "dn", "--pattern", "sneaky",
                     "--trials", "2"]) == 2
        assert "unknown pattern" in capsys.readouterr().err

    def test_invalid_probability_is_usage_error(self, capsys):
        assert main(["run", "--construction", "bn", "--p", "1.5",
                     "--trials", "2"]) == 2
        assert "invalid fault point" in capsys.readouterr().err

    def test_unsupported_fault_model_is_clean_error(self, capsys):
        # A^d_n models random faults only; the runner's error must surface
        # as a clean CLI message, not a traceback.
        assert main(["run", "--construction", "an", "--pattern", "random",
                     "--k", "5", "--trials", "2"]) == 2
        assert "random faults only" in capsys.readouterr().err

    def test_bad_workers_is_clean_error(self, capsys):
        assert main(["run", "--construction", "bn", "--p", "0.001",
                     "--workers", "0", "--trials", "2"]) == 2
        assert "workers" in capsys.readouterr().err


class TestFaultModelFlag:
    """--fault-model NAME[:key=val,...] on run/lifetime/traffic
    (docs/faults.md)."""

    def test_run_grid_points_and_serialization(self, capsys, tmp_path):
        out_path = tmp_path / "models.json"
        assert main(["run", "--construction", "bn", "--p", "0.001",
                     "--fault-model", "neighbor:p=0.002",
                     "--fault-model", "component:rate=0.01,width=2",
                     "--trials", "2", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "model/neighbor" in out and "model/component" in out
        payload = json.loads(out_path.read_text())
        grid = payload["spec"]["grid"]
        # The plain --p point serialises WITHOUT the key (byte-stability);
        # model points carry the flattened dict back out.
        assert "fault_model" not in grid[0]
        assert grid[1]["fault_model"] == {"name": "neighbor", "p": 0.002}
        assert grid[2]["fault_model"] == {"name": "component", "rate": 0.01,
                                          "width": 2}

    def test_lifetime_model_stream(self, capsys):
        assert main(["lifetime", "--b", "3", "--fault-model",
                     "bernoulli:p=0.0005", "--repair-rate", "0.3",
                     "--max-steps", "20", "--trials", "2"]) == 0
        assert "life/model/bernoulli" in capsys.readouterr().out

    def test_traffic_byzantine_model(self, capsys):
        assert main(["traffic", "--b", "3", "--pattern", "uniform",
                     "--messages", "16", "--fault-model",
                     "byzantine:rate=0.05,drop=2", "--trials", "2"]) == 0
        assert "model=byzantine" in capsys.readouterr().out

    def test_unknown_model_is_usage_error(self, capsys):
        assert main(["run", "--construction", "bn", "--fault-model",
                     "gamma-ray", "--trials", "2"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault model" in err and "bernoulli" in err

    def test_bad_model_parameters_are_usage_errors(self, capsys):
        assert main(["run", "--construction", "bn", "--fault-model",
                     "neighbor:p=1.5", "--trials", "2"]) == 2
        assert "out of [0, 1]" in capsys.readouterr().err
        assert main(["run", "--construction", "bn", "--fault-model",
                     "neighbor:zeta=1", "--trials", "2"]) == 2
        assert "neighbor" in capsys.readouterr().err


class TestBackendFlag:
    """--backend {auto,scalar,batch,compiled} on run/lifetime/traffic
    (docs/fastpath.md kernel tiers).  Tier choice must never reach the
    results; an unavailable tier must fail fast with a clean exit 2."""

    def run_json(self, tmp_path, cmd, backend):
        out_path = tmp_path / f"{backend or 'default'}.json"
        argv = [*cmd, "--out", str(out_path)]
        if backend is not None:
            argv += ["--backend", backend]
        assert main(argv) == 0, argv
        return out_path.read_bytes()

    def test_run_tiers_byte_identical(self, capsys, tmp_path):
        cmd = ["run", "--construction", "bn", "--p", "0.001,0.02",
               "--trials", "4"]
        ref = self.run_json(tmp_path, cmd, None)
        for backend in ("auto", "scalar", "batch"):
            assert self.run_json(tmp_path, cmd, backend) == ref, backend
            capsys.readouterr()

    def test_lifetime_and_traffic_tiers_byte_identical(self, capsys, tmp_path):
        for cmd in (
            ["lifetime", "--b", "3", "--trials", "2"],
            ["traffic", "--b", "3", "--pattern", "uniform", "--messages", "24",
             "--router", "adaptive", "--qos-classes", "2", "--credits", "4",
             "--trials", "2"],
        ):
            scalar = self.run_json(tmp_path, cmd, "scalar")
            assert self.run_json(tmp_path, cmd, "batch") == scalar, cmd
            capsys.readouterr()

    def test_unavailable_compiled_tier_is_clean_error(self, capsys):
        from repro.fastpath.dispatch import compiled_available

        if compiled_available():
            pytest.skip("numba present: compiled tier is available here")
        for cmd in (
            ["run", "--construction", "bn", "--p", "0.001", "--trials", "2"],
            ["lifetime", "--b", "3", "--trials", "1"],
            ["traffic", "--b", "3", "--pattern", "uniform", "--messages", "8",
             "--trials", "1"],
        ):
            assert main([*cmd, "--backend", "compiled"]) == 2, cmd
            err = capsys.readouterr().err
            assert "backend 'compiled' is unavailable" in err
            assert "numba" in err and "available tiers" in err

    def test_backend_and_legacy_batch_flags_conflict(self, capsys):
        assert main(["run", "--construction", "bn", "--p", "0.001",
                     "--trials", "2", "--backend", "batch", "--no-batch"]) == 2
        assert "not both" in capsys.readouterr().err
