#!/usr/bin/env python3
"""Docs drift gate (run by the CI lint job).

Three checks keep ``docs/`` tethered to the code, with no dependencies
beyond the standard library (the lint job installs only ruff):

1. **Coverage** — every ``docs/*.md`` file is linked from the README.
2. **Links** — every relative markdown link in the README and the docs
   resolves to an existing file.
3. **CLI drift** — every ``repro-ft <subcommand>`` invocation shown in a
   code span or fenced block names a subcommand the argparse tree in
   ``src/repro/cli.py`` actually registers (parsed via ``ast``, never
   imported, so this runs without numpy installed).

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`([^`]+)`")


def doc_files() -> list[Path]:
    return sorted((ROOT / "docs").glob("*.md"))


def markdown_links(path: Path) -> list[str]:
    return _LINK.findall(path.read_text(encoding="utf-8"))


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def check_readme_coverage(errors: list[str]) -> None:
    readme = ROOT / "README.md"
    linked = {
        (ROOT / t.split("#")[0]).resolve()
        for t in markdown_links(readme)
        if not _is_external(t)
    }
    for doc in doc_files():
        if doc.resolve() not in linked:
            errors.append(f"README.md does not link {doc.relative_to(ROOT)}")


def check_relative_links(errors: list[str]) -> None:
    for path in [ROOT / "README.md", *doc_files()]:
        for target in markdown_links(path):
            if _is_external(target):
                continue
            resolved = (path.parent / target.split("#")[0]).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(ROOT)}: broken link -> {target}"
                )


def cli_subcommands() -> set[str]:
    """Subcommand names registered in cli.py, via the AST — the lint
    environment has no numpy, so importing the module is off-limits."""
    tree = ast.parse((ROOT / "src/repro/cli.py").read_text(encoding="utf-8"))
    names = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.add(node.args[0].value)
    return names


def code_text(path: Path) -> str:
    """Fenced code blocks plus inline code spans, newline-joined.

    CLI invocations only count inside code; prose like "the `repro-ft`
    console script" must not trip the subcommand check.
    """
    chunks: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            chunks.append(line)
        else:
            chunks.extend(_INLINE_CODE.findall(line))
    return "\n".join(chunks)


def invoked_subcommands(text: str) -> set[str]:
    """First positional token after each ``repro-ft``, skipping global
    ``--option [value]`` pairs (e.g. ``repro-ft --log-level info serve``
    yields ``serve``; bare ``repro-ft --version`` yields nothing)."""
    found = set()
    for match in re.finditer(r"\brepro-ft\b", text):
        line = text[match.end():].split("\n", 1)[0].split("#", 1)[0]
        tokens = line.split()
        skip_value = False
        for tok in tokens:
            if skip_value:
                skip_value = False
                continue
            if tok.startswith("-"):
                skip_value = "=" not in tok and tok.startswith("--")
                continue
            if re.fullmatch(r"[a-z][a-z0-9-]*", tok):
                found.add(tok)
            break
    return found


def check_cli_drift(errors: list[str]) -> None:
    known = cli_subcommands()
    if not known:
        errors.append("src/repro/cli.py: found no add_parser() calls")
        return
    for path in [ROOT / "README.md", *doc_files()]:
        for sub in sorted(invoked_subcommands(code_text(path))):
            if sub not in known:
                errors.append(
                    f"{path.relative_to(ROOT)}: `repro-ft {sub}` is not a "
                    f"CLI subcommand (known: {', '.join(sorted(known))})"
                )


def main() -> int:
    errors: list[str] = []
    check_readme_coverage(errors)
    check_relative_links(errors)
    check_cli_drift(errors)
    for line in errors:
        print(f"check_docs: {line}", file=sys.stderr)
    if not errors:
        ndocs = len(doc_files())
        print(f"check_docs: ok ({ndocs} docs, README links + CLI verified)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
