"""Legacy setup shim: the reproduction environment is offline (no `wheel`
package), so `pip install -e .` must go through setuptools' classic
develop-mode path. All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
