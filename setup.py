"""Classic setuptools metadata.

Deliberately no pyproject.toml.  In environments with network access (or
`wheel` preinstalled), ``pip install -e .`` works and installs the
``repro-ft`` console script.  The offline reproduction container can run
*no* form of editable install (modern pip insists on a PEP 517 metadata
build, which needs ``wheel``, which is absent and cannot be downloaded) —
there, use ``export PYTHONPATH=src`` as the README's quickstart says.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ft-torus",
    version="1.0.0",
    description=(
        "Reproduction of Tamaki, Construction of the Mesh and the Torus "
        "Tolerating a Large Number of Faults (SPAA 1994)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy", "scipy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis", "networkx"]},
    entry_points={"console_scripts": ["repro-ft = repro.cli:main"]},
)
