"""Exception hierarchy for the fault-tolerant torus library.

Every place where the paper's constructive proof says "this step succeeds
because the instance is healthy" is guarded at runtime.  Violations raise a
subclass of :class:`ReconstructionError` carrying a machine-readable
``category`` so that Monte-Carlo drivers can tally failure modes instead of
crashing (see ``repro.analysis.montecarlo``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ParameterError(ReproError, ValueError):
    """Invalid construction parameters (divisibility, ranges, ...)."""


class ConstructionError(ReproError):
    """A construction could not be built (should not happen for valid params)."""


class BackendUnavailableError(ReproError, ValueError):
    """An explicitly requested kernel tier cannot run here.

    Raised by :func:`repro.fastpath.dispatch.resolve_backend` when
    ``backend="compiled"`` is requested but the optional JIT dependency
    (numba) is not importable.  ``backend="auto"`` never raises — it
    degrades to the best available tier; only an explicit request for an
    unavailable tier fails, and it fails fast (at runner construction /
    CLI parse time), never mid-experiment.
    """


class JournalError(ReproError):
    """A checkpoint chunk journal cannot be resumed.

    Raised when ``--resume`` points at a journal written for a different
    spec, with an unknown format, or with a corrupt (non-final) line —
    anything where silently continuing could merge wrong chunks into the
    result.  A *truncated final line* is NOT an error: that is the
    expected signature of a mid-write kill, and resume drops it.
    """



class ReconstructionError(ReproError):
    """Recovery of the fault-free torus failed.

    Attributes
    ----------
    category:
        Short machine-readable failure-mode tag.  Stable values used by the
        Monte-Carlo tooling:

        - ``"unhealthy"``        healthiness precondition violated and the
                                 fallback strategies also failed
        - ``"no-frame"``         painting could not find a fault-free s-frame
        - ``"region-overflow"``  a black region exceeded its extent bound
        - ``"block-overflow"``   a block was taller than 2b^2 or had too many
                                 faults for the pigeonhole
        - ``"segment-overflow"`` more than s segments were needed in one
                                 tile-row for one region
        - ``"padding"``          padding segments could not be placed
        - ``"coverage"``         final bands failed to mask every fault
        - ``"band-invalid"``     a band violated slope/untouching/count checks
        - ``"capacity"``         straight/worst-case placement ran out of bands
        - ``"embedding"``        the extracted subgraph failed verification
        - ``"supernode"``        too few good supernodes / greedy ran dry
    """

    def __init__(self, message: str, *, category: str = "unspecified") -> None:
        super().__init__(message)
        self.category = category


class HealthinessError(ReconstructionError):
    """A healthiness condition (Lemma 4) was violated."""

    def __init__(self, message: str, *, condition: int, category: str = "unhealthy") -> None:
        super().__init__(message, category=category)
        #: Which of the paper's three healthiness conditions failed (1, 2 or 3).
        self.condition = condition


class BandPlacementError(ReconstructionError):
    """Band placement (the constructive core of Lemma 5) failed."""


class EmbeddingError(ReconstructionError):
    """The claimed embedding is not a valid fault-free torus."""

    def __init__(self, message: str, *, category: str = "embedding") -> None:
        super().__init__(message, category=category)
