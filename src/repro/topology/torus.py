"""Builders for the paper's reference topologies.

Section 2 of the paper: ``C_n`` is the cycle, ``L_n`` the path, and the
``d``-dimensional torus/mesh are direct products of cycles/paths.  These
builders produce :class:`~repro.topology.graph.CSRGraph` instances with nodes
identified by row-major flat indices (see :class:`~repro.topology.coords.CoordCodec`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.coords import CoordCodec
from repro.topology.graph import CSRGraph

__all__ = ["cycle_graph", "path_graph", "torus_graph", "mesh_graph", "torus_edges"]


def cycle_graph(n: int) -> CSRGraph:
    """The cycle ``C_n`` (for ``n == 2`` this degenerates to a single edge,
    for ``n == 1`` to an isolated node — matching direct-product semantics)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return CSRGraph(1, np.empty((0, 2), dtype=np.int64))
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    if n == 2:
        return CSRGraph(2, np.array([[0, 1]], dtype=np.int64))
    return CSRGraph(n, np.stack([src, dst], axis=1))


def path_graph(n: int) -> CSRGraph:
    """The path ``L_n`` (cycle minus one edge)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph(n, np.stack([src, src + 1], axis=1))


def torus_edges(shape: Sequence[int]) -> np.ndarray:
    """Edge array of the ``shape`` torus (wrap in every axis)."""
    codec = CoordCodec(shape)
    idx = codec.all_indices()
    us, vs = [], []
    for axis, n in enumerate(codec.shape):
        if n < 2:
            continue
        nxt = codec.shift(idx, axis, +1, wrap=True)
        if n == 2:
            # avoid the duplicate wrap edge
            coord = codec.axis_coord(idx, axis)
            keep = coord == 0
            us.append(idx[keep])
            vs.append(nxt[keep])
        else:
            us.append(idx)
            vs.append(nxt)
    if not us:
        return np.empty((0, 2), dtype=np.int64)
    return np.stack([np.concatenate(us), np.concatenate(vs)], axis=1)


def torus_graph(shape: Sequence[int]) -> CSRGraph:
    """The ``n_1 x ... x n_d`` torus ``C_{n_1} x ... x C_{n_d}``."""
    codec = CoordCodec(shape)
    return CSRGraph(codec.size, torus_edges(shape))


def mesh_graph(shape: Sequence[int]) -> CSRGraph:
    """The ``n_1 x ... x n_d`` mesh ``L_{n_1} x ... x L_{n_d}``."""
    codec = CoordCodec(shape)
    idx = codec.all_indices()
    us, vs = [], []
    for axis, n in enumerate(codec.shape):
        if n < 2:
            continue
        nxt = codec.shift(idx, axis, +1, wrap=False)
        keep = nxt >= 0
        us.append(idx[keep])
        vs.append(nxt[keep])
    if not us:
        return CSRGraph(codec.size, np.empty((0, 2), dtype=np.int64))
    return CSRGraph(codec.size, np.stack([np.concatenate(us), np.concatenate(vs)], axis=1))
