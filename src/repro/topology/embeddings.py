"""Embedding verification.

The library never *trusts* a reconstruction: every claimed fault-free torus
is checked edge-by-edge against the host construction.  Host graphs may be
too large to materialise (e.g. ``A^2_n`` supernode cliques), so the host is
abstracted by two vectorised predicates:

``node_ok(ids) -> bool[...]``
    True where the host node is alive (non-faulty).
``edge_ok(us, vs) -> bool[...]``
    True where ``{us[i], vs[i]}`` is an existing, non-faulty host edge.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import EmbeddingError
from repro.topology.coords import CoordCodec

__all__ = ["verify_torus_embedding", "verify_mesh_embedding"]

NodePred = Callable[[np.ndarray], np.ndarray]
EdgePred = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _verify(
    shape: Sequence[int],
    phi: np.ndarray,
    node_ok: NodePred,
    edge_ok: EdgePred,
    *,
    wrap: bool,
    what: str,
) -> dict:
    codec = CoordCodec(shape)
    phi = np.asarray(phi, dtype=np.int64).ravel()
    if phi.shape[0] != codec.size:
        raise EmbeddingError(
            f"{what}: mapping has {phi.shape[0]} entries, expected {codec.size}"
        )
    if np.unique(phi).size != phi.size:
        raise EmbeddingError(f"{what}: mapping is not injective")
    ok = np.asarray(node_ok(phi), dtype=bool)
    if not ok.all():
        raise EmbeddingError(
            f"{what}: {int((~ok).sum())} mapped nodes are faulty/invalid"
        )
    idx = codec.all_indices()
    checked = 0
    for axis, n in enumerate(codec.shape):
        if n < 2:
            continue
        nxt = codec.shift(idx, axis, +1, wrap=wrap)
        src = idx
        if not wrap:
            keep = nxt >= 0
            src, nxt = src[keep], nxt[keep]
        elif n == 2:
            keep = codec.axis_coord(idx, axis) == 0
            src, nxt = src[keep], nxt[keep]
        good = np.asarray(edge_ok(phi[src], phi[nxt]), dtype=bool)
        if not good.all():
            bad = int((~good).sum())
            i = int(np.flatnonzero(~good)[0])
            raise EmbeddingError(
                f"{what}: {bad} guest edges missing/faulty in host "
                f"(first: axis {axis}, guest {src[i]}->{nxt[i]}, "
                f"host {phi[src[i]]}->{phi[nxt[i]]})"
            )
        checked += len(src)
    return {"nodes": int(phi.size), "edges_checked": checked}


def verify_torus_embedding(
    shape: Sequence[int], phi: np.ndarray, node_ok: NodePred, edge_ok: EdgePred
) -> dict:
    """Verify ``phi`` embeds the ``shape`` torus into the host. Raises
    :class:`EmbeddingError` on any violation; returns check statistics."""
    return _verify(shape, phi, node_ok, edge_ok, wrap=True, what="torus embedding")


def verify_mesh_embedding(
    shape: Sequence[int], phi: np.ndarray, node_ok: NodePred, edge_ok: EdgePred
) -> dict:
    """Verify ``phi`` embeds the ``shape`` mesh into the host."""
    return _verify(shape, phi, node_ok, edge_ok, wrap=False, what="mesh embedding")
