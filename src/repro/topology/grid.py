"""Tile / brick / frame geometry for the ``B^d_n`` construction (Section 3).

The paper partitions the augmented torus into **tiles** of side ``b^2`` in
every dimension.  On top of tiles it defines:

* **bricks** — ``b^2 x b^3 x ... x b^3`` tiled submeshes (1 tile tall in the
  first dimension, ``b`` tiles wide in every other dimension),
* **s-frames** — the boundary tiles of an ``s b^2 x ... x s b^2`` tiled
  submesh (``s >= 3``), used to *enclose* faults during painting.

All boxes are tile-aligned and cyclic (the host is a torus).  Tiles are
addressed by coordinates on the *tile grid*, whose shape is the node shape
divided by ``b^2`` per axis.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.topology.coords import CoordCodec

__all__ = ["TileGeometry"]


class TileGeometry:
    """Tile bookkeeping for a ``shape`` torus with band parameter ``b``.

    Parameters
    ----------
    shape:
        Node-level side lengths; every entry must be divisible by ``b**2``.
    b:
        The paper's band-width parameter (``b ~ log n``); tiles have side
        ``b**2``.
    """

    def __init__(self, shape: Sequence[int], b: int) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.b = int(b)
        if self.b < 3:
            raise ParameterError("b must be >= 3 (s-frames need s >= 3)")
        self.tile_side = self.b * self.b
        for s in self.shape:
            if s % self.tile_side != 0:
                raise ParameterError(f"side {s} not divisible by tile side {self.tile_side}")
        self.grid_shape = tuple(s // self.tile_side for s in self.shape)
        self.grid = CoordCodec(self.grid_shape)
        self.ndim = len(self.shape)
        if min(self.grid_shape) < self.b:
            raise ParameterError(
                f"tile grid {self.grid_shape} too small for frames up to size b={self.b}"
            )

    # -- tiles ----------------------------------------------------------------

    def tile_of_coords(self, coords: np.ndarray) -> np.ndarray:
        """Tile-grid coordinates of node coordinates (shape (..., d))."""
        return np.asarray(coords, dtype=np.int64) // self.tile_side

    def tile_fault_counts(self, faults: np.ndarray) -> np.ndarray:
        """Per-tile fault counts. ``faults``: boolean array of node shape."""
        if faults.shape != self.shape:
            raise ValueError(f"fault array shape {faults.shape} != {self.shape}")
        view_shape = []
        for g in range(self.ndim):
            view_shape += [self.grid_shape[g], self.tile_side]
        v = faults.reshape(view_shape)
        axes = tuple(range(1, 2 * self.ndim, 2))
        return v.sum(axis=axes)

    # -- bricks -----------------------------------------------------------------

    def brick_corners(self) -> Iterator[tuple[int, ...]]:
        """Tile-grid corners of every brick position.

        A brick spans 1 tile along axis 0 and ``b`` tiles along each other
        axis; corners range over the whole (cyclic) tile grid.
        """
        ranges = [range(self.grid_shape[0])]
        for g in range(1, self.ndim):
            ranges.append(range(self.grid_shape[g]))
        yield from _product(ranges)

    def brick_tiles(self, corner: Sequence[int]) -> np.ndarray:
        """Flat tile-grid indices of the tiles of the brick at ``corner``."""
        sizes = [1] + [self.b] * (self.ndim - 1)
        return self._box_tiles(corner, sizes)

    def brick_node_block(self, faults: np.ndarray, corner: Sequence[int]) -> np.ndarray:
        """The node-level fault sub-array of the brick at tile ``corner``.

        Returned with shape ``(b^2, b^3, ..., b^3)`` — cyclic wrap handled by
        ``np.take``.
        """
        out = faults
        sizes = [1] + [self.b] * (self.ndim - 1)
        for axis in range(self.ndim):
            start = corner[axis] * self.tile_side
            length = sizes[axis] * self.tile_side
            idx = (start + np.arange(length)) % self.shape[axis]
            out = np.take(out, idx, axis=axis)
        return out

    # -- boxes and frames -------------------------------------------------------

    def _box_tiles(self, corner: Sequence[int], sizes: Sequence[int]) -> np.ndarray:
        """Flat tile indices of the (cyclic) tile box at ``corner`` of ``sizes``."""
        grids = [
            (corner[axis] + np.arange(sizes[axis])) % self.grid_shape[axis]
            for axis in range(self.ndim)
        ]
        mesh = np.meshgrid(*grids, indexing="ij")
        coords = np.stack([mm.ravel() for mm in mesh], axis=-1)
        return self.grid.ravel(coords)

    def frame_and_interior(self, corner: Sequence[int], s: int) -> tuple[np.ndarray, np.ndarray]:
        """Boundary (frame) and interior flat tile indices of an s-box.

        ``s >= 3``; the box spans ``s`` tiles per axis starting at ``corner``.
        """
        if s < 3:
            raise ValueError("s-frames require s >= 3")
        if s > min(self.grid_shape):
            raise ValueError(f"s={s} exceeds tile grid {self.grid_shape}")
        all_tiles = self._box_tiles(corner, [s] * self.ndim)
        interior = self._box_tiles([c + 1 for c in corner], [s - 2] * self.ndim)
        interior_set = np.isin(all_tiles, interior)
        return all_tiles[~interior_set], interior

    def concentric_corners(self, tile: Sequence[int], s: int) -> tuple[int, ...]:
        """Corner of the s-box centred (as centred as parity allows) on ``tile``."""
        return tuple((tile[a] - (s - 1) // 2) % self.grid_shape[a] for a in range(self.ndim))

    def enclosing_corners(self, tile: Sequence[int], s: int) -> Iterator[tuple[int, ...]]:
        """All corners whose s-box strictly encloses ``tile`` (tile in interior).

        Ordered centre-first so greedy searches prefer symmetric frames.
        """
        offsets = sorted(range(1, s - 1), key=lambda o: abs(o - (s - 1) / 2))
        for off in _product([offsets] * self.ndim):
            yield tuple((tile[a] - off[a]) % self.grid_shape[a] for a in range(self.ndim))

    # -- misc ---------------------------------------------------------------------

    def tile_extent(self, tiles: np.ndarray, axis: int) -> int:
        """Smallest cyclic window length (in tiles) covering ``tiles`` on ``axis``.

        Used to verify the "each black region fits in a b^3-cube" invariant.
        """
        coords = self.grid.unravel(np.asarray(tiles, dtype=np.int64))[..., axis]
        present = np.zeros(self.grid_shape[axis], dtype=bool)
        present[coords % self.grid_shape[axis]] = True
        if present.all():
            return self.grid_shape[axis]
        from repro.util.cyclic import max_free_run

        # Longest cyclic run of absent positions = the largest gap; everything
        # else is the minimal covering window.
        return self.grid_shape[axis] - max_free_run(present)


def _product(ranges):
    """itertools.product over a list of iterables, yielding tuples."""
    import itertools

    return itertools.product(*ranges)
