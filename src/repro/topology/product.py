"""Direct (Cartesian) products of graphs.

Section 2: ``(u_1..u_d) ~ (v_1..v_d)`` iff they agree in all but one
coordinate and differ by an edge there.  (The paper calls this the *direct
product*; in modern terminology it is the Cartesian product.)  Used by the
Alon–Chung style baseline (``F_n x (L_n)^{d-1}``) and by tests that
cross-check the torus builders.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.coords import CoordCodec
from repro.topology.graph import CSRGraph

__all__ = ["direct_product"]


def direct_product(factors: Sequence[CSRGraph]) -> CSRGraph:
    """Cartesian product of ``factors`` with row-major node numbering.

    Node ``(v_1, ..., v_d)`` gets flat index ``ravel(v_1, ..., v_d)`` under
    :class:`CoordCodec` with shape ``(|G_1|, ..., |G_d|)``.
    """
    if not factors:
        raise ValueError("need at least one factor")
    shape = [g.num_nodes for g in factors]
    codec = CoordCodec(shape)
    us, vs = [], []
    for axis, g in enumerate(factors):
        e = g.edges()
        if e.size == 0:
            continue
        # Other-axes index block: enumerate the product of the other shapes
        # and lift each factor edge across it using strides.
        stride = codec.strides[axis]
        n = shape[axis]
        # All flat indices whose axis-coordinate is 0:
        base = codec.all_indices()
        base = base[codec.axis_coord(base, axis) == 0]
        # For each edge (a, b) in the factor, connect base + a*stride to base + b*stride.
        for a, b in e:
            us.append(base + int(a) * stride)
            vs.append(base + int(b) * stride)
    if not us:
        return CSRGraph(codec.size, np.empty((0, 2), dtype=np.int64))
    return CSRGraph(codec.size, np.stack([np.concatenate(us), np.concatenate(vs)], axis=1))
