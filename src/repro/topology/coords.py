"""Mixed-radix coordinate codecs.

Nodes of a ``d``-dimensional ``n_1 x ... x n_d`` torus/mesh are identified
with flat integer indices in row-major (C) order.  :class:`CoordCodec` is a
thin, vectorised wrapper around ``ravel``/``unravel`` that also provides the
neighbour-shift primitives used everywhere in the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["CoordCodec"]


class CoordCodec:
    """Bidirectional map between flat indices and coordinate tuples.

    Parameters
    ----------
    shape:
        Side lengths ``(n_1, ..., n_d)``; axis 0 is the paper's "first
        dimension" (the ``C_m`` factor of ``B^d_n``).
    """

    def __init__(self, shape: Sequence[int]) -> None:
        shape = tuple(int(s) for s in shape)
        if not shape or any(s <= 0 for s in shape):
            raise ValueError(f"invalid shape {shape}")
        self.shape = shape
        self.ndim = len(shape)
        self.size = int(np.prod(shape, dtype=np.int64))
        # Row-major strides in units of elements.
        strides = np.ones(self.ndim, dtype=np.int64)
        for i in range(self.ndim - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        self.strides = strides

    # -- codec ---------------------------------------------------------------

    def ravel(self, coords: np.ndarray) -> np.ndarray:
        """Coordinate array of shape (..., d) -> flat indices of shape (...)."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape[-1] != self.ndim:
            raise ValueError(f"expected last axis {self.ndim}, got {coords.shape}")
        return (coords * self.strides).sum(axis=-1)

    def unravel(self, idx: "int | np.ndarray") -> np.ndarray:
        """Flat indices of shape (...) -> coordinate array of shape (..., d)."""
        idx = np.asarray(idx, dtype=np.int64)
        out = np.empty(idx.shape + (self.ndim,), dtype=np.int64)
        rem = idx
        for axis in range(self.ndim):
            out[..., axis], rem = np.divmod(rem, self.strides[axis])
        return out

    # -- neighbours ----------------------------------------------------------

    def shift(self, idx: np.ndarray, axis: int, delta: int, *, wrap: bool = True) -> np.ndarray:
        """Flat indices of the nodes ``delta`` steps along ``axis``.

        With ``wrap=False``, positions that would leave the grid are returned
        as ``-1`` (callers filter them out; used for meshes).
        """
        idx = np.asarray(idx, dtype=np.int64)
        n = self.shape[axis]
        stride = self.strides[axis]
        coord = (idx // stride) % n
        new = coord + delta
        if wrap:
            new_mod = new % n
            return idx + (new_mod - coord) * stride
        out = idx + (new - coord) * stride
        bad = (new < 0) | (new >= n)
        out = np.where(bad, -1, out)
        return out

    def axis_coord(self, idx: "int | np.ndarray", axis: int) -> np.ndarray:
        """The coordinate along ``axis`` for flat indices."""
        idx = np.asarray(idx, dtype=np.int64)
        return (idx // self.strides[axis]) % self.shape[axis]

    def all_indices(self) -> np.ndarray:
        return np.arange(self.size, dtype=np.int64)
