"""Graph/topology substrate: tori, meshes, products, tiles, embeddings."""

from repro.topology.coords import CoordCodec
from repro.topology.graph import CSRGraph
from repro.topology.torus import (
    cycle_graph,
    mesh_graph,
    path_graph,
    torus_graph,
)
from repro.topology.product import direct_product
from repro.topology.grid import TileGeometry
from repro.topology.embeddings import verify_torus_embedding, verify_mesh_embedding

__all__ = [
    "CoordCodec",
    "CSRGraph",
    "cycle_graph",
    "path_graph",
    "torus_graph",
    "mesh_graph",
    "direct_product",
    "TileGeometry",
    "verify_torus_embedding",
    "verify_mesh_embedding",
]
