"""A compact CSR (compressed sparse row) undirected-graph substrate.

``networkx`` is flexible but too slow and memory-hungry for the Monte-Carlo
loops in this library (millions of adjacency queries per trial).  CSRGraph
stores the adjacency of a *static* graph in two NumPy arrays and provides the
vectorised operations the reconstruction algorithms need:

* degree statistics (to verify the paper's degree claims exactly),
* neighbour slices,
* subgraph-surviving connectivity (BFS) after node deletions,
* conversion to ``networkx`` for small instances / cross-checks.

Graphs are built from an edge list once; self-loops are rejected; parallel
edges are collapsed (the constructions never rely on multiplicity — the one
place the paper mentions multigraphs, parallel edges only reduce the
effective edge-failure probability, which we model directly instead).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable undirected graph in CSR form."""

    def __init__(self, num_nodes: int, edges: np.ndarray) -> None:
        """Build from an ``(E, 2)`` int array of undirected edges."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        if edges.size and (edges[:, 0] == edges[:, 1]).any():
            raise ValueError("self-loops are not allowed")
        self.num_nodes = int(num_nodes)
        # Canonicalise + dedupe.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        key = lo * num_nodes + hi
        _, keep = np.unique(key, return_index=True)
        self._edges = np.stack([lo[keep], hi[keep]], axis=1) if edges.size else edges
        # CSR of the symmetric adjacency.
        both = np.concatenate([self._edges, self._edges[:, ::-1]], axis=0) if self._edges.size else self._edges
        order = np.argsort(both[:, 0], kind="stable") if both.size else np.array([], dtype=np.int64)
        sorted_src = both[order, 0] if both.size else np.array([], dtype=np.int64)
        self.indices = both[order, 1] if both.size else np.array([], dtype=np.int64)
        counts = np.bincount(sorted_src, minlength=num_nodes) if both.size else np.zeros(num_nodes, dtype=np.int64)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    # -- basic queries ---------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self._edges.shape[0])

    def edges(self) -> np.ndarray:
        """The canonical ``(E, 2)`` edge array (lo < hi)."""
        return self._edges

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        return int(self.degrees().max()) if self.num_nodes else 0

    def has_edge(self, u: int, v: int) -> bool:
        nb = self.neighbors(u)
        # Neighbour lists are sorted by construction order of argsort on dst?
        # They are not guaranteed sorted; use linear scan (short lists).
        return bool((nb == v).any())

    def has_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised membership test for many (u, v) pairs."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        lo = np.minimum(us, vs).astype(np.int64)
        hi = np.maximum(us, vs).astype(np.int64)
        key = lo * self.num_nodes + hi
        ekey = self._edges[:, 0] * self.num_nodes + self._edges[:, 1]
        ekey_sorted = np.sort(ekey)
        pos = np.searchsorted(ekey_sorted, key)
        pos = np.clip(pos, 0, len(ekey_sorted) - 1)
        return (len(ekey_sorted) > 0) & (ekey_sorted[pos] == key)

    # -- algorithms --------------------------------------------------------

    def connected_components(self, alive: np.ndarray | None = None) -> np.ndarray:
        """Component label per node (−1 for dead nodes).

        ``alive`` is a boolean mask of surviving nodes; ``None`` = all alive.
        Iterative BFS with NumPy frontier expansion.
        """
        if alive is None:
            alive = np.ones(self.num_nodes, dtype=bool)
        labels = np.full(self.num_nodes, -1, dtype=np.int64)
        comp = 0
        for start in range(self.num_nodes):
            if not alive[start] or labels[start] != -1:
                continue
            frontier = np.array([start], dtype=np.int64)
            labels[start] = comp
            while frontier.size:
                # Gather all neighbours of the frontier.
                segs = [self.indices[self.indptr[v] : self.indptr[v + 1]] for v in frontier]
                nxt = np.unique(np.concatenate(segs)) if segs else np.array([], dtype=np.int64)
                nxt = nxt[alive[nxt] & (labels[nxt] == -1)]
                labels[nxt] = comp
                frontier = nxt
            comp += 1
        return labels

    def largest_component_size(self, alive: np.ndarray | None = None) -> int:
        labels = self.connected_components(alive)
        labels = labels[labels >= 0]
        if labels.size == 0:
            return 0
        return int(np.bincount(labels).max())

    # -- conversions -------------------------------------------------------

    def to_networkx(self):
        """Export to :mod:`networkx` (small graphs only; O(V+E) python objects)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self._edges.tolist()))
        return g

    @classmethod
    def from_networkx(cls, g) -> "CSRGraph":
        import networkx as nx

        mapping = {v: i for i, v in enumerate(g.nodes())}
        edges = np.array([[mapping[u], mapping[v]] for u, v in g.edges()], dtype=np.int64)
        return cls(g.number_of_nodes(), edges.reshape(-1, 2))

    @classmethod
    def from_edge_arrays(cls, num_nodes: int, us: Iterable[np.ndarray], vs: Iterable[np.ndarray]) -> "CSRGraph":
        """Build from parallel lists of endpoint arrays (concatenated)."""
        u = np.concatenate([np.asarray(a, dtype=np.int64).ravel() for a in us])
        v = np.concatenate([np.asarray(a, dtype=np.int64).ravel() for a in vs])
        return cls(num_nodes, np.stack([u, v], axis=1))
