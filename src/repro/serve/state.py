"""Per-machine live state: lifetime ingestion, traffic queries, digests.

:class:`MachineState` is the synchronous core the daemon owns per
simulated machine — any registered construction at any size.  It applies
fault/repair events with exactly the semantics of the offline lifetime
path (:func:`repro.api.lifetime.drive_timeline`): ``bn`` machines run the
genuinely incremental :class:`~repro.core.online.OnlineRecovery`
pipeline, every other construction the generic full-recompute handlers.
The contract is checkable: :meth:`MachineState.digest` canonicalises the
machine state, and :func:`offline_digest` produces the same structure by
driving the same :class:`~repro.api.protocol.LifetimeSpec` through the
*offline* drivers — ingesting :func:`scripted_events` online must yield a
byte-identical digest (asserted in tests/test_serve.py and gated by
bench_e20).

Traffic queries route through the **live** machine: on ``bn`` every
message's e-cube route is mapped through the current embedding and
checked against the live fault set
(:func:`repro.sim.lifetime_traffic.route_health_mask`), broken-path
messages are counted ``undeliverable``, and the survivors run on the
vectorized kernel (:func:`repro.fastpath.traffic_batch.simulate_batch`).
Constructions without the bn incremental machinery serve their pristine
guest torus (their recovery re-embeds it whole after every event).

:class:`MachineActor` is the asyncio wrapper: an ``asyncio.Lock`` (FIFO
for waiters) serialises mutation per machine, so concurrent clients'
events interleave in a single well-defined order while queries — pure
synchronous reads on the loop thread — fan out between them.

:func:`scripted_session` replays a canned session (events + queries +
telemetry snapshot) without sockets; it backs the ``serve-session``
golden artifact and doubles as the reference the socket tests compare
wire results against.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.api.lifetime import timeline_for
from repro.api.protocol import LifetimeSpec
from repro.api.registry import get
from repro.errors import ReconstructionError
from repro.faults.registry import fault_model_names
from repro.serve.telemetry import MachineTelemetry
from repro.sim.metrics import latency_stats
from repro.sim.traffic import make_traffic
from repro.util.rng import spawn_rng

__all__ = [
    "MachineActor",
    "MachineState",
    "offline_digest",
    "scripted_events",
    "scripted_session",
]

#: Format tag of the canonical state digest (bump on structure change).
DIGEST_FORMAT = "repro-serve-state-v1"


def _lifetime_rng(construction, seed: int) -> np.random.Generator:
    """The exact RNG stream the construction's offline lifetime path uses,
    so online ingestion of :func:`scripted_events` replays it 1:1."""
    if construction.name == "bn":
        return spawn_rng(seed, "lifetime", construction.params.n, construction.params.d)
    return spawn_rng(seed, f"{construction.name}-lifetime")


def scripted_events(
    construction_key: str, params: dict, spec: LifetimeSpec, seed: int
) -> list[tuple[str, int]]:
    """The ``(kind, flat_node)`` event list a :class:`LifetimeSpec` trial
    would feed the machine — the same timeline, RNG stream and
    ``max_steps`` cutoff as :func:`repro.api.lifetime.drive_timeline`, so
    ingesting this list online reproduces the offline trial exactly."""
    construction = get(construction_key, **params)
    shape = construction._lifetime_shape()
    rng = _lifetime_rng(construction, seed)
    events: list[tuple[str, int]] = []
    for ev in timeline_for(spec).events(shape, rng):
        if spec.max_steps is not None and ev.step >= spec.max_steps:
            break
        events.append((ev.kind, ev.node))
    return events


@dataclass
class MachineState:
    """The live lifetime + traffic state of one simulated machine."""

    name: str
    construction_key: str
    params: dict
    construction: object = field(init=False)
    shape: tuple = field(init=False)
    alive: bool = field(init=False, default=True)
    death_category: str = field(init=False, default="")
    #: Fault arrivals survived (the offline LifetimeOutcome.lifetime).
    lifetime: int = field(init=False, default=0)
    masked: int = field(init=False, default=0)
    replaced: int = field(init=False, default=0)
    repaired: int = field(init=False, default=0)
    #: Monotone per-machine sequence number of *applied* mutations — the
    #: serialisation witness concurrent clients observe.
    seq: int = field(init=False, default=0)
    #: Fault arrivals per fault-model tag — populated only by model-tagged
    #: ``event`` frames, so untagged sessions keep a byte-identical digest.
    model_faults: dict = field(init=False, default_factory=dict)
    telemetry: MachineTelemetry = field(init=False, default_factory=MachineTelemetry)

    def __post_init__(self) -> None:
        self.params = dict(self.params)
        self.construction = get(self.construction_key, **self.params)
        self.shape = tuple(int(s) for s in self.construction._lifetime_shape())
        if self.construction_key == "bn":
            from repro.core.online import OnlineRecovery

            self._online = OnlineRecovery(
                self.construction.torus,
                incremental=True,
                strategy=self.construction.strategy,
            )
            self._faults = self._online.faults
        else:
            self._online = None
            self._faults = np.zeros(self.shape, dtype=bool)
        self._flat = self._faults.ravel()

    # -- introspection -------------------------------------------------------

    @property
    def num_faults(self) -> int:
        return int(self._faults.sum())

    def info(self) -> dict:
        c = self.construction
        guest = c.guest_shape() if hasattr(c, "guest_shape") else None
        return {
            "name": self.name,
            "construction": self.construction_key,
            "params": dict(self.params),
            "num_nodes": int(c.num_nodes),
            "degree": int(c.degree),
            "shape": list(self.shape),
            "guest_shape": None if guest is None else [int(s) for s in guest],
            "incremental": self._online is not None,
        }

    # -- mutation (must be called under the actor's lock) --------------------

    def apply_event(self, kind: str, node: int, model: str | None = None) -> dict:
        """Apply one fault/repair event; returns the applied record.

        ``action`` is ``"masked"`` / ``"replaced"`` / ``"repaired"`` for
        applied events, ``"failed"`` for the arrival that killed the
        machine, ``"dead"`` for events acknowledged-but-ignored after
        death — exactly the offline driver's semantics, where the trial
        stops consuming the timeline at the first unrecoverable arrival.

        ``model`` optionally tags a fault event with the registered
        :mod:`repro.faults` model that produced it (e.g. an operator
        relaying a ``ByzantineNodeFaults`` sample); applied fault
        arrivals are tallied per tag in :attr:`model_faults` and the
        tally is surfaced in :meth:`digest` / :meth:`telemetry_snapshot`
        only when non-empty.
        """
        node = int(node)
        if not (0 <= node < self._flat.size):
            raise ValueError(f"node {node} out of range [0, {self._flat.size})")
        if kind not in ("fault", "repair"):
            raise ValueError(f"unknown event kind {kind!r} (fault | repair)")
        if model is not None:
            names = fault_model_names()
            if model not in names:
                raise ValueError(
                    f"unknown fault model {model!r}; options: {', '.join(names)}"
                )
        if not self.alive:
            self.telemetry.record_event(kind, "dead")
            return {"seq": self.seq, "action": "dead", "num_faults": self.num_faults,
                    "alive": False}
        if kind == "repair":
            action = self._apply_repair(node)
            self.repaired += 1
        else:
            if model is not None:
                self.model_faults[model] = self.model_faults.get(model, 0) + 1
            try:
                action = self._apply_fault(node)
            except ReconstructionError as exc:
                self.alive = False
                self.death_category = exc.category
                self.seq += 1
                self.telemetry.record_event(kind, "failed")
                return {"seq": self.seq, "action": "failed",
                        "category": exc.category,
                        "num_faults": self.num_faults, "alive": False}
            if action == "masked":
                self.masked += 1
            else:
                self.replaced += 1
            self.lifetime += 1
        self.seq += 1
        self.telemetry.record_event(kind, action)
        return {"seq": self.seq, "action": action, "num_faults": self.num_faults,
                "alive": True}

    def _apply_fault(self, node: int) -> str:
        if self._online is not None:
            return self._online.add_fault(np.unravel_index(node, self.shape)).action
        # Generic full-recompute handlers — the same semantics as
        # repro.api.lifetime.run_timeline's on_fault.
        if self._flat[node]:
            return "masked"
        self._flat[node] = True
        self.construction._lifetime_recover(self._faults)  # raises on death
        return "replaced"

    def _apply_repair(self, node: int) -> str:
        if self._online is not None:
            self._online.remove_fault(np.unravel_index(node, self.shape))
        else:
            self._flat[node] = False
        return "repaired"

    # -- queries -------------------------------------------------------------

    def traffic_query(
        self,
        pattern: str,
        messages: int,
        seed: int,
        *,
        live: bool = True,
        max_cycles: int = 10_000,
        router: str = "dimension",
        qos_classes: int = 1,
        credits: int = 0,
    ) -> dict:
        """Route one seeded workload through the machine; returns stats.

        On ``bn`` with ``live=True`` (the default) every route is walked
        through the *current* embedding against the live fault set;
        messages crossing a broken host element count ``undeliverable``
        and the rest are simulated on the vectorized kernel.  With
        ``router="adaptive"`` broken e-cube routes are instead detoured
        around the live fault set, so only disconnected endpoints stay
        undeliverable.  ``qos_classes``/``credits`` enable priority
        arbitration and credit flow control exactly as in
        :class:`~repro.api.protocol.TrafficSpec`.  Constructions without
        the bn incremental machinery serve their pristine guest torus
        (recovery re-embeds it whole).
        """
        c = self.construction
        if not hasattr(c, "guest_shape"):
            raise ValueError(
                f"construction {self.construction_key!r} has no torus guest "
                "(no traffic capability)"
            )
        from repro.api.traffic import message_classes
        from repro.fastpath.traffic_batch import routes_batch, simulate_batch
        from repro.sim.routing import ROUTERS

        if router not in ROUTERS:
            raise ValueError(f"unknown router {router!r}; options: {ROUTERS}")
        guest = tuple(int(s) for s in c.guest_shape())
        rng = spawn_rng(int(seed), "serve-traffic", pattern)
        traffic = make_traffic(guest, pattern, int(messages), rng)
        # Classes are assigned by original message id, before any
        # deliverability filtering, so a message keeps its class no matter
        # which router or fault set it meets.
        classes = message_classes(len(traffic), int(qos_classes))
        live_path = bool(live) and self._online is not None
        lengths = None
        if live_path and router == "adaptive":
            from repro.fastpath.traffic_batch import build_routes_batch
            from repro.sim.routing import embedded_predicates

            g_ok, ge_ok = embedded_predicates(
                self._online.recovery.phi, self._flat, c.torus.bn.is_adjacent
            )
            result = simulate_batch(
                guest, traffic, max_cycles=max_cycles, router="adaptive",
                node_ok=g_ok, edge_ok=ge_ok, classes=classes, credits=credits,
            )
            undeliverable = result.undeliverable
            # Detoured routes are longer than e-cube — measure what ran.
            _, lengths, _ = build_routes_batch(
                guest, traffic, router="adaptive", node_ok=g_ok, edge_ok=ge_ok
            )
        elif live_path:
            from repro.sim.lifetime_traffic import route_health_mask

            deliverable = route_health_mask(
                guest, traffic, self._online.recovery.phi, self._flat,
                c.torus.bn.is_adjacent,
            )
            result = simulate_batch(
                guest, traffic[deliverable], max_cycles=max_cycles,
                classes=None if classes is None else classes[deliverable],
                credits=credits,
            )
            undeliverable = int((~deliverable).sum())
        else:
            result = simulate_batch(
                guest, traffic, max_cycles=max_cycles,
                classes=classes, credits=credits,
            )
            undeliverable = 0
        stats = latency_stats(result)
        stats["offered"] = int(len(traffic))
        stats["undeliverable"] = undeliverable
        stats["cycles"] = int(result.cycles)
        stats["max_queue"] = int(result.max_queue)
        stats["live"] = live_path
        if router != "dimension":
            stats["router"] = router
        if classes is not None:
            from repro.sim.metrics import per_class_stats

            run_classes = classes
            if live_path and router != "adaptive":
                run_classes = classes[deliverable]
            stats["per_class"] = per_class_stats(result, run_classes)
        # Utilization: busy link-cycles of delivered messages over the
        # guest's directed-link capacity for the run's span.
        if lengths is None:
            _, lengths = routes_batch(guest, traffic)
            if live_path:
                lengths = lengths[deliverable]
        delivered_mask = result.message_latencies >= 0
        hops = int(lengths[delivered_mask].sum()) if len(lengths) else 0
        links = int(np.prod(guest)) * 2 * len(guest)
        stats["link_utilization"] = (
            hops / (links * result.cycles) if result.cycles else 0.0
        )
        self.telemetry.record_traffic(stats)
        return stats

    def health(self) -> dict | None:
        """Lemma-4 healthiness of the live fault set (``bn`` only)."""
        if self.construction_key != "bn":
            return None
        report = self.construction.torus.check_health(self._faults)
        return {
            "healthy": report.healthy,
            "sufficient": report.sufficient,
            "cond1_ok": report.cond1_ok,
            "cond2_ok": report.cond2_ok,
            "cond3_ok": report.cond3_ok,
            "cond3_faulty_ok": report.cond3_faulty_ok,
            "max_brick_faults": report.max_brick_faults,
        }

    def telemetry_snapshot(self, *, health: bool = False) -> dict:
        """One wall-clock-free telemetry frame for this machine."""
        state = {
            "machine": self.name,
            "construction": self.construction_key,
            "alive": self.alive,
            "death_category": self.death_category,
            "arrivals_survived": self.lifetime,
            "live_faults": self.num_faults,
            #: faulty nodes still awaiting a repair event
            "repair_backlog": self.num_faults,
            "seq": self.seq,
        }
        if self.model_faults:
            state["model_faults"] = {k: int(v) for k, v in sorted(self.model_faults.items())}
        if health:
            state["health"] = self.health()
        return self.telemetry.snapshot(state)

    def digest(self) -> dict:
        """Canonical machine state for byte-identity comparisons.

        The fields are exactly what the offline lifetime path determines:
        tallies, the live fault set, and (for ``bn``) the maintained band
        placement and embedding.  Serialise with
        :func:`repro.util.serialization.save_json` semantics and compare
        bytes — :func:`offline_digest` produces the matching reference.
        """
        out = {
            "format": DIGEST_FORMAT,
            "construction": self.construction_key,
            "alive": self.alive,
            "death_category": self.death_category,
            "lifetime": self.lifetime,
            "masked": self.masked,
            "replaced": self.replaced,
            "repaired": self.repaired,
            "num_faults": self.num_faults,
            "fault_nodes": [int(i) for i in np.flatnonzero(self._flat)],
        }
        if self.model_faults:
            # Only when model-tagged events were ingested: untagged sessions
            # (and offline_digest, whose driver has no tags) omit the key, so
            # online/offline byte-identity is preserved.
            out["model_faults"] = {k: int(v) for k, v in sorted(self.model_faults.items())}
        if self._online is not None and self._online.recovery is not None:
            rec = self._online.recovery
            out["bottoms"] = [int(b) for b in np.asarray(rec.bands.bottoms).ravel()]
            out["phi_crc32"] = int(
                zlib.crc32(np.ascontiguousarray(rec.phi, dtype=np.int64).tobytes())
            )
        return out


def offline_digest(
    construction_key: str, params: dict, spec: LifetimeSpec, seed: int
) -> dict:
    """Digest of the state the *offline* lifetime path leaves behind.

    Drives ``spec`` through the construction's own offline driver — the
    incremental :class:`~repro.core.online.OnlineRecovery` pipeline for
    ``bn`` (:func:`repro.core.online.run_online_timeline`), the shared
    :func:`~repro.api.lifetime.drive_timeline` loop with the generic
    full-recompute handlers elsewhere — and canonicalises the final state
    in the exact :meth:`MachineState.digest` structure.  Ingesting
    :func:`scripted_events` for the same ``(spec, seed)`` into a live
    daemon must produce byte-identical JSON.
    """
    construction = get(construction_key, **params)
    rng = _lifetime_rng(construction, seed)
    if construction_key == "bn":
        from repro.core.online import OnlineRecovery, run_online_timeline

        online = OnlineRecovery(
            construction.torus, incremental=True, strategy=construction.strategy
        )
        outcome = run_online_timeline(online, spec, rng)
        faults_flat = online.faults.ravel()
        recovery = online.recovery
    else:
        from repro.api.lifetime import drive_timeline

        shape = tuple(int(s) for s in construction._lifetime_shape())
        faults = np.zeros(shape, dtype=bool)
        faults_flat = faults.ravel()

        def on_fault(node: int) -> str:
            if faults_flat[node]:
                return "masked"
            faults_flat[node] = True
            construction._lifetime_recover(faults)
            return "replaced"

        def on_repair(node: int) -> None:
            faults_flat[node] = False

        outcome = drive_timeline(spec, shape, rng, on_fault=on_fault, on_repair=on_repair)
        recovery = None
    out = {
        "format": DIGEST_FORMAT,
        "construction": construction_key,
        "alive": not outcome.failed,
        "death_category": outcome.category if outcome.failed else "",
        "lifetime": outcome.lifetime,
        "masked": outcome.masked,
        "replaced": outcome.replaced,
        "repaired": outcome.repaired,
        "num_faults": int(faults_flat.sum()),
        "fault_nodes": [int(i) for i in np.flatnonzero(faults_flat)],
    }
    if recovery is not None:
        out["bottoms"] = [int(b) for b in np.asarray(recovery.bands.bottoms).ravel()]
        out["phi_crc32"] = int(
            zlib.crc32(np.ascontiguousarray(recovery.phi, dtype=np.int64).tobytes())
        )
    return out


class MachineActor:
    """Asyncio wrapper: serialised mutation, fan-out queries.

    The lock's waiter queue is FIFO, so events from concurrent
    connections are applied in lock-acquisition order and the machine's
    ``seq`` is a total order over mutations.  Queries never take the lock:
    state methods are synchronous (no await points), hence atomic with
    respect to the event loop.  CPU-bound numpy work therefore runs inline
    on the loop — acceptable at operator scale, and the honest baseline a
    worker-pool offload would be measured against.
    """

    def __init__(self, state: MachineState) -> None:
        import asyncio

        self.state = state
        self._lock = asyncio.Lock()

    async def apply_event(self, kind: str, node: int, model: str | None = None) -> dict:
        async with self._lock:
            return self.state.apply_event(kind, node, model=model)

    async def apply_events(self, events: Sequence[Sequence]) -> list[dict]:
        """Apply a batch atomically — one lock hold, no interleaving.

        Each event is ``(kind, node)`` or ``(kind, node, model)``; the
        optional third element is a fault-model tag (see
        :meth:`MachineState.apply_event`).
        """
        async with self._lock:
            out = []
            for e in events:
                model = None if len(e) < 3 or e[2] is None else str(e[2])
                out.append(self.state.apply_event(str(e[0]), int(e[1]), model=model))
            return out


def scripted_session(
    *,
    construction: str = "bn",
    params: dict | None = None,
    spec: LifetimeSpec | None = None,
    seed: int = 3,
    queries: Sequence[dict] | None = None,
    health: bool = True,
) -> dict:
    """Replay a canned serve session synchronously; return its payload.

    Creates one machine, ingests the spec's scripted events, answers the
    scripted traffic queries, and closes with a telemetry snapshot and the
    state digest.  Fully deterministic and wall-clock-free — this is the
    computation behind the ``serve-session`` golden artifact, and the
    reference the socket tests hold the wire path to.
    """
    params = dict(params) if params else {"d": 2, "b": 3, "s": 1, "t": 2}
    if spec is None:
        # Exercises faults *and* repairs and leaves the machine alive with
        # a small live fault set (seed-checked), so the golden pins a
        # serving machine rather than a corpse.
        spec = LifetimeSpec(
            timeline="bernoulli", rate=0.0005, repair_rate=0.3, max_steps=40
        )
    if queries is None:
        queries = (
            {"pattern": "uniform", "messages": 40, "seed": 1},
            {"pattern": "transpose", "messages": 32, "seed": 2},
            # The adaptive/QoS service path, pinned by the same golden:
            # detoured routing around the live fault set with two priority
            # classes under credit flow control.
            {"pattern": "uniform", "messages": 40, "seed": 1,
             "router": "adaptive", "qos_classes": 2, "credits": 8},
        )
    state = MachineState("golden", construction, params)
    applied = [
        state.apply_event(kind, node)
        for kind, node in scripted_events(construction, params, spec, seed)
    ]
    query_stats = [
        state.traffic_query(
            q["pattern"], q["messages"], q["seed"], live=q.get("live", True),
            router=q.get("router", "dimension"),
            qos_classes=q.get("qos_classes", 1),
            credits=q.get("credits", 0),
        )
        for q in queries
    ]
    return {
        "format": "repro-serve-session-v1",
        "machine": state.info(),
        "spec": spec.to_dict(),
        "seed": seed,
        "events_applied": len(applied),
        "queries": query_stats,
        "telemetry": state.telemetry_snapshot(health=health),
        "digest": state.digest(),
    }
