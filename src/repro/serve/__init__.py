"""``repro-ft serve`` — the long-lived network-operator daemon.

Everything else in this repository is a one-shot run: draw faults,
recover, report.  A deployed machine is *operated*: faults and repairs
arrive continuously, traffic must keep flowing through the live
embedding, and an operator watches telemetry to decide when the machine
is dying.  This subsystem is that operational view — the four pillars
(trials, lifetimes, traffic, conformance) become services behind one
asyncio event loop:

* :mod:`repro.serve.protocol`  — versioned newline-delimited JSON frames
  (requests, responses, subscription events) over asyncio streams;
* :mod:`repro.serve.state`     — per-machine state: the incremental
  lifetime pipeline (:class:`~repro.core.online.OnlineRecovery` for
  ``bn``, the generic full-recompute driver elsewhere) plus live-embedding
  traffic measurement, wrapped in an actor that serialises mutation;
* :mod:`repro.serve.telemetry` — rolling counters and latency histograms
  aggregated from :class:`~repro.sim.engine.SimResult` /
  :class:`~repro.core.healthiness.HealthReport`;
* :mod:`repro.serve.server`    — the daemon: machine registry, request
  dispatch, streaming telemetry with per-subscriber backpressure,
  graceful shutdown;
* :mod:`repro.serve.client`    — async client plus the
  :class:`~repro.serve.client.LoadGenerator` that drives sustained mixed
  workloads (``repro-ft loadgen``, benchmarked in bench_e20).

See docs/serve.md for the wire protocol, the telemetry schema and an
operator walkthrough.
"""

from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError

__all__ = ["PROTOCOL_VERSION", "ProtocolError"]
