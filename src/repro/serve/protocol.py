"""Wire protocol of the serve daemon: versioned newline-delimited JSON.

One frame per line, canonical JSON (sorted keys, compact separators —
the same canonical-form discipline as
:func:`repro.util.serialization.save_json`, so identical payloads always
serialise to identical bytes).  Three frame shapes travel the wire:

* **request**   ``{"v": 1, "id": <int>, "op": <str>, ...}`` — client to
  server; ``id`` is an opaque client-chosen correlation token echoed in
  the response.
* **response**  ``{"v": 1, "id": <int>, "ok": true, "result": {...}}`` or
  ``{"v": 1, "id": <int>, "ok": false, "error": {"code": <str>,
  "message": <str>}}``.
* **event**     ``{"v": 1, "event": <str>, ...}`` — server-initiated
  (telemetry snapshots to subscribers, the final ``shutdown`` notice).
  Events carry no ``id``; clients distinguish them by the ``event`` key.

Hard limits and versioning are enforced at the framing layer, before any
dispatch: a frame larger than :data:`MAX_FRAME_BYTES`, a line that is not
a JSON object, or a frame whose ``v`` differs from
:data:`PROTOCOL_VERSION` raises :class:`ProtocolError` with a stable
``code`` (``oversized`` / ``malformed`` / ``version``) that the server
reports back before closing the offending connection.  The full op table
lives in docs/serve.md.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "event_frame",
    "ok_response",
    "request_frame",
]

#: Bump on any incompatible frame-shape change; both ends reject mismatches.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded frame (newline included).  Large enough for
#: a batched event ingest or a full telemetry snapshot, small enough that
#: a misbehaving peer cannot balloon server memory.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(Exception):
    """A frame violated the wire contract (framing layer, pre-dispatch).

    ``code`` is machine-readable and stable: ``"oversized"``,
    ``"malformed"`` or ``"version"``.
    """

    def __init__(self, message: str, *, code: str = "malformed") -> None:
        super().__init__(message)
        self.code = code


def _canonical(payload: dict) -> str:
    # NaN/Infinity survive (Python's json emits bare tokens both ends
    # parse) — telemetry stats legitimately contain NaN for empty windows,
    # exactly as the repro-experiment-v1 result files do.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_frame(payload: dict) -> bytes:
    """Serialise one frame to canonical JSON bytes, newline-terminated.

    Raises :class:`ProtocolError` (``oversized``) rather than emitting a
    frame the peer is contractually required to reject.
    """
    data = _canonical(payload).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}",
            code="oversized",
        )
    return data


def decode_frame(line: bytes) -> dict:
    """Parse and validate one received line into a frame dict.

    Enforces, in order: the size cap, JSON well-formedness, object shape,
    and the protocol version — so a version mismatch on a well-formed
    frame is reported as ``version``, never as a confusing parse error.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}",
            code="oversized",
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported (speaking {PROTOCOL_VERSION})",
            code="version",
        )
    return payload


def request_frame(op: str, rid: int, **fields: Any) -> dict:
    """A client request frame for ``op`` with correlation id ``rid``."""
    return {"v": PROTOCOL_VERSION, "id": rid, "op": op, **fields}


def ok_response(rid: Any, result: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "id": rid, "ok": True, "result": result}


def error_response(rid: Any, code: str, message: str) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def event_frame(event: str, **fields: Any) -> dict:
    """A server-initiated event frame (telemetry push, shutdown notice)."""
    return {"v": PROTOCOL_VERSION, "event": event, **fields}
