"""Rolling operator telemetry: counters and latency histograms.

Two aggregation scopes feed the daemon's telemetry frames:

* :class:`MachineTelemetry` — per simulated machine, folded from the
  lifetime events it ingests and the :class:`~repro.sim.engine.SimResult`
  of every traffic query it answers.  Deliberately wall-clock-free: a
  machine snapshot is a pure function of the ingested event/query
  sequence, which is what lets a scripted serve session be pinned as a
  golden artifact (tests/golden/serve-session.json).
* :class:`ServerTelemetry` — per daemon process: request/frame/byte
  counts per op, connection and subscriber gauges, dropped-snapshot
  counts from subscriber backpressure, and a service-time histogram.

:class:`LatencyHistogram` is the shared histogram: fixed geometric bucket
bounds, so percentiles come from bucket interpolation with bounded memory
no matter how many observations stream through (the property a long-lived
daemon needs — storing raw latencies would grow without bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "MachineTelemetry", "ServerTelemetry"]


def _geometric_bounds() -> tuple[float, ...]:
    """Bucket upper bounds in milliseconds: 1-2-5 decades, 10us to 100s."""
    bounds: list[float] = []
    for exp in range(-2, 6):
        for mant in (1.0, 2.0, 5.0):
            bounds.append(mant * 10.0**exp)
    return tuple(bounds)


@dataclass
class LatencyHistogram:
    """Bounded-memory latency histogram (milliseconds).

    ``record`` is O(#buckets); ``percentile`` interpolates inside the
    containing bucket, so p50/p99 are approximate to the bucket resolution
    (1-2-5 geometric — at most ~2.5x coarse, in practice well under the
    scheduler noise such latencies carry anyway).  Exact ``count`` /
    ``total_ms`` / ``min`` / ``max`` are tracked alongside.
    """

    bounds: tuple[float, ...] = field(default_factory=_geometric_bounds)
    counts: list[int] = field(init=False)
    count: int = field(init=False, default=0)
    total_ms: float = field(init=False, default=0.0)
    min_ms: float = field(init=False, default=float("inf"))
    max_ms: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket

    def record(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        self.min_ms = min(self.min_ms, ms)
        self.max_ms = max(self.max_ms, ms)
        for i, bound in enumerate(self.bounds):
            if ms <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100])."""
        if self.count == 0:
            return float("nan")
        rank = q / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self.max_ms
            if seen + c >= rank:
                frac = max(0.0, min(1.0, (rank - seen) / c))
                return min(lo + frac * (hi - lo), self.max_ms)
            seen += c
        return self.max_ms

    def to_dict(self) -> dict:
        """Summary stats plus the non-empty buckets (sparse encoding)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": self.total_ms / self.count,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            "p50_ms": self.percentile(50),
            "p99_ms": self.percentile(99),
            "buckets": {
                (f"{self.bounds[i]:g}" if i < len(self.bounds) else "inf"): c
                for i, c in enumerate(self.counts)
                if c
            },
        }


@dataclass
class MachineTelemetry:
    """Rolling per-machine counters (wall-clock-free; see module doc)."""

    # -- lifetime event ingestion -------------------------------------------
    faults_ingested: int = 0
    repairs_ingested: int = 0
    masked: int = 0
    replaced: int = 0
    #: Events received after the machine died (acknowledged, not applied).
    rejected_dead: int = 0

    # -- traffic queries -----------------------------------------------------
    traffic_queries: int = 0
    messages_offered: int = 0
    messages_delivered: int = 0
    messages_timed_out: int = 0
    #: Messages whose mapped route crossed a broken host element
    #: (live-embedding queries only).
    messages_undeliverable: int = 0
    #: Deepest per-link queue seen across all queries so far.
    peak_queue_depth: int = 0
    #: Most recent query's service picture, straight from its SimResult.
    last_query: dict = field(default_factory=dict)

    def record_event(self, kind: str, action: str) -> None:
        if action == "dead":
            self.rejected_dead += 1
            return
        if kind == "repair":
            self.repairs_ingested += 1
            return
        self.faults_ingested += 1
        if action == "masked":
            self.masked += 1
        elif action == "replaced":
            self.replaced += 1
        # "failed" — the killing arrival — counts as ingested only, the
        # same as the offline LifetimeOutcome tallies.

    def record_traffic(self, stats: dict) -> None:
        """Fold one traffic query's stats dict (latency_stats + extras)."""
        self.traffic_queries += 1
        self.messages_offered += int(stats.get("offered", stats.get("total", 0)))
        self.messages_delivered += int(stats.get("delivered", 0))
        self.messages_timed_out += int(stats.get("timed_out", 0))
        self.messages_undeliverable += int(stats.get("undeliverable", 0))
        self.peak_queue_depth = max(self.peak_queue_depth, int(stats.get("max_queue", 0)))
        self.last_query = dict(stats)

    def snapshot(self, state: dict) -> dict:
        """One telemetry frame: these rolling counters merged with the
        machine's *live* state (fault count, repair backlog, survival and
        optional Lemma-4 health — supplied by the caller, who owns the
        state)."""
        return {
            "events": {
                "faults": self.faults_ingested,
                "repairs": self.repairs_ingested,
                "masked": self.masked,
                "replaced": self.replaced,
                "rejected_dead": self.rejected_dead,
            },
            "traffic": {
                "queries": self.traffic_queries,
                "offered": self.messages_offered,
                "delivered": self.messages_delivered,
                "timed_out": self.messages_timed_out,
                "undeliverable": self.messages_undeliverable,
                "peak_queue_depth": self.peak_queue_depth,
                "last_query": self.last_query,
            },
            **state,
        }


@dataclass
class ServerTelemetry:
    """Per-process daemon counters behind the ``telemetry`` op."""

    requests: dict = field(default_factory=dict)  # op -> count
    errors: int = 0
    protocol_errors: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    connections_open: int = 0
    connections_total: int = 0
    subscribers: int = 0
    #: Telemetry snapshots dropped because a subscriber's queue was full
    #: (the backpressure policy: drop-and-count, never block the loop).
    snapshots_dropped: int = 0
    snapshots_sent: int = 0
    service_hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_request(self, op: str, service_ms: float) -> None:
        self.requests[op] = self.requests.get(op, 0) + 1
        self.service_hist.record(service_ms)

    def snapshot(self, uptime_s: float) -> dict:
        return {
            "uptime_s": uptime_s,
            "requests": dict(sorted(self.requests.items())),
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "frames": {"in": self.frames_in, "out": self.frames_out},
            "bytes": {"in": self.bytes_in, "out": self.bytes_out},
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "subscribers": self.subscribers,
            "snapshots": {
                "sent": self.snapshots_sent,
                "dropped": self.snapshots_dropped,
            },
            "service": self.service_hist.to_dict(),
        }
