"""Async client for the serve daemon, plus the benchmark load generator.

:class:`ServeClient` is a thin correlation layer over one TCP connection:
``request`` writes a frame and awaits the response with the matching
``id``; any server-initiated event frames that arrive in between
(telemetry pushes, the shutdown notice) are buffered and handed out by
``next_event`` in arrival order, so a subscriber can interleave requests
with a telemetry stream on a single connection.

:class:`LoadGenerator` drives the sustained mixed workload behind
``repro-ft loadgen`` and bench_e20: N concurrent clients against one
machine, each alternating fault-ingest / repair / live-traffic queries,
with wall-clock latencies folded into a shared
:class:`~repro.serve.telemetry.LatencyHistogram`.  Each client faults
only inside its own stripe of the host array and repairs what it faulted,
so the combined live fault set stays small and spread out — the machine
is meant to survive the benchmark, not die for it.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field

from repro.serve import protocol
from repro.serve.telemetry import LatencyHistogram

__all__ = ["LoadGenConfig", "LoadGenerator", "ServeClient", "ServeRequestError"]

log = logging.getLogger("repro.serve.client")


class ServeRequestError(Exception):
    """The server answered ``ok: false``; ``code`` is its error code."""

    def __init__(self, message: str, *, code: str) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One connection to a serve daemon (requests + buffered events)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._events: list[dict] = []

    @classmethod
    async def connect(cls, host: str, port: int) -> ServeClient:
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES + 1
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _read_frame(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_frame(line)

    async def request(self, op: str, **fields) -> dict:
        """Send one request; return its ``result`` (raises on error)."""
        self._next_id += 1
        rid = self._next_id
        self._writer.write(protocol.encode_frame(protocol.request_frame(op, rid, **fields)))
        await self._writer.drain()
        while True:
            frame = await self._read_frame()
            if "event" in frame:
                self._events.append(frame)
                continue
            if frame.get("id") != rid:
                raise protocol.ProtocolError(
                    f"response id {frame.get('id')!r} does not match request {rid}"
                )
            if frame.get("ok"):
                return frame["result"]
            err = frame.get("error") or {}
            raise ServeRequestError(
                err.get("message", "request failed"),
                code=err.get("code", "error"),
            )

    async def next_event(self, timeout: float | None = None) -> dict:
        """The next buffered/incoming server event frame (FIFO)."""
        if self._events:
            return self._events.pop(0)
        return await asyncio.wait_for(self._read_frame(), timeout)


@dataclass(frozen=True)
class LoadGenConfig:
    """Workload shape for :class:`LoadGenerator` / ``repro-ft loadgen``."""

    host: str = "127.0.0.1"
    port: int = 0
    machine: str = "loadgen"
    construction: str = "bn"
    params: dict = field(default_factory=lambda: {"d": 2, "b": 3, "s": 1, "t": 2})
    clients: int = 4
    #: Total requests across all clients (split evenly).
    requests: int = 1000
    #: Fraction of each client's requests that are lifetime events; the
    #: rest are live traffic queries.  Events alternate fault/repair so
    #: the live fault set stays bounded by the client count.
    event_fraction: float = 0.5
    pattern: str = "uniform"
    messages: int = 32
    seed: int = 0
    #: Router the traffic queries ask the daemon for ("dimension" or
    #: "adaptive" — see :mod:`repro.sim.routing`).
    router: str = "dimension"
    #: QoS classes / per-class credits forwarded with each traffic query
    #: (defaults preserve the single-class unlimited-credit workload).
    qos_classes: int = 1
    credits: int = 0


class LoadGenerator:
    """N concurrent clients sustaining a mixed event/query workload."""

    def __init__(self, config: LoadGenConfig) -> None:
        self.config = config
        self.hist = LatencyHistogram()
        self.ok = 0
        self.errors = 0
        self.exceptions = 0
        self.per_op: dict[str, int] = {}
        self.machine_died = False

    async def _one_request(self, client: ServeClient, op: str, **fields) -> dict:
        t0 = time.perf_counter()
        try:
            result = await client.request(op, **fields)
        except ServeRequestError as exc:
            self.errors += 1
            log.warning("request %s failed: %s (%s)", op, exc, exc.code)
            return {}
        finally:
            self.hist.record((time.perf_counter() - t0) * 1e3)
            self.per_op[op] = self.per_op.get(op, 0) + 1
        self.ok += 1
        return result

    async def _client_loop(self, index: int, budget: int, num_nodes: int) -> None:
        cfg = self.config
        rng = random.Random((cfg.seed << 8) ^ index)
        # This client's private stripe of the host array: it only ever
        # faults (and then repairs) nodes it owns, so clients never fight
        # over a node and the live fault set stays spread out.
        stripe = max(1, num_nodes // max(1, cfg.clients))
        lo = index * stripe
        outstanding: list[int] = []
        client = await ServeClient.connect(cfg.host, cfg.port)
        try:
            for _ in range(budget):
                if rng.random() < cfg.event_fraction:
                    if outstanding:
                        node = outstanding.pop(0)
                        kind = "repair"
                    else:
                        node = lo + rng.randrange(stripe)
                        outstanding.append(node)
                        kind = "fault"
                    result = await self._one_request(
                        client, "event", machine=cfg.machine, kind=kind, node=node
                    )
                    if result and not result.get("alive", True):
                        self.machine_died = True
                else:
                    await self._one_request(
                        client,
                        "traffic",
                        machine=cfg.machine,
                        pattern=cfg.pattern,
                        messages=cfg.messages,
                        seed=rng.randrange(1 << 30),
                        router=cfg.router,
                        qos_classes=cfg.qos_classes,
                        credits=cfg.credits,
                    )
        except (ConnectionError, protocol.ProtocolError, asyncio.IncompleteReadError):
            self.exceptions += 1
            log.exception("loadgen client %d aborted", index)
        finally:
            await client.close()

    async def run(self) -> dict:
        """Drive the full workload; return the loadgen report dict."""
        cfg = self.config
        setup = await ServeClient.connect(cfg.host, cfg.port)
        try:
            info = await setup.request(
                "create",
                machine=cfg.machine,
                construction=cfg.construction,
                params=dict(cfg.params),
                exist_ok=True,
            )
            num_nodes = int(info["num_nodes"])
            per_client = [
                cfg.requests // cfg.clients + (1 if i < cfg.requests % cfg.clients else 0)
                for i in range(cfg.clients)
            ]
            t0 = time.perf_counter()
            await asyncio.gather(
                *(
                    self._client_loop(i, per_client[i], num_nodes)
                    for i in range(cfg.clients)
                )
            )
            elapsed = time.perf_counter() - t0
            telemetry = await setup.request(
                "telemetry", machine=cfg.machine, health=cfg.construction == "bn"
            )
        finally:
            await setup.close()
        total = self.ok + self.errors
        return {
            "format": "repro-loadgen-report-v1",
            "config": {
                "machine": cfg.machine,
                "construction": cfg.construction,
                "params": dict(cfg.params),
                "clients": cfg.clients,
                "requests": cfg.requests,
                "event_fraction": cfg.event_fraction,
                "pattern": cfg.pattern,
                "messages": cfg.messages,
                "seed": cfg.seed,
                "router": cfg.router,
                "qos_classes": cfg.qos_classes,
                "credits": cfg.credits,
            },
            "totals": {
                "requests": total,
                "ok": self.ok,
                "errors": self.errors,
                "client_exceptions": self.exceptions,
                "per_op": dict(sorted(self.per_op.items())),
                "machine_died": self.machine_died,
            },
            "elapsed_s": elapsed,
            "requests_per_s": total / elapsed if elapsed else float("nan"),
            "latency": self.hist.to_dict(),
            "telemetry": telemetry,
        }
