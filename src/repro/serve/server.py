"""The serve daemon: registry, dispatch, telemetry streaming, shutdown.

One :class:`ReproServer` owns a registry of named machines
(:class:`~repro.serve.state.MachineActor`) and speaks the
:mod:`repro.serve.protocol` frame protocol over asyncio streams.
Connections are handled concurrently; within a connection frames are
processed in arrival order, and mutations on one machine are serialised
by its actor lock no matter how many connections race — the machine's
``seq`` is the total order clients observe.

Telemetry streaming is pull *or* push: the ``telemetry`` op returns one
snapshot, ``subscribe`` attaches the connection to the periodic publisher.
Each subscriber gets a bounded queue and a private pump task; when a slow
consumer's queue fills, snapshots are dropped and counted
(``snapshots_dropped``) rather than ever blocking the publisher — the
backpressure policy a long-lived daemon needs.

Graceful shutdown (the ``shutdown`` op, SIGINT/SIGTERM, or
:meth:`ReproServer.request_shutdown`) stops accepting connections,
broadcasts a final ``shutdown`` event frame to subscribers, then closes
every connection; in-flight requests on other connections finish first
because the handler only notices the closed transport at its next read.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field

from repro._version import __version__
from repro.api.registry import available, get
from repro.serve import protocol
from repro.serve.state import MachineActor, MachineState
from repro.serve.telemetry import ServerTelemetry

__all__ = ["ReproServer", "ServeConfig", "ServeError"]

log = logging.getLogger("repro.serve")


class ServeError(Exception):
    """An op-level failure reported to the client (connection survives)."""

    def __init__(self, message: str, *, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (CLI flags map onto these fields)."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port; read :attr:`ReproServer.port` after
    #: :meth:`ReproServer.start`.
    port: int = 0
    #: Seconds between pushed telemetry snapshots to subscribers.
    telemetry_interval: float = 1.0
    #: Per-subscriber queue depth before snapshots are dropped-and-counted.
    subscriber_queue: int = 16
    #: Machines to create at startup: ``(name, construction, params)``.
    machines: tuple = ()


class _Connection:
    """Per-connection bookkeeping: writer lock, optional subscription."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.sub_queue: asyncio.Queue | None = None
        self.sub_task: asyncio.Task | None = None
        self.sub_options: dict = {}
        self.peer = writer.get_extra_info("peername")


class ReproServer:
    """The asyncio daemon behind ``repro-ft serve``."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.machines: dict[str, MachineActor] = {}
        self.telemetry = ServerTelemetry()
        self._server: asyncio.Server | None = None
        self._conns: set[_Connection] = set()
        self._stopping: asyncio.Event | None = None
        self._publisher: asyncio.Task | None = None
        self._reaper: asyncio.Task | None = None
        self._started = 0.0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._started = time.monotonic()
        for name, construction, params in self.config.machines:
            self.create_machine(name, construction, dict(params))
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_FRAME_BYTES + 1,
        )
        self._publisher = asyncio.create_task(self._publish_loop())
        self._reaper = asyncio.create_task(self._reap())
        log.info(
            "serve daemon listening on %s:%d (%d machine(s) registered)",
            self.config.host,
            self.port,
            len(self.machines),
        )

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-safe trigger for a graceful shutdown."""
        if self._stopping is not None and not self._stopping.is_set():
            log.info("shutdown requested")
            self._stopping.set()

    async def run(self) -> None:
        """Start, serve until a shutdown is requested, then tear down."""
        await self.start()
        await self.serve_until_shutdown()

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested and torn down cleanly.

        The teardown itself runs in the reaper task spawned by
        :meth:`start`, so a ``shutdown`` op takes effect even when the
        owner is not blocked here; this merely awaits it.
        """
        assert self._reaper is not None, "server not started"
        await asyncio.shield(self._reaper)

    async def _reap(self) -> None:
        assert self._stopping is not None
        await self._stopping.wait()
        await self._teardown()

    async def _teardown(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        if self._publisher is not None:
            self._publisher.cancel()
            try:
                await self._publisher
            except asyncio.CancelledError:
                pass
        # Final event frame so streaming subscribers see an orderly end of
        # stream rather than a bare EOF.
        farewell = protocol.event_frame("shutdown", reason="server stopping")
        for conn in list(self._conns):
            if conn.sub_queue is not None:
                try:
                    await self._send(conn, farewell)
                except (ConnectionError, OSError):
                    pass
            self._drop_subscription(conn)
            conn.writer.close()
        for conn in list(self._conns):
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        log.info("serve daemon stopped")

    # -- registry ------------------------------------------------------------

    def create_machine(
        self, name: str, construction: str, params: dict, *, exist_ok: bool = False
    ) -> MachineActor:
        if not name or not isinstance(name, str):
            raise ServeError("machine name must be a non-empty string")
        if name in self.machines:
            if exist_ok:
                return self.machines[name]
            raise ServeError(f"machine {name!r} already exists", code="exists")
        if construction not in available():
            raise ServeError(
                f"unknown construction {construction!r}; "
                f"available: {', '.join(available())}",
                code="unknown-construction",
            )
        try:
            actor = MachineActor(MachineState(name, construction, params))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"cannot build {construction}: {exc}") from exc
        self.machines[name] = actor
        log.info("machine %r created (%s %s)", name, construction, params)
        return actor

    def _actor(self, name) -> MachineActor:
        try:
            return self.machines[name]
        except (KeyError, TypeError):
            raise ServeError(
                f"unknown machine {name!r}", code="unknown-machine"
            ) from None

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._conns.add(conn)
        self.telemetry.connections_open += 1
        self.telemetry.connections_total += 1
        log.debug("connection opened: %s", conn.peer)
        try:
            await self._serve_frames(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._drop_subscription(conn)
            self._conns.discard(conn)
            self.telemetry.connections_open -= 1
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            log.debug("connection closed: %s", conn.peer)

    async def _serve_frames(self, conn: _Connection) -> None:
        while True:
            try:
                line = await conn.reader.readline()
            except ValueError:
                # StreamReader limit exceeded before any newline: the frame
                # is oversized by construction.
                self.telemetry.protocol_errors += 1
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        "oversized",
                        f"frame exceeds MAX_FRAME_BYTES={protocol.MAX_FRAME_BYTES}",
                    ),
                )
                return
            if not line:
                return  # EOF
            self.telemetry.frames_in += 1
            self.telemetry.bytes_in += len(line)
            try:
                frame = protocol.decode_frame(line)
            except protocol.ProtocolError as exc:
                self.telemetry.protocol_errors += 1
                log.warning("protocol error from %s: %s", conn.peer, exc)
                await self._send(conn, protocol.error_response(None, exc.code, str(exc)))
                return  # framing violations close the connection
            rid = frame.get("id")
            op = frame.get("op")
            t0 = time.perf_counter()
            try:
                result = await self._dispatch(conn, op, frame)
                response = protocol.ok_response(rid, result)
            except ServeError as exc:
                self.telemetry.errors += 1
                response = protocol.error_response(rid, exc.code, str(exc))
            except (KeyError, TypeError, ValueError) as exc:
                self.telemetry.errors += 1
                response = protocol.error_response(rid, "bad-request", str(exc))
            self.telemetry.record_request(
                op if isinstance(op, str) else "?", (time.perf_counter() - t0) * 1e3
            )
            await self._send(conn, response)
            if op == "shutdown" and response.get("ok"):
                self.request_shutdown()
                return

    async def _send(self, conn: _Connection, payload: dict) -> None:
        data = protocol.encode_frame(payload)
        async with conn.write_lock:
            conn.writer.write(data)
            await conn.writer.drain()
        self.telemetry.frames_out += 1
        self.telemetry.bytes_out += len(data)

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, conn: _Connection, op, frame: dict) -> dict:
        if op == "ping":
            return {"pong": True}
        if op == "version":
            return {"server": __version__, "protocol": protocol.PROTOCOL_VERSION}
        if op == "create":
            actor = self.create_machine(
                frame.get("machine"),
                frame.get("construction"),
                dict(frame.get("params") or {}),
                exist_ok=bool(frame.get("exist_ok", False)),
            )
            return actor.state.info()
        if op == "list":
            return {
                "machines": [
                    self.machines[name].state.info() for name in sorted(self.machines)
                ]
            }
        if op == "event":
            actor = self._actor(frame.get("machine"))
            model = frame.get("model")
            return await actor.apply_event(
                frame.get("kind"),
                frame.get("node"),
                model=None if model is None else str(model),
            )
        if op == "events":
            actor = self._actor(frame.get("machine"))
            events = frame.get("events")
            if not isinstance(events, list) or not all(
                isinstance(e, (list, tuple)) and len(e) in (2, 3) for e in events
            ):
                raise ServeError(
                    "'events' must be a list of [kind, node] or "
                    "[kind, node, model] entries"
                )
            return {"results": await actor.apply_events(events)}
        if op == "traffic":
            actor = self._actor(frame.get("machine"))
            return actor.state.traffic_query(
                str(frame.get("pattern", "uniform")),
                int(frame.get("messages", 64)),
                int(frame.get("seed", 0)),
                live=bool(frame.get("live", True)),
                max_cycles=int(frame.get("max_cycles", 10_000)),
                router=str(frame.get("router", "dimension")),
                qos_classes=int(frame.get("qos_classes", 1)),
                credits=int(frame.get("credits", 0)),
            )
        if op == "telemetry":
            return self._telemetry_snapshot(
                machine=frame.get("machine"), health=bool(frame.get("health", False))
            )
        if op == "digest":
            return self._actor(frame.get("machine")).state.digest()
        if op == "subscribe":
            return self._subscribe(conn, frame)
        if op == "unsubscribe":
            self._drop_subscription(conn)
            return {"subscribed": False}
        if op == "shutdown":
            return {"stopping": True}
        raise ServeError(f"unknown op {op!r}", code="unknown-op")

    def _telemetry_snapshot(self, *, machine=None, health: bool = False) -> dict:
        if machine is not None:
            return self._actor(machine).state.telemetry_snapshot(health=health)
        return {
            "server": self.telemetry.snapshot(time.monotonic() - self._started),
            "machines": {
                name: self.machines[name].state.telemetry_snapshot(health=health)
                for name in sorted(self.machines)
            },
        }

    # -- telemetry streaming -------------------------------------------------

    def _subscribe(self, conn: _Connection, frame: dict) -> dict:
        machine = frame.get("machine")
        if machine is not None:
            self._actor(machine)  # validate now, not at first publish
        if conn.sub_queue is None:
            conn.sub_queue = asyncio.Queue(maxsize=self.config.subscriber_queue)
            conn.sub_task = asyncio.create_task(self._pump(conn))
            self.telemetry.subscribers += 1
        conn.sub_options = {
            "machine": machine,
            "health": bool(frame.get("health", False)),
        }
        return {"subscribed": True, "interval_s": self.config.telemetry_interval}

    def _drop_subscription(self, conn: _Connection) -> None:
        if conn.sub_queue is None:
            return
        conn.sub_queue = None
        self.telemetry.subscribers -= 1
        if conn.sub_task is not None:
            conn.sub_task.cancel()
            conn.sub_task = None

    async def _pump(self, conn: _Connection) -> None:
        """Drain one subscriber's queue onto its socket."""
        try:
            while True:
                queue = conn.sub_queue
                if queue is None:
                    return
                payload = await queue.get()
                await self._send(conn, payload)
                self.telemetry.snapshots_sent += 1
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _publish_loop(self) -> None:
        assert self._stopping is not None
        while not self._stopping.is_set():
            await asyncio.sleep(self.config.telemetry_interval)
            for conn in list(self._conns):
                queue = conn.sub_queue
                if queue is None:
                    continue
                snapshot = protocol.event_frame(
                    "telemetry",
                    snapshot=self._telemetry_snapshot(
                        machine=conn.sub_options.get("machine"),
                        health=conn.sub_options.get("health", False),
                    ),
                )
                try:
                    queue.put_nowait(snapshot)
                except asyncio.QueueFull:
                    # Never block the publisher on a slow consumer.
                    self.telemetry.snapshots_dropped += 1
