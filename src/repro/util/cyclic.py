"""Cyclic (mod-``period``) interval arithmetic.

The paper works on tori, so every coordinate axis is cyclic.  Band placement
reasons about *windows* — half-open cyclic intervals ``[start, start+length)``
on ``Z_period`` — and about gaps and runs between marked positions.  This
module centralises that arithmetic so that the rest of the code base never
hand-rolls modular index juggling.

All functions are pure and operate on plain ints / NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "CyclicWindow",
    "cyclic_dist",
    "cyclic_gap",
    "cyclic_range",
    "in_window",
    "max_free_run",
    "merge_windows",
    "windows_cover",
]


def cyclic_dist(a: int, b: int, period: int) -> int:
    """Shortest cyclic distance between positions ``a`` and ``b``.

    >>> cyclic_dist(1, 9, 10)
    2
    """
    d = (a - b) % period
    return min(d, period - d)


def cyclic_gap(a: int, b: int, period: int) -> int:
    """Forward gap from ``a`` to ``b``: the unique ``g in [0, period)`` with
    ``(a + g) % period == b``."""
    return (b - a) % period


def cyclic_range(start: int, length: int, period: int) -> np.ndarray:
    """The ``length`` consecutive positions starting at ``start`` (mod period)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return (start + np.arange(length)) % period


def in_window(pos: "int | np.ndarray", start: int, length: int, period: int):
    """Whether ``pos`` lies in the half-open cyclic window [start, start+length).

    Works element-wise on arrays.
    """
    return cyclic_gap(start, np.asarray(pos), period) < length  # type: ignore[arg-type]


@dataclass(frozen=True)
class CyclicWindow:
    """A half-open cyclic interval ``[start, start+length) mod period``."""

    start: int
    length: int
    period: int

    def __post_init__(self) -> None:
        if not (0 < self.length <= self.period):
            raise ValueError(f"window length {self.length} out of (0, {self.period}]")
        object.__setattr__(self, "start", self.start % self.period)

    @property
    def stop(self) -> int:
        """One past the last covered position (mod period)."""
        return (self.start + self.length) % self.period

    def positions(self) -> np.ndarray:
        return cyclic_range(self.start, self.length, self.period)

    def contains(self, pos: "int | np.ndarray"):
        return in_window(pos, self.start, self.length, self.period)

    def gap_after(self, other: "CyclicWindow") -> int:
        """Number of uncovered positions between the end of ``self`` and the
        start of ``other`` walking forward."""
        return cyclic_gap(self.stop, other.start, self.period)

    def overlaps(self, other: "CyclicWindow") -> bool:
        if self.period != other.period:
            raise ValueError("windows on different periods")
        return bool(
            in_window(other.start, self.start, self.length, self.period)
            or in_window(self.start, other.start, other.length, other.period)
        )


def merge_windows(windows: Sequence[CyclicWindow]) -> list[CyclicWindow]:
    """Merge overlapping/adjacent cyclic windows into disjoint maximal ones.

    Windows covering the whole circle collapse to a single full window.
    """
    if not windows:
        return []
    period = windows[0].period
    if any(w.period != period for w in windows):
        raise ValueError("windows on different periods")
    covered = np.zeros(period, dtype=bool)
    for w in windows:
        covered[w.positions()] = True
    if covered.all():
        return [CyclicWindow(0, period, period)]
    return _windows_from_mask(covered)


def _windows_from_mask(covered: np.ndarray) -> list[CyclicWindow]:
    """Disjoint maximal cyclic windows of the True positions of ``covered``."""
    period = len(covered)
    if not covered.any():
        return []
    if covered.all():
        return [CyclicWindow(0, period, period)]
    # Rotate so position 0 is uncovered, find plain runs, rotate back.
    first_free = int(np.flatnonzero(~covered)[0])
    rot = np.roll(covered, -first_free)
    padded = np.concatenate([[False], rot, [False]]).astype(np.int8)
    diffs = np.diff(padded)
    starts = np.flatnonzero(diffs == 1)
    stops = np.flatnonzero(diffs == -1)
    out = []
    for st, sp in zip(starts, stops):
        out.append(CyclicWindow((int(st) + first_free) % period, int(sp - st), period))
    return out


def windows_cover(windows: Iterable[CyclicWindow], positions: Iterable[int]) -> bool:
    """True iff every position is inside at least one window."""
    ws = list(windows)
    if not ws:
        return not list(positions)
    period = ws[0].period
    covered = np.zeros(period, dtype=bool)
    for w in ws:
        covered[w.positions()] = True
    pos = np.asarray(list(positions), dtype=int)
    if pos.size == 0:
        return True
    return bool(covered[pos % period].all())


def max_free_run(marked: np.ndarray) -> int:
    """Length of the longest cyclic run of False values in ``marked``.

    Used for the "2b consecutive fault-free rows" healthiness condition.
    Returns ``len(marked)`` when nothing is marked.
    """
    marked = np.asarray(marked, dtype=bool)
    period = len(marked)
    if not marked.any():
        return period
    idx = np.flatnonzero(marked)
    # Gap between consecutive marked positions, cyclically; free run between
    # marks i and i+1 is gap - 1.
    gaps = np.diff(np.concatenate([idx, [idx[0] + period]])) - 1
    return int(gaps.max())
