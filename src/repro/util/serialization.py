"""Save / load recoveries and fault sets (``.npz`` based).

A deployed reconfiguration controller wants to persist the current band
placement and embedding across restarts; experiments want replayable
artifacts.  Formats are plain ``numpy`` archives with a small metadata
header — no pickle, no code execution on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.bands import BandSet
from repro.core.params import BnParams
from repro.core.reconstruction import Recovery

__all__ = ["load_json", "load_recovery", "save_json", "save_recovery"]

_FORMAT = "repro-recovery-v1"


def save_json(path: "str | Path", payload: dict) -> None:
    """Write ``payload`` as canonical JSON (sorted keys, fixed indent).

    Canonical form makes result files diffable and lets tests assert that
    serial and parallel experiment runs are byte-identical.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    Path(path).write_text(text + "\n", encoding="utf-8")


def load_json(path: "str | Path") -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_recovery(path: "str | Path", rec: Recovery, faults: np.ndarray | None = None) -> None:
    """Persist a ``B`` recovery (params, bands, phi, optional faults)."""
    p = rec.params
    meta = {
        "format": _FORMAT,
        "params": {"d": p.d, "b": p.b, "s": p.s, "t": p.t},
        "stats": {k: v for k, v in rec.stats.items() if isinstance(v, (int, float, str))},
    }
    arrays = {
        "bottoms": rec.bands.bottoms,
        "phi": rec.phi,
        "meta": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if faults is not None:
        arrays["faults"] = faults
    np.savez_compressed(Path(path), **arrays)


def load_recovery(path: "str | Path", *, verify: bool = True) -> tuple[Recovery, np.ndarray | None]:
    """Load a recovery; by default re-validates the band set and (when the
    fault array was stored) re-verifies the embedding end to end."""
    with np.load(Path(path)) as z:
        meta = json.loads(bytes(z["meta"]).decode("utf-8"))
        if meta.get("format") != _FORMAT:
            raise ValueError(f"unrecognised archive format {meta.get('format')!r}")
        params = BnParams(**meta["params"])
        bands = BandSet(params, z["bottoms"])
        phi = z["phi"]
        faults = z["faults"] if "faults" in z.files else None
    rec = Recovery(params=params, bands=bands, phi=phi, stats=dict(meta.get("stats", {})))
    if verify:
        bands.validate(faults)
        from repro.core.bn_graph import BnGraph
        from repro.topology.embeddings import verify_torus_embedding

        bn = BnGraph(params)
        fault_flat = (
            faults.ravel() if faults is not None else np.zeros(bn.codec.size, dtype=bool)
        )
        verify_torus_embedding(
            (params.n,) * params.d,
            phi,
            lambda ids: ~fault_flat[ids],
            lambda us, vs: bn.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs],
        )
    return rec, faults
