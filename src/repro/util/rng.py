"""Deterministic RNG discipline.

Experiments must be exactly reproducible: every trial derives its generator
from a root seed plus a tuple of string/int keys via ``numpy``'s
``SeedSequence`` machinery, so that (a) trials are independent streams and
(b) adding more sweep points never perturbs existing ones.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]


def _key_to_int(key: "str | int") -> int:
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    # Stable across processes (unlike hash()).
    return zlib.crc32(str(key).encode("utf-8"))


def derive_seed(root: int, *keys: "str | int") -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` for (root, keys...)."""
    return np.random.SeedSequence([int(root) & 0xFFFFFFFF, *(_key_to_int(k) for k in keys)])


def spawn_rng(root: int, *keys: "str | int") -> np.random.Generator:
    """A fresh, independent generator keyed by ``(root, *keys)``.

    >>> g1 = spawn_rng(0, "trial", 3)
    >>> g2 = spawn_rng(0, "trial", 3)
    >>> bool((g1.integers(0, 1 << 30, 4) == g2.integers(0, 1 << 30, 4)).all())
    True
    """
    return np.random.default_rng(derive_seed(root, *keys))


def spawn_many(root: int, count: int, *keys: "str | int") -> Iterable[np.random.Generator]:
    """Independent generators for ``count`` parallel trials."""
    for i in range(count):
        yield spawn_rng(root, *keys, i)
