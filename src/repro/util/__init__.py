"""Shared utilities: cyclic arithmetic, RNG discipline, text tables."""

from repro.util.cyclic import (
    CyclicWindow,
    cyclic_dist,
    cyclic_gap,
    cyclic_range,
    in_window,
    max_free_run,
    merge_windows,
    windows_cover,
)
from repro.util.rng import spawn_rng, derive_seed
from repro.util.tables import Table

__all__ = [
    "CyclicWindow",
    "cyclic_dist",
    "cyclic_gap",
    "cyclic_range",
    "in_window",
    "max_free_run",
    "merge_windows",
    "windows_cover",
    "spawn_rng",
    "derive_seed",
    "Table",
]
