"""Minimal text-table rendering for benchmark reports.

The benchmark harness regenerates the paper's result tables as monospace
text (this is a terminal-first reproduction; no plotting dependencies).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table", "format_float"]


def format_float(x: Any, digits: int = 4) -> str:
    """Compact numeric formatting: ints stay ints, floats get ``digits``."""
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        if x != x:  # NaN
            return "-"
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.{digits}g}"
    return str(x)


class Table:
    """Accumulate rows, render as an aligned monospace table.

    >>> t = Table(["n", "rate"], title="demo")
    >>> t.add_row([8, 0.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    n | rate
    --+-----
    8 | 0.5
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append([format_float(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        sep = "-+-".join("-" * w for w in widths)
        lines = [header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        body = "\n".join(lines)
        return f"{self.title}\n{body}" if self.title else body

    def print(self) -> None:
        print(self.render(), flush=True)
