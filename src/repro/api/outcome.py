"""The shared trial-outcome record of every construction.

Historically each construction reported results through its own ad-hoc
shape (``BTorus.trial`` returned the original ``TrialOutcome``; the
baselines returned bare booleans).  The unified :class:`Construction`
protocol makes every adapter's ``trial`` return this one dataclass, so
the Monte-Carlo driver, the experiment runner and every benchmark can
aggregate outcomes without knowing which construction produced them.

``TrialOutcome`` used to live in ``repro.core.bn``; it is re-exported
from there for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no cycle at runtime
    from repro.core.healthiness import HealthReport

__all__ = ["TrialOutcome"]


@dataclass
class TrialOutcome:
    """Result of one fault-injection + recovery trial."""

    success: bool
    category: str  # "ok" or the ReconstructionError category
    healthy: bool | None = None
    num_faults: int = 0
    strategy_used: str = ""
    health: "HealthReport | None" = None
    recovery: Any = field(default=None, repr=False)
