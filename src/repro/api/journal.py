"""Append-only NDJSON chunk journal: checkpoint/resume for experiment runs.

A journal pins one :class:`~repro.api.experiment.ExperimentSpec` execution
to a file so multi-hour sweeps survive interruption.  Line 1 is a header
(format tag, the full spec dict, the total chunk count); every line after
it records one completed seed chunk::

    {"format": "repro-chunk-journal-v1", "spec": {...}, "total_chunks": 8}
    {"chunk": 0, "point": 0, "result": {...MCResult dict...}}
    {"chunk": 1, "point": 0, "result": {...}}

The parent process appends a line (and flushes) the moment a chunk's
result arrives, so after a kill the journal holds every finished chunk
plus at most one torn final line.  Resume rules:

* missing file → start fresh (the journal is created);
* header or any *non-final* line unparseable, wrong ``format``, a spec
  mismatch, or out-of-range chunk coordinates →
  :class:`~repro.errors.JournalError` (never silently merge a journal
  written for different work);
* a torn *final* line (no trailing newline, or a trailing fragment that
  does not parse) → dropped with a warning and truncated before new
  appends — the expected signature of a mid-write kill.

Only chunk *identity and results* live here; runner-level choices
(``workers``, ``batch``, ``max_batch_bytes``) are deliberately absent, so
a run may resume with a different worker count or memory budget and still
produce byte-identical final JSON — the determinism contract is carried
entirely by the spec.  Results round-trip through ``json`` exactly
(floats re-read to the same IEEE value), so a resumed merge folds the
same dicts an uninterrupted run would.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from repro.errors import JournalError

__all__ = ["JOURNAL_FORMAT", "ChunkJournal"]

JOURNAL_FORMAT = "repro-chunk-journal-v1"

logger = logging.getLogger(__name__)


class ChunkJournal:
    """One experiment's chunk journal (create, resume-load, append)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- lifecycle -----------------------------------------------------------

    def start(self, spec, total_chunks: int, *, resume: bool) -> dict:
        """Open the journal and return already-completed chunks.

        With ``resume=True`` and an existing file, validates the header
        against ``spec``, reads every completed chunk line, truncates any
        torn final fragment and opens for append; the returned mapping is
        ``{(point, chunk): result_dict}``.  Otherwise (re)creates the
        file with a fresh header and returns ``{}``.
        """
        spec_dict = spec.to_dict()
        if resume and self.path.exists():
            done, good_bytes = self._load(spec_dict, total_chunks)
            if good_bytes:
                self._fh = open(self.path, "r+", encoding="utf-8")
                self._fh.seek(good_bytes)
                self._fh.truncate()
                return done
            # Not even one complete header line survived (a kill during the
            # very first write): rebuild from scratch below.
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {"format": JOURNAL_FORMAT, "spec": spec_dict, "total_chunks": total_chunks}
        )
        return {}

    def append(self, point: int, chunk: int, result: dict) -> None:
        """Journal one completed chunk (flushed before returning)."""
        self._write_line({"chunk": chunk, "point": point, "result": result})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _write_line(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def _load(self, spec_dict: dict, total_chunks: int) -> tuple[dict, int]:
        """Parse an existing journal; returns ``(done, good_bytes)``."""
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # A file not ending in a newline has a torn final fragment; a file
        # that does yields one empty trailing element — either way the last
        # list entry is never a *complete* line.
        complete, tail = lines[:-1], lines[-1]
        if not complete:
            logger.warning(
                "journal %s has no complete header line; starting fresh", self.path
            )
            return {}, 0
        header = self._parse(complete[0], lineno=1)
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"{self.path}: unrecognised journal format {header.get('format')!r}"
            )
        if header.get("spec") != spec_dict:
            raise JournalError(
                f"{self.path}: journal was written for a different spec; "
                "refusing to resume (pass a fresh --checkpoint path instead)"
            )
        if header.get("total_chunks") != total_chunks:
            raise JournalError(
                f"{self.path}: journal expects {header.get('total_chunks')} "
                f"chunks, this run has {total_chunks}"
            )
        num_points = len(spec_dict["grid"])
        chunks_per_point = total_chunks // num_points
        done: dict = {}
        for lineno, line in enumerate(complete[1:], start=2):
            rec = self._parse(line, lineno=lineno)
            try:
                point, chunk, result = rec["point"], rec["chunk"], rec["result"]
            except (KeyError, TypeError) as exc:
                raise JournalError(
                    f"{self.path}:{lineno}: chunk record missing {exc}"
                ) from None
            if not isinstance(point, int) or not isinstance(chunk, int):
                raise JournalError(
                    f"{self.path}:{lineno}: non-integer chunk coordinates"
                )
            if not (0 <= point < num_points and 0 <= chunk < chunks_per_point):
                raise JournalError(
                    f"{self.path}:{lineno}: chunk ({point}, {chunk}) is outside "
                    f"this spec's {num_points} x {chunks_per_point} grid"
                )
            done[(point, chunk)] = result
        if tail:
            logger.warning(
                "journal %s: dropping torn final line (%d bytes) from an "
                "interrupted write", self.path, len(tail),
            )
        good_bytes = len(raw) - len(tail)
        return done, good_bytes

    def _parse(self, line: bytes, *, lineno: int) -> dict:
        try:
            rec = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"{self.path}:{lineno}: corrupt journal line ({exc}); the file "
                "is damaged beyond its final line — rerun without --resume"
            ) from None
        if not isinstance(rec, dict):
            raise JournalError(f"{self.path}:{lineno}: journal line is not an object")
        return rec
