"""Adapters conforming the six constructions to the unified protocol.

Each adapter wraps one of the rich construction classes (``BTorus``,
``ATorus``, ``DTorus``, ``AlonChungPath``, ``ReplicatedTorus``,
``SpareRowsTorus``) without changing it: the wrapped object stays
available as ``.torus`` for callers that need the full bespoke API.

Seed discipline: ``trial`` reuses each construction's historical RNG
keying wherever one existed (``bn-trial``, ``an-nodes``/``an-half``,
``dn-sweep``, ``replication``), so registry-driven experiments reproduce
the exact outcomes of the pre-registry drivers for the same seeds.
"""

from __future__ import annotations

import numpy as np

from repro.api.lifetime import LifetimeOutcome, run_timeline
from repro.api.outcome import TrialOutcome
from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec
from repro.api.registry import register
from repro.errors import ReconstructionError
from repro.faults.adversary import adversarial_node_faults
from repro.faults.registry import make_fault_model, model_token
from repro.topology.graph import CSRGraph
from repro.util.rng import spawn_rng

__all__ = [
    "AlonChungConstruction",
    "AnConstruction",
    "BnConstruction",
    "DnConstruction",
    "ReplicationConstruction",
    "SpareRowsConstruction",
]


class _AdapterBase:
    """Shared trial/recovery plumbing for the adapters.

    Subclasses implement ``sample_faults``/``recover`` plus ``_num_faults``
    and get a generic seeded ``trial``; adapters with a historical RNG
    stream override ``trial`` to preserve it.
    """

    name: str = ""

    def _trial_rng(self, spec: FaultSpec, seed: int) -> np.random.Generator:
        # Model-bearing specs append the canonical model token, so their
        # streams are independent of (and cannot perturb) the historical
        # model-free keying.
        keys = [
            f"{self.name}-trial", spec.pattern, str(spec.p), str(spec.q),
            -1 if spec.k is None else spec.k,
        ]
        if spec.fault_model is not None:
            keys.append(model_token(spec.fault_model))
        return spawn_rng(seed, *keys)

    def _model_faults(self, spec: FaultSpec, rng: np.random.Generator):
        """One-shot fault state drawn from the spec's registered model.

        The model samples over the adapter's lifetime shape — the node
        array every construction's ``recover`` accepts.  One-shot trials
        treat the sampled set as crash faults regardless of the model's
        behavior (conservative quarantine of suspected traitors); the
        ``byzantine`` semantics engage in the traffic engines.
        """
        return make_fault_model(spec.fault_model).sample(self._lifetime_shape(), rng)

    @staticmethod
    def _num_faults(faults) -> int:
        return int(np.asarray(faults).sum())

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        faults = self.sample_faults(spec, self._trial_rng(spec, seed))
        n_faults = self._num_faults(faults)
        try:
            self.recover(faults)
            return TrialOutcome(success=True, category="ok", num_faults=n_faults)
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category, num_faults=n_faults)

    # -- lifetime capability (generic full-recompute driver) ----------------

    def _lifetime_shape(self) -> tuple:
        """Node shape the fault timeline runs over."""
        return self.params.shape

    def _lifetime_recover(self, faults):
        """Recovery attempt for a boolean fault array of ``_lifetime_shape``."""
        return self.recover(faults)

    def lifetime_trial(self, spec: LifetimeSpec, seed: int) -> LifetimeOutcome:
        """One seeded fault-arrival timeline driven to first failure.

        The generic driver recomputes recovery from scratch after every
        new fault; ``bn`` overrides this with the incremental
        :class:`~repro.core.online.OnlineRecovery` path.
        """
        rng = spawn_rng(seed, f"{self.name}-lifetime")
        return run_timeline(spec, self._lifetime_shape(), rng, self._lifetime_recover)


class _TorusTrafficMixin:
    """Traffic capability shared by adapters whose guest is a torus.

    Subclasses provide ``guest_shape``; the trial driver and the batched
    dispatch live in :mod:`repro.api.traffic` /
    :mod:`repro.fastpath.traffic_batch`.  The expander-path baseline has a
    path guest (wraparound routes would be fictitious), so it simply does
    not mix this in and the runner reports it as traffic-incapable.
    """

    def traffic_trial(self, spec: TrafficSpec, seed: int):
        from repro.api.traffic import run_traffic_trial

        return run_traffic_trial(self.guest_shape(), spec, seed)

    def supports_traffic_batch(self, spec: TrafficSpec) -> bool:
        """The vectorized kernel covers every pattern and injection model."""
        return True

    def run_traffic_batch(
        self, spec: TrafficSpec, seeds: list, max_batch_bytes: int | None = None,
        tier: str = "batch",
    ) -> list:
        from repro.fastpath.traffic_batch import run_traffic_batch

        return run_traffic_batch(
            self.guest_shape(), spec, seeds, max_batch_bytes=max_batch_bytes,
            tier=tier,
        )


# ---------------------------------------------------------------------------
# Theorem 2 — B^d_n
# ---------------------------------------------------------------------------


class BnConstruction(_TorusTrafficMixin, _AdapterBase):
    """Theorem 2's ``B^d_n`` under the unified protocol."""

    name = "bn"

    def __init__(self, params, *, strategy: str = "auto", check_health: bool = False):
        from repro.core.bn import BTorus

        self.params = params
        self.torus = BTorus(params)
        self.strategy = strategy
        self.check_health = check_health

    @property
    def num_nodes(self) -> int:
        return self.torus.bn.num_nodes

    @property
    def degree(self) -> int:
        return self.params.degree

    def graph(self) -> CSRGraph:
        return self.torus.bn.graph()

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        if spec.fault_model is not None:
            return self._model_faults(spec, rng)
        if spec.adversarial:
            if spec.k is None:
                raise ValueError("adversarial faults against bn need an explicit k")
            return adversarial_node_faults(self.params.shape, spec.k, spec.pattern, rng)
        return self.torus.sample_faults(spec.p, rng, q=spec.q)

    def recover(self, faults):
        return self.torus.recover(faults, strategy=self.strategy)

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        if spec.adversarial or spec.fault_model is not None:
            return super().trial(spec, seed)
        # Same stream as the historical BTorus.trial driver loops.
        return self.torus.trial(
            spec.p, seed, q=spec.q, strategy=self.strategy, check_health=self.check_health
        )

    def supports_batch(self, spec: FaultSpec) -> bool:
        """Bernoulli points on the straight-capable strategies; the pure
        ``paper`` strategy never takes the straight fast path, so batching
        it would be per-trial fallback in disguise."""
        return not spec.adversarial and self.strategy in ("auto", "straight")

    def run_batch(
        self, spec: FaultSpec, seeds: list, max_batch_bytes: int | None = None,
        tier: str = "batch",
    ) -> list:
        from repro.fastpath.bn_batch import run_bn_batch

        return run_bn_batch(
            self, spec, seeds, max_batch_bytes=max_batch_bytes, tier=tier
        )

    def lifetime_trial(self, spec: LifetimeSpec, seed: int) -> LifetimeOutcome:
        """Incremental lifetime trial on the historical ``fault_lifetime``
        RNG stream, so registry-driven lifetime experiments reproduce the
        pre-subsystem numbers for the same seeds."""
        from repro.core.online import OnlineRecovery, run_online_timeline

        online = OnlineRecovery(self.torus, incremental=True, strategy=self.strategy)
        rng = spawn_rng(seed, "lifetime", self.params.n, self.params.d)
        return run_online_timeline(online, spec, rng)

    def supports_lifetime_batch(self, spec: LifetimeSpec) -> bool:
        """Uniform no-repair timelines on straight-capable strategies — the
        regime where the kernel's lockstep masked checks apply; repair
        processes and the other timeline kinds stay on the scalar path."""
        return (
            spec.timeline == "uniform"
            and spec.repair_rate == 0.0
            and spec.fault_model is None
            and self.strategy in ("auto", "straight")
        )

    def run_lifetime_batch(
        self, spec: LifetimeSpec, seeds: list, max_batch_bytes: int | None = None,
        tier: str = "batch",
    ) -> list:
        from repro.fastpath.lifetime_batch import run_bn_lifetime_batch

        return run_bn_lifetime_batch(
            self, spec, seeds, max_batch_bytes=max_batch_bytes, tier=tier
        )

    def guest_shape(self) -> tuple:
        """The ``n^d`` torus a successful recovery re-embeds (dilation 1)."""
        return (self.params.n,) * self.params.d


@register("bn")
def _make_bn(*, d: int = 2, b: int = 3, s: int = 1, t: int = 2,
             strategy: str = "auto", check_health: bool = False) -> BnConstruction:
    from repro.core.params import BnParams

    return BnConstruction(
        BnParams(d=d, b=b, s=s, t=t), strategy=strategy, check_health=check_health
    )


# ---------------------------------------------------------------------------
# Theorem 1 — A^d_n
# ---------------------------------------------------------------------------


class AnConstruction(_TorusTrafficMixin, _AdapterBase):
    """Theorem 1's ``A^d_n`` (supernode cliques over a ``B`` host)."""

    name = "an"

    def __init__(self, params):
        from repro.core.an import ATorus

        self.params = params
        self.torus = ATorus(params)

    @property
    def num_nodes(self) -> int:
        return self.params.num_nodes

    @property
    def degree(self) -> int:
        return self.params.degree

    def graph(self) -> CSRGraph:
        """Materialised ``A^d_n``: per-supernode ``h``-cliques plus complete
        bipartite edges between adjacent supernodes.  The recovery pipeline
        never touches this (half-edge bits stay lazy); it exists for
        structural verification at small scale and is cached."""
        if not hasattr(self, "_graph"):
            h = self.params.h
            n_super = self.params.num_supernodes
            a, b = np.triu_indices(h, k=1)
            base = np.arange(n_super, dtype=np.int64)[:, None] * h
            clique = np.stack(
                [(base + a[None, :]).ravel(), (base + b[None, :]).ravel()], axis=1
            )
            host_edges = self.torus.host.bn.graph().edges()
            slots = np.arange(h, dtype=np.int64)
            us = host_edges[:, 0][:, None, None] * h + slots[None, :, None]
            vs = host_edges[:, 1][:, None, None] * h + slots[None, None, :]
            us, vs = np.broadcast_arrays(us, vs)
            bipartite = np.stack([us.ravel(), vs.ravel()], axis=1)
            self._graph = CSRGraph(
                self.num_nodes, np.concatenate([clique, bipartite], axis=0)
            )
        return self._graph

    @staticmethod
    def _num_faults(faults) -> int:
        return int(faults.node_faults.sum())

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        from repro.core.an import AnFaultState
        from repro.faults.models import HalfEdgeFaults

        if spec.fault_model is not None:
            return AnFaultState(
                node_faults=self._model_faults(spec, rng),
                half=HalfEdgeFaults(0.0, 0),
                p=0.0,
                q=0.0,
            )
        if spec.adversarial:
            raise ValueError("A^d_n models random faults only (Theorem 1)")
        h = self.params.h
        node_faults = rng.random((self.params.num_supernodes, h)) < spec.p
        half_seed = int(rng.integers(0, 2**31))
        return AnFaultState(
            node_faults=node_faults,
            half=HalfEdgeFaults(spec.q, half_seed),
            p=spec.p,
            q=spec.q,
        )

    def recover(self, faults):
        return self.torus.recover(faults)

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        if spec.fault_model is not None:
            return super().trial(spec, seed)
        if spec.adversarial:
            raise ValueError("A^d_n models random faults only (Theorem 1)")
        # Same stream as ATorus.sample_faults(p, q, seed) driver loops.
        state = self.torus.sample_faults(spec.p, spec.q, seed)
        n_faults = self._num_faults(state)
        try:
            self.torus.recover(state)
            return TrialOutcome(success=True, category="ok", num_faults=n_faults)
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category, num_faults=n_faults)

    def _lifetime_shape(self) -> tuple:
        return (self.params.num_supernodes, self.params.h)

    def _lifetime_recover(self, faults):
        from repro.core.an import AnFaultState
        from repro.faults.models import HalfEdgeFaults

        return self.torus.recover(
            AnFaultState(node_faults=faults, half=HalfEdgeFaults(0.0, 0), p=0.0, q=0.0)
        )

    def supports_batch(self, spec: FaultSpec) -> bool:
        """Node-fault-only Bernoulli points: with ``q > 0`` the greedy
        embedding consults per-pair half-edge bits, and model-bearing specs
        sample through the adapter; both stay on the scalar path."""
        return not spec.adversarial and spec.q == 0.0 and spec.fault_model is None

    def run_batch(
        self, spec: FaultSpec, seeds: list, max_batch_bytes: int | None = None,
        tier: str = "batch",
    ) -> list:
        # The an survival kernel has no compiled core (its hot path is the
        # bn sub-torus classifier); on the compiled tier it runs the same
        # numpy kernel — outcomes are tier-independent either way.
        from repro.fastpath.an_batch import run_an_batch

        return run_an_batch(self, spec, seeds, max_batch_bytes=max_batch_bytes)

    def guest_shape(self) -> tuple:
        """The ``n^d`` torus (side ``k_sub * n_B``) Theorem 1 reconstructs."""
        return (self.params.n,) * self.params.base.d


@register("an")
def _make_an(*, d: int = 2, b: int = 3, s: int = 1, t: int = 2,
             k_sub: int = 2, h: int | None = None, c: float = 3.0) -> AnConstruction:
    from repro.core.an import an_params_for
    from repro.core.params import AnParams, BnParams

    base = BnParams(d=d, b=b, s=s, t=t)
    if h is not None:
        params = AnParams(base=base, k_sub=k_sub, h=h)  # validates h >= k_sub^d
    else:
        params = an_params_for(base, k_sub, c)
    return AnConstruction(params)


# ---------------------------------------------------------------------------
# Theorem 3/13 — D^d_{n,k}
# ---------------------------------------------------------------------------


class DnConstruction(_TorusTrafficMixin, _AdapterBase):
    """Theorem 3/13's worst-case construction ``D^d_{n,k}``."""

    name = "dn"

    def __init__(self, params):
        from repro.core.dn import DTorus

        self.params = params
        self.torus = DTorus(params)

    @property
    def num_nodes(self) -> int:
        return self.torus.num_nodes

    @property
    def degree(self) -> int:
        return self.params.degree

    def graph(self) -> CSRGraph:
        return self.torus.graph()

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        if spec.fault_model is not None:
            return self._model_faults(spec, rng)
        if spec.adversarial:
            k = self.params.k if spec.k is None else spec.k
            return adversarial_node_faults(self.params.shape, k, spec.pattern, rng)
        return rng.random(self.params.shape) < spec.p

    def recover(self, faults):
        return self.torus.recover(faults)

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        if spec.adversarial:
            # Same stream as the historical sweep_dn_adversarial loops.
            rng = spawn_rng(seed, "dn-sweep", spec.pattern, self.params.n, self.params.b)
        else:
            rng = self._trial_rng(spec, seed)
        faults = self.sample_faults(spec, rng)
        n_faults = self._num_faults(faults)
        try:
            self.recover(faults)
            return TrialOutcome(success=True, category="ok", num_faults=n_faults)
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category, num_faults=n_faults)

    def guest_shape(self) -> tuple:
        """The ``n^d`` torus ``D^d_{n,k}`` guarantees under any ``k`` faults."""
        return (self.params.n,) * self.params.d


@register("dn")
def _make_dn(*, d: int = 2, n: int = 70, b: int = 2) -> DnConstruction:
    from repro.core.params import DnParams

    return DnConstruction(DnParams(d=d, n=n, b=b))


# ---------------------------------------------------------------------------
# Baseline — Alon–Chung expander path (Theorem 12)
# ---------------------------------------------------------------------------


class AlonChungConstruction(_AdapterBase):
    """Alon–Chung's linear-size constant-degree path host (Theorem 12)."""

    name = "alon_chung"

    def __init__(self, path):
        self.torus = path  # AlonChungPath; `.torus` kept for API uniformity

    @property
    def num_nodes(self) -> int:
        return self.torus.num_nodes

    @property
    def degree(self) -> int:
        return self.torus.graph.max_degree()

    def graph(self) -> CSRGraph:
        return self.torus.graph

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        if spec.fault_model is not None:
            return self._model_faults(spec, rng)
        faults = np.zeros(self.num_nodes, dtype=bool)
        if spec.adversarial:
            if spec.pattern != "random":
                raise ValueError(
                    "the expander host has no grid structure; only the "
                    "'random' adversarial pattern applies"
                )
            if spec.k is None:
                raise ValueError("adversarial faults against alon_chung need k")
            faults[rng.choice(self.num_nodes, size=min(spec.k, self.num_nodes), replace=False)] = True
            return faults
        return rng.random(self.num_nodes) < spec.p

    def recover(self, faults):
        return self.torus.recover(faults)

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        faults = self.sample_faults(spec, self._trial_rng(spec, seed))
        n_faults = self._num_faults(faults)
        try:
            self.torus.recover(faults, rng=spawn_rng(seed, "alon-chung-dfs"))
            return TrialOutcome(success=True, category="ok", num_faults=n_faults)
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category, num_faults=n_faults)

    def _lifetime_shape(self) -> tuple:
        return (self.num_nodes,)


@register("alon_chung")
def _make_alon_chung(*, n: int = 60, blowup: float = 3.0,
                     kind: str = "gabber-galil", degree: int = 8) -> AlonChungConstruction:
    from repro.baselines.alon_chung import AlonChungPath

    return AlonChungConstruction(AlonChungPath(n, blowup=blowup, kind=kind, degree=degree))


# ---------------------------------------------------------------------------
# Baseline — FKP-style replication
# ---------------------------------------------------------------------------


class ReplicationConstruction(_TorusTrafficMixin, _AdapterBase):
    """FKP-style ``O(log n)``-degree cluster replication."""

    name = "replication"

    def __init__(self, rt):
        self.torus = rt  # ReplicatedTorus

    @property
    def num_nodes(self) -> int:
        return self.torus.num_nodes

    @property
    def degree(self) -> int:
        return self.torus.degree

    def graph(self) -> CSRGraph:
        """Cluster cliques + complete bipartite edges along torus adjacency."""
        if not hasattr(self, "_graph"):
            from repro.topology.torus import torus_edges

            rt = self.torus
            r = rt.r
            a, b = np.triu_indices(r, k=1)
            base = np.arange(rt.num_clusters, dtype=np.int64)[:, None] * r
            clique = np.stack(
                [(base + a[None, :]).ravel(), (base + b[None, :]).ravel()], axis=1
            )
            te = torus_edges((rt.n,) * rt.d)
            slots = np.arange(r, dtype=np.int64)
            us = te[:, 0][:, None, None] * r + slots[None, :, None]
            vs = te[:, 1][:, None, None] * r + slots[None, None, :]
            us, vs = np.broadcast_arrays(us, vs)
            bipartite = np.stack([us.ravel(), vs.ravel()], axis=1)
            parts = [clique, bipartite] if r > 1 else [bipartite]
            self._graph = CSRGraph(rt.num_nodes, np.concatenate(parts, axis=0))
        return self._graph

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        rt = self.torus
        if spec.fault_model is not None:
            return self._model_faults(spec, rng)
        if spec.adversarial:
            if spec.pattern != "random" or spec.k is None:
                raise ValueError(
                    "replication supports only 'random' adversarial faults with explicit k"
                )
            flat = np.zeros(rt.num_nodes, dtype=bool)
            flat[rng.choice(rt.num_nodes, size=min(spec.k, rt.num_nodes), replace=False)] = True
            return flat.reshape(rt.num_clusters, rt.r)
        return rng.random((rt.num_clusters, rt.r)) < spec.p

    def recover(self, faults):
        return self.torus.recover(faults)

    def trial(self, spec: FaultSpec, seed: int) -> TrialOutcome:
        if spec.adversarial or spec.fault_model is not None:
            return super().trial(spec, seed)
        # Same stream as ReplicatedTorus.survives(p, seed).
        faults = self.torus.sample_faults(spec.p, seed)
        n_faults = self._num_faults(faults)
        try:
            self.recover(faults)
            return TrialOutcome(success=True, category="ok", num_faults=n_faults)
        except ReconstructionError as exc:
            return TrialOutcome(success=False, category=exc.category, num_faults=n_faults)

    def _lifetime_shape(self) -> tuple:
        return (self.torus.num_clusters, self.torus.r)

    def guest_shape(self) -> tuple:
        """The ``n^d`` torus each cluster slot emulates."""
        return (self.torus.n,) * self.torus.d


@register("replication")
def _make_replication(*, n: int = 8, d: int = 2, replication: int | None = None,
                      c_r: float = 1.0) -> ReplicationConstruction:
    from repro.baselines.replication import ReplicatedTorus

    return ReplicationConstruction(ReplicatedTorus(n, d, replication=replication, c_r=c_r))


# ---------------------------------------------------------------------------
# Baseline — naive spare rows
# ---------------------------------------------------------------------------


class SpareRowsConstruction(_TorusTrafficMixin, _AdapterBase):
    """The naive ``O(k)``-degree spare-rows comparator."""

    name = "sparerows"

    def __init__(self, sr):
        self.torus = sr  # SpareRowsTorus

    @property
    def num_nodes(self) -> int:
        return self.torus.num_nodes

    @property
    def degree(self) -> int:
        return self.torus.degree

    def graph(self) -> CSRGraph:
        """Torus edges plus vertical jumps of every span ``2..sigma+1``."""
        if not hasattr(self, "_graph"):
            sr = self.torus
            idx = sr.codec.all_indices()
            us, vs = [], []
            for axis in (0, 1):
                us.append(idx)
                vs.append(sr.codec.shift(idx, axis, +1, wrap=True))
            for span in range(2, sr.sigma + 2):
                us.append(idx)
                vs.append(sr.codec.shift(idx, 0, span, wrap=True))
            self._graph = CSRGraph(
                sr.num_nodes,
                np.stack([np.concatenate(us), np.concatenate(vs)], axis=1),
            )
        return self._graph

    def sample_faults(self, spec: FaultSpec, rng: np.random.Generator):
        sr = self.torus
        if spec.fault_model is not None:
            return self._model_faults(spec, rng)
        if spec.adversarial:
            k = sr.tolerated if spec.k is None else spec.k
            return adversarial_node_faults((sr.m, sr.n), k, spec.pattern, rng)
        return rng.random((sr.m, sr.n)) < spec.p

    def recover(self, faults):
        return self.torus.recover(faults)

    def _lifetime_shape(self) -> tuple:
        return (self.torus.m, self.torus.n)

    def guest_shape(self) -> tuple:
        """The ``n x n`` torus left after discarding faulty rows."""
        return (self.torus.n, self.torus.n)


@register("sparerows")
def _make_sparerows(*, n: int = 10, sigma: int = 4) -> SpareRowsConstruction:
    from repro.baselines.sparerows import SpareRowsTorus

    return SpareRowsConstruction(SpareRowsTorus(n, sigma))
