"""Lifetime trial outcomes, their aggregate, and the generic driver.

A *lifetime trial* replays one seeded fault timeline
(:mod:`repro.faults.timeline`) against a construction until verified
recovery first fails.  :class:`LifetimeOutcome` is the per-trial record
(the analogue of :class:`~repro.api.outcome.TrialOutcome`);
:class:`LifetimeResult` is the per-grid-point aggregate (the analogue of
:class:`~repro.analysis.montecarlo.MCResult`) and obeys the same
determinism contract: per-trial lifetimes are kept in seed order, chunk
merges concatenate in chunk order, and ``to_dict`` is JSON-stable — so
serial, parallel and batched experiment runs serialise byte-identically.

:func:`run_timeline` is the generic full-recompute driver used by
constructions without bespoke incremental machinery (``an``, ``dn``):
it maintains a boolean fault array, feeds timeline events through a
``recover`` callable, and classifies the first failure.  ``B^d_n``
overrides this with the genuinely incremental
:class:`~repro.core.online.OnlineRecovery` path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.protocol import LifetimeSpec
from repro.errors import ReconstructionError
from repro.faults.timeline import make_timeline

__all__ = [
    "LifetimeMerge",
    "LifetimeOutcome",
    "LifetimeResult",
    "aggregate_lifetimes",
    "drive_timeline",
    "run_timeline",
    "timeline_for",
]


@dataclass
class LifetimeOutcome:
    """Result of one fault-arrival timeline driven to first failure."""

    #: Fault arrivals survived before recovery first failed (the paper's
    #: "tolerates Theta(N log^{-3d} N) random faults", measured).
    lifetime: int
    #: Timeline steps consumed (== lifetime for one-arrival-per-step kinds).
    steps: int
    #: "ok" when the timeline ran dry without a failure, otherwise the
    #: ReconstructionError category of the terminal arrival.
    category: str
    failed: bool
    #: Arrivals absorbed without recomputation (already under a band).
    masked: int = 0
    #: Arrivals that forced a placement recomputation.
    replaced: int = 0
    #: Repair events applied (timelines with repair_rate > 0).
    repaired: int = 0


@dataclass
class LifetimeResult:
    """Aggregated lifetimes of a batch of timeline trials.

    ``lifetimes`` stays in seed order — the merge concatenates parts in
    chunk order, which is what keeps serial and parallel runs of the same
    spec byte-identical (integer lists have no float-accumulation order
    sensitivity, so this aggregate is even sturdier than ``MCResult``).
    """

    trials: int
    lifetimes: list[int] = field(default_factory=list)
    categories: Counter = field(default_factory=Counter)
    masked: int = 0
    replaced: int = 0
    repaired: int = 0
    #: Trials whose timeline ran dry before any failure.
    exhausted: int = 0

    # -- summary statistics --------------------------------------------------

    @property
    def mean_lifetime(self) -> float:
        return float(np.mean(self.lifetimes)) if self.lifetimes else float("nan")

    @property
    def median_lifetime(self) -> float:
        return float(np.median(self.lifetimes)) if self.lifetimes else float("nan")

    @property
    def min_lifetime(self) -> int:
        return min(self.lifetimes) if self.lifetimes else 0

    @property
    def max_lifetime(self) -> int:
        return max(self.lifetimes) if self.lifetimes else 0

    def survival_curve(self, grid: Sequence[int]) -> list[float]:
        """Fraction of trials surviving at least ``g`` arrivals, per grid point."""
        lives = np.asarray(self.lifetimes)
        return [float((lives >= g).mean()) if len(lives) else float("nan") for g in grid]

    def repair_fraction(self) -> float:
        """Fraction of arrivals that forced a recomputation."""
        arrivals = self.masked + self.replaced
        return self.replaced / arrivals if arrivals else 0.0

    def summary(self) -> str:
        parts = [
            f"{self.trials} lifetimes: min={self.min_lifetime} "
            f"median={self.median_lifetime:g} max={self.max_lifetime}"
        ]
        fails = {k: v for k, v in self.categories.items() if k != "ok"}
        if fails:
            parts.append("deaths: " + ", ".join(f"{k}={v}" for k, v in sorted(fails.items())))
        if self.exhausted:
            parts.append(f"exhausted={self.exhausted}")
        if self.repaired:
            parts.append(f"repaired={self.repaired}")
        return "; ".join(parts)

    # -- persistence / merging ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-stable representation (see docs/results-format.md)."""
        return {
            "kind": "lifetime",
            "trials": self.trials,
            "lifetimes": [int(x) for x in self.lifetimes],
            "categories": {k: int(v) for k, v in sorted(self.categories.items())},
            "masked": self.masked,
            "replaced": self.replaced,
            "repaired": self.repaired,
            "exhausted": self.exhausted,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LifetimeResult":
        return cls(
            trials=int(d["trials"]),
            lifetimes=[int(x) for x in d.get("lifetimes", [])],
            categories=Counter(d.get("categories", {})),
            masked=int(d.get("masked", 0)),
            replaced=int(d.get("replaced", 0)),
            repaired=int(d.get("repaired", 0)),
            exhausted=int(d.get("exhausted", 0)),
        )

    @classmethod
    def merger(cls) -> "LifetimeMerge":
        """Incremental accumulator equivalent to :meth:`merged` (shared by
        the streaming experiment runner; see ``MCResult.merger``)."""
        return LifetimeMerge(cls)

    @classmethod
    def merged(cls, parts: Sequence["LifetimeResult"]) -> "LifetimeResult":
        """Concatenate disjoint trial batches in the order given."""
        merge = cls.merger()
        for part in parts:
            merge.add(part)
        return merge.finish()


class LifetimeMerge:
    """Incremental :meth:`LifetimeResult.merged` — integer sums and list
    concatenation only, so chunk-order folding is trivially identical to
    the one-shot merge."""

    def __init__(self, cls: type = None) -> None:
        self._out = (cls or LifetimeResult)(trials=0)

    def add(self, part: "LifetimeResult") -> None:
        out = self._out
        out.trials += part.trials
        out.lifetimes.extend(part.lifetimes)
        out.categories.update(part.categories)
        out.masked += part.masked
        out.replaced += part.replaced
        out.repaired += part.repaired
        out.exhausted += part.exhausted

    def finish(self) -> "LifetimeResult":
        return self._out


def aggregate_lifetimes(outcomes: Iterable[LifetimeOutcome]) -> LifetimeResult:
    """Fold a stream of lifetime outcomes into one :class:`LifetimeResult`.

    The single accumulation path shared by the per-trial driver and the
    batched lifetime kernel, mirroring
    :func:`repro.analysis.montecarlo.aggregate_outcomes`.
    """
    res = LifetimeResult(trials=0)
    for out in outcomes:
        res.trials += 1
        res.lifetimes.append(out.lifetime)
        res.categories[out.category] += 1
        res.masked += out.masked
        res.replaced += out.replaced
        res.repaired += out.repaired
        if not out.failed:
            res.exhausted += 1
    return res


def timeline_for(spec: LifetimeSpec):
    """The :class:`~repro.faults.timeline.FaultTimeline` a spec describes."""
    return make_timeline(
        spec.timeline,
        rate=spec.rate,
        burst=spec.burst,
        pattern=spec.pattern,
        k=spec.k,
        repair_rate=spec.repair_rate,
        max_steps=spec.max_steps,
        fault_model=spec.fault_model,
    )


def drive_timeline(
    spec: LifetimeSpec,
    shape: Sequence[int],
    rng: np.random.Generator,
    *,
    on_fault: Callable[[int], str],
    on_repair: Callable[[int], None],
    observer: Callable[[int], None] | None = None,
) -> LifetimeOutcome:
    """The single lifetime event loop, shared by every recovery backend.

    ``on_fault(flat_node)`` applies one arrival and returns ``"masked"``
    or ``"replaced"`` (raising :class:`ReconstructionError` on the first
    unrecoverable fault — the trial's death); ``on_repair(flat_node)``
    applies one repair.  Step bounds, tally accounting and failure
    classification live here and nowhere else, so the generic
    full-recompute driver and the incremental ``OnlineRecovery`` driver
    cannot drift apart.  ``observer(arrivals_survived)`` — when given —
    fires after every survived arrival (traffic-snapshot hook).
    """
    shape = tuple(int(s) for s in shape)
    out = LifetimeOutcome(lifetime=0, steps=0, category="ok", failed=False)
    for ev in timeline_for(spec).events(shape, rng):
        if spec.max_steps is not None and ev.step >= spec.max_steps:
            break
        out.steps = ev.step + 1
        if ev.kind == "repair":
            on_repair(ev.node)
            out.repaired += 1
            continue
        try:
            action = on_fault(ev.node)
        except ReconstructionError as exc:
            out.failed = True
            out.category = exc.category
            return out
        if action == "masked":
            out.masked += 1
        else:
            out.replaced += 1
        out.lifetime += 1
        if observer is not None:
            observer(out.lifetime)
    if not out.failed and spec.timeline in ("bernoulli", "burst"):
        # Step-driven kinds span exactly max_steps steps; trailing
        # arrival-free steps are consumed even though they emit no events.
        out.steps = spec.max_steps
    return out


def run_timeline(
    spec: LifetimeSpec,
    shape: Sequence[int],
    rng: np.random.Generator,
    recover: Callable[[np.ndarray], object],
) -> LifetimeOutcome:
    """Generic (full-recompute) lifetime driver.

    Feeds the spec's timeline into a boolean fault array over ``shape``
    and calls ``recover(faults)`` after every *new* fault (arrivals on
    already-faulty nodes are redundant and counted as masked; repairs
    clear the bit without a recompute — a recovery valid for a fault
    superset stays valid).  Returns the first-failure record.  This is the
    reference semantics that incremental drivers must reproduce.
    """
    shape = tuple(int(s) for s in shape)
    faults = np.zeros(shape, dtype=bool)
    flat = faults.ravel()

    def on_fault(node: int) -> str:
        if flat[node]:
            return "masked"
        flat[node] = True
        recover(faults)  # raises ReconstructionError on death
        return "replaced"

    def on_repair(node: int) -> None:
        flat[node] = False

    return drive_timeline(spec, shape, rng, on_fault=on_fault, on_repair=on_repair)
