"""Declarative experiments over registered constructions, serial or parallel.

An :class:`ExperimentSpec` names a construction (registry key + factory
params), a grid of :class:`~repro.api.protocol.FaultSpec` points, a trial
count and a seed origin.  An :class:`ExperimentRunner` executes the spec —
with a ``multiprocessing`` pool when ``workers > 1`` — and returns an
:class:`ExperimentResult` holding one merged
:class:`~repro.analysis.montecarlo.MCResult` per grid point.

Determinism contract
--------------------
Trial ``i`` of every grid point always runs with seed ``seed0 + i`` and
each construction's own seed-tree keying, so results are a pure function
of the spec.  Work is split into fixed-size seed chunks *independently of
the worker count* and merged in chunk order in the parent process;
``ExperimentRunner(workers=1)`` and ``workers=N`` therefore produce
byte-identical JSON (asserted by tests/test_api.py).

Execution backends are an orthogonal, *non-spec* choice: when the
registered construction advertises the batch capability for a grid point
(``supports_batch``/``run_batch``, see docs/fastpath.md), each seed chunk
runs through the vectorized backend instead of the per-trial loop.  Batch
dispatch never changes results — ``run_batch`` returns identical outcome
sequences by contract — so batch and per-trial runs of the same spec also
serialise byte-identically (asserted by tests/test_fastpath.py and the CI
smoke job).
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.montecarlo import MCResult, MonteCarlo, aggregate_outcomes
from repro.api.lifetime import LifetimeResult, aggregate_lifetimes
from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec
from repro.api.traffic import TrafficResult, aggregate_traffic

__all__ = ["ExperimentResult", "ExperimentRunner", "ExperimentSpec", "PointResult"]

RESULT_FORMAT = "repro-experiment-v1"

logger = logging.getLogger(__name__)

#: Seeds per work unit.  Part of the determinism contract: changing it can
#: move float rounding in the merged ``mean_faults`` by an ulp, so it is a
#: spec-level field with a fixed default, never derived from ``workers``.
DEFAULT_CHUNK_SIZE = 16


def _point_from_dict(d: dict) -> "FaultSpec | LifetimeSpec | TrafficSpec":
    """Rebuild a grid point; ``timeline`` discriminates lifetime points and
    ``injection`` traffic points (neither key exists on the other kinds)."""
    if "timeline" in d:
        return LifetimeSpec.from_dict(d)
    if "injection" in d:
        return TrafficSpec.from_dict(d)
    return FaultSpec.from_dict(d)


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serialisable description of one experiment.

    Grid points may be :class:`FaultSpec`\\ s (one-shot trials aggregated
    into ``MCResult``), :class:`LifetimeSpec`\\ s (fault-arrival timelines
    aggregated into :class:`~repro.api.lifetime.LifetimeResult`) or
    :class:`TrafficSpec`\\ s (guest-torus workloads aggregated into
    :class:`~repro.api.traffic.TrafficResult`); the runner dispatches per
    point, and all kinds obey the same determinism contract.
    """

    construction: str
    params: Mapping = field(default_factory=dict)
    grid: tuple["FaultSpec | LifetimeSpec | TrafficSpec", ...] = ()
    trials: int = 10
    seed0: int = 0
    name: str = ""
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if not self.grid:
            raise ValueError("grid must contain at least one FaultSpec")
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "grid", tuple(self.grid))

    @classmethod
    def from_grid(
        cls,
        construction: str,
        params: Mapping | None = None,
        *,
        p_values: Sequence[float] = (),
        q: float = 0.0,
        patterns: Sequence[str] = (),
        k: int | None = None,
        lifetimes: "Sequence[LifetimeSpec]" = (),
        traffic: "Sequence[TrafficSpec]" = (),
        trials: int = 10,
        seed0: int = 0,
        name: str = "",
    ) -> "ExperimentSpec":
        """Build the fault grid from value lists.

        ``patterns`` yields adversarial points (budget ``k``); ``p_values``
        yields Bernoulli points at edge-fault rate ``q``; ``lifetimes``
        appends timeline points and ``traffic`` workload points.  Any
        combination may be given (patterns, then probabilities, then
        lifetimes, then traffic).
        """
        grid: list = [FaultSpec(pattern=pat, k=k) for pat in patterns]
        grid += [FaultSpec(p=float(p), q=q) for p in p_values]
        grid += list(lifetimes)
        grid += list(traffic)
        return cls(
            construction=construction,
            params=dict(params or {}),
            grid=tuple(grid),
            trials=trials,
            seed0=seed0,
            name=name,
        )

    def to_dict(self) -> dict:
        return {
            "construction": self.construction,
            "params": dict(self.params),
            "grid": [fs.to_dict() for fs in self.grid],
            "trials": self.trials,
            "seed0": self.seed0,
            "name": self.name,
            "chunk_size": self.chunk_size,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        return cls(
            construction=d["construction"],
            params=dict(d.get("params", {})),
            grid=tuple(_point_from_dict(fs) for fs in d["grid"]),
            trials=int(d["trials"]),
            seed0=int(d.get("seed0", 0)),
            name=d.get("name", ""),
            chunk_size=int(d.get("chunk_size", DEFAULT_CHUNK_SIZE)),
        )


@dataclass
class PointResult:
    """Merged outcome of one grid point (fault, lifetime or traffic)."""

    fault_spec: "FaultSpec | LifetimeSpec | TrafficSpec"
    result: "MCResult | LifetimeResult | TrafficResult"

    def to_dict(self) -> dict:
        if isinstance(self.fault_spec, LifetimeSpec):
            return {
                "lifetime_spec": self.fault_spec.to_dict(),
                "result": self.result.to_dict(),
            }
        if isinstance(self.fault_spec, TrafficSpec):
            return {
                "traffic_spec": self.fault_spec.to_dict(),
                "result": self.result.to_dict(),
            }
        return {"fault_spec": self.fault_spec.to_dict(), "result": self.result.to_dict()}

    @classmethod
    def from_dict(cls, d: dict) -> "PointResult":
        if "lifetime_spec" in d:
            return cls(
                fault_spec=LifetimeSpec.from_dict(d["lifetime_spec"]),
                result=LifetimeResult.from_dict(d["result"]),
            )
        if "traffic_spec" in d:
            return cls(
                fault_spec=TrafficSpec.from_dict(d["traffic_spec"]),
                result=TrafficResult.from_dict(d["result"]),
            )
        return cls(
            fault_spec=FaultSpec.from_dict(d["fault_spec"]),
            result=MCResult.from_dict(d["result"]),
        )


@dataclass
class ExperimentResult:
    """All grid points of one executed spec (timing kept out of the JSON so
    serial and parallel runs of the same spec serialise identically)."""

    spec: ExperimentSpec
    points: list[PointResult]
    elapsed: float = 0.0

    def __getitem__(self, label: str) -> MCResult:
        for pt in self.points:
            if pt.fault_spec.label() == label:
                return pt.result
        raise KeyError(label)

    def to_dict(self) -> dict:
        return {
            "format": RESULT_FORMAT,
            "spec": self.spec.to_dict(),
            "points": [pt.to_dict() for pt in self.points],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentResult":
        if d.get("format") != RESULT_FORMAT:
            raise ValueError(f"unrecognised result format {d.get('format')!r}")
        return cls(
            spec=ExperimentSpec.from_dict(d["spec"]),
            points=[PointResult.from_dict(pt) for pt in d["points"]],
        )

    def save(self, path) -> None:
        from repro.util.serialization import save_json

        save_json(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "ExperimentResult":
        from repro.util.serialization import load_json

        return cls.from_dict(load_json(path))

    def summary(self) -> str:
        head = self.spec.name or self.spec.construction
        lines = [f"{head}: {self.spec.trials} trials/point ({self.elapsed:.2f}s)"]
        for pt in self.points:
            lines.append(f"  {pt.fault_spec.label():24s} {pt.result.summary()}")
        return "\n".join(lines)


# -- worker plumbing ---------------------------------------------------------

#: Per-process construction cache: building a host (graph geometry, tile
#: grids) dwarfs a single trial, and every chunk of the same spec reuses it.
#: Bounded LRU so long-lived processes sweeping many parameterisations don't
#: accumulate one materialised host per distinct key forever.
_CONSTRUCTION_CACHE: OrderedDict = OrderedDict()
_CONSTRUCTION_CACHE_MAX = 8


def _cached_construction(name: str, params_items: tuple):
    from repro.api.registry import get

    key = (name, params_items)
    if key in _CONSTRUCTION_CACHE:
        _CONSTRUCTION_CACHE.move_to_end(key)
    else:
        _CONSTRUCTION_CACHE[key] = get(name, **dict(params_items))
        while len(_CONSTRUCTION_CACHE) > _CONSTRUCTION_CACHE_MAX:
            _CONSTRUCTION_CACHE.popitem(last=False)
    return _CONSTRUCTION_CACHE[key]


def _run_chunk(task: tuple) -> dict:
    """One work unit: ``count`` trials of one grid point, as an MCResult dict.

    Takes/returns plain picklable types so it crosses process boundaries.
    ``backend`` is the resolved kernel tier (``"scalar"`` forces the
    per-trial loop; ``"batch"``/``"compiled"`` dispatch to the
    construction's vectorized kernels when advertised for the point,
    falling back per-trial otherwise); outcomes are identical on every
    tier (the batch contract), so the choice never reaches the JSON.
    ``max_batch_bytes`` (when set) bounds the kernels' resident fault
    stacks, and the ``tier`` kwarg rides along only on the compiled tier
    — both passed only when explicit so duck-typed constructions without
    the parameters keep working.
    """
    name, params_items, fault_spec_dict, seed_start, count, backend, mbb = task
    use_batch = backend != "scalar"
    kw = {} if mbb is None else {"max_batch_bytes": mbb}
    if backend == "compiled":
        kw["tier"] = "compiled"
    construction = _cached_construction(name, params_items)
    point = _point_from_dict(fault_spec_dict)
    seeds = list(range(seed_start, seed_start + count))
    if isinstance(point, LifetimeSpec):
        lifetime_trial = getattr(construction, "lifetime_trial", None)
        if lifetime_trial is None:
            raise TypeError(f"construction {name!r} has no lifetime capability")
        if use_batch:
            run_lb = getattr(construction, "run_lifetime_batch", None)
            supports_lb = getattr(construction, "supports_lifetime_batch", None)
            if run_lb is not None and (supports_lb is None or supports_lb(point)):
                return aggregate_lifetimes(run_lb(point, seeds, **kw)).to_dict()
        return aggregate_lifetimes(lifetime_trial(point, s) for s in seeds).to_dict()
    if isinstance(point, TrafficSpec):
        traffic_trial = getattr(construction, "traffic_trial", None)
        if traffic_trial is None:
            raise TypeError(f"construction {name!r} has no traffic capability")
        if use_batch:
            run_tb = getattr(construction, "run_traffic_batch", None)
            supports_tb = getattr(construction, "supports_traffic_batch", None)
            if run_tb is not None and (supports_tb is None or supports_tb(point)):
                return aggregate_traffic(run_tb(point, seeds, **kw)).to_dict()
        return aggregate_traffic(traffic_trial(point, s) for s in seeds).to_dict()
    if use_batch:
        run_batch = getattr(construction, "run_batch", None)
        supports = getattr(construction, "supports_batch", None)
        if run_batch is not None and (supports is None or supports(point)):
            outcomes = run_batch(point, seeds, **kw)
            return aggregate_outcomes(outcomes).to_dict()
    mc = MonteCarlo(lambda seed: construction.trial(point, seed))
    return mc.run(count, seed0=seed_start).to_dict()


def _run_chunk_indexed(item: tuple) -> tuple:
    """Pool envelope around :func:`_run_chunk`: carries the chunk's grid
    coordinates through ``imap_unordered`` (which drops input ordering)
    and drains the worker's peak-buffer gauge for progress telemetry."""
    point_idx, chunk_idx, task = item
    result = _run_chunk(task)
    from repro.fastpath.streaming import take_peak_bytes

    return point_idx, chunk_idx, result, take_peak_bytes()


def _result_class(fs) -> type:
    if isinstance(fs, LifetimeSpec):
        return LifetimeResult
    if isinstance(fs, TrafficSpec):
        return TrafficResult
    return MCResult


class _PointFold:
    """Incremental chunk-order merge state for one grid point.

    Chunks may *arrive* in any order (``imap_unordered``, resumed
    journals); they are *folded* strictly in chunk order through the
    result class's merge accumulator — the same operation sequence as
    the one-shot ``merged()`` — with out-of-order arrivals parked in a
    small pending dict until their turn.  Only raw dicts ahead of the
    fold frontier are ever buffered, so parent memory stays O(pending),
    not O(trials).
    """

    def __init__(self, fault_spec) -> None:
        self.fault_spec = fault_spec
        self.res_cls = _result_class(fault_spec)
        self._merge = self.res_cls.merger()
        self._next = 0
        self._pending: dict[int, dict] = {}

    def add(self, chunk_idx: int, result_dict: dict) -> None:
        self._pending[chunk_idx] = result_dict
        while self._next in self._pending:
            part = self.res_cls.from_dict(self._pending.pop(self._next))
            self._merge.add(part)
            self._next += 1

    def finish(self) -> PointResult:
        if self._pending:  # pragma: no cover - runner always drains
            raise RuntimeError(f"unmerged chunks: {sorted(self._pending)}")
        return PointResult(fault_spec=self.fault_spec, result=self._merge.finish())


class ExperimentRunner:
    """Execute :class:`ExperimentSpec`\\ s serially or on a process pool.

    ``backend`` selects the kernel tier for each seed chunk — one of
    ``"auto"`` (default: the best tier available here), ``"scalar"``
    (the per-trial reference loop everywhere), ``"batch"`` (the numpy
    kernels where a construction advertises support, per-trial
    otherwise) or ``"compiled"`` (the numba-JIT cores; requesting it
    where numba is absent raises
    :class:`~repro.errors.BackendUnavailableError` at construction, not
    mid-run — see :mod:`repro.fastpath.dispatch`).  The legacy ``batch``
    flag maps onto the same ladder (``False`` → scalar, ``True`` →
    batch, ``None`` → auto) and is mutually exclusive with ``backend``.
    Like ``workers``, the choice is a runner property, not a spec field
    — results are byte-identical on every tier.

    Execution is *streaming*: chunk tasks are generated lazily, results
    are consumed as they complete (``imap_unordered`` when pooled) and
    folded immediately into per-point merge accumulators, so the parent
    process never holds more than the out-of-order window of raw chunk
    dicts regardless of ``spec.trials``.  ``max_batch_bytes`` bounds
    each worker's resident fault-stack bytes (``None`` = the kernels'
    default budget); ``progress_interval`` throttles INFO progress lines
    (seconds between lines, ``0`` logs every chunk).  Neither changes
    results — see docs/scaling.md.

    ``run(spec, checkpoint=..., resume=...)`` adds crash tolerance: each
    completed chunk is appended to an NDJSON journal, and a resumed run
    skips journaled chunks while producing byte-identical final JSON
    (see ``repro.api.journal``).
    """

    def __init__(
        self,
        workers: int = 1,
        batch: bool | None = None,
        max_batch_bytes: int | None = None,
        progress_interval: float = 1.0,
        backend: str | None = None,
    ):
        from repro.fastpath.dispatch import resolve_backend

        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_batch_bytes is not None and max_batch_bytes < 1:
            raise ValueError("max_batch_bytes must be >= 1")
        if backend is not None and batch is not None:
            raise ValueError(
                "pass either backend= or the legacy batch= flag, not both"
            )
        if backend is None and batch is not None:
            backend = "scalar" if batch is False else "batch"
        self.workers = workers
        self.batch = batch
        # Resolved eagerly: an unavailable explicit tier must fail at
        # construction time (BackendUnavailableError), never mid-run.
        self.backend = resolve_backend(backend)
        self.max_batch_bytes = max_batch_bytes
        self.progress_interval = progress_interval

    def _iter_tasks(self, spec: ExperimentSpec, skip=frozenset()):
        """Lazily yield ``(point_idx, chunk_idx, task)`` work units.

        A generator, never a materialized list: at a million trials the
        task list itself would be memory the streaming contract promises
        not to spend.  ``skip`` drops chunks already satisfied by a
        resumed journal.
        """
        params_items = tuple(sorted(spec.params.items()))
        backend = self.backend
        for point_idx, fs in enumerate(spec.grid):
            fsd = fs.to_dict()
            for chunk_idx, start in enumerate(range(0, spec.trials, spec.chunk_size)):
                if (point_idx, chunk_idx) in skip:
                    continue
                count = min(spec.chunk_size, spec.trials - start)
                yield (
                    point_idx,
                    chunk_idx,
                    (spec.construction, params_items, fsd, spec.seed0 + start,
                     count, backend, self.max_batch_bytes),
                )

    def run(
        self,
        spec: ExperimentSpec,
        *,
        checkpoint=None,
        resume: bool = False,
    ) -> ExperimentResult:
        t0 = time.perf_counter()
        chunks_per_point = -(-spec.trials // spec.chunk_size)
        total = len(spec.grid) * chunks_per_point
        folds = [_PointFold(fs) for fs in spec.grid]

        journal = None
        done: dict = {}
        if checkpoint is not None:
            from repro.api.journal import ChunkJournal

            journal = ChunkJournal(checkpoint)
            done = journal.start(spec, total, resume=resume)
        elif resume:
            raise ValueError("resume requires a checkpoint path")
        # Journaled chunks fold first (sorted = chunk order per point), so
        # live results always land at or ahead of each fold frontier.
        for point_idx, chunk_idx in sorted(done):
            folds[point_idx].add(chunk_idx, done[(point_idx, chunk_idx)])

        remaining = total - len(done)
        progress = _Progress(
            total=total, already_done=len(done), spec=spec,
            interval=self.progress_interval,
        )
        try:
            if remaining:
                tasks = self._iter_tasks(spec, skip=done.keys())
                if self.workers == 1 or remaining == 1:
                    # No pool spin-up cost when it could not help.
                    results = map(_run_chunk_indexed, tasks)
                    self._consume(results, folds, journal, progress)
                else:
                    workers = min(self.workers, remaining)
                    # Dispatch in blocks to amortize IPC without letting one
                    # worker hoard the tail of the queue.
                    blk = max(1, min(16, remaining // (workers * 4)))
                    with multiprocessing.Pool(processes=workers) as pool:
                        results = pool.imap_unordered(
                            _run_chunk_indexed, tasks, chunksize=blk
                        )
                        self._consume(results, folds, journal, progress)
        finally:
            if journal is not None:
                journal.close()
        points = [fold.finish() for fold in folds]
        return ExperimentResult(spec=spec, points=points, elapsed=time.perf_counter() - t0)

    def _consume(self, results, folds, journal, progress) -> None:
        """Drain chunk results as they complete: journal, fold, report."""
        for point_idx, chunk_idx, result_dict, peak_bytes in results:
            if journal is not None:
                journal.append(point_idx, chunk_idx, result_dict)
            folds[point_idx].add(chunk_idx, result_dict)
            progress.step(int(result_dict.get("trials", 0)), peak_bytes)


class _Progress:
    """Throttled INFO progress lines for long sweeps (chunks, trials/s,
    ETA, worker peak buffer).  Silent unless the ``repro`` logger is at
    INFO (the CLI's global ``--log-level info``)."""

    def __init__(self, *, total: int, already_done: int, spec, interval: float) -> None:
        self.total = total
        self.done = already_done
        self.live = 0         # chunks completed this session
        self.trials = 0       # trials completed this session
        self.peak_bytes = 0
        self.interval = interval
        self.t0 = time.perf_counter()
        self.last = self.t0
        if already_done:
            logger.info(
                "%s: resuming — %d/%d chunks journaled", spec.name or spec.construction,
                already_done, total,
            )

    def step(self, trials: int, peak_bytes: int) -> None:
        self.done += 1
        self.live += 1
        self.trials += trials
        self.peak_bytes = max(self.peak_bytes, peak_bytes)
        now = time.perf_counter()
        if self.done < self.total and now - self.last < self.interval:
            return
        self.last = now
        if not logger.isEnabledFor(logging.INFO):
            return
        elapsed = max(now - self.t0, 1e-9)
        rate = self.trials / elapsed
        remaining = self.total - self.done
        eta = remaining * (self.trials / self.live) / max(rate, 1e-9)
        logger.info(
            "progress: %d/%d chunks (%.0f%%), %d trials, %.0f trials/s, "
            "ETA %.1fs, peak buffer %.1f MiB",
            self.done, self.total, 100.0 * self.done / self.total, self.trials,
            rate, eta, self.peak_bytes / (1024 * 1024),
        )
