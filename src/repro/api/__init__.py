"""Unified construction protocol, registry and experiment runner.

The one import surface for running experiments against any construction::

    from repro.api import ExperimentRunner, ExperimentSpec, FaultSpec, get

    c = get("dn", d=2, n=70, b=2)            # Construction protocol object
    out = c.trial(FaultSpec(pattern="random", k=8), seed=0)

    spec = ExperimentSpec.from_grid(
        "bn", {"b": 4}, p_values=[1e-3, 4e-3], trials=100, name="threshold"
    )
    result = ExperimentRunner(workers=4).run(spec)
    result.save("results.json")

Exports resolve lazily so that ``repro.api.outcome`` (imported by
``repro.core.bn`` for the backwards-compatible ``TrialOutcome`` re-export)
never drags the adapters — and hence the whole core — into a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "TrialOutcome": "repro.api.outcome",
    "BatchCapable": "repro.api.protocol",
    "Construction": "repro.api.protocol",
    "FaultSpec": "repro.api.protocol",
    "LifetimeCapable": "repro.api.protocol",
    "LifetimeSpec": "repro.api.protocol",
    "LifetimeOutcome": "repro.api.lifetime",
    "LifetimeResult": "repro.api.lifetime",
    "aggregate_lifetimes": "repro.api.lifetime",
    "TrafficCapable": "repro.api.protocol",
    "TrafficSpec": "repro.api.protocol",
    "TrafficOutcome": "repro.api.traffic",
    "TrafficResult": "repro.api.traffic",
    "aggregate_traffic": "repro.api.traffic",
    "available": "repro.api.registry",
    "get": "repro.api.registry",
    "register": "repro.api.registry",
    "ExperimentResult": "repro.api.experiment",
    "ExperimentRunner": "repro.api.experiment",
    "ExperimentSpec": "repro.api.experiment",
    "PointResult": "repro.api.experiment",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    import importlib

    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return __all__
