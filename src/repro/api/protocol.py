"""The unified ``Construction`` protocol and its fault-model spec.

Every fault-tolerant host in this library — the paper's three theorems
(``bn``, ``an``, ``dn``) and the three comparators (``alon_chung``,
``replication``, ``sparerows``) — conforms to one structural interface:

* ``name``           registry key of the construction,
* ``num_nodes``      host size (Theorem claims are about this),
* ``degree``         maximum node degree (ditto),
* ``graph()``        the materialised :class:`~repro.topology.graph.CSRGraph`
                     (cached; never required by the recovery hot paths),
* ``sample_faults``  draw a fault state for a :class:`FaultSpec` from an rng,
* ``recover``        attempt verified recovery; raises
                     :class:`~repro.errors.ReconstructionError` on failure,
* ``trial``          one seeded sample-recover-classify round returning a
                     :class:`~repro.api.outcome.TrialOutcome`.

Constructions may additionally advertise the optional *batch capability*
(:class:`BatchCapable`): ``supports_batch(spec)`` says whether a fault
point can run on the construction's vectorized backend and
``run_batch(spec, seeds)`` then returns the same ``TrialOutcome``
sequence as ``[trial(spec, s) for s in seeds]`` — identical outcomes,
not just statistically equivalent ones, so experiment JSON is
byte-identical whichever path executes (see docs/fastpath.md).  The
capability is deliberately *not* part of :class:`Construction`: the
runner probes for it with ``getattr`` and falls back per-trial.

The *lifetime capability* (:class:`LifetimeCapable`) is the third pillar:
``lifetime_trial(spec, seed)`` drives a :class:`LifetimeSpec` fault
timeline against the construction until recovery first fails, and the
optional ``supports_lifetime_batch``/``run_lifetime_batch`` pair
vectorizes whole seed chunks of lifetime trials under the same
identical-outcome contract as ``run_batch`` (see docs/lifetime.md).

The *traffic capability* (:class:`TrafficCapable`) is the fourth pillar:
``traffic_trial(spec, seed)`` routes a :class:`TrafficSpec` workload —
closed-loop batch or open-loop injection — over the torus the
construction emulates (``guest_shape``) and measures service quality,
with the optional ``supports_traffic_batch``/``run_traffic_batch`` pair
dispatching to the vectorized simulator kernel under the usual
identical-outcome contract (see docs/traffic.md).

The fault *state* passed between ``sample_faults`` and ``recover`` is
deliberately opaque (``Any``): ``B``/``D`` use boolean node arrays, ``A``
uses an :class:`~repro.core.an.AnFaultState` with lazy half-edge bits,
replication uses a per-cluster matrix.  Consumers that only run trials
never need to look inside.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.faults.registry import (
    FAULT_PATTERN_NAMES,
    TIMELINE_KINDS,
    validate_model_dict,
)

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.api.outcome import TrialOutcome
    from repro.topology.graph import CSRGraph

__all__ = [
    "BatchCapable",
    "Construction",
    "FaultSpec",
    "LifetimeCapable",
    "LifetimeSpec",
    "TrafficCapable",
    "TrafficSpec",
]


@dataclass(frozen=True)
class FaultSpec:
    """One point of a fault model.

    ``pattern == "bernoulli"`` means i.i.d. node faults at rate ``p`` with
    optional i.i.d. edge faults at rate ``q`` (folded or modelled per
    construction).  Any other pattern names an adversarial campaign from
    :data:`repro.faults.adversary.ADVERSARY_PATTERNS` with fault budget
    ``k`` (``None`` = the construction's rated budget).

    ``fault_model`` replaces the pattern machinery wholesale with a
    registered model from :mod:`repro.faults.registry`, carried as its
    serialized ``{"name": ..., **params}`` dict.  It is mutually
    exclusive with the legacy knobs (``p``/``q``/``k`` must stay at their
    defaults) and serialises only when set, so model-free spec JSON is
    byte-identical to the pre-model format.
    """

    p: float = 0.0
    q: float = 0.0
    pattern: str = "bernoulli"
    k: int | None = None
    fault_model: dict | None = None

    def __post_init__(self) -> None:
        if self.pattern not in FAULT_PATTERN_NAMES:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; options: {FAULT_PATTERN_NAMES}"
            )
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p={self.p} out of [0, 1]")
        if not (0.0 <= self.q <= 1.0):
            raise ValueError(f"q={self.q} out of [0, 1]")
        if self.k is not None and self.k < 0:
            raise ValueError(f"k={self.k} must be >= 0")
        if self.fault_model is not None:
            validate_model_dict(self.fault_model)
            if self.p or self.q or self.pattern != "bernoulli" or self.k is not None:
                raise ValueError(
                    "fault_model replaces the p/q/pattern/k knobs; leave them "
                    "at their defaults when a model is given"
                )

    @property
    def adversarial(self) -> bool:
        return self.fault_model is None and self.pattern != "bernoulli"

    def label(self) -> str:
        """Compact human/JSON-key label for tables and result files."""
        if self.fault_model is not None:
            params = [
                f"{key}={val:g}" if isinstance(val, float) else f"{key}={val}"
                for key, val in sorted(self.fault_model.items())
                if key != "name"
            ]
            return " ".join([f"model/{self.fault_model['name']}"] + params)
        if self.adversarial:
            return f"{self.pattern}" + (f"/k={self.k}" if self.k is not None else "")
        parts = [f"p={self.p:g}"]
        if self.q:
            parts.append(f"q={self.q:g}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON record; ``fault_model`` serialises only when set so
        model-free result files stay byte-stable."""
        d = asdict(self)
        if self.fault_model is None:
            del d["fault_model"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(**d)


@dataclass(frozen=True)
class LifetimeSpec:
    """One point of a lifetime (fault-*arrival*) model.

    Where :class:`FaultSpec` describes a single fault draw, a
    ``LifetimeSpec`` describes an arrival process from
    :mod:`repro.faults.timeline`: ``timeline`` names the kind, ``rate`` is
    the Bernoulli per-step fault rate, ``burst`` the per-step burst size,
    ``pattern``/``k`` the adversarial campaign, ``repair_rate`` the rate
    ``rho`` at which faulty nodes are fixed, and ``max_steps`` bounds the
    stream (required for the step-driven ``bernoulli``/``burst`` kinds).
    A grid point of this type makes the runner measure *lifetimes* —
    arrivals survived before recovery first fails — instead of one-shot
    trial outcomes.

    ``fault_model`` swaps the timeline kind for a registered model's
    arrival stream (its one-shot draw delivered one node per step; see
    :class:`repro.faults.timeline.ModelTimeline`).  It composes with
    ``repair_rate`` and ``max_steps`` but is mutually exclusive with the
    kind-selecting knobs, and serialises only when set.
    """

    timeline: str = "uniform"
    rate: float = 0.0
    burst: int = 0
    pattern: str = ""
    k: int | None = None
    repair_rate: float = 0.0
    max_steps: int | None = None
    fault_model: dict | None = None

    def __post_init__(self) -> None:
        if self.timeline not in TIMELINE_KINDS:
            raise ValueError(
                f"unknown timeline {self.timeline!r}; options: {TIMELINE_KINDS}"
            )
        if self.fault_model is not None:
            validate_model_dict(self.fault_model)
            if (
                self.timeline != "uniform"
                or self.rate
                or self.burst
                or self.pattern
                or self.k is not None
            ):
                raise ValueError(
                    "fault_model replaces the timeline/rate/burst/pattern/k "
                    "knobs; leave them at their defaults when a model is given"
                )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate={self.rate} out of [0, 1]")
        if not (0.0 <= self.repair_rate <= 1.0):
            raise ValueError(f"repair_rate={self.repair_rate} out of [0, 1]")
        if self.timeline == "bernoulli" and (self.rate <= 0.0 or self.max_steps is None):
            raise ValueError("bernoulli timelines need rate > 0 and max_steps")
        if self.timeline == "burst" and (self.burst < 1 or self.max_steps is None):
            raise ValueError("burst timelines need burst >= 1 and max_steps")
        if self.timeline == "adversarial" and not self.pattern:
            raise ValueError("adversarial timelines need a pattern")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")

    def label(self) -> str:
        """Compact human/JSON-key label for tables and result files."""
        if self.fault_model is not None:
            parts = [f"life/model/{self.fault_model['name']}"]
        else:
            parts = [f"life/{self.timeline}"]
            if self.timeline == "bernoulli":
                parts.append(f"rate={self.rate:g}")
            elif self.timeline == "burst":
                parts.append(f"burst={self.burst}")
            elif self.timeline == "adversarial":
                parts.append(
                    self.pattern + (f"/k={self.k}" if self.k is not None else "")
                )
        if self.repair_rate:
            parts.append(f"rho={self.repair_rate:g}")
        if self.max_steps is not None:
            parts.append(f"steps={self.max_steps}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON record; ``fault_model`` serialises only when set so
        model-free result files stay byte-stable."""
        d = asdict(self)
        if self.fault_model is None:
            del d["fault_model"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LifetimeSpec":
        return cls(**d)


#: Traffic patterns accepted by :class:`TrafficSpec` (mirrors
#: :data:`repro.sim.traffic.TRAFFIC_PATTERNS`; kept literal so this module
#: stays import-light).
_TRAFFIC_PATTERNS = ("uniform", "transpose", "neighbor", "hotspot", "bitreverse")

#: Injection processes accepted by :class:`TrafficSpec`: ``batch`` is the
#: closed loop (all ``messages`` at cycle 0); the open-loop kinds mirror
#: :data:`repro.sim.workload.INJECTIONS`.
_INJECTIONS = ("batch", "bernoulli", "periodic")

#: Routers accepted by :class:`TrafficSpec` (mirrors
#: :data:`repro.sim.routing.ROUTERS`; kept literal so this module stays
#: import-light).
_TRAFFIC_ROUTERS = ("dimension", "adaptive")

#: QoS class-count ceiling: class 0 (highest priority) .. 2.
_MAX_QOS_CLASSES = 3


@dataclass(frozen=True)
class TrafficSpec:
    """One point of a traffic (service-measurement) model.

    Where :class:`FaultSpec` asks "does recovery succeed" and
    :class:`LifetimeSpec` asks "how long until it fails", a
    ``TrafficSpec`` asks "how well does the guest torus *serve its
    workload*" — the paper's whole motivation.  ``pattern`` names a
    workload from :data:`repro.sim.traffic.TRAFFIC_PATTERNS`;
    ``injection`` selects the model:

    * ``"batch"`` — closed loop: exactly ``messages`` messages injected
      at cycle 0 and drained (``rate``/``cycles``/``warmup`` unused);
    * ``"bernoulli"`` / ``"periodic"`` — open loop: every node injects at
      per-cycle rate ``rate`` over a horizon of ``cycles`` cycles, and
      statistics are measured over messages injected at or after
      ``warmup`` (see :mod:`repro.sim.workload`).

    ``max_cycles`` bounds the simulation either way; messages still
    undelivered then are reported as ``timed_out``, never dropped
    silently.  A grid point of this type makes the runner measure
    :class:`~repro.api.traffic.TrafficOutcome`\\ s on the construction's
    guest torus.

    ``router`` selects the routing algorithm (``"dimension"`` static
    e-cube, ``"adaptive"`` fault-aware detours — identical on fault-free
    guests; see docs/routing.md), ``qos_classes`` the number of traffic
    priority classes (1–3; messages are assigned round-robin by id,
    class 0 highest priority), and ``credits`` the per-class credit pool
    of the flow-control gate (0 = unlimited, the historical behaviour).
    The three fields serialise only when non-default, so existing result
    JSON is unchanged byte for byte.

    ``fault_model`` runs the workload over a *perturbed* guest: a
    registered model (dict form) is sampled per trial, and its declared
    behavior decides the semantics — ``crash`` faults become node/edge
    health predicates for the routers, ``byzantine`` nodes stay up but
    misroute/drop/corrupt traversing messages per the model's mix (see
    docs/faults.md).  It composes freely with the router/QoS knobs and
    serialises only when set.
    """

    pattern: str = "uniform"
    messages: int = 200
    injection: str = "batch"
    rate: float = 0.0
    cycles: int = 0
    warmup: int = 0
    max_cycles: int = 10_000
    router: str = "dimension"
    qos_classes: int = 1
    credits: int = 0
    fault_model: dict | None = None

    def __post_init__(self) -> None:
        if self.fault_model is not None:
            validate_model_dict(self.fault_model)
        if self.pattern not in _TRAFFIC_PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; options: {_TRAFFIC_PATTERNS}"
            )
        if self.injection not in _INJECTIONS:
            raise ValueError(
                f"unknown injection {self.injection!r}; options: {_INJECTIONS}"
            )
        if self.router not in _TRAFFIC_ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; options: {_TRAFFIC_ROUTERS}"
            )
        if not (1 <= self.qos_classes <= _MAX_QOS_CLASSES):
            raise ValueError(
                f"qos_classes={self.qos_classes} out of [1, {_MAX_QOS_CLASSES}]"
            )
        if self.credits < 0:
            raise ValueError(f"credits={self.credits} must be >= 0 (0 = unlimited)")
        if self.injection == "batch":
            if self.messages < 1:
                raise ValueError("batch injection needs messages >= 1")
        else:
            if not (0.0 < self.rate <= 1.0):
                raise ValueError(f"open-loop rate={self.rate} out of (0, 1]")
            if self.cycles < 1:
                raise ValueError("open-loop injection needs cycles >= 1")
            if not (0 <= self.warmup < self.cycles):
                raise ValueError(
                    f"warmup={self.warmup} must lie in [0, cycles={self.cycles})"
                )
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")

    @property
    def open_loop(self) -> bool:
        return self.injection != "batch"

    def label(self) -> str:
        """Compact human/JSON-key label for tables and result files."""
        parts = [f"traffic/{self.pattern}"]
        if self.open_loop:
            parts.append(f"{self.injection} rate={self.rate:g}")
            parts.append(f"cycles={self.cycles}")
        else:
            parts.append(f"m={self.messages}")
        if self.router != "dimension":
            parts.append(self.router)
        if self.qos_classes > 1:
            parts.append(f"qos={self.qos_classes}")
        if self.credits:
            parts.append(f"credits={self.credits}")
        if self.fault_model is not None:
            parts.append(f"model={self.fault_model['name']}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON record; the PR-7 fields and ``fault_model`` serialise only
        when non-default so result files written before routers/QoS/models
        existed stay byte-stable."""
        d = asdict(self)
        if self.router == "dimension":
            del d["router"]
        if self.qos_classes == 1:
            del d["qos_classes"]
        if not self.credits:
            del d["credits"]
        if self.fault_model is None:
            del d["fault_model"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TrafficSpec":
        return cls(**d)


@runtime_checkable
class Construction(Protocol):
    """Structural interface shared by all six registered constructions."""

    name: str

    @property
    def num_nodes(self) -> int: ...

    @property
    def degree(self) -> int: ...

    def graph(self) -> "CSRGraph": ...

    def sample_faults(self, spec: FaultSpec, rng: "np.random.Generator") -> Any: ...

    def recover(self, faults: Any) -> Any: ...

    def trial(self, spec: FaultSpec, seed: int) -> "TrialOutcome": ...


@runtime_checkable
class BatchCapable(Protocol):
    """Optional vectorized-backend capability of a construction.

    ``run_batch`` must return *identical* outcomes to the per-trial loop
    for the same seeds whenever ``supports_batch`` approved the spec; it
    may delegate individual hard trials back to ``trial`` to keep that
    guarantee.

    Implementations may accept an optional keyword ``tier`` (``"batch"``
    default, ``"compiled"`` for the JIT cores — see
    :mod:`repro.fastpath.dispatch`); the runner passes it only when the
    compiled tier was resolved, and outcomes are tier-independent under
    the same identity contract.  The same convention applies to
    ``run_lifetime_batch`` and ``run_traffic_batch``.
    """

    def supports_batch(self, spec: FaultSpec) -> bool: ...

    def run_batch(self, spec: FaultSpec, seeds: "list[int]") -> "list[TrialOutcome]": ...


@runtime_checkable
class LifetimeCapable(Protocol):
    """Optional lifetime capability of a construction.

    ``lifetime_trial`` runs one seeded fault-arrival timeline to first
    recovery failure and returns a
    :class:`~repro.api.lifetime.LifetimeOutcome`.  Constructions may
    additionally expose the batched pair
    ``supports_lifetime_batch``/``run_lifetime_batch`` with the same
    identical-outcome contract as :class:`BatchCapable`; the runner probes
    for all three with ``getattr`` exactly as it does for batch trials.
    """

    def lifetime_trial(self, spec: LifetimeSpec, seed: int): ...


@runtime_checkable
class TrafficCapable(Protocol):
    """Optional traffic capability of a construction.

    ``guest_shape`` is the torus the construction emulates (what its
    recovery hands back to the workload); ``traffic_trial`` runs one
    seeded :class:`TrafficSpec` workload on it and returns a
    :class:`~repro.api.traffic.TrafficOutcome`.  Constructions may
    additionally expose ``supports_traffic_batch``/``run_traffic_batch``
    with the same identical-outcome contract as :class:`BatchCapable`
    (the batched path swaps the scalar engine for the vectorized kernel
    of :mod:`repro.fastpath.traffic_batch`; workload generation is
    shared).  The runner probes with ``getattr`` exactly as for the other
    capabilities; hosts without a torus guest (the expander path) simply
    don't expose it.
    """

    def guest_shape(self) -> tuple: ...

    def traffic_trial(self, spec: TrafficSpec, seed: int): ...
