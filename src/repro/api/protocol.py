"""The unified ``Construction`` protocol and its fault-model spec.

Every fault-tolerant host in this library — the paper's three theorems
(``bn``, ``an``, ``dn``) and the three comparators (``alon_chung``,
``replication``, ``sparerows``) — conforms to one structural interface:

* ``name``           registry key of the construction,
* ``num_nodes``      host size (Theorem claims are about this),
* ``degree``         maximum node degree (ditto),
* ``graph()``        the materialised :class:`~repro.topology.graph.CSRGraph`
                     (cached; never required by the recovery hot paths),
* ``sample_faults``  draw a fault state for a :class:`FaultSpec` from an rng,
* ``recover``        attempt verified recovery; raises
                     :class:`~repro.errors.ReconstructionError` on failure,
* ``trial``          one seeded sample-recover-classify round returning a
                     :class:`~repro.api.outcome.TrialOutcome`.

Constructions may additionally advertise the optional *batch capability*
(:class:`BatchCapable`): ``supports_batch(spec)`` says whether a fault
point can run on the construction's vectorized backend and
``run_batch(spec, seeds)`` then returns the same ``TrialOutcome``
sequence as ``[trial(spec, s) for s in seeds]`` — identical outcomes,
not just statistically equivalent ones, so experiment JSON is
byte-identical whichever path executes (see docs/fastpath.md).  The
capability is deliberately *not* part of :class:`Construction`: the
runner probes for it with ``getattr`` and falls back per-trial.

The fault *state* passed between ``sample_faults`` and ``recover`` is
deliberately opaque (``Any``): ``B``/``D`` use boolean node arrays, ``A``
uses an :class:`~repro.core.an.AnFaultState` with lazy half-edge bits,
replication uses a per-cluster matrix.  Consumers that only run trials
never need to look inside.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.api.outcome import TrialOutcome
    from repro.topology.graph import CSRGraph

__all__ = ["BatchCapable", "Construction", "FaultSpec"]


@dataclass(frozen=True)
class FaultSpec:
    """One point of a fault model.

    ``pattern == "bernoulli"`` means i.i.d. node faults at rate ``p`` with
    optional i.i.d. edge faults at rate ``q`` (folded or modelled per
    construction).  Any other pattern names an adversarial campaign from
    :data:`repro.faults.adversary.ADVERSARY_PATTERNS` with fault budget
    ``k`` (``None`` = the construction's rated budget).
    """

    p: float = 0.0
    q: float = 0.0
    pattern: str = "bernoulli"
    k: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p={self.p} out of [0, 1]")
        if not (0.0 <= self.q <= 1.0):
            raise ValueError(f"q={self.q} out of [0, 1]")
        if self.k is not None and self.k < 0:
            raise ValueError(f"k={self.k} must be >= 0")

    @property
    def adversarial(self) -> bool:
        return self.pattern != "bernoulli"

    def label(self) -> str:
        """Compact human/JSON-key label for tables and result files."""
        if self.adversarial:
            return f"{self.pattern}" + (f"/k={self.k}" if self.k is not None else "")
        parts = [f"p={self.p:g}"]
        if self.q:
            parts.append(f"q={self.q:g}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(**d)


@runtime_checkable
class Construction(Protocol):
    """Structural interface shared by all six registered constructions."""

    name: str

    @property
    def num_nodes(self) -> int: ...

    @property
    def degree(self) -> int: ...

    def graph(self) -> "CSRGraph": ...

    def sample_faults(self, spec: FaultSpec, rng: "np.random.Generator") -> Any: ...

    def recover(self, faults: Any) -> Any: ...

    def trial(self, spec: FaultSpec, seed: int) -> "TrialOutcome": ...


@runtime_checkable
class BatchCapable(Protocol):
    """Optional vectorized-backend capability of a construction.

    ``run_batch`` must return *identical* outcomes to the per-trial loop
    for the same seeds whenever ``supports_batch`` approved the spec; it
    may delegate individual hard trials back to ``trial`` to keep that
    guarantee.
    """

    def supports_batch(self, spec: FaultSpec) -> bool: ...

    def run_batch(self, spec: FaultSpec, seeds: "list[int]") -> "list[TrialOutcome]": ...
