"""String-keyed registry of :class:`~repro.api.protocol.Construction` factories.

>>> from repro.api import get, available
>>> sorted(available())[:3]
['alon_chung', 'an', 'bn']
>>> c = get("dn", d=2, n=70, b=2)
>>> c.degree
8

Factories are registered by :mod:`repro.api.adapters` at import time; the
registry lazily imports it so that ``repro.api`` stays cheap to import.
"""

from __future__ import annotations

from typing import Callable

from repro.api.protocol import Construction

__all__ = ["available", "get", "register"]

_REGISTRY: dict[str, Callable[..., Construction]] = {}


def register(name: str) -> Callable:
    """Decorator: register ``factory`` under ``name`` (kwargs-only factory)."""

    def deco(factory: Callable[..., Construction]) -> Callable[..., Construction]:
        if name in _REGISTRY:
            raise ValueError(f"construction {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return deco


def _ensure_loaded() -> None:
    from repro.api import adapters  # noqa: F401 - registration side effect


def available() -> tuple[str, ...]:
    """All registered construction names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def get(name: str, **params) -> Construction:
    """Instantiate the construction registered under ``name``."""
    _ensure_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown construction {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory(**params)
