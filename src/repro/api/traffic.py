"""Traffic trial outcomes, their aggregate, and the shared trial driver.

A *traffic trial* measures service quality of the guest torus a
construction emulates: one seeded workload (closed-loop batch or
open-loop injection schedule, see :class:`~repro.api.protocol.TrafficSpec`)
is routed through the store-and-forward simulator and summarised.
:class:`TrafficOutcome` is the per-trial record (the analogue of
:class:`~repro.api.outcome.TrialOutcome`); :class:`TrafficResult` the
per-grid-point aggregate (the analogue of
:class:`~repro.analysis.montecarlo.MCResult`), obeying the same
determinism contract: per-trial outcomes are kept in seed order, chunk
merges concatenate in chunk order, and ``to_dict`` is JSON-stable — so
serial, parallel and batched experiment runs serialise byte-identically.

:func:`run_traffic_trial` is the single driver both execution paths
share: the scalar path runs it with the reference engine
(:func:`repro.sim.engine.simulate`), the batched path with the vectorized
kernel (:func:`repro.fastpath.traffic_batch.simulate_batch`).  Workload
generation — and with it the RNG stream — is common, and the two engines
return identical ``SimResult``\\ s, so the outcomes are identical by
construction, never just statistically equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.protocol import TrafficSpec
from repro.sim.engine import SimResult, simulate
from repro.sim.traffic import make_traffic
from repro.sim.workload import make_open_loop, open_loop_stats
from repro.util.rng import spawn_rng

__all__ = [
    "TrafficMerge",
    "TrafficOutcome",
    "TrafficResult",
    "aggregate_traffic",
    "message_classes",
    "run_traffic_trial",
]


def message_classes(count: int, qos_classes: int) -> np.ndarray | None:
    """Deterministic per-message QoS class assignment (``None`` = single class).

    Messages are assigned round-robin by message id (``i % qos_classes``),
    so every class sees the same spatial/temporal mix of the workload and
    the assignment is identical across engines and worker counts.  Class
    0 is the highest priority.
    """
    if qos_classes <= 1:
        return None
    return np.arange(count, dtype=np.int64) % int(qos_classes)


@dataclass
class TrafficOutcome:
    """Result of one seeded traffic workload on a guest torus."""

    #: Messages presented to the network (exactly the spec's count for
    #: closed-loop runs; open-loop runs count messages inside the
    #: measurement window).
    offered: int
    delivered: int
    timed_out: int
    cycles: int
    max_queue: int
    throughput: float
    mean_latency: float
    p50: float
    p99: float
    max_latency: float
    #: Messages refused by the router (no healthy route on the live fault
    #: graph).  Always 0 on pristine guest tori — serialised only when
    #: nonzero, so pre-router result JSON is unchanged.
    undeliverable: int = 0
    #: Delivery-integrity counts under a Byzantine fault model (see
    #: :class:`~repro.sim.routing.ByzantinePlan`): trial-wide totals,
    #: whatever the measurement window.  All zero without a model, and
    #: then omitted from JSON so pre-model result files are unchanged.
    dropped: int = 0
    corrupted: int = 0
    misrouted: int = 0
    #: Per-QoS-class rows (:func:`repro.sim.metrics.per_class_stats`);
    #: ``None`` for single-class runs and then omitted from JSON.
    per_class: list | None = None

    def to_dict(self) -> dict:
        """JSON-stable per-trial record (floats kept exact, not rounded)."""
        out = {
            "offered": self.offered,
            "delivered": self.delivered,
            "timed_out": self.timed_out,
            "cycles": self.cycles,
            "max_queue": self.max_queue,
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "p50": self.p50,
            "p99": self.p99,
            "max_latency": self.max_latency,
        }
        if self.undeliverable:
            out["undeliverable"] = self.undeliverable
        for key in ("dropped", "corrupted", "misrouted"):
            if getattr(self, key):
                out[key] = getattr(self, key)
        if self.per_class is not None:
            out["per_class"] = self.per_class
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "TrafficOutcome":
        return cls(
            offered=int(d["offered"]),
            delivered=int(d["delivered"]),
            timed_out=int(d["timed_out"]),
            cycles=int(d["cycles"]),
            max_queue=int(d["max_queue"]),
            throughput=float(d["throughput"]),
            mean_latency=float(d["mean_latency"]),
            p50=float(d["p50"]),
            p99=float(d["p99"]),
            max_latency=float(d["max_latency"]),
            undeliverable=int(d.get("undeliverable", 0)),
            dropped=int(d.get("dropped", 0)),
            corrupted=int(d.get("corrupted", 0)),
            misrouted=int(d.get("misrouted", 0)),
            per_class=d.get("per_class"),
        )


@dataclass
class TrafficResult:
    """Aggregated traffic outcomes of one grid point.

    ``outcomes`` stays in seed order and merges concatenate parts in chunk
    order — the property that keeps serial, parallel and batched runs of
    the same spec byte-identical (like
    :class:`~repro.api.lifetime.LifetimeResult`, summary statistics are
    recomputed from the per-trial records, never accumulated).
    """

    trials: int
    outcomes: list[TrafficOutcome] = field(default_factory=list)

    # -- summary statistics --------------------------------------------------

    @property
    def delivered_fraction(self) -> float:
        offered = sum(o.offered for o in self.outcomes)
        return sum(o.delivered for o in self.outcomes) / offered if offered else 1.0

    @property
    def mean_throughput(self) -> float:
        if not self.outcomes:
            return float("nan")
        return float(np.mean([o.throughput for o in self.outcomes]))

    @property
    def mean_latency(self) -> float:
        lats = [o.mean_latency for o in self.outcomes if not np.isnan(o.mean_latency)]
        return float(np.mean(lats)) if lats else float("nan")

    @property
    def worst_p99(self) -> float:
        p99s = [o.p99 for o in self.outcomes if not np.isnan(o.p99)]
        return float(np.max(p99s)) if p99s else float("nan")

    def summary(self) -> str:
        parts = [
            f"{self.trials} runs: delivered {self.delivered_fraction:.1%}, "
            f"thpt={self.mean_throughput:.3g}/cyc, "
            f"lat mean={self.mean_latency:.3g} p99<={self.worst_p99:g}"
        ]
        dropped = sum(o.timed_out for o in self.outcomes)
        if dropped:
            parts.append(f"timed_out={dropped}")
        return "; ".join(parts)

    # -- persistence / merging ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-stable representation (see docs/results-format.md)."""
        return {
            "kind": "traffic",
            "trials": self.trials,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TrafficResult":
        return cls(
            trials=int(d["trials"]),
            outcomes=[TrafficOutcome.from_dict(o) for o in d.get("outcomes", [])],
        )

    @classmethod
    def merger(cls) -> "TrafficMerge":
        """Incremental accumulator equivalent to :meth:`merged` (shared by
        the streaming experiment runner; see ``MCResult.merger``)."""
        return TrafficMerge(cls)

    @classmethod
    def merged(cls, parts: Sequence["TrafficResult"]) -> "TrafficResult":
        """Concatenate disjoint trial batches in the order given."""
        merge = cls.merger()
        for part in parts:
            merge.add(part)
        return merge.finish()


class TrafficMerge:
    """Incremental :meth:`TrafficResult.merged` — pure concatenation, so
    chunk-order folding is trivially identical to the one-shot merge."""

    def __init__(self, cls: type = None) -> None:
        self._out = (cls or TrafficResult)(trials=0)

    def add(self, part: "TrafficResult") -> None:
        self._out.trials += part.trials
        self._out.outcomes.extend(part.outcomes)

    def finish(self) -> "TrafficResult":
        return self._out


def aggregate_traffic(outcomes: Iterable[TrafficOutcome]) -> TrafficResult:
    """Fold a stream of traffic outcomes into one :class:`TrafficResult`."""
    res = TrafficResult(trials=0)
    for out in outcomes:
        res.trials += 1
        res.outcomes.append(out)
    return res


def traffic_rng(spec: TrafficSpec, seed: int) -> np.random.Generator:
    """The trial's generator, keyed by every workload-shaping spec field."""
    return spawn_rng(
        seed, "traffic", spec.pattern, spec.injection,
        f"{spec.rate:g}", spec.messages, spec.cycles,
    )


def _model_sim_kwargs(shape, spec: TrafficSpec, seed: int) -> dict:
    """Engine kwargs a spec's fault model adds to the trial.

    The model draws its one-shot state from a dedicated
    ``"traffic-model"`` stream (keyed by the canonical model token), so
    the workload stream is untouched — the same messages flow over the
    perturbed guest, and model-free trials are byte-identical to the
    pre-model code.  ``crash`` models become router health predicates;
    ``byzantine`` models become a :class:`~repro.sim.routing.ByzantinePlan`
    with its own ``"traffic-byz"`` action stream.
    """
    if spec.fault_model is None:
        return {}
    from repro.faults.registry import make_fault_model, model_token
    from repro.sim.routing import ByzantinePlan, fault_predicates

    model = make_fault_model(spec.fault_model)
    token = model_token(spec.fault_model)
    mask = model.sample(tuple(shape), spawn_rng(seed, "traffic-model", token))
    if model.behavior == "byzantine":
        return {
            "byzantine": ByzantinePlan(
                mask, model.mix(), spawn_rng(seed, "traffic-byz", token)
            )
        }
    node_ok, edge_ok = fault_predicates(mask)
    return {"node_ok": node_ok, "edge_ok": edge_ok}


def run_traffic_trial(
    shape: tuple[int, ...],
    spec: TrafficSpec,
    seed: int,
    *,
    engine: Callable[..., SimResult] | None = None,
) -> TrafficOutcome:
    """One seeded traffic workload on the ``shape`` torus.

    ``engine`` selects the execution backend (default: the scalar
    reference engine); workload generation is identical either way, and
    conforming engines return identical ``SimResult``\\ s, so the outcome
    never depends on the backend.  A spec-carried fault model perturbs
    the guest per trial — crash models through the health predicates,
    Byzantine models through a route-perturbation plan (docs/faults.md).
    """
    sim = engine if engine is not None else simulate
    rng = traffic_rng(spec, seed)
    model_kwargs = _model_sim_kwargs(shape, spec, seed)
    if spec.open_loop:
        traffic, inject = make_open_loop(
            shape, spec.pattern, spec.rate, spec.cycles, rng, injection=spec.injection
        )
        classes = message_classes(len(traffic), spec.qos_classes)
        result = sim(
            shape, traffic, inject=inject, max_cycles=spec.max_cycles,
            router=spec.router, classes=classes, credits=spec.credits,
            **model_kwargs,
        )
        stats = open_loop_stats(result, inject, warmup=spec.warmup, horizon=spec.cycles)
        per_class = None
        if classes is not None:
            from repro.sim.metrics import per_class_stats

            per_class = per_class_stats(
                result, classes, measured=np.asarray(inject) >= spec.warmup
            )
        return TrafficOutcome(
            offered=stats["offered"],
            delivered=stats["delivered"],
            timed_out=stats["timed_out"],
            cycles=result.cycles,
            max_queue=result.max_queue,
            throughput=stats["throughput"],
            mean_latency=stats["mean"],
            p50=stats["p50"],
            p99=stats["p99"],
            max_latency=float(stats["max"]),
            undeliverable=result.undeliverable,
            dropped=result.dropped,
            corrupted=result.corrupted,
            misrouted=result.misrouted,
            per_class=per_class,
        )
    traffic = make_traffic(shape, spec.pattern, spec.messages, rng)
    classes = message_classes(len(traffic), spec.qos_classes)
    result = sim(
        shape, traffic, max_cycles=spec.max_cycles,
        router=spec.router, classes=classes, credits=spec.credits,
        **model_kwargs,
    )
    from repro.sim.metrics import latency_stats, per_class_stats

    stats = latency_stats(result)
    per_class = per_class_stats(result, classes) if classes is not None else None
    return TrafficOutcome(
        offered=result.total,
        delivered=result.delivered,
        timed_out=result.timed_out,
        cycles=result.cycles,
        max_queue=result.max_queue,
        throughput=result.throughput,
        mean_latency=stats["mean"],
        p50=stats["p50"],
        p99=stats["p99"],
        max_latency=float(stats["max"]),
        undeliverable=result.undeliverable,
        dropped=result.dropped,
        corrupted=result.corrupted,
        misrouted=result.misrouted,
        per_class=per_class,
    )
