"""Batched healthiness checking (Lemma 4) as pure array reductions.

:func:`check_healthiness_batch` evaluates the three healthiness
conditions for a whole stack of fault arrays at once and returns one
:class:`~repro.core.healthiness.HealthReport` per trial that is
field-for-field identical to what the scalar
:func:`~repro.core.healthiness.check_healthiness` produces — including
the bounded violation samples, which both implementations enumerate in
C-order (the scalar brick/tile scan order *is* ``np.argwhere`` order).

How the scalar loops become reductions (``T`` = trials, grid = tile grid):

* condition 2: per-tile fault counts (reshape + sum) -> cyclic sliding
  window sums of width ``b`` along every non-0 grid axis give every
  brick's fault count at every corner simultaneously: ``(T, *grid)``.
* condition 1: per-(row, tile-column) fault flags -> cyclic window ORs of
  width ``b`` give each brick position's faulty-row profile; the longest
  fault-free run inside each ``b^2``-row strip is computed with the
  running-streak trick (``idx - maximum.accumulate(where(faulty, idx,
  -1))``), no Python loop over bricks.
* condition 3: a frame is fault-free iff (box fault count) - (interior
  fault count) is zero; box sums over tiles are separable into per-axis
  window sums, and "some enclosing frame exists" is an OR over the
  ``sum_s (s-2)^d`` (size, offset) combinations of rolled copies — the
  exact same candidate set the scalar centre-first search enumerates.
"""

from __future__ import annotations

import numpy as np

from repro.core.healthiness import HealthReport
from repro.core.params import BnParams
from repro.topology.grid import TileGeometry

__all__ = ["check_healthiness_batch"]


def _window_reduce(arr: np.ndarray, width: int, axis: int, op) -> np.ndarray:
    """Cyclic sliding-window reduction: out[..., j, ...] aggregates the
    ``width`` entries ``j .. j+width-1 (mod len)`` along ``axis``."""
    out = arr.copy()
    for off in range(1, width):
        op(out, np.roll(arr, -off, axis=axis), out=out)
    return out


def _longest_false_run(marked: np.ndarray, axis: int, tier: str = "batch") -> np.ndarray:
    """Longest run of False along ``axis`` (linear, not cyclic) — the
    batched equivalent of the scalar ``_linear_max_free_run``.  The
    compiled tier flattens to ``(n, length)`` rows and runs the JIT
    streak core; both compute the identical integer reduction."""
    marked = np.moveaxis(marked, axis, -1)
    length = marked.shape[-1]
    if tier == "compiled":
        from repro.fastpath.compiled import longest_false_run_core

        flat = np.ascontiguousarray(marked).reshape(-1, length)
        return longest_false_run_core(flat).reshape(marked.shape[:-1])
    idx = np.arange(length, dtype=np.int64)
    last_true = np.maximum.accumulate(np.where(marked, idx, -1), axis=-1)
    # Streak of False ending at each position; 0 wherever marked is True.
    return (idx - last_true).max(axis=-1)


def check_healthiness_batch(
    params: BnParams,
    faults: np.ndarray,
    geometry: TileGeometry | None = None,
    *,
    max_violations: int = 8,
    tier: str = "batch",
) -> list[HealthReport]:
    """Check Lemma 4's conditions on a ``(T, *params.shape)`` fault stack.

    Returns ``T`` reports identical to running the scalar checker on each
    slice (tests/test_fastpath.py asserts this field-for-field).
    """
    geo = geometry or TileGeometry(params.shape, params.b)
    if faults.shape[1:] != geo.shape:
        raise ValueError(f"fault stack shape {faults.shape} != (T, {geo.shape})")
    trials = faults.shape[0]
    b, s, d = params.b, params.s, params.d
    tile = geo.tile_side
    grid = geo.grid_shape  # (G0, G1, ..., G_{d-1})
    num_faults = faults.reshape(trials, -1).sum(axis=1)

    # Per-tile fault counts: (T, G0, G1, ...).
    view = [trials]
    for g in range(d):
        view += [grid[g], tile]
    counts = faults.reshape(view).sum(axis=tuple(range(2, 2 * d + 1, 2)))

    # Condition 2 — brick fault counts at every corner: bricks span one
    # tile along axis 0 and b tiles (cyclically) along every other axis.
    brick_counts = counts
    for axis in range(2, d + 1):
        brick_counts = _window_reduce(brick_counts, b, axis, np.add)
    cond2_ok = (brick_counts.reshape(trials, -1) <= s).all(axis=1)
    max_brick = brick_counts.reshape(trials, -1).max(axis=1)

    # Condition 1 — per brick, some 2b consecutive fault-free node rows.
    # row_seg[T, m, G1..]: does node-row r meet any fault inside tile
    # column (j1..)?  Window-OR width b over the column axes turns that
    # into each brick corner's faulty-row profile.
    seg_view = [trials, geo.shape[0]]
    for g in range(1, d):
        seg_view += [grid[g], tile]
    row_seg = faults.reshape(seg_view)
    if d > 1:
        row_seg = row_seg.any(axis=tuple(range(3, 2 * d + 1, 2)))
    brick_rows = row_seg
    for axis in range(2, d + 1):
        brick_rows = _window_reduce(brick_rows, b, axis, np.logical_or)
    # Split the m node rows into (G0, tile) strips: brick at corner
    # (i, j..) covers node rows [i*tile, (i+1)*tile) — never wrapping.
    strips = brick_rows.reshape((trials, grid[0], tile) + grid[1:])
    free_run = _longest_false_run(strips, axis=2, tier=tier)  # (T, G0, G1, ...)
    cond1_grid = free_run >= 2 * b
    cond1_ok = cond1_grid.reshape(trials, -1).all(axis=1)

    # Condition 3 — every tile strictly inside some fault-free s-frame.
    tile_faulty = counts > 0
    has_frame = np.zeros_like(tile_faulty)
    grid_axes = tuple(range(1, d + 1))
    for size in range(3, b + 1):
        box = tile_faulty.astype(np.int64)
        inner = tile_faulty.astype(np.int64)
        for axis in grid_axes:
            box = _window_reduce(box, size, axis, np.add)
            inner = _window_reduce(inner, size - 2, axis, np.add)
        # Interior of the box at corner c starts at c + 1 on every axis.
        for axis in grid_axes:
            inner = np.roll(inner, -1, axis=axis)
        frame_free = (box - inner) == 0  # frame at corner c is fault-free
        # A frame at corner c encloses tile t iff t = c + off with
        # off in [1, size-2]^d; roll by +off so index t reads corner t-off.
        offsets = np.stack(
            np.meshgrid(*([np.arange(1, size - 1)] * d), indexing="ij"), axis=-1
        ).reshape(-1, d)
        for off in offsets:
            has_frame |= np.roll(frame_free, shift=tuple(off), axis=grid_axes)
    flat_frame = has_frame.reshape(trials, -1)
    flat_faulty = tile_faulty.reshape(trials, -1)
    cond3_ok = flat_frame.all(axis=1)
    cond3_faulty_ok = (flat_frame | ~flat_faulty).all(axis=1)

    reports = []
    for t in range(trials):
        report = HealthReport(
            bool(cond1_ok[t]),
            bool(cond2_ok[t]),
            bool(cond3_ok[t]),
            cond3_faulty_ok=bool(cond3_faulty_ok[t]),
            num_faults=int(num_faults[t]),
            max_brick_faults=int(max_brick[t]),
        )
        if not report.cond1_ok:
            report.cond1_violations = [
                tuple(int(c) for c in corner)
                for corner in np.argwhere(~cond1_grid[t])[:max_violations]
            ]
        if not report.cond2_ok:
            bad = np.argwhere(brick_counts[t] > s)[:max_violations]
            report.cond2_violations = [
                (tuple(int(c) for c in corner), int(brick_counts[t][tuple(corner)]))
                for corner in bad
            ]
        if not report.cond3_ok:
            report.cond3_violations = [
                tuple(int(c) for c in tile_coord)
                for tile_coord in np.argwhere(~has_frame[t])[:max_violations]
            ]
        reports.append(report)
    return reports
