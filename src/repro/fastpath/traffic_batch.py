"""Vectorized lockstep store-and-forward kernel (the traffic fast path).

The scalar engine (:func:`repro.sim.engine.simulate`) walks a Python dict
of per-link queues message by message, every cycle — the last per-item
pure-Python hot loop in the repo.  This kernel advances *all* live
messages of one simulation in lockstep:

* routes are precomputed as padded ``(M, L)`` arrays of directed-link ids
  (``u * size + v``) by a vectorized dimension-ordered route builder that
  loops over axes and hop offsets, never over messages;
* per-cycle link arbitration is one stable sort over the live messages'
  wanted link ids — live message ids are ascending, so the first entry of
  every equal-link run *is* the scalar engine's lowest-id winner — plus a
  run-length reduction for queue depths;
* winners advance, finishers record ``cycle + 1 - inject`` latencies, and
  the loop repeats until everything is delivered or ``max_cycles`` hits.

The decision sequence is the scalar engine's, replayed with array
reductions, so :func:`simulate_batch` returns a
:class:`~repro.sim.engine.SimResult` identical **field for field** —
delivered order, latency arrays, ``cycles``, ``max_queue``, ``timed_out``
— for any traffic array and injection schedule (hypothesis-tested in
tests/test_traffic.py; the measured wall-clock win at the e14 size is
recorded in BENCH_traffic.json and gated in CI).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.sim.engine import SimResult, byzantine_counts, classify_messages
from repro.sim.routing import ROUTERS, adaptive_route
from repro.topology.coords import CoordCodec

__all__ = [
    "build_routes_batch",
    "routes_batch",
    "routes_health_mask",
    "run_traffic_batch",
    "sim_results_identical",
    "simulate_batch",
]


def sim_results_identical(a: SimResult, b: SimResult) -> bool:
    """Field-for-field equality of two :class:`SimResult`\\ s.

    The single definition of the batch contract's "identical", shared by
    the benchmarks and the CI perf gate: it iterates the dataclass fields,
    so a field added to ``SimResult`` later is compared automatically
    instead of being silently skipped by a hand-maintained list.
    """
    for f in dataclasses.fields(SimResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.array_equal(np.asarray(va), np.asarray(vb)):
                return False
        elif va != vb:
            return False
    return True


def routes_batch(
    shape: tuple[int, ...], traffic: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Padded node sequences of every message's dimension-ordered route.

    Returns ``(nodes, lengths)``: ``nodes[i, :lengths[i] + 1]`` is exactly
    ``dimension_ordered_route(shape, *traffic[i])`` and the padding beyond
    it is ``-1``.  Work is ``O(d * max_side)`` numpy passes — no per-message
    Python.
    """
    codec = CoordCodec(shape)
    traffic = np.asarray(traffic, dtype=np.int64).reshape(-1, 2)
    m = len(traffic)
    src, dst = traffic[:, 0], traffic[:, 1]
    sc = codec.unravel(src)
    dc = codec.unravel(dst)
    d = codec.ndim
    dirs = np.empty((m, d), dtype=np.int64)
    counts = np.empty((m, d), dtype=np.int64)
    for a, n in enumerate(shape):
        fwd = (dc[:, a] - sc[:, a]) % n
        bwd = (sc[:, a] - dc[:, a]) % n
        dirs[:, a] = np.where(fwd <= bwd, 1, -1)  # ties break toward +
        counts[:, a] = np.minimum(fwd, bwd)
    lengths = counts.sum(axis=1)
    lmax = int(lengths.max()) if m else 0
    nodes = np.full((m, lmax + 1), -1, dtype=np.int64)
    nodes[:, 0] = src
    offset = np.zeros(m, dtype=np.int64)
    base = src.copy()  # flat index with finished axes at dst, the rest at src
    for a, n in enumerate(shape):
        stride = int(codec.strides[a])
        cnt = counts[:, a]
        for j in range(1, int(cnt.max(initial=0)) + 1):
            mask = cnt >= j
            coord = (sc[mask, a] + dirs[mask, a] * j) % n
            nodes[mask, offset[mask] + j] = base[mask] + (coord - sc[mask, a]) * stride
        offset += cnt
        base += (dc[:, a] - sc[:, a]) * stride
    return nodes, lengths


def routes_health_mask(
    nodes: np.ndarray, node_ok, edge_ok
) -> np.ndarray:
    """Per-route health of padded node sequences under the predicates.

    ``mask[i]`` is True iff every node and every hop of route ``i``
    (ignoring ``-1`` padding) passes ``node_ok``/``edge_ok`` — the
    vectorized form of :func:`repro.sim.routing.route_is_healthy`.
    """
    m = len(nodes)
    if m == 0:
        return np.zeros(0, dtype=bool)
    pad = nodes < 0
    safe = np.where(pad, 0, nodes)
    bad = np.zeros(m, dtype=bool)
    if node_ok is not None:
        bad |= (~pad & ~node_ok(safe)).any(axis=1)
    if edge_ok is not None and nodes.shape[1] > 1:
        hop = ~pad[:, 1:]
        bad |= (hop & ~edge_ok(safe[:, :-1], safe[:, 1:])).any(axis=1)
    return ~bad


def build_routes_batch(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    router: str = "dimension",
    node_ok=None,
    edge_ok=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Padded routes under the selected router and health predicates.

    Returns ``(nodes, lengths, routable)``.  The dimension-ordered batch
    builder covers every message; under predicates, broken routes either
    mark the message unroutable (``router="dimension"``) or are replaced
    by the scalar adaptive detour (``router="adaptive"`` — only the
    usually-few broken messages drop to per-message work, and they call
    the *same* :func:`~repro.sim.routing.adaptive_route` the scalar
    engine uses, so batched and scalar routes are identical by
    construction).  ``routable[i]`` is False for messages no healthy
    route exists for; their ``nodes`` row is all padding.
    """
    if router not in ROUTERS:
        raise ValueError(f"unknown router {router!r}; options: {ROUTERS}")
    traffic = np.asarray(traffic, dtype=np.int64).reshape(-1, 2)
    nodes, lengths = routes_batch(shape, traffic)
    m = len(nodes)
    if node_ok is None and edge_ok is None:
        return nodes, lengths, np.ones(m, dtype=bool)
    routable = routes_health_mask(nodes, node_ok, edge_ok)
    broken = np.flatnonzero(~routable)
    if not len(broken):
        return nodes, lengths, routable
    detours: dict[int, np.ndarray] = {}
    if router == "adaptive":
        for i in broken:
            r = adaptive_route(
                shape, int(traffic[i, 0]), int(traffic[i, 1]),
                node_ok=node_ok, edge_ok=edge_ok,
            )
            if r is not None:
                detours[int(i)] = r
                routable[i] = True
    lmax = nodes.shape[1] - 1
    if detours:
        lmax = max(lmax, max(len(r) - 1 for r in detours.values()))
    out = np.full((m, lmax + 1), -1, dtype=np.int64)
    out[:, : nodes.shape[1]] = nodes
    for i in broken:
        r = detours.get(int(i))
        if r is None:
            out[i, :] = -1  # unroutable: never enters the network
            lengths[i] = 0
        else:
            out[i, :] = -1
            out[i, : len(r)] = r
            lengths[i] = len(r) - 1
    return out, lengths, routable


def _apply_byzantine_batch(plan, shape, nodes, lengths, routable):
    """Perturb the padded route matrix under a Byzantine plan.

    Touched rows — routable, at least two hops, at least one traitor
    intermediate — are detected with one vectorized mask, then perturbed
    by the *same* :meth:`~repro.sim.routing.ByzantinePlan._perturb` the
    scalar engine uses, in the same ascending-id order, consuming the
    same rng draws; the matrix is re-padded since misroute tails can
    exceed the old width.  Returns ``(nodes, lengths, actions)``.
    """
    m = len(nodes)
    actions = np.zeros(m, dtype=np.int8)
    if m == 0 or nodes.shape[1] <= 2:
        return nodes, lengths, actions
    pad = nodes < 0
    mid = plan.byz_flat[np.where(pad, 0, nodes)]
    mid[:, 0] = False
    mid &= np.arange(nodes.shape[1])[None, :] < lengths[:, None]
    mid &= ~pad
    touched = np.flatnonzero(routable & (lengths >= 2) & mid.any(axis=1))
    if not len(touched):
        return nodes, lengths, actions
    new_routes: dict[int, np.ndarray] = {}
    lmax = nodes.shape[1] - 1
    for i in touched:
        route = nodes[i, : lengths[i] + 1]
        pos = plan.first_traitor_hop(route)
        actions[i], nr = plan._perturb(shape, route, pos)
        new_routes[int(i)] = nr
        lmax = max(lmax, len(nr) - 1)
    out = np.full((m, lmax + 1), -1, dtype=np.int64)
    out[:, : nodes.shape[1]] = nodes
    for i, nr in new_routes.items():
        out[i, :] = -1
        out[i, : len(nr)] = nr
        lengths[i] = len(nr) - 1
    return out, lengths, actions


def simulate_batch(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    inject: np.ndarray | None = None,
    max_cycles: int = 10_000,
    router: str = "dimension",
    node_ok=None,
    edge_ok=None,
    classes: np.ndarray | None = None,
    credits: int = 0,
    byzantine=None,
    tier: str = "batch",
) -> SimResult:
    """Vectorized twin of :func:`repro.sim.engine.simulate`.

    Same signature, same semantics — routers, health predicates, QoS
    classes, credit flow control and Byzantine plans included — and an
    identical :class:`SimResult` field for field; only the wall clock
    differs.  ``tier="compiled"`` swaps the per-cycle arbitration
    (lexsort + run-length reduction) for the JIT core
    :func:`repro.fastpath.compiled.traffic_arbitrate_core` — same
    decision sequence, so still identical.
    """
    nodes, lengths, routable = build_routes_batch(
        shape, traffic, router=router, node_ok=node_ok, edge_ok=edge_ok
    )
    actions = None
    if byzantine is not None:
        nodes, lengths, actions = _apply_byzantine_batch(
            byzantine, shape, nodes, lengths, routable
        )
    m = len(nodes)
    size = CoordCodec(shape).size
    if classes is None:
        cls = np.zeros(m, dtype=np.int64)
    else:
        cls = np.asarray(classes, dtype=np.int64)
        if cls.shape != (m,):
            raise ValueError(f"classes shape {cls.shape} != ({m},)")
        if m and cls.min() < 0:
            raise ValueError("classes must be >= 0")
    if credits < 0:
        raise ValueError("credits must be >= 0 (0 = unlimited)")
    num_classes = int(cls.max()) + 1 if m else 1
    if inject is None:
        start = np.zeros(m, dtype=np.int64)
    else:
        start = np.asarray(inject, dtype=np.int64)
        if start.shape != (m,):
            raise ValueError(f"inject shape {start.shape} != ({m},)")
        if m and start.min() < 0:
            raise ValueError("inject cycles must be >= 0")
    # Directed-link id per hop: u * size + v (pad rows keep a harmless -1).
    links = nodes[:, :-1] * size + nodes[:, 1:] if m else np.empty((0, 0), np.int64)

    pos = np.zeros(m, dtype=np.int64)
    # self-addressed: delivered at injection, latency 0 (unroutable rows
    # also have length 0 but never deliver — mask them out)
    done = (lengths == 0) & routable
    latencies = np.where(done, 0, -1).astype(np.int64)
    entered = np.zeros(m, dtype=bool)
    avail = np.full(num_classes, credits, dtype=np.int64) if credits else None
    cycles = 0
    max_queue = 0
    while not (done | ~routable).all() and cycles < max_cycles:
        # Admission: arrivals whose scheduled cycle has come; with credit
        # flow control each class admits in id order while its pool lasts.
        candidates = routable & ~done & ~entered & (start <= cycles)
        if avail is None:
            entered |= candidates
        elif candidates.any():
            for c in range(num_classes):
                if avail[c] <= 0:
                    continue
                ids = np.flatnonzero(candidates & (cls == c))[: avail[c]]
                entered[ids] = True
                avail[c] -= len(ids)
        live = np.flatnonzero(entered & ~done)
        if len(live):
            wanted = links[live, pos[live]]
            if tier == "compiled":
                from repro.fastpath.compiled import traffic_arbitrate_core

                win_pos, depth = traffic_arbitrate_core(
                    wanted, cls[live], num_classes
                )
                max_queue = max(max_queue, int(depth))
                winners = live[win_pos]
            else:
                # Grant each link to its lowest (class, id): primary key
                # link, then class, then ascending live id — with one
                # class this is exactly the historical stable argsort on
                # the link id.
                order = np.lexsort((live, cls[live], wanted))
                lk = wanted[order]
                first = np.flatnonzero(np.r_[True, lk[1:] != lk[:-1]])
                queue_depths = np.diff(np.r_[first, lk.size])
                max_queue = max(max_queue, int(queue_depths.max()))
                winners = live[order[first]]
            pos[winners] += 1
            finished = winners[pos[winners] == lengths[winners]]
            done[finished] = True
            latencies[finished] = cycles + 1 - start[finished]
            if avail is not None and len(finished):
                # Credits released by deliveries feed next cycle's admission.
                avail += np.bincount(cls[finished], minlength=num_classes)
        cycles += 1
    dropped = corrupted = misrouted = 0
    if actions is not None:
        dropped, corrupted, misrouted = byzantine_counts(actions, done, latencies)
    lat = latencies[done & (latencies >= 0)]
    return SimResult(
        delivered=int(done.sum()) - dropped,
        total=m,
        latencies=np.asarray(lat),
        cycles=cycles,
        max_queue=max_queue,
        timed_out=int((~done & routable).sum()),
        message_latencies=latencies,
        undeliverable=int((~routable).sum()),
        dropped=dropped,
        corrupted=corrupted,
        misrouted=misrouted,
        message_status=classify_messages(done, routable, latencies),
    )


def run_traffic_batch(
    shape: tuple[int, ...], spec, seeds: Sequence[int],
    max_batch_bytes: int | None = None, tier: str = "batch",
) -> list:
    """Batched equivalent of ``[traffic_trial(spec, s) for s in seeds]``.

    Each seed's workload generation is shared with the scalar trial (same
    rng keying); only the engine differs, and :func:`simulate_batch`
    returns identical ``SimResult``\\ s, so the outcome sequence — and
    hence experiment JSON — is identical by construction.

    Traffic vectorizes over *messages within one trial*, never across
    trials, so this kernel is already streamed one seed at a time:
    ``max_batch_bytes`` is accepted for interface uniformity with the
    other batch kernels (see ``fastpath/streaming.py``) and has nothing
    to bound.
    """
    from functools import partial

    from repro.api.traffic import run_traffic_trial

    engine = partial(simulate_batch, tier=tier)
    return [run_traffic_trial(shape, spec, s, engine=engine) for s in seeds]
