"""Batched survival classification for ``A^d_n`` (node-fault model).

With ``q == 0`` the supernode pipeline collapses analytically: a node is
good iff non-faulty, a supernode is good iff it has at least ``k^d`` good
nodes, and — because the host recovery only embeds good supernodes, each
of which must seat exactly ``k^d`` guests — the greedy slot assignment
and its verification can never fail once the host ``B^d`` recovery
succeeds.  A trial's outcome is therefore decided entirely by whether
the host recovers from the bad-supernode fault array, which the batched
straight-cover kernel classifies for a whole chunk of trials at once.

Half-edge faults (``q > 0``) re-introduce per-pair edge constraints that
the greedy genuinely consults, so those specs stay on the scalar path
(``AnConstruction.supports_batch`` gates on ``q == 0``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.outcome import TrialOutcome
from repro.fastpath.bn_batch import bn_bytes_per_trial, straight_survival_batch
from repro.fastpath.streaming import iter_seed_slices, record_buffer

__all__ = ["run_an_batch"]


def run_an_batch(
    adapter, spec, seeds: Sequence[int], max_batch_bytes: int | None = None
) -> list[TrialOutcome]:
    """Batched equivalent of ``[adapter.trial(spec, s) for s in seeds]``
    for Bernoulli node faults with ``q == 0``.

    Streams seed slices through one reused node-fault buffer under the
    ``max_batch_bytes`` budget; trials are independent, so slicing is
    outcome-identical (see ``fastpath/streaming.py``).
    """
    torus = adapter.torus
    params = adapter.params
    # Per-trial working set: the supernode node-fault slab plus the host
    # classifier's own arrays on the base shape.
    per_trial = params.num_supernodes * params.h + bn_bytes_per_trial(params.base)
    outcomes: list[TrialOutcome] = []
    buf: np.ndarray | None = None
    for sub in iter_seed_slices(seeds, per_trial, max_batch_bytes):
        trials = len(sub)
        if buf is None or buf.shape[0] < trials:
            buf = np.empty((trials, params.num_supernodes, params.h), dtype=bool)
            record_buffer(buf.nbytes)
        node_faults = buf[:trials]
        for i, seed in enumerate(sub):
            # Same streams as the scalar trial: ATorus.sample_faults(p, q, seed).
            node_faults[i] = torus.sample_faults(spec.p, spec.q, seed).node_faults
        num_faults = node_faults.reshape(trials, -1).sum(axis=1)
        # Good supernodes: enough good (= non-faulty, since q == 0) nodes.
        good_counts = params.h - node_faults.sum(axis=2)
        threshold = params.good_node_threshold(spec.q)
        faulty_super = (good_counts < threshold).reshape((trials,) + params.base.shape)
        covered, _ = straight_survival_batch(params.base, faulty_super)
        for t, seed in enumerate(sub):
            if covered[t]:
                outcomes.append(
                    TrialOutcome(
                        success=True, category="ok", num_faults=int(num_faults[t])
                    )
                )
            else:
                outcomes.append(adapter.trial(spec, seed))
    return outcomes
