"""Bounded-memory sub-chunk streaming for the batched kernels.

The batched backends historically allocated one ``(trials, *shape)``
fault stack per seed chunk.  At million-node shapes a single 16-trial
chunk is gigabytes; at million-trial counts even modest shapes are.
This module gives every kernel the same discipline instead:

* a **byte budget** (``max_batch_bytes``, default
  :data:`DEFAULT_MAX_BATCH_BYTES`, overridable per run via
  ``ExperimentRunner(max_batch_bytes=...)`` / the ``--max-batch-bytes``
  CLI flag) is divided by the kernel's estimated per-trial working-set
  bytes to get the number of trials resident at once;
* kernels walk their seed list in slices of that size through a
  **preallocated, reused buffer**, so worker peak memory is
  ``O(min(chunk, budget/shape))`` — independent of the trial count;
* every buffer allocation is reported to a per-process **peak gauge**
  that the runner drains per chunk and surfaces in progress lines and
  bench_e21's memory gate.

Sub-chunking never changes results: each trial samples from its own
seed-keyed generator and is classified independently, so slicing the
seed axis is outcome-identical by construction (asserted by the
``streaming-merge`` conformance stage).
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = [
    "DEFAULT_MAX_BATCH_BYTES",
    "iter_seed_slices",
    "record_buffer",
    "take_peak_bytes",
    "trials_per_slice",
]

#: Default per-kernel working-set budget (64 MiB).  Big enough that the
#: historical small-shape benchmarks run in one slice (no perf change),
#: small enough that a 1M-node stack is cut into a handful of trials.
DEFAULT_MAX_BATCH_BYTES = 64 * 1024 * 1024

#: Largest buffer allocation reported since the last drain, per process.
_peak_bytes = 0


def record_buffer(nbytes: int) -> None:
    """Report one buffer allocation to the per-process peak gauge."""
    global _peak_bytes
    if nbytes > _peak_bytes:
        _peak_bytes = int(nbytes)


def take_peak_bytes() -> int:
    """Drain the gauge: the largest buffer since the previous drain."""
    global _peak_bytes
    peak, _peak_bytes = _peak_bytes, 0
    return peak


def trials_per_slice(bytes_per_trial: int, max_batch_bytes: int | None = None) -> int:
    """Trials resident at once under the budget (always at least 1)."""
    budget = DEFAULT_MAX_BATCH_BYTES if max_batch_bytes is None else int(max_batch_bytes)
    return max(1, budget // max(1, int(bytes_per_trial)))


def iter_seed_slices(
    seeds: Sequence[int],
    bytes_per_trial: int,
    max_batch_bytes: int | None = None,
) -> Iterator[Sequence[int]]:
    """Walk ``seeds`` in budget-sized slices, preserving order."""
    step = trials_per_slice(bytes_per_trial, max_batch_bytes)
    for i in range(0, len(seeds), step):
        yield seeds[i : i + step]
