"""Batched lifetime kernel for ``B^d_n`` uniform fault timelines.

Advances a whole chunk of lifetime trials in lockstep over arrival
steps: each trial's fault order comes from the *same* RNG stream as the
scalar path (``spawn_rng(seed, "lifetime", n, d)``, one permutation
draw — the PR 2 RNG-compatibility contract), the per-step masked check
is one broadcasted modular comparison over all live trials, fault
stacks/row profiles are maintained as ``(trials, …)`` arrays, and the
straight-cover greedy runs only for the trials whose new fault escaped
the current bands.

Outcome identity with the scalar path holds by construction, not by
luck: the kernel replays the *same decision sequence* —

1. masked check against the incumbent straight bottoms (the scalar
   masked predicate restricted to straight bands, where every column is
   identical);
2. on an unmasked arrival, the same ``_cover_rows_cyclic`` greedy on the
   same fault-row profile; cheap vectorized gap/coverage re-checks guard
   the result, and any discrepancy reruns the scalar
   ``place_straight_rows`` so even defensive failures match;
3. when the straight cover fails under the ``auto`` strategy, the same
   paper-pipeline recovery the scalar path would run; if the paper
   strategy *survives* (non-straight incumbent — rare), the whole trial
   is delegated to the scalar ``lifetime_trial``, the ground truth.

First-failure times, failure categories and masked/replaced tallies are
therefore trial-for-trial identical (asserted in tests/test_fastpath.py).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.lifetime import LifetimeOutcome
from repro.core.placement import _cover_rows_cyclic, place_straight_rows
from repro.errors import ReconstructionError
from repro.fastpath.streaming import iter_seed_slices, record_buffer
from repro.util.rng import spawn_rng

__all__ = ["run_bn_lifetime_batch"]


def _greedy_bottoms(params, rows: np.ndarray) -> np.ndarray | None:
    """The scalar repair's straight cover for one trial, verified cheaply.

    Returns sorted bottoms, or ``None`` when the greedy (or its
    validation) fails — i.e. when the scalar path would fall through to
    the paper strategy.  The vectorized re-checks mirror
    ``place_straight_rows``'s validation; on any mismatch the scalar
    function itself is rerun so failure behaviour is bit-identical.
    """
    m, b, K = params.m, params.b, params.num_bands
    try:
        bots = np.sort(np.asarray(_cover_rows_cyclic(rows, m, b, K), dtype=np.int64))
    except ReconstructionError:
        return None
    gaps_ok = bool(
        len(bots) == K
        and (
            K == 1
            or (
                (np.diff(bots) >= b + 1).all()
                and (bots[0] + m - bots[-1]) >= b + 1
            )
        )
    )
    covered_ok = bool(
        len(rows) == 0 or (((rows[None, :] - bots[:, None]) % m) < b).any(axis=0).all()
    )
    if gaps_ok and covered_ok:
        return bots
    # Defensive divergence: reproduce the scalar call exactly.
    try:
        return place_straight_rows(params, rows).bottoms[:, 0]
    except ReconstructionError:
        return None


def run_bn_lifetime_batch(
    adapter, spec, seeds: Sequence[int], max_batch_bytes: int | None = None,
    tier: str = "batch",
) -> list[LifetimeOutcome]:
    """Batched equivalent of ``[adapter.lifetime_trial(spec, s) for s in seeds]``.

    Requires a uniform timeline without repairs and the ``auto`` or
    ``straight`` strategy (callers gate on
    ``adapter.supports_lifetime_batch``).

    Trials advance in lockstep but are mutually independent, so the seed
    list streams through the kernel in ``max_batch_bytes``-sized slices
    (dominant per-trial state: the ``limit``-long arrival order and row
    arrays) with identical outcomes — see ``fastpath/streaming.py``.
    """
    params = adapter.params
    size = params.num_nodes
    limit = size if spec.max_steps is None else min(spec.max_steps, size)
    per_trial = 16 * limit + params.m + 8 * params.num_bands
    outcomes: list[LifetimeOutcome] = []
    for sub in iter_seed_slices(seeds, per_trial, max_batch_bytes):
        outcomes.extend(_run_lifetime_slice(adapter, spec, sub, tier=tier))
    return outcomes


def _run_lifetime_slice(
    adapter, spec, seeds: Sequence[int], tier: str = "batch"
) -> list[LifetimeOutcome]:
    """One resident slice of the lockstep kernel (the pre-streaming body)."""
    torus = adapter.torus
    params = adapter.params
    m, b = params.m, params.b
    shape = params.shape
    size = params.num_nodes
    num_cols = size // m
    limit = size if spec.max_steps is None else min(spec.max_steps, size)
    trials = len(seeds)

    orders = np.empty((trials, limit), dtype=np.int64)
    record_buffer(orders.nbytes * 2)  # orders plus the derived rows array
    for i, seed in enumerate(seeds):
        rng = spawn_rng(seed, "lifetime", params.n, params.d)
        orders[i] = rng.permutation(size)[:limit]
    rows = orders // num_cols

    fault_rows = np.zeros((trials, m), dtype=bool)
    bottoms = np.tile(_greedy_bottoms(params, np.array([], dtype=np.int64)), (trials, 1))
    active = np.ones(trials, dtype=bool)     # still advancing in the kernel
    delegate = np.zeros(trials, dtype=bool)  # paper placement survived: scalar replay
    lifetime = np.full(trials, limit, dtype=np.int64)
    steps = np.full(trials, limit, dtype=np.int64)
    masked_ct = np.zeros(trials, dtype=np.int64)
    replaced_ct = np.zeros(trials, dtype=np.int64)
    failed = np.zeros(trials, dtype=bool)
    category = ["ok"] * trials

    for k in range(limit):
        if not active.any():
            break
        r = rows[:, k]
        if tier == "compiled":
            from repro.fastpath.compiled import lifetime_step_core

            covered = lifetime_step_core(r, bottoms, m, b)
        else:
            covered = ((r[:, None] - bottoms) % m < b).any(axis=1)
        act_idx = np.flatnonzero(active)
        fault_rows[act_idx, r[act_idx]] = True
        masked_ct[active & covered] += 1
        for t in np.flatnonzero(active & ~covered):
            bots = _greedy_bottoms(params, np.flatnonzero(fault_rows[t]))
            if bots is not None:
                bottoms[t] = bots
                replaced_ct[t] += 1
                continue
            if adapter.strategy == "straight":
                exc = _scalar_straight_error(params, fault_rows[t])
                active[t] = False
                failed[t] = True
                category[t] = exc
                lifetime[t] = k
                steps[t] = k + 1
                continue
            # The scalar auto chain's paper fallback, on this trial's
            # reconstructed fault stack slice.
            stack = np.zeros(size, dtype=bool)
            stack[orders[t, : k + 1]] = True
            try:
                torus.recover(stack.reshape(shape), strategy="paper")
            except ReconstructionError as exc:
                active[t] = False
                failed[t] = True
                category[t] = exc.category
                lifetime[t] = k
                steps[t] = k + 1
            else:
                # Paper placement survived: the incumbent is no longer
                # straight, so this trial leaves the kernel and is
                # replayed on the scalar path (identical by determinism).
                active[t] = False
                delegate[t] = True

    outcomes: list[LifetimeOutcome] = []
    for i, seed in enumerate(seeds):
        if delegate[i]:
            outcomes.append(adapter.lifetime_trial(spec, seed))
            continue
        outcomes.append(
            LifetimeOutcome(
                lifetime=int(lifetime[i]),
                steps=int(steps[i]),
                category=category[i],
                failed=bool(failed[i]),
                masked=int(masked_ct[i]),
                replaced=int(replaced_ct[i]),
                repaired=0,
            )
        )
    return outcomes


def _scalar_straight_error(params, row_profile: np.ndarray) -> str:
    """The exact failure category the scalar ``straight`` strategy reports."""
    try:
        place_straight_rows(params, np.flatnonzero(row_profile))
    except ReconstructionError as exc:
        return exc.category
    raise AssertionError("straight cover unexpectedly succeeded")  # pragma: no cover
