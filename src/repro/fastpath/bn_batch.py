"""Batched fault injection + survival classification for ``B^d_n``.

The scalar profile of a survival trial at Theorem 2's fault rate is
dominated by torus extraction and embedding verification — work that is
provably redundant once a *straight* band placement validates: for
straight bands every Lemma 6 transition is the identity, the unmasked
rows of column 0 are the whole embedding, and validation (count, slope,
untouching, coverage) already implies the extraction invariants.  The
batched backend therefore:

1. samples each trial's fault array from its own seed-keyed generator
   (the *same* streams as the scalar path — RNG-compatibility contract),
   stacked into one ``(trials, *shape)`` boolean array;
2. reduces the stack to per-trial faulty-row profiles ``(trials, m)`` in
   one pass and runs the (cheap, fault-count-proportional) straight-cover
   greedy per trial;
3. re-verifies coverage of every produced band set *batched* — a single
   broadcasted modular comparison over all trials;
4. classifies covered trials as straight-strategy successes and delegates
   every other trial (greedy failure, paper-strategy territory,
   adversarial specs) to the scalar path, which is the ground truth.

Steps 1-3 replace the per-node Python loops; step 4 guarantees the
outcome sequence is identical to the scalar backend for every seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.outcome import TrialOutcome
from repro.core.params import BnParams
from repro.core.placement import _cover_rows_cyclic
from repro.errors import ReconstructionError
from repro.fastpath.streaming import iter_seed_slices, record_buffer
from repro.util.rng import spawn_rng

__all__ = ["bn_bytes_per_trial", "run_bn_batch", "sample_bn_faults_batch",
           "straight_survival_batch"]


def bn_bytes_per_trial(params: BnParams) -> int:
    """Estimated per-trial working-set bytes of the bn survival kernel:
    the bool fault stack slice plus the classifier's ``(K, m)`` masked
    broadcast and the row profile (the arrays that scale with shape)."""
    return int(np.prod(params.shape)) + (params.num_bands + 2) * params.m


def sample_bn_faults_batch(
    torus, p: float, q: float, seeds: Sequence[int], out: np.ndarray | None = None
) -> np.ndarray:
    """Stack per-seed fault draws into a ``(trials, *shape)`` array.

    Each slice reuses :meth:`BTorus.sample_faults` with the scalar trial's
    generator ``spawn_rng(seed, "bn-trial", n, d)``, so slice ``i`` is
    bit-identical to what ``BTorus.trial(p, seeds[i], q=q)`` samples.
    ``out`` lets streaming callers reuse one preallocated buffer across
    sub-chunks instead of allocating a fresh stack per call.
    """
    params = torus.params
    if out is None:
        out = np.empty((len(seeds),) + params.shape, dtype=bool)
        record_buffer(out.nbytes)
    for i, seed in enumerate(seeds):
        rng = spawn_rng(seed, "bn-trial", params.n, params.d)
        out[i] = torus.sample_faults(p, rng, q=q)
    return out


def straight_survival_batch(
    params: BnParams, faults: np.ndarray, *, tier: str = "batch"
) -> tuple[np.ndarray, np.ndarray]:
    """Classify a ``(trials, *shape)`` fault stack by straight-band cover.

    Returns ``(covered, fault_rows)``: ``covered[t]`` is True when the
    straight-cover greedy produced a band set for trial ``t`` *and* the
    batched re-check confirms every faulty row is masked — exactly the
    trials where the scalar ``auto`` strategy succeeds via its straight
    fast path.  ``fault_rows`` is the ``(trials, m)`` faulty-row profile
    (reused by callers for diagnostics).
    """
    trials = faults.shape[0]
    m, b, K = params.m, params.b, params.num_bands
    fault_rows = faults.reshape(trials, m, -1).any(axis=2)
    bottoms = np.full((trials, K), -1, dtype=np.int64)
    greedy_ok = np.zeros(trials, dtype=bool)
    for t in range(trials):
        rows = np.flatnonzero(fault_rows[t])
        try:
            bots = _cover_rows_cyclic(rows, m, b, K)
        except ReconstructionError:
            continue
        bottoms[t] = np.sort(np.asarray(bots, dtype=np.int64))
        greedy_ok[t] = True
    # Batched defence-in-depth: confirm the greedy's covers really mask
    # every faulty row ((row - bottom) mod m < b for some band).  Any
    # mismatch demotes the trial to the scalar path instead of trusting
    # the vectorized classification.
    if tier == "compiled":
        from repro.fastpath.compiled import bn_cover_core

        covered = greedy_ok & bn_cover_core(fault_rows, bottoms, m, b)
    else:
        masked = (
            (np.arange(m)[None, None, :] - bottoms[:, :, None]) % m < b
        ).any(axis=1)
        covered = greedy_ok & ~(fault_rows & ~masked).any(axis=1)
    return covered, fault_rows


def run_bn_batch(
    adapter, spec, seeds: Sequence[int], max_batch_bytes: int | None = None,
    tier: str = "batch",
) -> list[TrialOutcome]:
    """Batched equivalent of ``[adapter.trial(spec, s) for s in seeds]``.

    Requires a Bernoulli ``spec`` and the ``auto`` or ``straight``
    placement strategy (callers gate on ``adapter.supports_batch``).
    Outcome sequences are identical to the scalar path: fast-classified
    trials match it by the straight-placement argument above, and every
    other trial literally runs it.

    The fault stack streams through one preallocated buffer in seed
    slices sized by ``max_batch_bytes`` (see ``fastpath/streaming.py``),
    so peak memory is bounded by the budget, not the chunk size.  Trials
    are sampled and classified independently, so slicing the seed axis
    cannot change any outcome.
    """
    torus = adapter.torus
    params = adapter.params
    model = None
    if spec.fault_model is not None:
        from repro.faults.registry import make_fault_model

        model = make_fault_model(spec.fault_model)
    outcomes: list[TrialOutcome] = []
    buf: np.ndarray | None = None
    for sub in iter_seed_slices(seeds, bn_bytes_per_trial(params), max_batch_bytes):
        if buf is None or buf.shape[0] < len(sub):
            buf = np.empty((len(sub),) + params.shape, dtype=bool)
            record_buffer(buf.nbytes)
        if model is not None:
            # Same per-seed draws as the generic adapter trial: the model
            # samples from ``_trial_rng`` (which keys in the model token).
            faults = buf[: len(sub)]
            for i, seed in enumerate(sub):
                faults[i] = model.sample(params.shape, adapter._trial_rng(spec, seed))
        else:
            faults = sample_bn_faults_batch(
                torus, spec.p, spec.q, sub, out=buf[: len(sub)]
            )
        trials = len(sub)
        num_faults = faults.reshape(trials, -1).sum(axis=1)
        covered, _ = straight_survival_batch(params, faults, tier=tier)
        if model is not None:
            # Model specs run the *generic* scalar trial, which reports no
            # strategy or health — covered trials emit its exact outcome.
            for t, seed in enumerate(sub):
                if covered[t]:
                    outcomes.append(
                        TrialOutcome(
                            success=True, category="ok",
                            num_faults=int(num_faults[t]),
                        )
                    )
                else:
                    outcomes.append(adapter.trial(spec, seed))
            continue
        healths = None
        if adapter.check_health and covered.any():
            # Only the fast-classified slices: fallback trials recompute their
            # health inside the scalar path anyway, so checking them here would
            # double the dominant cost of the high-fault-rate regime.
            from repro.fastpath.health import check_healthiness_batch

            reports = check_healthiness_batch(
                params, faults[covered], torus.geo, tier=tier
            )
            healths = dict(zip(np.flatnonzero(covered).tolist(), reports))
        for t, seed in enumerate(sub):
            if covered[t]:
                health = healths[t] if healths is not None else None
                outcomes.append(
                    TrialOutcome(
                        success=True,
                        category="ok",
                        healthy=None if health is None else health.healthy,
                        num_faults=int(num_faults[t]),
                        strategy_used="straight",
                        health=health,
                    )
                )
            else:
                outcomes.append(adapter.trial(spec, seed))
    return outcomes
