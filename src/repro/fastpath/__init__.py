"""Numpy-vectorized batched-trial backends (the experiment fast path).

The scalar pipeline pays two per-trial Python costs that dwarf everything
else in the survival regime: the healthiness checker enumerates bricks and
tiles in Python loops, and every successful recovery runs the full
column-by-column torus extraction plus embedding verification.  This
package batches whole chunks of trials into ``(trials, *grid_dims)``
boolean fault arrays and evaluates healthiness conditions 1-3 and
row/brick survival as array reductions over the trial axis.

Contract: for identical seeds the batched backends produce *identical*
:class:`~repro.api.outcome.TrialOutcome` sequences to the scalar
per-trial path (asserted trial-for-trial by tests/test_fastpath.py),
which is what makes experiment JSON byte-identical whichever path the
runner picks.  Any trial the vectorized kernels cannot classify is
delegated to the scalar path, so coverage is total and correctness never
depends on the fast path alone.  See docs/fastpath.md.

The batch kernels are the middle rung of a three-tier ladder
(``scalar`` → ``batch`` → ``compiled``, see
:mod:`repro.fastpath.dispatch`): the optional compiled tier swaps the
hottest inner loops for numba-JIT cores (:mod:`repro.fastpath.compiled`)
under the same identical-outcome contract, and degrades to an explicit
fast failure — never a silently different result — where numba is
absent.
"""

from repro.fastpath.an_batch import run_an_batch
from repro.fastpath.dispatch import (
    BACKENDS,
    TIERS,
    available_tiers,
    compiled_available,
    resolve_backend,
)
from repro.fastpath.bn_batch import (
    bn_bytes_per_trial,
    run_bn_batch,
    sample_bn_faults_batch,
    straight_survival_batch,
)
from repro.fastpath.health import check_healthiness_batch
from repro.fastpath.lifetime_batch import run_bn_lifetime_batch
from repro.fastpath.streaming import (
    DEFAULT_MAX_BATCH_BYTES,
    iter_seed_slices,
    record_buffer,
    take_peak_bytes,
    trials_per_slice,
)
from repro.fastpath.traffic_batch import routes_batch, run_traffic_batch, simulate_batch

__all__ = [
    "BACKENDS",
    "DEFAULT_MAX_BATCH_BYTES",
    "TIERS",
    "available_tiers",
    "bn_bytes_per_trial",
    "compiled_available",
    "resolve_backend",
    "check_healthiness_batch",
    "iter_seed_slices",
    "record_buffer",
    "routes_batch",
    "run_an_batch",
    "run_bn_batch",
    "run_bn_lifetime_batch",
    "run_traffic_batch",
    "sample_bn_faults_batch",
    "simulate_batch",
    "straight_survival_batch",
    "take_peak_bytes",
    "trials_per_slice",
]
