"""Compiled (JIT) kernel cores — the optional third tier of the ladder.

The three hottest inner loops of the batch tier are restated here as
plain-loop *kernel cores*: functions over contiguous numpy arrays using
only the numpy/python subset numba's nopython mode supports.  When numba
is importable each core is ``njit``-compiled on first call; when it is
not (this project must run in offline containers where numba cannot be
installed), the cores remain ordinary Python functions — slow, but
executable, so the unit tests prove core-vs-numpy equivalence everywhere
and the conformance ``compiled:*`` stages report an explicit ``skipped``
instead of silently passing (see :mod:`repro.fastpath.dispatch`).

Cores (each the exact decision procedure of its numpy twin, so the
compiled tier is byte-identical to ``batch`` — and hence to ``scalar`` —
by construction):

* :func:`bn_cover_core` — the bn survival classifier's masked-cover
  re-check (``straight_survival_batch``): every faulty row hit by some
  straight band ``(row - bottom) mod m < b``.
* :func:`longest_false_run_core` — the healthiness condition-1 streak
  reduction (``fastpath/health.py``) over row strips.
* :func:`lifetime_step_core` — the lifetime lockstep kernel's per-step
  masked check against the incumbent bottoms.
* :func:`traffic_arbitrate_core` — per-cycle link arbitration: the
  stable sort + run-length reduction of ``simulate_batch``, with the
  lexsort expressed as one stable argsort over the composite
  ``wanted * num_classes + class`` key (live ids arrive ascending, so
  stability supplies the lowest-id tiebreak).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COMPILED_AVAILABLE",
    "COMPILED_UNAVAILABLE_REASON",
    "bn_cover_core",
    "lifetime_step_core",
    "longest_false_run_core",
    "traffic_arbitrate_core",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    COMPILED_AVAILABLE = True
    COMPILED_UNAVAILABLE_REASON = ""
except ImportError:  # the offline-container default
    numba = None
    COMPILED_AVAILABLE = False
    COMPILED_UNAVAILABLE_REASON = "optional JIT dependency 'numba' is not installed"


def _jit(fn):
    """``numba.njit`` when available, identity otherwise.

    The pure-Python fallback is NOT a production tier — dispatch refuses
    ``backend="compiled"`` when numba is absent — but it keeps every core
    importable and testable (tests/test_compiled.py runs the cores
    against their numpy twins either way).
    """
    if numba is None:
        return fn
    return numba.njit(cache=True)(fn)


@_jit
def bn_cover_core(fault_rows, bottoms, m, b):
    """Per-trial "every faulty row is masked by some band" predicate.

    ``fault_rows``: ``(trials, m)`` bool; ``bottoms``: ``(trials, K)``
    int64 (rows of ``-1`` for greedy-failed trials are allowed — callers
    AND the result with their ``greedy_ok`` mask, exactly like the numpy
    twin in ``straight_survival_batch``).
    """
    trials, rows = fault_rows.shape
    k = bottoms.shape[1]
    covered = np.ones(trials, dtype=np.bool_)
    for t in range(trials):
        for r in range(rows):
            if not fault_rows[t, r]:
                continue
            masked = False
            for j in range(k):
                if (r - bottoms[t, j]) % m < b:
                    masked = True
                    break
            if not masked:
                covered[t] = False
                break
    return covered


@_jit
def longest_false_run_core(marked):
    """Longest run of False per row of a ``(n, length)`` bool array —
    the flattened form of health.py's condition-1 streak reduction."""
    n, length = marked.shape
    out = np.zeros(n, dtype=np.int64)
    for i in range(n):
        best = 0
        run = 0
        for j in range(length):
            if marked[i, j]:
                run = 0
            else:
                run += 1
                if run > best:
                    best = run
        out[i] = best
    return out


@_jit
def lifetime_step_core(r, bottoms, m, b):
    """One lockstep arrival's masked check: is trial ``t``'s new fault
    row ``r[t]`` inside some incumbent band ``(r - bottom) mod m < b``?"""
    trials, k = bottoms.shape
    covered = np.zeros(trials, dtype=np.bool_)
    for t in range(trials):
        for j in range(k):
            if (r[t] - bottoms[t, j]) % m < b:
                covered[t] = True
                break
    return covered


@_jit
def traffic_arbitrate_core(wanted, cls_live, num_classes):
    """One cycle of link arbitration over the live messages.

    ``wanted``/``cls_live`` are aligned with the ascending live-id order,
    so a *stable* argsort on the composite key ``wanted * num_classes +
    class`` reproduces ``np.lexsort((live, cls[live], wanted))`` exactly
    (``cls_live < num_classes`` by construction, so the key packs without
    collisions).  Returns ``(winner_positions, max_depth)``: positions
    into the live order of each contended link's winner, and the deepest
    queue this cycle.
    """
    n = wanted.shape[0]
    order = np.argsort(wanted * num_classes + cls_live, kind="mergesort")
    winners = np.empty(n, dtype=np.int64)
    count = 0
    max_depth = 0
    run = 0
    for i in range(n):
        if i == 0 or wanted[order[i]] != wanted[order[i - 1]]:
            winners[count] = order[i]
            count += 1
            if run > max_depth:
                max_depth = run
            run = 1
        else:
            run += 1
    if run > max_depth:
        max_depth = run
    return winners[:count], max_depth
