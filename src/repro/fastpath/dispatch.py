"""The three-tier kernel ladder: ``scalar`` → ``batch`` → ``compiled``.

One place owns the tier vocabulary and the availability rules; the
runner, the CLI and the conformance stages all resolve through it so a
tier can never be *silently* absent:

* ``scalar`` — the pure-Python reference semantics.  Always available.
* ``batch``  — the numpy-vectorized kernels (:mod:`repro.fastpath`).
  Always available (numpy is a hard dependency).
* ``compiled`` — the numba-JIT cores (:mod:`repro.fastpath.compiled`).
  Available only where numba imports; requesting it elsewhere raises
  :class:`~repro.errors.BackendUnavailableError` *fast* (at runner
  construction), never mid-experiment.

``auto`` resolves to the best available tier.  Whatever resolves,
experiment JSON is byte-identical across tiers — the ladder chooses a
wall clock, never a result (enforced by ``repro-ft conformance``).
"""

from __future__ import annotations

from repro.errors import BackendUnavailableError

__all__ = [
    "BACKENDS",
    "TIERS",
    "available_tiers",
    "compiled_available",
    "compiled_unavailable_reason",
    "resolve_backend",
]

#: Kernel tiers, weakest first.  Every tier is a complete backend: where
#: a construction lacks a kernel for some spec, the tier falls back to
#: the next-lower implementation for that spec (outcomes identical).
TIERS = ("scalar", "batch", "compiled")

#: Accepted ``backend=`` / ``--backend`` values.
BACKENDS = ("auto",) + TIERS


def compiled_available() -> bool:
    """True when the numba JIT dependency imports here."""
    from repro.fastpath.compiled import COMPILED_AVAILABLE

    return COMPILED_AVAILABLE


def compiled_unavailable_reason() -> str:
    """Why the compiled tier cannot run ('' when it can)."""
    from repro.fastpath.compiled import COMPILED_UNAVAILABLE_REASON

    return COMPILED_UNAVAILABLE_REASON


def available_tiers() -> tuple[str, ...]:
    """The tiers that can actually run in this environment."""
    return TIERS if compiled_available() else TIERS[:-1]


def resolve_backend(backend: str | None) -> str:
    """Validate a ``backend=`` choice and resolve ``auto`` to a tier.

    Raises ``ValueError`` for an unknown name and
    :class:`~repro.errors.BackendUnavailableError` when ``compiled`` is
    requested but cannot run here.  ``None`` means ``auto``.
    """
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; options: {', '.join(BACKENDS)}"
        )
    if backend == "auto":
        return "compiled" if compiled_available() else "batch"
    if backend == "compiled" and not compiled_available():
        raise BackendUnavailableError(
            f"backend 'compiled' is unavailable: {compiled_unavailable_reason()} "
            f"(available tiers: {', '.join(available_tiers())})"
        )
    return backend
