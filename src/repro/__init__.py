"""repro — fault-tolerant mesh and torus constructions.

A full reproduction of Hisao Tamaki, *Construction of the Mesh and the Torus
Tolerating a Large Number of Faults* (SPAA 1994; JCSS 53(3):371-379, 1996).

Public API (see README for a tour):

* :class:`repro.core.BTorus`    — Theorem 2: constant degree ``6d-2``,
  tolerates node-failure probability ``log^{-3d} n`` w.h.p.
* :class:`repro.core.ATorus`    — Theorem 1: degree ``O(log log n)``,
  tolerates constant node/edge failure probabilities w.h.p.
* :class:`repro.core.DTorus`    — Theorem 3/13: degree ``4d``, tolerates any
  ``k`` worst-case faults, always.
* ``repro.api``                 — the unified ``Construction`` protocol,
  string-keyed registry (``get("bn"|"an"|"dn"|...)``) and the serial /
  multiprocess ``ExperimentRunner`` powering the CLI and all benchmarks.
* ``repro.baselines``           — Alon–Chung expander construction (Thm 12),
  FKP-style replication, spare-rows comparators.
* ``repro.analysis``            — Monte-Carlo engine, parameter sweeps and
  the paper's own Chernoff/union-bound predictions.
* ``repro.sim``                 — routing simulator exercising recovered tori.
"""

from repro._version import __version__
from repro import errors

__all__ = ["__version__", "errors"]


def __getattr__(name):  # lazy subpackage access without import cycles
    import importlib

    if name in {"api", "core", "topology", "faults", "baselines", "analysis", "sim", "viz", "util"}:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
