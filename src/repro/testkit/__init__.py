"""Conformance testkit: strategies, differential oracles, golden artifacts.

The four execution pillars (scalar trials, the batched fastpath, lifetime
timelines, traffic workloads) share one headline guarantee: *identical
results across backends* — serial vs parallel runner, scalar vs batch
kernels, incremental vs full-recompute repair, scalar vs vectorized
traffic engine.  This package promotes that guarantee from a pile of
per-PR assertions to a first-class subsystem with three layers:

``strategies``
    Reusable hypothesis strategies and deterministic case lists: valid
    :class:`~repro.api.protocol.FaultSpec` / ``LifetimeSpec`` /
    ``TrafficSpec`` grids, guest shapes, constructions from the
    registry, seeded timeline cases.  The tests under ``tests/`` draw
    their generators from here instead of copy-pasting them.

``oracles``
    Differential oracles that run one spec through every capable
    backend and diff outcomes *field for field*, returning structured
    :class:`~repro.testkit.oracles.Mismatch` reports — plus independent
    slow-but-obviously-correct reference checkers (brute-force
    healthiness, BFS route validity, embedding-vs-host-adjacency audit).

``golden``
    A golden-artifact registry snapshotting canonical
    ``repro-experiment-v1`` JSONs under ``tests/golden/`` and failing
    with a field-level diff when serialization drifts.

``conformance``
    The suite driver behind ``repro-ft conformance`` and the CI job.

Exports resolve lazily so importing :mod:`repro.testkit` never drags
``hypothesis`` (a test-only dependency, imported by ``strategies``) into
production code paths such as the CLI.
"""

from __future__ import annotations

_EXPORTS = {
    "Mismatch": "repro.testkit.oracles",
    "OracleReport": "repro.testkit.oracles",
    "diff_values": "repro.testkit.oracles",
    "audit_embedding": "repro.testkit.oracles",
    "brute_force_healthiness": "repro.testkit.oracles",
    "check_routes_bfs": "repro.testkit.oracles",
    "checkpoint_resume_oracle": "repro.testkit.oracles",
    "compare_sim_results": "repro.testkit.oracles",
    "healthiness_oracle": "repro.testkit.oracles",
    "repair_mode_oracle": "repro.testkit.oracles",
    "runner_backends_oracle": "repro.testkit.oracles",
    "sim_engines_oracle": "repro.testkit.oracles",
    "streaming_merge_oracle": "repro.testkit.oracles",
    "trial_backend_oracle": "repro.testkit.oracles",
    "GoldenCase": "repro.testkit.golden",
    "GOLDEN_CASES": "repro.testkit.golden",
    "check_golden": "repro.testkit.golden",
    "default_golden_dir": "repro.testkit.golden",
    "write_golden": "repro.testkit.golden",
    "run_conformance": "repro.testkit.conformance",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    import importlib

    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module 'repro.testkit' has no attribute {name!r}")


def __dir__():
    return __all__
