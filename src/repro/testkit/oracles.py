"""Differential oracles and independent reference checkers.

Two families of verification live here, both returning structured
reports instead of bare booleans:

**Differential oracles** run one spec through every capable backend and
diff outcomes field for field:

* :func:`runner_backends_oracle` — serial vs parallel
  :class:`~repro.api.experiment.ExperimentRunner`, scalar vs batched
  dispatch, down to the canonical JSON bytes;
* :func:`trial_backend_oracle` — per-trial loop vs the construction's
  vectorized kernel (``run_batch`` / ``run_lifetime_batch`` /
  ``run_traffic_batch``), outcome for outcome;
* :func:`repair_mode_oracle` — incremental
  :class:`~repro.core.online.OnlineRecovery` vs the full-recompute
  reference, including surviving placements and embeddings;
* :func:`sim_engines_oracle` — the scalar store-and-forward engine vs
  the vectorized traffic kernel on raw ``SimResult``\\ s.

**Reference checkers** re-derive a property with a slow but obviously
correct method and diff it against the production implementation:

* :func:`brute_force_healthiness` (+ :func:`healthiness_oracle`) —
  Lemma 4's three conditions via plain Python loops, diffed against the
  scalar and batched checkers;
* :func:`check_routes_bfs` — route validity against BFS distances on
  the torus adjacency;
* :func:`adaptive_router_oracle` — fault-adaptive routes against BFS
  reachability on the healthy subgraph (delivers iff connected, healthy
  minimal paths, dimension-ordered identity when fault-free);
* :func:`audit_embedding` — a claimed torus embedding re-checked edge
  by edge against the *materialised* host graph and fault set, not the
  codec predicates the production verifier uses.

Every failure is a :class:`Mismatch` carrying the backend labels, a
JSON-style field path, and both values — the report a future backend
author reads to find exactly which field of which trial diverged.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.api.protocol import LifetimeSpec, TrafficSpec

__all__ = [
    "Mismatch",
    "OracleReport",
    "adaptive_router_oracle",
    "audit_embedding",
    "brute_force_healthiness",
    "check_routes_bfs",
    "checkpoint_resume_oracle",
    "compare_sim_results",
    "diff_values",
    "fault_model_oracle",
    "health_record",
    "healthiness_oracle",
    "lifetime_record",
    "outcome_record",
    "repair_mode_oracle",
    "runner_backends_oracle",
    "sim_engines_oracle",
    "sim_record",
    "streaming_merge_oracle",
    "trial_backend_oracle",
]

#: Sentinel for "key absent on this side" in dict diffs.
MISSING = "<missing>"


@dataclass(frozen=True)
class Mismatch:
    """One field-level disagreement between two backends or artifacts."""

    oracle: str
    left: str
    right: str
    #: JSON-style path of the diverging field, e.g.
    #: ``points[0].result.outcomes[3].delivered``.
    path: str
    expected: object
    actual: object

    def describe(self) -> str:
        return (
            f"[{self.oracle}] {self.path or '<root>'}: "
            f"{self.left}={self.expected!r} != {self.right}={self.actual!r}"
        )


@dataclass
class OracleReport:
    """Outcome of one oracle run over ``cases`` comparison units."""

    oracle: str
    compared: tuple[str, ...]
    cases: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    #: Why the oracle had nothing to compare (e.g. backend not capable).
    skipped: str = ""

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        parts = [f"{self.oracle}: {verdict} ({self.cases} cases; "
                 f"{' vs '.join(self.compared)})"]
        if self.skipped:
            parts.append(f"skipped: {self.skipped}")
        return " — ".join(parts)

    def describe(self) -> str:
        lines = [self.summary()]
        lines += [f"  {m.describe()}" for m in self.mismatches]
        return "\n".join(lines)

    def raise_on_mismatch(self) -> None:
        if not self.ok:
            raise AssertionError(self.describe())


def diff_values(
    a,
    b,
    *,
    oracle: str,
    left: str,
    right: str,
    path: str = "",
    max_mismatches: int = 64,
) -> list[Mismatch]:
    """Recursive structural diff of two JSON-like values.

    Dicts diff by key union, sequences element-wise (a length mismatch
    is reported once at ``path.length``, then the common prefix is
    diffed so the *first* diverging field is always named).  ``NaN``
    equals ``NaN`` — latency fields of empty windows serialise as NaN
    and must not self-mismatch.  Numpy arrays and scalars compare by
    value.  At most ``max_mismatches`` are collected per call.
    """
    out: list[Mismatch] = []
    _diff(a, b, oracle, left, right, path, out, max_mismatches)
    return out


def _diff(a, b, oracle, left, right, path, out, limit) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, np.ndarray):
        a = a.tolist()
    if isinstance(b, np.ndarray):
        b = b.tolist()
    if isinstance(a, np.generic):
        a = a.item()
    if isinstance(b, np.generic):
        b = b.item()
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(Mismatch(oracle, left, right, sub, MISSING, b[key]))
            elif key not in b:
                out.append(Mismatch(oracle, left, right, sub, a[key], MISSING))
            else:
                _diff(a[key], b[key], oracle, left, right, sub, out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(
                Mismatch(oracle, left, right, f"{path}.length" if path else "length",
                         len(a), len(b))
            )
        for i, (x, y) in enumerate(zip(a, b)):
            _diff(x, y, oracle, left, right, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, float) and isinstance(b, float):
        # NaN latency fields of empty windows must not diff against themselves.
        if a != b and not (math.isnan(a) and math.isnan(b)):
            out.append(Mismatch(oracle, left, right, path, a, b))
        return
    if type(a) is not type(b) or a != b:
        out.append(Mismatch(oracle, left, right, path, a, b))


# ---------------------------------------------------------------------------
# Canonical per-record views (shared by tests and oracles)
# ---------------------------------------------------------------------------


def health_record(h) -> dict | None:
    """Every :class:`~repro.core.healthiness.HealthReport` field, including
    the bounded violation samples, as plain JSON-able types."""
    if h is None:
        return None
    return {
        "cond1_ok": h.cond1_ok,
        "cond2_ok": h.cond2_ok,
        "cond3_ok": h.cond3_ok,
        "cond3_faulty_ok": h.cond3_faulty_ok,
        "num_faults": int(h.num_faults),
        "max_brick_faults": int(h.max_brick_faults),
        "cond1_violations": [tuple(int(c) for c in v) for v in h.cond1_violations],
        "cond2_violations": [
            (tuple(int(c) for c in corner), int(n)) for corner, n in h.cond2_violations
        ],
        "cond3_violations": [tuple(int(c) for c in v) for v in h.cond3_violations],
    }


def outcome_record(o) -> dict:
    """A :class:`~repro.api.outcome.TrialOutcome` as a comparable record."""
    return {
        "success": o.success,
        "category": o.category,
        "num_faults": int(o.num_faults),
        "strategy_used": o.strategy_used,
        "healthy": o.healthy,
        "health": health_record(o.health),
    }


def lifetime_record(o) -> dict:
    """A :class:`~repro.api.lifetime.LifetimeOutcome` as a comparable record."""
    return {
        "lifetime": int(o.lifetime),
        "steps": int(o.steps),
        "category": o.category,
        "failed": o.failed,
        "masked": int(o.masked),
        "replaced": int(o.replaced),
        "repaired": int(o.repaired),
    }


def sim_record(r) -> dict:
    """A :class:`~repro.sim.engine.SimResult` as a comparable record."""
    return {
        "delivered": int(r.delivered),
        "total": int(r.total),
        "cycles": int(r.cycles),
        "max_queue": int(r.max_queue),
        "timed_out": int(r.timed_out),
        "undeliverable": int(r.undeliverable),
        "dropped": int(r.dropped),
        "corrupted": int(r.corrupted),
        "misrouted": int(r.misrouted),
        "latencies": [int(x) for x in r.latencies],
        "message_latencies": [int(x) for x in r.message_latencies],
        "message_status": [int(x) for x in r.message_status],
        "throughput": float(r.throughput),
    }


def _point_record(spec, outcome) -> dict:
    if isinstance(spec, LifetimeSpec):
        return lifetime_record(outcome)
    if isinstance(spec, TrafficSpec):
        return outcome.to_dict()
    return outcome_record(outcome)


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------


def runner_backends_oracle(spec, *, workers: int = 2) -> OracleReport:
    """Run an :class:`~repro.api.experiment.ExperimentSpec` through every
    runner backend and diff the results down to the JSON bytes.

    Backends: serial scalar (the reference), serial batched, parallel
    scalar, parallel batched — plus serial/compiled when the JIT tier is
    importable.  Batched dispatch quietly falls back per-trial where a
    construction lacks the capability — the point is that the *choice
    can never reach the results*, so the fallback path is part of the
    contract being checked.
    """
    from repro.api.experiment import ExperimentRunner
    from repro.fastpath.dispatch import compiled_available

    backends = [
        ("serial/scalar", ExperimentRunner(workers=1, batch=False)),
        ("serial/batch", ExperimentRunner(workers=1, batch=True)),
        (f"parallel{workers}/scalar", ExperimentRunner(workers=workers, batch=False)),
        (f"parallel{workers}/batch", ExperimentRunner(workers=workers, batch=True)),
    ]
    if compiled_available():
        backends.append(
            ("serial/compiled", ExperimentRunner(workers=1, backend="compiled"))
        )
    report = OracleReport("runner-backends", tuple(n for n, _ in backends))
    ref_name, ref_runner = backends[0]
    ref = ref_runner.run(spec).to_dict()
    ref_text = json.dumps(ref, indent=2, sort_keys=True)
    for name, runner in backends[1:]:
        got = runner.run(spec).to_dict()
        report.cases += 1
        ms = diff_values(ref, got, oracle="runner-backends", left=ref_name, right=name)
        report.mismatches += ms
        got_text = json.dumps(got, indent=2, sort_keys=True)
        if not ms and got_text != ref_text:
            # Fields agree but canonical serialisation drifted — still a
            # byte-identity break (e.g. int vs float of the same value).
            # Report the first diverging line, not the whole documents.
            report.mismatches.append(
                Mismatch("runner-backends", ref_name, name, "<canonical-json>",
                         *_first_text_divergence(ref_text, got_text))
            )
    return report


def _first_text_divergence(a: str, b: str) -> tuple[str, str]:
    """Human-sized (line number + line) views of where two texts split."""
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines())):
        if la != lb:
            return (f"line {i + 1}: {la.strip()}", f"line {i + 1}: {lb.strip()}")
    return (f"{len(a)} chars", f"{len(b)} chars")


def _diff_result_dict(report: OracleReport, ref: dict, got: dict,
                      *, left: str, right: str) -> None:
    """Field-diff two ``ExperimentResult`` dicts *and* their canonical
    JSON text (the byte-identity contract is stricter than field
    equality: int vs float of the same value serialises differently)."""
    report.cases += 1
    ms = diff_values(ref, got, oracle=report.oracle, left=left, right=right)
    report.mismatches += ms
    if not ms:
        ref_text = json.dumps(ref, indent=2, sort_keys=True)
        got_text = json.dumps(got, indent=2, sort_keys=True)
        if got_text != ref_text:
            report.mismatches.append(
                Mismatch(report.oracle, left, right, "<canonical-json>",
                         *_first_text_divergence(ref_text, got_text))
            )


def streaming_merge_oracle(
    spec, *, max_batch_bytes: int = 4096, workers: int = 2
) -> OracleReport:
    """The streaming runner against the legacy collect-then-merge path.

    The reference materialises every chunk dict up front (the pre-
    streaming ``ExperimentRunner.run`` body: full task list, ``pool.map``
    semantics, one-shot ``merged()`` per point) — then the incremental
    runner must reproduce it byte for byte, serially, pooled, and under
    a deliberately starved ``max_batch_bytes`` budget that forces the
    kernels through many sub-chunk slices.
    """
    from repro.api import experiment as ex

    report = OracleReport(
        "streaming-merge",
        ("materialized", "streamed/serial", f"streamed/parallel{workers}",
         "streamed/tiny-budget"),
    )
    # Legacy reference: collect every raw chunk, merge in chunk order.
    params_items = tuple(sorted(spec.params.items()))
    raw = []
    for fs in spec.grid:
        fsd = fs.to_dict()
        for start in range(0, spec.trials, spec.chunk_size):
            count = min(spec.chunk_size, spec.trials - start)
            raw.append(ex._run_chunk(
                (spec.construction, params_items, fsd, spec.seed0 + start,
                 count, "batch", None)
            ))
    chunks_per_point = -(-spec.trials // spec.chunk_size)
    points = []
    for i, fs in enumerate(spec.grid):
        res_cls = ex._result_class(fs)
        parts = [
            res_cls.from_dict(raw[i * chunks_per_point + j])
            for j in range(chunks_per_point)
        ]
        points.append(ex.PointResult(fault_spec=fs, result=res_cls.merged(parts)))
    ref = ex.ExperimentResult(spec=spec, points=points).to_dict()

    streamed = [
        ("streamed/serial", ex.ExperimentRunner(workers=1)),
        (f"streamed/parallel{workers}", ex.ExperimentRunner(workers=workers)),
        ("streamed/tiny-budget",
         ex.ExperimentRunner(workers=1, max_batch_bytes=max_batch_bytes)),
    ]
    for name, runner in streamed:
        _diff_result_dict(report, ref, runner.run(spec).to_dict(),
                          left="materialized", right=name)
    return report


def checkpoint_resume_oracle(spec, *, workers: int = 2) -> OracleReport:
    """Kill-and-resume at every chunk boundary vs the uninterrupted run.

    Executes the spec once with a journal, then simulates an interrupt
    after each prefix of completed chunks — including zero (a fresh
    journal with only the header) and a torn final line (a kill mid-
    write) — and resumes each time, requiring byte-identical final JSON.
    Resumed runs use a different worker count than the reference so the
    oracle also covers resuming on different execution settings.
    """
    import tempfile
    from pathlib import Path

    from repro.api.experiment import ExperimentRunner

    report = OracleReport("checkpoint-resume", ("uninterrupted", "resumed"))
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "journal.ndjson"
        ref = ExperimentRunner(workers=1).run(spec, checkpoint=journal).to_dict()
        lines = journal.read_bytes().split(b"\n")[:-1]  # drop trailing ''
        header, chunks = lines[0], lines[1:]
        cuts = [(f"resume@{keep}", b"\n".join([header, *chunks[:keep]]) + b"\n")
                for keep in range(len(chunks) + 1)]
        if chunks:  # torn final line: a kill mid-write
            torn = b"\n".join([header, *chunks[:-1]]) + b"\n" + chunks[-1][:12]
            cuts.append(("resume@torn-line", torn))
        for name, content in cuts:
            journal.write_bytes(content)
            got = ExperimentRunner(workers=workers).run(
                spec, checkpoint=journal, resume=True
            ).to_dict()
            _diff_result_dict(report, ref, got, left="uninterrupted", right=name)
    return report


def trial_backend_oracle(
    construction, spec, seeds: Sequence[int], *, tier: str = "batch"
) -> OracleReport:
    """Per-trial loop vs the construction's vectorized kernel, outcome for
    outcome, for whichever pillar ``spec`` belongs to.

    ``tier`` selects which rung of the kernel ladder faces the scalar
    reference: ``"batch"`` (the default, matching the historical oracle)
    or ``"compiled"``.  Returns a report with ``skipped`` set when the
    construction does not advertise the matching batch capability for
    this spec — the scalar path is then the only backend and there is
    nothing to diff — or when ``tier="compiled"`` and the JIT dependency
    is absent, so the skip is always explicit in conformance output.
    """
    from repro.fastpath.dispatch import compiled_available, compiled_unavailable_reason

    seeds = list(seeds)
    if isinstance(spec, LifetimeSpec):
        kind = "lifetime"
        supports = getattr(construction, "supports_lifetime_batch", None)
        run = getattr(construction, "run_lifetime_batch", None)
        scalar_one = getattr(construction, "lifetime_trial", None)
    elif isinstance(spec, TrafficSpec):
        kind = "traffic"
        supports = getattr(construction, "supports_traffic_batch", None)
        run = getattr(construction, "run_traffic_batch", None)
        scalar_one = getattr(construction, "traffic_trial", None)
    else:
        kind = "trial"
        supports = getattr(construction, "supports_batch", None)
        run = getattr(construction, "run_batch", None)
        scalar_one = construction.trial
    name = f"{kind}-backend" if tier == "batch" else f"{kind}-backend-{tier}"
    report = OracleReport(name, ("scalar", tier))
    if tier == "compiled" and not compiled_available():
        report.skipped = compiled_unavailable_reason()
        return report
    if scalar_one is None:
        report.skipped = f"{construction.name} has no {kind} capability"
        return report
    if run is None or (supports is not None and not supports(spec)):
        report.skipped = (
            f"{construction.name} advertises no {kind} batch kernel for "
            f"{spec.label()}"
        )
        return report
    kw = {"tier": tier} if tier != "batch" else {}
    batch = run(spec, seeds, **kw)
    scalar = [scalar_one(spec, s) for s in seeds]
    if len(batch) != len(scalar):
        report.mismatches.append(
            Mismatch(name, "scalar", tier, "outcomes.length",
                     len(scalar), len(batch))
        )
    for i, (a, b) in enumerate(zip(scalar, batch)):
        report.cases += 1
        report.mismatches += diff_values(
            _point_record(spec, a), _point_record(spec, b),
            oracle=name, left="scalar", right=tier, path=f"seed[{seeds[i]}]",
        )
    return report


def repair_mode_oracle(params, cases: Sequence[tuple[int, LifetimeSpec]]) -> OracleReport:
    """Incremental repair vs the full-recompute reference, per timeline.

    For each ``(seed, spec)`` case both :class:`OnlineRecovery` modes
    replay the identical event stream; the oracle diffs the outcome
    record, the final fault set, the surviving band placement and the
    surviving embedding — the full incremental-repair contract, not just
    the lifetime number.  The surviving placement is additionally
    structurally validated (and, when the trial survived, checked to
    mask every registered fault).
    """
    from repro.core.bn import BTorus
    from repro.core.online import OnlineRecovery, run_online_timeline
    from repro.errors import ReconstructionError
    from repro.util.rng import spawn_rng

    bt = BTorus(params)
    report = OracleReport("repair-modes", ("incremental", "full-recompute"))
    for seed, spec in cases:
        inc = OnlineRecovery(bt, incremental=True)
        full = OnlineRecovery(bt, incremental=False)
        out_inc = run_online_timeline(inc, spec, spawn_rng(seed, "eq", spec.label()))
        out_full = run_online_timeline(full, spec, spawn_rng(seed, "eq", spec.label()))
        report.cases += 1
        at = f"case[seed={seed},{spec.label()}]"
        report.mismatches += diff_values(
            {
                "outcome": lifetime_record(out_inc),
                "faults": inc.faults.ravel(),
                "bottoms": inc.recovery.bands.bottoms,
                "phi": inc.recovery.phi,
            },
            {
                "outcome": lifetime_record(out_full),
                "faults": full.faults.ravel(),
                "bottoms": full.recovery.bands.bottoms,
                "phi": full.recovery.phi,
            },
            oracle="repair-modes", left="incremental", right="full-recompute",
            path=at, max_mismatches=8,
        )
        # Structural validity of the survivor: every band constraint holds
        # and (unless the trial died on its terminal arrival) every
        # registered fault is masked.
        try:
            inc.recovery.bands.validate(None if out_inc.failed else inc.faults)
        except ReconstructionError as exc:
            report.mismatches.append(
                Mismatch("repair-modes", "incremental", "band-invariants",
                         f"{at}.validate", str(exc), "structurally valid placement")
            )
    return report


def compare_sim_results(a, b, *, oracle="sim-engines", left="scalar",
                        right="batch", path="") -> list[Mismatch]:
    """Field-level diff of two :class:`~repro.sim.engine.SimResult`\\ s."""
    return diff_values(
        sim_record(a), sim_record(b), oracle=oracle, left=left, right=right, path=path
    )


def sim_engines_oracle(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    inject: np.ndarray | None = None,
    max_cycles: int = 10_000,
    router: str = "dimension",
    node_ok=None,
    edge_ok=None,
    classes: np.ndarray | None = None,
    credits: int = 0,
    byzantine: Callable[[], object] | None = None,
    tier: str = "batch",
) -> OracleReport:
    """Scalar store-and-forward engine vs the vectorized kernel on one
    concrete workload, diffed on the raw ``SimResult``.

    The routing / QoS knobs are forwarded to both engines verbatim, so
    the oracle covers the adaptive router, health predicates, priority
    classes and credit flow control with the same field-for-field
    contract as the historical default path.  ``byzantine`` is a
    zero-arg *factory* returning a fresh
    :class:`~repro.sim.routing.ByzantinePlan` — a factory because a
    plan's RNG advances as it perturbs routes, so each engine must get
    its own identically-seeded instance.  ``tier`` picks the kernel rung
    under test (``"batch"`` or ``"compiled"``); the compiled rung
    reports an explicit skip when the JIT dependency is absent.
    """
    from repro.fastpath.dispatch import compiled_available, compiled_unavailable_reason
    from repro.fastpath.traffic_batch import simulate_batch
    from repro.sim.engine import simulate

    kwargs = dict(
        inject=inject, max_cycles=max_cycles, router=router,
        node_ok=node_ok, edge_ok=edge_ok, classes=classes, credits=credits,
    )
    name = "sim-engines" if tier == "batch" else f"sim-engines-{tier}"
    report = OracleReport(name, ("scalar", tier), cases=1)
    if tier == "compiled" and not compiled_available():
        report.cases = 0
        report.skipped = compiled_unavailable_reason()
        return report
    a = simulate(shape, traffic,
                 byzantine=None if byzantine is None else byzantine(), **kwargs)
    b = simulate_batch(shape, traffic, tier=tier,
                       byzantine=None if byzantine is None else byzantine(), **kwargs)
    report.mismatches += compare_sim_results(a, b, oracle=name, right=tier)
    return report


def _reference_model_sample(model, shape: tuple[int, ...], rng) -> np.ndarray:
    """First-principles re-derivation of ``model.sample``'s flat draw.

    Consumes the *same* RNG stream the production sampler does (numpy's
    bulk ``random(shape)`` draws the identical uniform sequence as
    element-wise scalar calls) but derives the fault set with plain
    Python loops — per-node threshold tests, explicit closed-neighborhood
    scans over :func:`_torus_neighbors`, explicit slab-coverage walks —
    sharing no vectorized helper with :mod:`repro.faults.models`.
    """
    size = 1
    for s in shape:
        size *= int(s)
    name = model.name
    if name in ("bernoulli", "byzantine"):
        p = model.p if name == "bernoulli" else model.rate
        if p == 0.0:
            return np.zeros(size, dtype=bool)
        return np.array([rng.random() < p for _ in range(size)], dtype=bool)
    if name == "halfedge":
        # Half-edge faults fail no node outright: the node-state view is
        # all-healthy by the model's contract (and consumes no RNG).
        return np.zeros(size, dtype=bool)
    if name == "neighbor":
        if model.p == 0.0:
            centers = np.zeros(size, dtype=bool)
        else:
            centers = np.array([rng.random() < model.p for _ in range(size)], dtype=bool)
        neighbors = _torus_neighbors(shape)
        out = np.zeros(size, dtype=bool)
        for node in range(size):
            if centers[node] or any(centers[v] for v in neighbors(node)):
                out[node] = True
        return out
    if name == "component":
        strides = []
        acc = 1
        for s in reversed(shape):
            strides.append(acc)
            acc *= int(s)
        strides = list(reversed(strides))
        covered = []
        for n in shape:
            starts = [rng.random() < model.rate for _ in range(int(n))]
            covered.append([
                any(starts[(c - off) % int(n)] for off in range(min(model.width, int(n))))
                for c in range(int(n))
            ])
        out = np.zeros(size, dtype=bool)
        for node in range(size):
            coords = [(node // st) % s for st, s in zip(strides, shape)]
            if any(covered[axis][c] for axis, c in enumerate(coords)):
                out[node] = True
        return out
    raise ValueError(f"no reference sampler for fault model {name!r}")


def fault_model_oracle(
    model_dict: dict,
    *,
    shapes: Sequence[tuple[int, ...]] = ((6, 6), (4, 4, 4)),
    seeds: Sequence[int] = range(4),
    empirical_draws: int = 100,
    sample_fn: Callable | None = None,
) -> OracleReport:
    """Registered fault model vs an independent reference, three ways.

    1. **Sampler diff** — ``model.sample`` against
       :func:`_reference_model_sample` on identical RNG streams, bit for
       bit over every ``(shape, seed)`` pair.  ``sample_fn`` overrides
       the production side so mutation tests can prove the oracle fires.
    2. **Analytic expectation** — ``model.expected_faults`` against the
       empirical mean over ``empirical_draws`` seeded draws, within six
       standard errors (deterministic seeds: no flakiness).  Half-edge
       models are instead checked on their per-edge fault density and
       the ``edge_block`` direction-symmetry contract.
    3. **Byzantine engine cross-check** — for ``behavior ==
       "byzantine"``, the scalar engine against the vectorized kernel
       under a :class:`~repro.sim.routing.ByzantinePlan` built from the
       model's own mask and mix, plus message conservation
       (``delivered + dropped + timed_out + undeliverable == offered``).
    """
    from repro.faults.registry import make_fault_model, model_token
    from repro.util.rng import spawn_rng

    model = make_fault_model(model_dict)
    token = model_token(model_dict)
    report = OracleReport("fault-model", (model.name, "reference"))
    sample = sample_fn or model.sample
    for shape in shapes:
        shape = tuple(int(s) for s in shape)
        for seed in seeds:
            report.cases += 1
            got = np.asarray(
                sample(shape, spawn_rng(seed, "model-oracle", token, str(shape)))
            ).ravel()
            ref = _reference_model_sample(
                model, shape, spawn_rng(seed, "model-oracle", token, str(shape))
            )
            report.mismatches += diff_values(
                [bool(x) for x in ref], [bool(x) for x in got],
                oracle="fault-model", left="reference", right=model.name,
                path=f"sample[{shape}][seed={seed}]", max_mismatches=8,
            )
    if model.name == "halfedge":
        # Per-edge density: an (h, h) block of edges is faulty with
        # probability exactly q; symmetry: the two traversal directions
        # of the same supernode pair must agree.
        h = 48
        block = model.edge_block(0, 1, h, h)
        report.cases += 1
        if not np.array_equal(block, model.edge_block(1, 0, h, h).T):
            report.mismatches.append(Mismatch(
                "fault-model", model.name, "reference", "edge_block.symmetry",
                "edge_block(0,1) == edge_block(1,0).T", "directions disagree",
            ))
        density = float(block.mean())
        tol = 6.0 * math.sqrt(max(model.q, 1e-12) / (h * h)) + 1e-9
        if abs(density - model.q) > tol:
            report.mismatches.append(Mismatch(
                "fault-model", model.name, "reference", "edge_block.density",
                model.q, density,
            ))
    else:
        shape = tuple(int(s) for s in shapes[0])
        counts = [
            float(np.asarray(
                model.sample(shape, spawn_rng(10_000 + i, "model-oracle-mean", token))
            ).sum())
            for i in range(empirical_draws)
        ]
        emp = float(np.mean(counts))
        sem = float(np.std(counts)) / math.sqrt(len(counts))
        want = float(model.expected_faults(shape))
        report.cases += 1
        if abs(emp - want) > 6.0 * sem + 0.25:
            report.mismatches.append(Mismatch(
                "fault-model", model.name, "reference", "expected_faults",
                want, f"empirical {emp:.3f} (sem {sem:.3f})",
            ))
    if model.behavior == "byzantine":
        from repro.sim.routing import ByzantinePlan
        from repro.sim.traffic import make_traffic

        for shape in shapes:
            shape = tuple(int(s) for s in shape)
            t = make_traffic(shape, "uniform", 48, spawn_rng(3, "model-oracle-t", token))
            mask = model.sample(shape, spawn_rng(5, "model-oracle-m", token, str(shape)))

            def plan(mask=mask, shape=shape):
                return ByzantinePlan(
                    mask, model.mix(), spawn_rng(7, "model-oracle-p", token, str(shape))
                )

            sub = sim_engines_oracle(shape, t, byzantine=plan)
            report.cases += sub.cases
            for m in sub.mismatches:
                report.mismatches.append(Mismatch(
                    "fault-model", "scalar-engine", "batch-engine",
                    f"byzantine[{shape}].{m.path}", m.expected, m.actual,
                ))
            from repro.sim.engine import simulate

            r = simulate(shape, t, byzantine=plan())
            report.cases += 1
            balance = r.delivered + r.dropped + r.timed_out + r.undeliverable
            if balance != r.total:
                report.mismatches.append(Mismatch(
                    "fault-model", model.name, "conservation",
                    f"byzantine[{shape}].balance", r.total, balance,
                ))
    return report


def adaptive_router_oracle(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    fault_flat: np.ndarray | None = None,
) -> OracleReport:
    """Adaptive routes vs BFS reachability on the healthy subgraph.

    For every (src, dst) message under the ``fault_flat`` node-fault
    mask, :func:`repro.sim.routing.adaptive_route` must return

    * ``None`` exactly when BFS over the healthy subgraph (computed here
      from first principles with :func:`_torus_neighbors`) cannot reach
      ``dst`` from ``src`` — never refusing a connected pair, never
      inventing a path for a disconnected one;
    * otherwise a path from ``src`` to ``dst`` along torus edges whose
      nodes are all healthy and whose hop count equals the healthy-BFS
      distance (the router is minimal on the surviving subgraph: a
      healthy dimension-ordered route is minimal outright, and the
      detour search is itself a BFS);
    * with no faults at all, byte-for-byte the dimension-ordered route —
      the identity that keeps pristine results router-independent.
    """
    from repro.sim.routing import (
        adaptive_route,
        dimension_ordered_route,
        fault_predicates,
    )

    neighbors = _torus_neighbors(shape)
    size = 1
    for s in shape:
        size *= int(s)
    faulty = (
        np.zeros(size, dtype=bool)
        if fault_flat is None
        else np.asarray(fault_flat, dtype=bool).ravel()
    )
    node_ok, edge_ok = fault_predicates(faulty)
    pristine = not faulty.any()
    report = OracleReport("adaptive-router", ("adaptive", "bfs"))
    dist_cache: dict[int, np.ndarray] = {}

    def healthy_bfs_from(src: int) -> np.ndarray:
        if src not in dist_cache:
            dist = np.full(size, -1, dtype=np.int64)
            if not faulty[src]:
                dist[src] = 0
                q = deque([src])
                while q:
                    u = q.popleft()
                    for v in neighbors(u):
                        if dist[v] < 0 and not faulty[v]:
                            dist[v] = dist[u] + 1
                            q.append(v)
            dist_cache[src] = dist
        return dist_cache[src]

    for i, (src, dst) in enumerate(np.asarray(traffic, dtype=np.int64)):
        src, dst = int(src), int(dst)
        report.cases += 1
        at = f"message[{i}]"
        route = adaptive_route(shape, src, dst, node_ok=node_ok, edge_ok=edge_ok)
        want = int(healthy_bfs_from(src)[dst])
        if route is None:
            if want >= 0:
                report.mismatches.append(
                    Mismatch("adaptive-router", "adaptive", "bfs",
                             f"{at}.deliverable", None, f"path of {want} hops")
                )
            continue
        route = [int(x) for x in route]
        if want < 0:
            report.mismatches.append(
                Mismatch("adaptive-router", "adaptive", "bfs",
                         f"{at}.deliverable", f"path of {len(route) - 1} hops",
                         "disconnected endpoints")
            )
            continue
        if route[0] != src or route[-1] != dst:
            report.mismatches.append(
                Mismatch("adaptive-router", "adaptive", "bfs", f"{at}.endpoints",
                         (route[0], route[-1]), (src, dst))
            )
            continue
        bad_node = next((n for n in route if faulty[n]), None)
        if bad_node is not None:
            report.mismatches.append(
                Mismatch("adaptive-router", "adaptive", "bfs", f"{at}.health",
                         f"visits faulty node {bad_node}", "healthy path")
            )
            continue
        bad_hop = next(
            (h for h in range(len(route) - 1)
             if route[h + 1] not in neighbors(route[h])),
            None,
        )
        if bad_hop is not None:
            report.mismatches.append(
                Mismatch("adaptive-router", "adaptive", "bfs", f"{at}.hop[{bad_hop}]",
                         f"{route[bad_hop]}->{route[bad_hop + 1]}",
                         "not a torus edge")
            )
            continue
        if len(route) - 1 != want:
            report.mismatches.append(
                Mismatch("adaptive-router", "adaptive", "bfs", f"{at}.hops",
                         len(route) - 1, want)
            )
            continue
        if pristine:
            dim = [int(x) for x in dimension_ordered_route(shape, src, dst)]
            if route != dim:
                report.mismatches.append(
                    Mismatch("adaptive-router", "adaptive", "dimension-ordered",
                             f"{at}.fault-free-identity", route, dim)
                )
    return report


# ---------------------------------------------------------------------------
# Independent reference checkers
# ---------------------------------------------------------------------------


def _torus_neighbors(shape: tuple[int, ...]):
    """Adjacency function of the ``shape`` torus, built from first principles
    (modular coordinate arithmetic, no CoordCodec)."""
    strides = []
    acc = 1
    for s in reversed(shape):
        strides.append(acc)
        acc *= int(s)
    strides = list(reversed(strides))

    def unflatten(idx: int) -> list[int]:
        coords = []
        for stride, s in zip(strides, shape):
            coords.append((idx // stride) % s)
        return coords

    def neighbors(idx: int) -> list[int]:
        coords = unflatten(idx)
        out = []
        for axis, n in enumerate(shape):
            if n < 2:
                continue
            for delta in (+1, -1):
                c = list(coords)
                c[axis] = (c[axis] + delta) % n
                out.append(sum(ci * st for ci, st in zip(c, strides)))
        return out

    return neighbors


def check_routes_bfs(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    router: Callable[[tuple, int, int], np.ndarray] | None = None,
) -> OracleReport:
    """Route validity against breadth-first search on the torus.

    For every (src, dst) message the production router (default:
    :func:`repro.sim.routing.dimension_ordered_route`) must return a
    path that starts at ``src``, ends at ``dst``, moves only along host
    torus edges, and is *minimal* — its hop count equal to the BFS
    distance computed here by plain queue-based search over the
    adjacency.  ``router`` is injectable so mutation tests can prove
    the oracle catches broken routers.
    """
    from repro.sim.routing import dimension_ordered_route

    route_fn = router or dimension_ordered_route
    neighbors = _torus_neighbors(shape)
    size = 1
    for s in shape:
        size *= int(s)
    report = OracleReport("route-bfs", ("router", "bfs"))
    dist_cache: dict[int, np.ndarray] = {}

    def bfs_from(src: int) -> np.ndarray:
        if src not in dist_cache:
            dist = np.full(size, -1, dtype=np.int64)
            dist[src] = 0
            q = deque([src])
            while q:
                u = q.popleft()
                for v in neighbors(u):
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        q.append(v)
            dist_cache[src] = dist
        return dist_cache[src]

    for i, (src, dst) in enumerate(np.asarray(traffic, dtype=np.int64)):
        src, dst = int(src), int(dst)
        report.cases += 1
        at = f"message[{i}]"
        route = [int(x) for x in route_fn(shape, src, dst)]
        if not route or route[0] != src:
            report.mismatches.append(
                Mismatch("route-bfs", "router", "bfs", f"{at}.start",
                         route[0] if route else MISSING, src)
            )
            continue
        if route[-1] != dst:
            report.mismatches.append(
                Mismatch("route-bfs", "router", "bfs", f"{at}.end", route[-1], dst)
            )
            continue
        bad_hop = next(
            (h for h in range(len(route) - 1)
             if route[h + 1] not in neighbors(route[h])),
            None,
        )
        if bad_hop is not None:
            report.mismatches.append(
                Mismatch("route-bfs", "router", "bfs", f"{at}.hop[{bad_hop}]",
                         f"{route[bad_hop]}->{route[bad_hop + 1]}",
                         "not a torus edge")
            )
            continue
        want = int(bfs_from(src)[dst])
        if len(route) - 1 != want:
            report.mismatches.append(
                Mismatch("route-bfs", "router", "bfs", f"{at}.hops",
                         len(route) - 1, want)
            )
    return report


def audit_embedding(bt, recovery, faults: np.ndarray) -> OracleReport:
    """Embedding-vs-host-adjacency audit of a claimed ``B^d_n`` recovery.

    Independent of the production verifier
    (:func:`repro.topology.embeddings.verify_torus_embedding`, which
    consults codec predicates): this audit materialises the host graph
    once, builds a plain Python edge set, and re-checks the claimed
    embedding ``phi`` the obvious way — injectivity, every mapped host
    node alive, every guest torus edge present as a host edge.
    """
    report = OracleReport("embedding-audit", ("claimed-phi", "host-graph"))
    shape = recovery.guest_shape()
    phi = np.asarray(recovery.phi, dtype=np.int64).ravel()
    host_edges = bt.bn.graph().edges()
    edge_set = {(int(min(u, v)), int(max(u, v))) for u, v in host_edges}
    faulty = np.asarray(faults, dtype=bool).ravel()
    size = 1
    for s in shape:
        size *= int(s)
    report.cases = 1
    if phi.shape[0] != size:
        report.mismatches.append(
            Mismatch("embedding-audit", "claimed-phi", "host-graph", "phi.length",
                     phi.shape[0], size)
        )
        return report
    if np.unique(phi).size != phi.size:
        report.mismatches.append(
            Mismatch("embedding-audit", "claimed-phi", "host-graph",
                     "phi.injective", False, True)
        )
    on_faulty = np.flatnonzero(faulty[phi])
    for g in on_faulty[:8]:
        report.mismatches.append(
            Mismatch("embedding-audit", "claimed-phi", "host-graph",
                     f"phi[{int(g)}]", f"host {int(phi[g])} (faulty)", "alive host")
        )
    neighbors = _torus_neighbors(shape)
    seen: set[tuple[int, int]] = set()
    for g in range(size):
        for h in neighbors(g):
            guest_edge = (min(g, h), max(g, h))
            if guest_edge in seen:
                continue
            seen.add(guest_edge)
            report.cases += 1
            hu, hv = int(phi[guest_edge[0]]), int(phi[guest_edge[1]])
            if (min(hu, hv), max(hu, hv)) not in edge_set:
                report.mismatches.append(
                    Mismatch("embedding-audit", "claimed-phi", "host-graph",
                             f"guest-edge[{guest_edge[0]}-{guest_edge[1]}]",
                             f"host {hu}-{hv}", "existing host edge")
                )
                if len(report.mismatches) >= 16:
                    return report
    return report


def brute_force_healthiness(params, faults: np.ndarray, *, max_violations: int = 8) -> dict:
    """Lemma 4's three conditions via plain Python loops.

    Re-derives the per-brick fault-free-row runs (condition 1), fault
    counts (condition 2) and the fault-free enclosing-frame search
    (condition 3) with nothing but ``TileGeometry``'s coordinate
    enumeration and elementwise scans — no sliding windows, no streak
    reductions, no shared helper with the production checkers.
    Violations are collected in the same (corner / tile) enumeration
    order and with the same ``max_violations`` bound, so the record is
    directly diffable against :func:`health_record` of the production
    :class:`~repro.core.healthiness.HealthReport`.
    """
    from repro.topology.grid import TileGeometry

    geo = TileGeometry(params.shape, params.b)
    b, s = params.b, params.s
    rec = {
        "cond1_ok": True, "cond2_ok": True, "cond3_ok": True,
        "cond3_faulty_ok": True,
        "num_faults": int(np.asarray(faults).sum()), "max_brick_faults": 0,
        "cond1_violations": [], "cond2_violations": [], "cond3_violations": [],
    }
    for corner in geo.brick_corners():
        block = np.asarray(geo.brick_node_block(faults, corner))
        rows = block.reshape(block.shape[0], -1)
        # Longest run of fault-free rows, by walking the rows one by one.
        best = run = 0
        for r in range(rows.shape[0]):
            if bool(rows[r].any()):
                run = 0
            else:
                run += 1
                best = max(best, run)
        count = int(block.sum())
        rec["max_brick_faults"] = max(rec["max_brick_faults"], count)
        if best < 2 * b:
            rec["cond1_ok"] = False
            if len(rec["cond1_violations"]) < max_violations:
                rec["cond1_violations"].append(tuple(int(c) for c in corner))
        if count > s:
            rec["cond2_ok"] = False
            if len(rec["cond2_violations"]) < max_violations:
                rec["cond2_violations"].append((tuple(int(c) for c in corner), count))
    tile_faulty = geo.tile_fault_counts(np.asarray(faults)) > 0
    flat_faulty = tile_faulty.ravel()
    for tile_flat in range(geo.grid.size):
        tile = tuple(int(c) for c in geo.grid.unravel(tile_flat))
        enclosed = False
        for size in range(3, b + 1):
            for corner in geo.enclosing_corners(tile, size):
                frame, _ = geo.frame_and_interior(corner, size)
                if not any(bool(flat_faulty[t]) for t in frame):
                    enclosed = True
                    break
            if enclosed:
                break
        if not enclosed:
            rec["cond3_ok"] = False
            if bool(flat_faulty[tile_flat]):
                rec["cond3_faulty_ok"] = False
            if len(rec["cond3_violations"]) < max_violations:
                rec["cond3_violations"].append(tile)
    return rec


def healthiness_oracle(params, fault_stack: np.ndarray) -> OracleReport:
    """Three-way healthiness diff: brute force vs scalar vs batched.

    ``fault_stack`` has shape ``(trials, *params.shape)``; every slice is
    checked by the brute-force reference, the production scalar checker
    and the vectorized batch checker, and all three records must agree
    field for field (including the bounded violation samples).
    """
    from repro.core.healthiness import check_healthiness, check_healthiness_batch

    report = OracleReport("healthiness", ("brute-force", "scalar", "batch"))
    batch_reports = check_healthiness_batch(params, fault_stack)
    for i in range(fault_stack.shape[0]):
        report.cases += 1
        ref = brute_force_healthiness(params, fault_stack[i])
        scalar = health_record(check_healthiness(params, fault_stack[i]))
        batched = health_record(batch_reports[i])
        report.mismatches += diff_values(
            ref, scalar, oracle="healthiness", left="brute-force", right="scalar",
            path=f"trial[{i}]",
        )
        report.mismatches += diff_values(
            scalar, batched, oracle="healthiness", left="scalar", right="batch",
            path=f"trial[{i}]",
        )
    return report
