"""Golden-artifact registry: canonical result JSONs gated against drift.

The ``repro-experiment-v1`` format (docs/results-format.md) is a
compatibility surface: saved experiments must stay loadable and —
because every determinism claim is phrased as *byte-identical JSON* —
must keep serialising to the same bytes for the same spec.  The golden
gate makes that executable: a small registry of canonical
:class:`~repro.api.experiment.ExperimentSpec`\\ s covering all four
pillars is recomputed and diffed field-for-field against snapshots
committed under ``tests/golden/``.

A golden failure means one of two things, and the field-level diff says
which:

* an intentional format/semantics change — regenerate with
  ``repro-ft conformance --update-golden`` and review the JSON diff in
  the PR like any other source change;
* an accidental drift (RNG stream moved, aggregation reordered, a float
  path changed) — a real regression the byte-identity contract exists
  to catch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.api.experiment import ExperimentSpec
from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec
from repro.testkit.oracles import Mismatch, OracleReport, diff_values

__all__ = [
    "GOLDEN_CASES",
    "GoldenCase",
    "check_golden",
    "compute_case",
    "default_golden_dir",
    "write_golden",
]


@dataclass(frozen=True)
class GoldenCase:
    """One canonical computation whose serialised result is pinned.

    ``kind`` selects the computation: ``"experiment"`` replays ``spec``
    through the reference :class:`~repro.api.experiment.ExperimentRunner`
    backend; ``"serve"`` replays the canned serve session
    (:func:`repro.serve.state.scripted_session` — events, live traffic
    queries, telemetry snapshot and state digest, no sockets).
    """

    name: str
    spec: ExperimentSpec | None = None
    kind: str = "experiment"

    @property
    def filename(self) -> str:
        return f"{self.name}.json"


#: The canonical registry: one fast case per pillar (plus the adversarial
#: and an paths, which exercise different RNG streams and aggregates).
#: Kept deliberately small — the gate runs on every CI push.
GOLDEN_CASES: tuple[GoldenCase, ...] = (
    GoldenCase(
        "bn-survival",
        ExperimentSpec(
            construction="bn",
            params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(FaultSpec(p=1e-3), FaultSpec(p=5e-3, q=1e-3)),
            trials=6,
            name="golden-bn-survival",
        ),
    ),
    GoldenCase(
        "dn-adversarial",
        ExperimentSpec(
            construction="dn",
            params={"d": 2, "n": 70, "b": 2},
            grid=(FaultSpec(pattern="random", k=8), FaultSpec(pattern="diagonal", k=8)),
            trials=4,
            name="golden-dn-adversarial",
        ),
    ),
    GoldenCase(
        "an-survival",
        ExperimentSpec(
            construction="an",
            params={"d": 2, "b": 3, "s": 1, "t": 2, "k_sub": 2, "h": 8},
            grid=(FaultSpec(p=0.1),),
            trials=6,
            name="golden-an-survival",
        ),
    ),
    GoldenCase(
        "bn-lifetime",
        ExperimentSpec(
            construction="bn",
            params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(
                LifetimeSpec(),
                LifetimeSpec(timeline="bernoulli", rate=0.002, max_steps=40),
            ),
            trials=6,
            name="golden-bn-lifetime",
        ),
    ),
    GoldenCase(
        "bn-traffic",
        ExperimentSpec(
            construction="bn",
            params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(
                TrafficSpec(pattern="transpose", messages=48),
                TrafficSpec(pattern="uniform", injection="bernoulli", rate=0.02,
                            cycles=40, warmup=10),
            ),
            trials=6,
            name="golden-bn-traffic",
        ),
    ),
    # The fifth pillar: a canned serve session (scripted fault/repair
    # ingestion + live-embedding traffic queries + telemetry + digest),
    # wall-clock-free by construction so its payload is byte-stable.
    GoldenCase("serve-session", kind="serve"),
)


def default_golden_dir() -> Path:
    """``tests/golden/`` of the source checkout this module runs from.

    The library is used from a ``PYTHONPATH=src`` checkout (see
    setup.py); goldens are repository artifacts, not package data, so
    they resolve relative to the repository root.
    """
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def compute_case(case: GoldenCase) -> dict:
    """Recompute the case's result payload with the reference backend.

    Experiments run serial scalar execution on purpose: every other
    backend is asserted equal to it by
    :func:`repro.testkit.oracles.runner_backends_oracle`, so pinning the
    reference pins them all.  Serve sessions replay the scripted session
    directly on :class:`~repro.serve.state.MachineState` — the socket
    path is asserted equal to that state in tests/test_serve.py.
    """
    if case.kind == "serve":
        from repro.serve.state import scripted_session

        return scripted_session()
    from repro.api.experiment import ExperimentRunner

    return ExperimentRunner(workers=1, batch=False).run(case.spec).to_dict()


def _canonical_text(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_golden(case: GoldenCase, directory: "Path | str | None" = None) -> Path:
    """(Re)snapshot one case; returns the artifact path."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case.filename
    path.write_text(_canonical_text(compute_case(case)), encoding="utf-8")
    return path


def check_golden(case: GoldenCase, directory: "Path | str | None" = None) -> OracleReport:
    """Recompute one case and diff it against its committed snapshot."""
    directory = Path(directory) if directory is not None else default_golden_dir()
    path = directory / case.filename
    oracle = f"golden:{case.name}"
    report = OracleReport(oracle, ("snapshot", "recomputed"), cases=1)
    if not path.exists():
        report.mismatches.append(
            Mismatch(oracle, "snapshot", "recomputed", str(path),
                     "committed golden artifact",
                     "missing — run `repro-ft conformance --update-golden`")
        )
        return report
    stored = json.loads(path.read_text(encoding="utf-8"))
    recomputed = compute_case(case)
    report.mismatches += diff_values(
        stored, recomputed, oracle=oracle, left="snapshot", right="recomputed"
    )
    if report.ok and path.read_text(encoding="utf-8") != _canonical_text(recomputed):
        report.mismatches.append(
            Mismatch(oracle, "snapshot", "recomputed", "<canonical-json>",
                     "committed bytes", "canonical serialisation drifted")
        )
    return report
