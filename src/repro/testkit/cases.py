"""Deterministic case pools shared by strategies, oracles and the CLI.

Everything here is plain data and plain Python — **no hypothesis** —
so the conformance CLI (``repro-ft conformance``) and the oracle layer
can use the canonical pools in environments without the test extra
installed.  :mod:`repro.testkit.strategies` re-exports all of it next
to the hypothesis strategies, so tests keep a single import surface.
"""

from __future__ import annotations

from repro.api.protocol import LifetimeSpec

__all__ = [
    "ADVERSARY_PATTERN_NAMES",
    "BN_PARAM_SETS",
    "NON_POW2_SHAPES",
    "ROUTER_NAMES",
    "SMALL_CONSTRUCTIONS",
    "TRAFFIC_PATTERN_NAMES",
    "UNIVERSAL_SHAPES",
    "patterns_for",
    "timeline_cases",
]

#: Small-but-real ``B^d_n`` parameter sets spanning d=1, d=2 and both s
#: values (historically duplicated at the top of tests/test_fastpath.py).
BN_PARAM_SETS = [
    dict(d=1, b=3, s=1, t=2),
    dict(d=2, b=3, s=1, t=2),
    dict(d=2, b=4, s=1, t=2),
    dict(d=2, b=5, s=2, t=2),
]

#: Guest shapes valid for every traffic pattern (power-of-two size,
#: sides >= 2, non-degenerate transpose).
UNIVERSAL_SHAPES = [(4, 4), (8, 8), (2, 8), (4, 4, 4), (2, 4, 8)]

#: Valid for everything except bitreverse (non-power-of-two sizes).
NON_POW2_SHAPES = [(6, 6), (5, 7), (3, 9, 2), (36, 36)]

#: Adversarial campaign names (mirrors repro.faults.adversary, kept
#: literal so drawing a strategy never imports the adversary module;
#: tests/test_testkit.py asserts the mirror stays in sync).
ADVERSARY_PATTERN_NAMES = ("cluster", "cols", "diagonal", "random", "residue", "rows")

#: Traffic pattern names (mirrors repro.sim.traffic.TRAFFIC_PATTERNS;
#: same sync test).
TRAFFIC_PATTERN_NAMES = ("bitreverse", "hotspot", "neighbor", "transpose", "uniform")

#: Router names (mirrors repro.sim.routing.ROUTERS; same sync test).
ROUTER_NAMES = ("dimension", "adaptive")

#: One small parameterisation per registry entry — what a conformance
#: sweep over "every construction" instantiates.  (alon_chung has no
#: torus guest: traffic oracles skip it by capability probing, exactly
#: like the runner does.)
SMALL_CONSTRUCTIONS = [
    ("bn", dict(d=2, b=3, s=1, t=2)),
    ("an", dict(d=2, b=3, s=1, t=2, k_sub=2, h=8)),
    ("dn", dict(d=2, n=70, b=2)),
    ("alon_chung", dict(n=20)),
    ("replication", dict(n=8, d=2, replication=3)),
    ("sparerows", dict(n=10, sigma=4)),
]


def patterns_for(shape: tuple[int, ...]) -> list[str]:
    """Traffic patterns valid on ``shape`` (bitreverse needs 2^k >= 4 nodes)."""
    size = 1
    for s in shape:
        size *= int(s)
    pats = ["uniform", "hotspot", "neighbor", "transpose"]
    if size >= 4 and size & (size - 1) == 0:
        pats.append("bitreverse")
    return pats


def timeline_cases(minimum: int = 200) -> list[tuple[int, LifetimeSpec]]:
    """Seeded timeline points across every kind (>= ``minimum`` cases).

    The incremental-vs-full-recompute contract (ISSUE 3's acceptance
    bar) is asserted over exactly this list; the repair-mode oracle
    replays subsets of it.  Deterministic, so failures reproduce by
    ``(seed, spec.label())``.
    """
    cases: list[tuple[int, LifetimeSpec]] = []
    for seed in range(80):
        cases.append((seed, LifetimeSpec()))
    for seed in range(40):
        cases.append(
            (1000 + seed, LifetimeSpec(timeline="uniform", repair_rate=0.2, max_steps=80))
        )
    for seed in range(30):
        cases.append(
            (2000 + seed, LifetimeSpec(timeline="bernoulli", rate=0.002, max_steps=60))
        )
    for seed in range(25):
        cases.append((3000 + seed, LifetimeSpec(timeline="burst", burst=3, max_steps=40)))
    for pattern in ("random", "cluster", "rows", "diagonal", "residue"):
        for seed in range(5):
            cases.append(
                (4000 + seed, LifetimeSpec(timeline="adversarial", pattern=pattern))
            )
    assert len(cases) >= minimum
    return cases
