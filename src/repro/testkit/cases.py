"""Deterministic case pools shared by strategies, oracles and the CLI.

Everything here is plain data and plain Python — **no hypothesis** —
so the conformance CLI (``repro-ft conformance``) and the oracle layer
can use the canonical pools in environments without the test extra
installed.  :mod:`repro.testkit.strategies` re-exports all of it next
to the hypothesis strategies, so tests keep a single import surface.
"""

from __future__ import annotations

from repro.api.protocol import _TRAFFIC_PATTERNS, _TRAFFIC_ROUTERS, LifetimeSpec
from repro.faults.registry import ADVERSARY_PATTERN_NAMES

__all__ = [
    "ADVERSARY_PATTERN_NAMES",
    "BN_PARAM_SETS",
    "FAULT_MODEL_CASES",
    "NON_POW2_SHAPES",
    "ROUTER_NAMES",
    "SMALL_CONSTRUCTIONS",
    "TRAFFIC_PATTERN_NAMES",
    "UNIVERSAL_SHAPES",
    "patterns_for",
    "timeline_cases",
]

#: Small-but-real ``B^d_n`` parameter sets spanning d=1, d=2 and both s
#: values (historically duplicated at the top of tests/test_fastpath.py).
BN_PARAM_SETS = [
    dict(d=1, b=3, s=1, t=2),
    dict(d=2, b=3, s=1, t=2),
    dict(d=2, b=4, s=1, t=2),
    dict(d=2, b=5, s=2, t=2),
]

#: Guest shapes valid for every traffic pattern (power-of-two size,
#: sides >= 2, non-degenerate transpose).
UNIVERSAL_SHAPES = [(4, 4), (8, 8), (2, 8), (4, 4, 4), (2, 4, 8)]

#: Valid for everything except bitreverse (non-power-of-two sizes).
NON_POW2_SHAPES = [(6, 6), (5, 7), (3, 9, 2), (36, 36)]

#: Traffic pattern / router names, derived from the import-light spec
#: validation tables in :mod:`repro.api.protocol` (which the numpy-heavy
#: sim modules are themselves held to) — no hand-kept literal mirror.
#: ``ADVERSARY_PATTERN_NAMES`` is re-exported straight from
#: :mod:`repro.faults.registry`, the single source of those names.
TRAFFIC_PATTERN_NAMES = tuple(sorted(_TRAFFIC_PATTERNS))
ROUTER_NAMES = tuple(_TRAFFIC_ROUTERS)

#: One parameterisation per registered fault model (plus a second
#: Byzantine point with a skewed behavior mix) — what the conformance
#: ``fault-model:*`` stages and the model-bearing strategies draw from.
#: tests/test_testkit.py asserts every registry name appears here.
FAULT_MODEL_CASES = [
    {"name": "bernoulli", "p": 0.01},
    {"name": "halfedge", "q": 0.004},
    {"name": "byzantine", "rate": 0.05},
    {"name": "byzantine", "rate": 0.1, "misroute": 2.0, "drop": 1.0, "corrupt": 0.5},
    {"name": "neighbor", "p": 0.005},
    {"name": "component", "rate": 0.02, "width": 2},
]

#: One small parameterisation per registry entry — what a conformance
#: sweep over "every construction" instantiates.  (alon_chung has no
#: torus guest: traffic oracles skip it by capability probing, exactly
#: like the runner does.)
SMALL_CONSTRUCTIONS = [
    ("bn", dict(d=2, b=3, s=1, t=2)),
    ("an", dict(d=2, b=3, s=1, t=2, k_sub=2, h=8)),
    ("dn", dict(d=2, n=70, b=2)),
    ("alon_chung", dict(n=20)),
    ("replication", dict(n=8, d=2, replication=3)),
    ("sparerows", dict(n=10, sigma=4)),
]


def patterns_for(shape: tuple[int, ...]) -> list[str]:
    """Traffic patterns valid on ``shape`` (bitreverse needs 2^k >= 4 nodes)."""
    size = 1
    for s in shape:
        size *= int(s)
    pats = ["uniform", "hotspot", "neighbor", "transpose"]
    if size >= 4 and size & (size - 1) == 0:
        pats.append("bitreverse")
    return pats


def timeline_cases(minimum: int = 200) -> list[tuple[int, LifetimeSpec]]:
    """Seeded timeline points across every kind (>= ``minimum`` cases).

    The incremental-vs-full-recompute contract (ISSUE 3's acceptance
    bar) is asserted over exactly this list; the repair-mode oracle
    replays subsets of it.  Deterministic, so failures reproduce by
    ``(seed, spec.label())``.
    """
    cases: list[tuple[int, LifetimeSpec]] = []
    for seed in range(80):
        cases.append((seed, LifetimeSpec()))
    for seed in range(40):
        cases.append(
            (1000 + seed, LifetimeSpec(timeline="uniform", repair_rate=0.2, max_steps=80))
        )
    for seed in range(30):
        cases.append(
            (2000 + seed, LifetimeSpec(timeline="bernoulli", rate=0.002, max_steps=60))
        )
    for seed in range(25):
        cases.append((3000 + seed, LifetimeSpec(timeline="burst", burst=3, max_steps=40)))
    for pattern in ("random", "cluster", "rows", "diagonal", "residue"):
        for seed in range(5):
            cases.append(
                (4000 + seed, LifetimeSpec(timeline="adversarial", pattern=pattern))
            )
    assert len(cases) >= minimum
    return cases
