"""Reusable hypothesis strategies over the canonical case pools.

One home for every scenario generator the test suite needs: valid
:class:`~repro.api.protocol.FaultSpec` / :class:`LifetimeSpec` /
:class:`TrafficSpec` points, guest-torus shapes, small-but-real
construction parameterisations from the registry, and the seeded
timeline case list the incremental-repair contract is asserted over.
``tests/test_fastpath.py``, ``tests/test_traffic.py`` and
``tests/test_online.py`` historically each carried a private copy of
these; they now import from here, and any future backend's conformance
tests start from the same generators.

Every strategy yields *constructed* spec objects, so drawing from one
exercises the specs' ``__post_init__`` validation — a draw that
survives is valid by definition.

This module imports ``hypothesis`` (a test-only dependency) at the top
level; production code must not import it.  The deterministic pools it
re-exports (``BN_PARAM_SETS``, the shape lists, ``timeline_cases``, …)
live in the hypothesis-free :mod:`repro.testkit.cases`, which is what
the oracle/golden/conformance layers — and through them the
``repro-ft conformance`` CLI — depend on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec
from repro.testkit.cases import (
    ADVERSARY_PATTERN_NAMES,
    BN_PARAM_SETS,
    FAULT_MODEL_CASES,
    NON_POW2_SHAPES,
    ROUTER_NAMES,
    SMALL_CONSTRUCTIONS,
    TRAFFIC_PATTERN_NAMES,
    UNIVERSAL_SHAPES,
    patterns_for,
    timeline_cases,
)

__all__ = [
    "ADVERSARY_PATTERN_NAMES",
    "BN_PARAM_SETS",
    "FAULT_MODEL_CASES",
    "NON_POW2_SHAPES",
    "ROUTER_NAMES",
    "SMALL_CONSTRUCTIONS",
    "TRAFFIC_PATTERN_NAMES",
    "UNIVERSAL_SHAPES",
    "bn_params",
    "construction_cases",
    "fault_model_dicts",
    "fault_specs",
    "lifetime_specs",
    "patterns_for",
    "seeds",
    "shapes",
    "timeline_cases",
    "traffic_specs",
]


def fault_model_dicts(*, behaviors: tuple = ("crash", "byzantine")) -> st.SearchStrategy:
    """A registered fault-model dict from :data:`FAULT_MODEL_CASES`.

    ``behaviors`` restricts the pool (e.g. ``("crash",)`` for paths
    where Byzantine nodes have no meaning).  Dicts are drawn as fresh
    copies so a consumer mutating one cannot poison the pool.
    """
    from repro.faults.registry import get_model_class

    pool = [
        m for m in FAULT_MODEL_CASES
        if get_model_class(m["name"]).behavior in behaviors
    ]
    return st.sampled_from(pool).map(dict)


def bn_params() -> st.SearchStrategy:
    """One of the :data:`BN_PARAM_SETS` factory-kwargs dicts."""
    return st.sampled_from(BN_PARAM_SETS)


def shapes(*, include_non_pow2: bool = True) -> st.SearchStrategy:
    """A guest-torus shape drawn from the canonical shape pools."""
    pool = UNIVERSAL_SHAPES + (NON_POW2_SHAPES if include_non_pow2 else [])
    return st.sampled_from(pool)


def seeds(max_value: int = 10_000) -> st.SearchStrategy:
    """A trial seed."""
    return st.integers(min_value=0, max_value=max_value)


def construction_cases() -> st.SearchStrategy:
    """A ``(registry_key, factory_params)`` pair from :data:`SMALL_CONSTRUCTIONS`."""
    return st.sampled_from(SMALL_CONSTRUCTIONS)


@st.composite
def fault_specs(
    draw,
    *,
    adversarial: bool | None = None,
    max_k: int = 12,
    p_pool: tuple = (0.0, 1e-4, 1e-3, 0.01, 0.05, 0.3),
    q_pool: tuple = (0.0, 0.001, 0.01),
    with_model: bool | None = False,
) -> FaultSpec:
    """A valid :class:`FaultSpec` — Bernoulli, adversarial, or model-bearing.

    ``adversarial=None`` draws either kind; ``True``/``False`` pins it.
    Adversarial specs always carry an explicit ``k`` (several
    constructions require one).  ``with_model=True`` pins a registered
    fault-model dict (replacing the p/q/pattern/k knobs, per the spec's
    own validation); ``None`` draws model-bearing specs alongside the
    historical kinds; ``False`` (the default, preserving the historical
    draw space) never does.
    """
    model = False if with_model is False else (
        draw(st.booleans()) if with_model is None else True
    )
    if model:
        return FaultSpec(fault_model=draw(fault_model_dicts()))
    adv = draw(st.booleans()) if adversarial is None else adversarial
    if adv:
        pattern = draw(st.sampled_from(ADVERSARY_PATTERN_NAMES))
        k = draw(st.integers(min_value=0, max_value=max_k))
        return FaultSpec(pattern=pattern, k=k)
    p = draw(st.sampled_from(p_pool))
    q = draw(st.sampled_from(q_pool))
    return FaultSpec(p=float(p), q=float(q))


@st.composite
def lifetime_specs(
    draw,
    *,
    kinds: tuple = ("uniform", "bernoulli", "burst", "adversarial"),
    with_repair: bool | None = None,
    with_model: bool | None = False,
) -> LifetimeSpec:
    """A valid :class:`LifetimeSpec` across every timeline kind.

    Field combinations mirror the spec's own validation: step-driven
    kinds always carry ``max_steps``, adversarial kinds a pattern.
    ``with_repair`` pins ``repair_rate`` to zero (``False``) or nonzero
    (``True``); ``None`` draws either.  ``with_model`` works as in
    :func:`fault_specs`: a model-bearing spec replaces the
    timeline/rate/burst/pattern/k knobs (repair still composes).
    """
    repair = draw(st.booleans()) if with_repair is None else with_repair
    rho = draw(st.sampled_from((0.1, 0.2, 0.5))) if repair else 0.0
    model = False if with_model is False else (
        draw(st.booleans()) if with_model is None else True
    )
    if model:
        return LifetimeSpec(
            fault_model=draw(fault_model_dicts(behaviors=("crash",))),
            repair_rate=rho,
            max_steps=draw(st.sampled_from((20, 40, 80))),
        )
    kind = draw(st.sampled_from(kinds))
    if kind == "uniform":
        max_steps = draw(st.sampled_from((None, 40, 80)))
        if repair and max_steps is None:
            max_steps = 80  # repair-only streams need a bound to terminate
        return LifetimeSpec(timeline="uniform", repair_rate=rho, max_steps=max_steps)
    if kind == "bernoulli":
        rate = draw(st.sampled_from((0.001, 0.002, 0.01)))
        max_steps = draw(st.sampled_from((20, 60)))
        return LifetimeSpec(
            timeline="bernoulli", rate=rate, repair_rate=rho, max_steps=max_steps
        )
    if kind == "burst":
        burst = draw(st.sampled_from((1, 3)))
        max_steps = draw(st.sampled_from((20, 40)))
        return LifetimeSpec(
            timeline="burst", burst=burst, repair_rate=rho, max_steps=max_steps
        )
    pattern = draw(st.sampled_from(ADVERSARY_PATTERN_NAMES))
    k = draw(st.sampled_from((None, 8, 20)))
    max_steps = draw(st.sampled_from((None, 50)))
    return LifetimeSpec(
        timeline="adversarial", pattern=pattern, k=k, repair_rate=rho,
        max_steps=max_steps,
    )


@st.composite
def traffic_specs(
    draw,
    *,
    open_loop: bool | None = None,
    patterns: tuple = TRAFFIC_PATTERN_NAMES,
    max_messages: int = 200,
    with_qos: bool | None = None,
    with_model: bool | None = False,
) -> TrafficSpec:
    """A valid :class:`TrafficSpec` — closed-loop batch or open-loop.

    Open-loop draws keep ``warmup < cycles`` coherent by construction.
    Callers sweeping shapes should guard with :func:`patterns_for`
    (transpose/bitreverse raise on degenerate shapes — by design).
    ``with_qos`` pins the router/QoS/credit knobs to their defaults
    (``False``) or forces non-default draws (``True``); ``None`` draws
    either, defaults weighted in so the historical spec space stays
    covered.  ``with_model`` attaches a fault-model dict (crash models
    fault the network under the workload, Byzantine models perturb
    traversing messages); it composes freely with every other knob.
    """
    pattern = draw(st.sampled_from(patterns))
    open_ = draw(st.booleans()) if open_loop is None else open_loop
    max_cycles = draw(st.sampled_from((5, 200, 10_000)))
    qos = draw(st.booleans()) if with_qos is None else with_qos
    model = False if with_model is False else (
        draw(st.booleans()) if with_model is None else True
    )
    fault_model = draw(fault_model_dicts()) if model else None
    if qos:
        router = draw(st.sampled_from(ROUTER_NAMES))
        qos_classes = draw(st.sampled_from((2, 3)))
        credits = draw(st.sampled_from((0, 1, 4, 16)))
    else:
        router, qos_classes, credits = "dimension", 1, 0
    if not open_:
        messages = draw(st.integers(min_value=1, max_value=max_messages))
        return TrafficSpec(
            pattern=pattern, messages=messages, max_cycles=max_cycles,
            router=router, qos_classes=qos_classes, credits=credits,
            fault_model=fault_model,
        )
    injection = draw(st.sampled_from(("bernoulli", "periodic")))
    rate = draw(st.sampled_from((0.01, 0.05, 0.2)))
    cycles = draw(st.sampled_from((1, 13, 60)))
    warmup = draw(st.integers(min_value=0, max_value=cycles - 1))
    return TrafficSpec(
        pattern=pattern, injection=injection, rate=rate, cycles=cycles,
        warmup=warmup, max_cycles=max_cycles,
        router=router, qos_classes=qos_classes, credits=credits,
        fault_model=fault_model,
    )
