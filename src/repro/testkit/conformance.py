"""The conformance suite behind ``repro-ft conformance`` and the CI job.

One entry point, :func:`run_conformance`, executes the full verification
stack over a canonical scenario matrix:

1. the golden-artifact gate (:mod:`repro.testkit.golden`) — format and
   byte-identity drift;
2. runner-backend oracles — serial vs parallel, scalar vs batched, for
   fault, lifetime and traffic grids on every capable construction —
   plus the streaming-execution stages: incremental merge vs the
   materialized collect-then-merge reference (including a starved
   ``max_batch_bytes`` budget) and checkpoint/resume byte-identity with
   the journal cut at every chunk boundary;
3. per-trial backend oracles — the vectorized kernels against the
   scalar loops, outcome for outcome — plus the ``compiled:*`` stages
   probing the optional JIT tier against the same scalar references
   (reporting an explicit ``skipped`` when numba is absent, never a
   silent pass), and the ``fault-model:*`` stages: every registered
   fault model against an independent reference sampler, its analytic
   expectation, and (for Byzantine models) the scalar-vs-vectorized
   engine cross-check;
4. the repair-mode oracle — incremental vs full-recompute lifetimes;
5. the independent reference checkers — BFS route validity, adaptive
   routing vs healthy-subgraph reachability (plus the engines diffed
   under QoS/credit knobs on a seeded fault mask), embedding-vs-host
   audit, brute-force healthiness.

``quick=True`` is the CI tier: the same oracles on a reduced seed/shape
matrix (the historical hand-rolled byte-identity smoke steps, unified).
``quick=False`` widens seeds, shapes and constructions for local deep
runs.  Hypothesis is *not* involved — the matrix is deterministic
(pools from the hypothesis-free :mod:`repro.testkit.cases`), so the CLI
runs without the test extra installed and a CI failure reproduces
locally with no shrinking needed.
"""

from __future__ import annotations

from typing import Callable

from repro.api.experiment import ExperimentSpec
from repro.api.protocol import FaultSpec, LifetimeSpec, TrafficSpec
from repro.testkit.oracles import (
    OracleReport,
    adaptive_router_oracle,
    audit_embedding,
    check_routes_bfs,
    checkpoint_resume_oracle,
    fault_model_oracle,
    healthiness_oracle,
    repair_mode_oracle,
    runner_backends_oracle,
    sim_engines_oracle,
    streaming_merge_oracle,
    trial_backend_oracle,
)

__all__ = ["run_conformance"]


def _runner_specs(quick: bool) -> list[ExperimentSpec]:
    """Experiment grids spanning all three spec kinds and several
    constructions; trials exceed one chunk so parallel runs genuinely
    fan out."""
    bn = {"d": 2, "b": 3, "s": 1, "t": 2}
    specs = [
        ExperimentSpec(
            construction="bn", params=bn,
            grid=(FaultSpec(p=1e-3), FaultSpec(p=0.01, q=1e-3)),
            trials=20, name="conf-bn-faults",
        ),
        ExperimentSpec(
            construction="bn", params=bn,
            grid=(LifetimeSpec(),), trials=20, name="conf-bn-lifetime",
        ),
        ExperimentSpec(
            construction="bn", params=bn,
            grid=(
                TrafficSpec(pattern="transpose", messages=48),
                TrafficSpec(pattern="uniform", injection="bernoulli", rate=0.02,
                            cycles=40, warmup=10),
                TrafficSpec(pattern="uniform", messages=48, router="adaptive",
                            qos_classes=2, credits=6),
            ),
            trials=20, name="conf-bn-traffic",
        ),
        ExperimentSpec(
            construction="dn", params={"d": 2, "n": 70, "b": 2},
            grid=(FaultSpec(pattern="random", k=8),),
            trials=18, name="conf-dn-adversarial",
        ),
        # Model-bearing specs across all three pillars: crash models in
        # survival + lifetime trials, a Byzantine model perturbing the
        # traffic engines — same serial/parallel/scalar/batch contract.
        ExperimentSpec(
            construction="bn", params=bn,
            grid=(
                FaultSpec(fault_model={"name": "neighbor", "p": 0.002}),
                FaultSpec(fault_model={"name": "component", "rate": 0.01}),
                TrafficSpec(pattern="uniform", messages=48,
                            fault_model={"name": "byzantine", "rate": 0.08}),
                LifetimeSpec(fault_model={"name": "bernoulli", "p": 0.002},
                             repair_rate=0.2, max_steps=40),
            ),
            trials=18, name="conf-bn-fault-models",
        ),
    ]
    if not quick:
        specs += [
            ExperimentSpec(
                construction="an",
                params={"d": 2, "b": 3, "s": 1, "t": 2, "k_sub": 2, "h": 8},
                grid=(FaultSpec(p=0.1),), trials=20, name="conf-an-faults",
            ),
            ExperimentSpec(
                construction="replication", params={"n": 8, "d": 2, "replication": 3},
                grid=(FaultSpec(p=0.05), TrafficSpec(pattern="uniform", messages=40)),
                trials=20, name="conf-replication",
            ),
            ExperimentSpec(
                construction="sparerows", params={"n": 10, "sigma": 4},
                grid=(FaultSpec(pattern="random", k=4), LifetimeSpec(max_steps=30)),
                trials=20, name="conf-sparerows",
            ),
        ]
    return specs


def run_conformance(
    *,
    quick: bool = False,
    golden_dir=None,
    update_golden: bool = False,
    emit: Callable[[str], None] | None = None,
) -> list[OracleReport]:
    """Run the whole conformance suite; returns every oracle report.

    ``emit`` (when given) receives one progress line per oracle as it
    completes — the CLI wires it to ``print`` so long runs show
    incremental output.  Callers decide what to do with failures;
    ``all(r.ok for r in reports)`` is the gate.
    """
    import numpy as np

    from repro.api.registry import get
    from repro.core.params import BnParams
    from repro.sim.traffic import make_traffic
    from repro.testkit.cases import timeline_cases
    from repro.testkit.golden import GOLDEN_CASES, check_golden, write_golden
    from repro.util.rng import spawn_rng

    reports: list[OracleReport] = []

    def done(report: OracleReport) -> OracleReport:
        reports.append(report)
        if emit is not None:
            emit(report.summary())
        return report

    # 1. Golden gate -------------------------------------------------------
    for case in GOLDEN_CASES:
        if update_golden:
            path = write_golden(case, golden_dir)
            if emit is not None:
                emit(f"golden:{case.name}: rewritten ({path})")
        done(check_golden(case, golden_dir))

    # 2. Runner backends ---------------------------------------------------
    for spec in _runner_specs(quick):
        report = runner_backends_oracle(spec)
        report.oracle = f"runner-backends:{spec.name}"
        done(report)

    # 2b. Streaming execution: incremental merge + checkpoint/resume -------
    # The runner-backend matrix above already runs every spec through the
    # streaming fold; these stages pin the *new* contracts on a bn spec
    # with several chunks per point: streamed == materialized merge byte
    # for byte (also under a starved sub-chunk budget), and resume from a
    # journal cut at every chunk boundary == the uninterrupted run.
    stream_specs = [_runner_specs(True)[0]]
    if not quick:
        stream_specs.append(ExperimentSpec(
            construction="bn", params={"d": 2, "b": 3, "s": 1, "t": 2},
            grid=(LifetimeSpec(), TrafficSpec(pattern="uniform", messages=48)),
            trials=20, name="conf-bn-stream-mixed",
        ))
    for spec in stream_specs:
        report = streaming_merge_oracle(spec)
        report.oracle = f"streaming-merge:{spec.name}"
        done(report)
        report = checkpoint_resume_oracle(spec)
        report.oracle = f"checkpoint-resume:{spec.name}"
        done(report)

    # 3. Per-trial kernels against their scalar loops ----------------------
    n_seeds = 4 if quick else 10
    bn = get("bn", d=2, b=3, s=1, t=2)
    an = get("an", d=2, b=3, s=1, t=2, k_sub=2, h=8)
    trial_matrix = [
        (bn, FaultSpec(p=1e-3)),
        (bn, FaultSpec(p=0.02, q=1e-3)),
        (an, FaultSpec(p=0.1)),
        (bn, LifetimeSpec()),
        (bn, TrafficSpec(pattern="uniform", messages=60)),
        (bn, TrafficSpec(pattern="transpose", injection="periodic", rate=0.05,
                         cycles=30, warmup=5)),
        (bn, TrafficSpec(pattern="uniform", messages=60, router="adaptive",
                         qos_classes=3, credits=4)),
        (bn, FaultSpec(fault_model={"name": "neighbor", "p": 0.003})),
        (bn, TrafficSpec(pattern="uniform", messages=60,
                         fault_model={"name": "byzantine", "rate": 0.1})),
        # Lifetime batch capability is gated off for model specs — this
        # entry documents the probe (a skipped report, not a silent gap).
        (bn, LifetimeSpec(fault_model={"name": "component", "rate": 0.005},
                          repair_rate=0.2, max_steps=40)),
    ]
    if not quick:
        trial_matrix += [
            (bn, FaultSpec(p=0.05)),
            (an, FaultSpec(p=0.3)),
            (bn, LifetimeSpec(max_steps=25)),
            (get("sparerows", n=10, sigma=4),
             TrafficSpec(pattern="hotspot", messages=80)),
            (bn, TrafficSpec(pattern="hotspot", injection="bernoulli", rate=0.05,
                             cycles=40, warmup=8, qos_classes=2, credits=12)),
        ]
    for construction, spec in trial_matrix:
        report = trial_backend_oracle(construction, spec, range(n_seeds))
        report.oracle = f"{report.oracle}:{construction.name}:{spec.label()}"
        done(report)

    # 3a. The compiled kernel tier against the same scalar loops -----------
    # One stage per hot kernel (bn survival, lifetime lockstep, traffic
    # arbitration).  Where the JIT dependency is absent these stages
    # *report* — each shows an explicit ``skipped`` line rather than
    # silently vanishing, so CI can assert the tier was probed.
    compiled_matrix = [
        (bn, FaultSpec(p=0.02, q=1e-3)),
        (bn, LifetimeSpec()),
        (bn, TrafficSpec(pattern="uniform", messages=60, router="adaptive",
                         qos_classes=3, credits=4)),
    ]
    if not quick:
        compiled_matrix += [
            (bn, FaultSpec(p=1e-3)),
            (bn, TrafficSpec(pattern="uniform", messages=60,
                             fault_model={"name": "byzantine", "rate": 0.1})),
        ]
    for construction, spec in compiled_matrix:
        report = trial_backend_oracle(
            construction, spec, range(n_seeds), tier="compiled"
        )
        base = report.oracle.replace("-compiled", "")
        report.oracle = f"compiled:{base}:{construction.name}:{spec.label()}"
        done(report)

    # 3b. Fault models against their independent references ----------------
    from repro.testkit.cases import FAULT_MODEL_CASES

    for model_dict in FAULT_MODEL_CASES:
        extras = ",".join(
            f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(model_dict.items()) if k != "name"
        )
        report = fault_model_oracle(
            model_dict,
            shapes=((6, 6),) if quick else ((6, 6), (4, 4, 4), (5, 7)),
            seeds=range(2) if quick else range(4),
            empirical_draws=40 if quick else 100,
        )
        report.oracle = f"fault-model:{model_dict['name']}" + (
            f"[{extras}]" if extras else ""
        )
        done(report)

    # 4. Incremental vs full-recompute repair ------------------------------
    cases = timeline_cases()
    if quick:
        cases = cases[::33]  # every timeline kind still represented
    done(repair_mode_oracle(BnParams(d=2, b=3, s=1, t=2), cases))

    # 5. Independent reference checkers ------------------------------------
    shapes = [(6, 6), (4, 4)] if quick else [(6, 6), (4, 4), (2, 8), (5, 7), (2, 4, 8)]
    from repro.api.traffic import message_classes
    from repro.sim.routing import fault_predicates

    for shape in shapes:
        t = make_traffic(shape, "uniform", 12 if quick else 40,
                         spawn_rng(7, "conf-bfs", str(shape)))
        report = check_routes_bfs(shape, t)
        report.oracle = f"route-bfs:{shape}"
        done(report)
        report = sim_engines_oracle(shape, t)
        report.oracle = f"sim-engines:{shape}"
        done(report)
        # The fault-adaptive service path on the same workload: a seeded
        # fault mask (never the full torus), the router checked against
        # independent BFS reachability, and both engines diffed with the
        # QoS/credit knobs engaged.
        size = int(np.prod(shape))
        frng = spawn_rng(17, "conf-adaptive", str(shape))
        fault_flat = frng.random(size) < 0.12
        report = adaptive_router_oracle(shape, t, fault_flat)
        report.oracle = f"adaptive-router:{shape}"
        done(report)
        n_ok, e_ok = fault_predicates(fault_flat)
        report = sim_engines_oracle(
            shape, t, router="adaptive", node_ok=n_ok, edge_ok=e_ok,
            classes=message_classes(len(t), 2), credits=4,
        )
        report.oracle = f"sim-engines-adaptive:{shape}"
        done(report)
        report = sim_engines_oracle(
            shape, t, router="adaptive", node_ok=n_ok, edge_ok=e_ok,
            classes=message_classes(len(t), 2), credits=4, tier="compiled",
        )
        report.oracle = f"compiled:sim-engines-adaptive:{shape}"
        done(report)

    params = BnParams(d=2, b=3, s=1, t=2)
    rng = spawn_rng(11, "conf-embed")
    faults = bn.torus.sample_faults(params.paper_fault_probability, rng)
    recovery = bn.torus.recover(faults)
    done(audit_embedding(bn.torus, recovery, faults))

    stack_rng = spawn_rng(13, "conf-health")
    densities = (0.0, 0.002, 0.02) if quick else (0.0, 0.001, 0.01, 0.05, 0.3)
    stack = np.stack([stack_rng.random(params.shape) < p for p in densities])
    done(healthiness_oracle(params, stack))

    return reports
