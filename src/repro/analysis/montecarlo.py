"""Generic Monte-Carlo driver with failure-category accounting.

Every experiment in EXPERIMENTS.md runs through this driver so that
results are reproducible (seed-tree RNG), failure modes are attributed
(category tallies), and confidence intervals are reported uniformly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.stats import wilson_interval
from repro.api.outcome import TrialOutcome

__all__ = ["MCMerge", "MCResult", "MonteCarlo", "aggregate_outcomes"]


@dataclass
class MCResult:
    """Aggregated outcome of a batch of trials."""

    trials: int
    successes: int
    categories: Counter = field(default_factory=Counter)
    #: healthiness tallies when the trial function reports them
    healthy: int = 0
    sufficient: int = 0
    health_checked: int = 0
    mean_faults: float = 0.0
    strategies: Counter = field(default_factory=Counter)

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def ci(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    @property
    def healthy_rate(self) -> float:
        return self.healthy / self.health_checked if self.health_checked else float("nan")

    @property
    def sufficient_rate(self) -> float:
        return self.sufficient / self.health_checked if self.health_checked else float("nan")

    def summary(self) -> str:
        lo, hi = self.ci
        parts = [
            f"{self.successes}/{self.trials} ok ({self.success_rate:.3f} "
            f"[{lo:.3f}, {hi:.3f}])"
        ]
        fails = {k: v for k, v in self.categories.items() if k != "ok"}
        if fails:
            parts.append("failures: " + ", ".join(f"{k}={v}" for k, v in sorted(fails.items())))
        if self.health_checked:
            parts.append(f"healthy={self.healthy_rate:.3f} sufficient={self.sufficient_rate:.3f}")
        return "; ".join(parts)

    # -- persistence / merging ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON-stable representation (see docs/results-format.md)."""
        return {
            "trials": self.trials,
            "successes": self.successes,
            "categories": {k: int(v) for k, v in sorted(self.categories.items())},
            "healthy": self.healthy,
            "sufficient": self.sufficient,
            "health_checked": self.health_checked,
            "mean_faults": self.mean_faults,
            "strategies": {k: int(v) for k, v in sorted(self.strategies.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MCResult":
        return cls(
            trials=int(d["trials"]),
            successes=int(d["successes"]),
            categories=Counter(d.get("categories", {})),
            healthy=int(d.get("healthy", 0)),
            sufficient=int(d.get("sufficient", 0)),
            health_checked=int(d.get("health_checked", 0)),
            mean_faults=float(d.get("mean_faults", 0.0)),
            strategies=Counter(d.get("strategies", {})),
        )

    @classmethod
    def merger(cls) -> "MCMerge":
        """An incremental accumulator equivalent to :meth:`merged`.

        The streaming runner folds chunks one at a time instead of
        collecting them; routing both paths through the same accumulator
        guarantees the float operation sequence — and hence the JSON —
        is identical by construction, not by parallel maintenance.
        """
        return MCMerge(cls)

    @classmethod
    def merged(cls, parts: Sequence["MCResult"]) -> "MCResult":
        """Deterministic merge of disjoint trial batches.

        All tallies are integer sums; ``mean_faults`` is the trial-weighted
        mean accumulated in the order of ``parts`` — merging the same parts
        in the same order always reproduces the same float, which is what
        makes serial and parallel experiment runs byte-identical.
        """
        merge = cls.merger()
        for part in parts:
            merge.add(part)
        return merge.finish()


class MCMerge:
    """Incremental :meth:`MCResult.merged`: ``add`` parts in chunk order,
    then ``finish`` exactly once.  ``mean_faults`` keeps the running
    ``total_faults`` float and divides only at the end — the same
    operation sequence as the one-shot merge, ulp for ulp."""

    def __init__(self, cls: type = None) -> None:
        self._out = (cls or MCResult)(trials=0, successes=0)
        self._total_faults = 0.0

    def add(self, part: "MCResult") -> None:
        out = self._out
        out.trials += part.trials
        out.successes += part.successes
        out.categories.update(part.categories)
        out.healthy += part.healthy
        out.sufficient += part.sufficient
        out.health_checked += part.health_checked
        out.strategies.update(part.strategies)
        self._total_faults += part.mean_faults * part.trials

    def finish(self) -> "MCResult":
        out = self._out
        out.mean_faults = self._total_faults / out.trials if out.trials else 0.0
        return out


def aggregate_outcomes(outcomes: Iterable[TrialOutcome]) -> MCResult:
    """Fold a stream of trial outcomes into one :class:`MCResult`.

    The single accumulation path shared by the per-trial driver and the
    batched backends: identical outcome sequences produce identical
    results (including the float ``mean_faults``, accumulated in stream
    order), which is what keeps batch and scalar experiment JSON
    byte-identical.  Outcomes may be any objects with ``success`` and
    ``category`` attributes (``TrialOutcome`` or duck-typed equivalents).
    """
    res = MCResult(trials=0, successes=0)
    total_faults = 0
    for out in outcomes:
        res.trials += 1
        res.categories[out.category] += 1
        if out.success:
            res.successes += 1
        health = getattr(out, "health", None)
        if health is not None:
            res.health_checked += 1
            res.healthy += int(health.healthy)
            res.sufficient += int(health.sufficient)
        total_faults += getattr(out, "num_faults", 0)
        used = getattr(out, "strategy_used", "")
        if used:
            res.strategies[used] += 1
    res.mean_faults = total_faults / res.trials if res.trials else 0.0
    return res


class MonteCarlo:
    """Run ``trial_fn(seed) -> TrialOutcome`` over a seed range and
    aggregate.  ``trial_fn`` may return any object with ``success`` and
    ``category`` attributes (``TrialOutcome`` or a duck-typed equivalent)."""

    def __init__(self, trial_fn: Callable[[int], TrialOutcome]) -> None:
        self.trial_fn = trial_fn

    def run(self, trials: int, *, seed0: int = 0) -> MCResult:
        return aggregate_outcomes(self.trial_fn(seed0 + i) for i in range(trials))
