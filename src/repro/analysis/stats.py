"""Statistical helpers for Monte-Carlo reporting."""

from __future__ import annotations

import math

__all__ = ["wilson_interval", "binomial_tail"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Robust near 0/1 (unlike the normal approximation), which is exactly
    where survival probabilities live.

    >>> lo, hi = wilson_interval(10, 10)
    >>> 0.7 < lo < 1.0 and hi == 1.0
    True
    """
    if trials <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > trials:
        raise ValueError("successes out of range")
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def binomial_tail(n: int, p: float, k: int) -> float:
    """Exact upper binomial tail ``P[Bin(n, p) > k]`` via the regularised
    incomplete beta function (scipy), used by the Lemma 4 predictions."""
    from scipy.stats import binom

    if k >= n:
        return 0.0
    return float(binom.sf(k, n, p))
