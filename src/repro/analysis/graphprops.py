"""Structural graph properties of the host constructions.

The paper notes degree is not the only figure of merit ("the layout area
is of particular importance ... beyond the scope of this paper").  Two
properties *are* cheap to measure and relevant to routing on the hosts:

* **diameter / mean distance** — the vertical and diagonal jump edges of
  ``B^d_n`` and the jump edges of ``D^d_{n,k}`` shorten dim-0 paths (they
  act as a 2-level hierarchy), so the host is never slower than the plain
  torus it contains;
* **bisection-ish edge counts** — edges crossing a dim-0 cut, a proxy for
  wiring density.

BFS from sampled sources (exact per-source distances, vectorised frontier
expansion over CSR).
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import CSRGraph

__all__ = ["bfs_distances", "sampled_diameter", "mean_distance", "dim0_cut_edges"]


def bfs_distances(g: CSRGraph, source: int) -> np.ndarray:
    """Exact hop distances from ``source`` (-1 = unreachable)."""
    dist = np.full(g.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nxt = np.unique(
            np.concatenate(
                [g.indices[g.indptr[v] : g.indptr[v + 1]] for v in frontier]
            )
        )
        nxt = nxt[dist[nxt] == -1]
        dist[nxt] = d
        frontier = nxt
    return dist


def sampled_diameter(g: CSRGraph, samples: int, rng: np.random.Generator) -> int:
    """Max eccentricity over sampled sources (lower bound on the diameter)."""
    sources = rng.choice(g.num_nodes, size=min(samples, g.num_nodes), replace=False)
    worst = 0
    for s in sources:
        dist = bfs_distances(g, int(s))
        worst = max(worst, int(dist.max()))
    return worst


def mean_distance(g: CSRGraph, samples: int, rng: np.random.Generator) -> float:
    """Mean hop distance from sampled sources to all nodes."""
    sources = rng.choice(g.num_nodes, size=min(samples, g.num_nodes), replace=False)
    total, count = 0, 0
    for s in sources:
        dist = bfs_distances(g, int(s))
        total += int(dist[dist >= 0].sum())
        count += int((dist >= 0).sum())
    return total / count if count else float("nan")


def dim0_cut_edges(g: CSRGraph, coord0: np.ndarray, cut: int) -> int:
    """Edges crossing the hyperplane between dim-0 coordinates cut-1 and cut.

    ``coord0``: dim-0 coordinate per node.  Counts edges whose endpoints
    fall on different sides of the (cyclic) cut taken as a linear split —
    a wiring-density proxy, not a true bisection.
    """
    e = g.edges()
    a = coord0[e[:, 0]] < cut
    b = coord0[e[:, 1]] < cut
    return int((a != b).sum())
