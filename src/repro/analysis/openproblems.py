"""Section 6's open problems, as executable probes.

The paper closes with two questions:

1. Is there a constant-degree, ``O(N)``-node construction of the mesh/torus
   tolerating **constant-probability** node failures?
2. Is there one tolerating a **linear number of worst-case** faults?

and notes both are settled *positively for d = 1* by Alon–Chung.  These
probes regenerate the evidence behind the questions:

* ``bn_constant_p_decay`` — the paper's own constant-degree construction
  dies at constant ``p`` as ``n`` grows (its tolerable rate shrinks like
  ``b^{-3d}``): survival at fixed constant ``p`` decays with instance size.
* ``one_dimensional_answer`` — the d = 1 case really is solved: a
  constant-degree linear-size expander keeps an ``n``-path at constant
  fault probability (and fraction).

Neither question is resolved here (they remain open); the probes document
the gap quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.baselines.alon_chung import AlonChungPath
from repro.core.bn import BTorus
from repro.core.params import BnParams
from repro.util.rng import spawn_rng

__all__ = ["bn_constant_p_decay", "one_dimensional_answer", "ProbeRow"]


@dataclass
class ProbeRow:
    label: str
    size: int
    degree: int
    survival: float
    trials: int


def bn_constant_p_decay(
    p: float, trials: int = 10, cases: list[BnParams] | None = None
) -> list[ProbeRow]:
    """Survival of the constant-degree ``B`` at a *constant* fault rate
    across growing instances — the quantity the open problem asks to keep
    bounded away from 0."""
    cases = cases or [
        BnParams(d=2, b=3, s=1, t=2),
        BnParams(d=2, b=4, s=1, t=2),
        BnParams(d=2, b=4, s=1, t=4),
    ]
    rows = []
    for params in cases:
        bt = BTorus(params)
        wins = sum(bt.trial(p, seed).success for seed in range(trials))
        rows.append(
            ProbeRow(
                label=f"B^2 n={params.n}",
                size=params.num_nodes,
                degree=params.degree,
                survival=wins / trials,
                trials=trials,
            )
        )
    return rows


def one_dimensional_answer(
    p: float, trials: int = 10, sizes: tuple[int, ...] = (40, 80, 160)
) -> list[ProbeRow]:
    """Alon–Chung settles d = 1: constant degree, linear size, constant-``p``
    faults, survival stays high as ``n`` grows."""
    rows = []
    for n in sizes:
        ac = AlonChungPath(n, blowup=3.0)
        wins = 0
        for seed in range(trials):
            faulty = spawn_rng(seed, "open-1d", n).random(ac.num_nodes) < p
            wins += ac.survives(faulty, rng=spawn_rng(seed, "open-1d-dfs", n))
        rows.append(
            ProbeRow(
                label=f"Alon-Chung path n={n}",
                size=ac.num_nodes,
                degree=ac.graph.max_degree(),
                survival=wins / trials,
                trials=trials,
            )
        )
    return rows
