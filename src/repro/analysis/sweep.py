"""Parameter sweeps: the workhorses behind the benchmark tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import MCResult, MonteCarlo
from repro.core.bn import BTorus, TrialOutcome
from repro.core.dn import DTorus
from repro.core.params import BnParams, DnParams
from repro.errors import ReconstructionError
from repro.faults.adversary import adversarial_node_faults
from repro.util.rng import spawn_rng

__all__ = ["sweep_bn_threshold", "sweep_dn_adversarial", "ThresholdPoint"]


@dataclass
class ThresholdPoint:
    p: float
    result: MCResult


def sweep_bn_threshold(
    params: BnParams,
    p_values: Sequence[float],
    trials: int,
    *,
    strategy: str = "auto",
    check_health: bool = False,
    seed0: int = 0,
) -> list[ThresholdPoint]:
    """Survival rate of ``B^d_n`` across a fault-probability sweep."""
    bt = BTorus(params)
    out = []
    for p in p_values:
        mc = MonteCarlo(
            lambda seed, p=p: bt.trial(
                p, seed, strategy=strategy, check_health=check_health
            )
        )
        out.append(ThresholdPoint(p=float(p), result=mc.run(trials, seed0=seed0)))
    return out


def sweep_dn_adversarial(
    params: DnParams,
    patterns: Sequence[str],
    trials: int,
    *,
    k: int | None = None,
    seed0: int = 0,
) -> dict[str, MCResult]:
    """Adversarial campaign against ``D^d_{n,k}``: for each pattern, inject
    exactly ``k`` faults and count verified recoveries."""
    dt = DTorus(params)
    k = params.k if k is None else int(k)
    results: dict[str, MCResult] = {}
    for pattern in patterns:

        def trial(seed: int, pattern=pattern) -> TrialOutcome:
            rng = spawn_rng(seed, "dn-sweep", pattern, params.n, params.b)
            faults = adversarial_node_faults(params.shape, k, pattern, rng)
            try:
                dt.recover(faults)
                return TrialOutcome(success=True, category="ok", num_faults=k)
            except ReconstructionError as exc:
                return TrialOutcome(success=False, category=exc.category, num_faults=k)

        results[pattern] = MonteCarlo(trial).run(trials, seed0=seed0)
    return results


def estimate_threshold(points: list[ThresholdPoint], level: float = 0.5) -> float:
    """Interpolated fault probability where survival crosses ``level``."""
    ps = np.array([pt.p for pt in points])
    rates = np.array([pt.result.success_rate for pt in points])
    order = np.argsort(ps)
    ps, rates = ps[order], rates[order]
    above = rates >= level
    if above.all():
        return float(ps[-1])
    if not above.any():
        return float(ps[0])
    i = int(np.flatnonzero(~above)[0])
    if i == 0:
        return float(ps[0])
    x0, x1 = ps[i - 1], ps[i]
    y0, y1 = rates[i - 1], rates[i]
    if y0 == y1:
        return float(x0)
    return float(x0 + (level - y0) * (x1 - x0) / (y1 - y0))
