"""Parameter sweeps: thin declarative layers over the experiment runner.

Both sweeps build an :class:`~repro.api.experiment.ExperimentSpec` and hand
it to :class:`~repro.api.experiment.ExperimentRunner`; pass ``workers > 1``
to fan the trials out over a process pool.  Seed discipline is unchanged
from the original hand-rolled loops (trial ``i`` runs with seed
``seed0 + i`` and the constructions' historical RNG keying), so results
are bit-for-bit what the pre-runner versions produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.montecarlo import MCResult
from repro.api.experiment import ExperimentRunner, ExperimentSpec
from repro.api.protocol import FaultSpec
from repro.core.params import BnParams, DnParams

__all__ = ["sweep_bn_threshold", "sweep_dn_adversarial", "ThresholdPoint"]


@dataclass
class ThresholdPoint:
    p: float
    result: MCResult


def sweep_bn_threshold(
    params: BnParams,
    p_values: Sequence[float],
    trials: int,
    *,
    strategy: str = "auto",
    check_health: bool = False,
    seed0: int = 0,
    workers: int = 1,
) -> list[ThresholdPoint]:
    """Survival rate of ``B^d_n`` across a fault-probability sweep."""
    spec = ExperimentSpec.from_grid(
        "bn",
        {
            "d": params.d, "b": params.b, "s": params.s, "t": params.t,
            "strategy": strategy, "check_health": check_health,
        },
        p_values=[float(p) for p in p_values],
        trials=trials,
        seed0=seed0,
        name="bn-threshold",
    )
    result = ExperimentRunner(workers=workers).run(spec)
    return [
        ThresholdPoint(p=pt.fault_spec.p, result=pt.result) for pt in result.points
    ]


def sweep_dn_adversarial(
    params: DnParams,
    patterns: Sequence[str],
    trials: int,
    *,
    k: int | None = None,
    seed0: int = 0,
    workers: int = 1,
) -> dict[str, MCResult]:
    """Adversarial campaign against ``D^d_{n,k}``: for each pattern, inject
    exactly ``k`` faults and count verified recoveries."""
    spec = ExperimentSpec(
        construction="dn",
        params={"d": params.d, "n": params.n, "b": params.b},
        grid=tuple(
            FaultSpec(pattern=pattern, k=params.k if k is None else int(k))
            for pattern in patterns
        ),
        trials=trials,
        seed0=seed0,
        name="dn-adversarial",
    )
    result = ExperimentRunner(workers=workers).run(spec)
    return {pt.fault_spec.pattern: pt.result for pt in result.points}


def estimate_threshold(points: list[ThresholdPoint], level: float = 0.5) -> float:
    """Interpolated fault probability where survival crosses ``level``."""
    ps = np.array([pt.p for pt in points])
    rates = np.array([pt.result.success_rate for pt in points])
    order = np.argsort(ps)
    ps, rates = ps[order], rates[order]
    above = rates >= level
    if above.all():
        return float(ps[-1])
    if not above.any():
        return float(ps[0])
    i = int(np.flatnonzero(~above)[0])
    if i == 0:
        return float(ps[0])
    x0, x1 = ps[i - 1], ps[i]
    y0, y1 = rates[i - 1], rates[i]
    if y0 == y1:
        return float(x0)
    return float(x0 + (level - y0) * (x1 - x0) / (y1 - y0))
