"""The paper's own probability bounds, made executable (Lemma 4 et al.).

Lemma 4 proves that a faulty ``B^d_n`` is healthy with probability
``1 - n^{-Omega(log log n)}`` by union-bounding three event families.  We
re-derive each bound *with explicit constants for our exact
parameterisation* so experiment E4 can print predicted-vs-measured columns:

1. **No 2b fault-free consecutive rows in a brick.**  Partition the brick's
   ``b^2`` rows into ``b/2`` disjoint runs of ``2b`` rows; each run holds
   ``2 b^{3d-2}`` nodes, so it contains a fault with probability at most
   ``min(1, 2 b^{3d-2} p)`` and all runs do with the product of that.
   (The paper then plugs ``p = b^{-3d}``.)

2. **More than eps*b = s faults in a brick.**  Exact binomial tail
   ``P[Bin(b^{3d-1}, p) > s]``.

3. **No fault-free enclosing frame.**  The ``floor((b-1)/2)`` concentric
   frames of sizes 3, 5, ... are disjoint; frame of size ``sigma`` has at
   most ``2 d sigma^{d-1} b^{2d}`` nodes; the events "frame has a fault"
   are independent across disjoint frames.

Union bounds multiply by the number of bricks / tiles.  All bounds are
conservative (they may exceed 1 for tiny instances — they are reported
clamped, with the caveat printed by the bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import binomial_tail
from repro.core.params import BnParams

__all__ = ["HealthinessPrediction", "predict_healthiness"]


@dataclass
class HealthinessPrediction:
    """Per-condition failure-probability upper bounds (union-bounded)."""

    p: float
    cond1_bound: float
    cond2_bound: float
    cond3_bound: float

    @property
    def total_bound(self) -> float:
        return min(1.0, self.cond1_bound + self.cond2_bound + self.cond3_bound)

    def as_row(self) -> list:
        return [self.p, self.cond1_bound, self.cond2_bound, self.cond3_bound, self.total_bound]


def predict_healthiness(params: BnParams, p: float) -> HealthinessPrediction:
    """Upper bounds on the probability each healthiness condition fails."""
    b, d, s = params.b, params.d, params.s
    num_bricks = params.tile_rows * (params.n // params.tile) ** (d - 1)
    num_tiles = num_bricks  # same grid

    # Condition 1: all floor(b/2) disjoint 2b-row runs contain a fault.
    run_nodes = 2 * b ** (3 * d - 2)
    per_run = min(1.0, run_nodes * p)
    runs = max(1, b // 2)
    cond1 = min(1.0, num_bricks * per_run ** runs)

    # Condition 2: binomial tail beyond s faults in a brick.
    brick_nodes = b ** (3 * d - 1)
    cond2 = min(1.0, num_bricks * binomial_tail(brick_nodes, p, s))

    # Condition 3: every concentric frame around a tile is hit.
    prob_all_hit = 1.0
    sigma = 3
    count = 0
    while sigma <= b:
        frame_nodes = 2 * d * sigma ** (d - 1) * b ** (2 * d)
        hit = min(1.0, 1.0 - (1.0 - p) ** frame_nodes)
        prob_all_hit *= hit
        sigma += 2
        count += 1
    cond3 = min(1.0, num_tiles * prob_all_hit) if count else 1.0

    return HealthinessPrediction(p=p, cond1_bound=cond1, cond2_bound=cond2, cond3_bound=cond3)
