"""Experiment tooling: Monte-Carlo driver, sweeps and theory predictions.

Exports resolve lazily: ``repro.api.experiment`` imports the Monte-Carlo
aggregator from this package while ``repro.analysis.sweep`` layers on top
of the experiment runner, so an eager ``__init__`` would close an import
cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "wilson_interval": "repro.analysis.stats",
    "binomial_tail": "repro.analysis.stats",
    "MonteCarlo": "repro.analysis.montecarlo",
    "MCResult": "repro.analysis.montecarlo",
    "sweep_bn_threshold": "repro.analysis.sweep",
    "sweep_dn_adversarial": "repro.analysis.sweep",
    "predict_healthiness": "repro.analysis.chernoff",
    "HealthinessPrediction": "repro.analysis.chernoff",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    import importlib

    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")


def __dir__():
    return __all__
