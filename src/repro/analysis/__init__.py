"""Experiment tooling: Monte-Carlo driver, sweeps and theory predictions."""

from repro.analysis.stats import wilson_interval, binomial_tail
from repro.analysis.montecarlo import MonteCarlo, MCResult
from repro.analysis.sweep import sweep_bn_threshold, sweep_dn_adversarial
from repro.analysis.chernoff import predict_healthiness, HealthinessPrediction

__all__ = [
    "wilson_interval",
    "binomial_tail",
    "MonteCarlo",
    "MCResult",
    "sweep_bn_threshold",
    "sweep_dn_adversarial",
    "predict_healthiness",
    "HealthinessPrediction",
]
