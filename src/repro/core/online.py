"""Online fault arrival and recovery lifetime.

A deployed machine accumulates faults over its lifetime; the introduction's
quantitative claim is that ``B^d_n`` tolerates ``Theta(N log^{-3d} N)``
random faults — "larger than the best previously known constant-degree
construction [BCH93b] that tolerates Theta(N^{1/3})".

:class:`OnlineRecovery` maintains a fault set and a current valid band
placement; arriving faults are handled with the cheapest sufficient
response:

* ``"masked"``     — the new fault already lies under an existing band
  (no recomputation, O(bands) check);
* ``"replaced"``   — bands recomputed (auto strategy) and the torus
  re-extracted;
* failure raises, leaving the previous placement intact.

:func:`fault_lifetime` drives faults one by one until recovery first
fails, returning the count — the measurable form of the Theta claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bn import BTorus
from repro.core.reconstruction import Recovery
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng

__all__ = ["OnlineRecovery", "RepairEvent", "fault_lifetime"]


@dataclass
class RepairEvent:
    fault: tuple
    action: str  # "masked" | "replaced"
    total_faults: int


@dataclass
class OnlineRecovery:
    """Incrementally maintained recovery for a ``BTorus``."""

    bt: BTorus
    faults: np.ndarray = field(init=False)
    recovery: Recovery | None = field(init=False, default=None)
    log: list[RepairEvent] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.faults = np.zeros(self.bt.params.shape, dtype=bool)
        self.recovery = self.bt.recover(self.faults)

    @property
    def num_faults(self) -> int:
        return int(self.faults.sum())

    def _already_masked(self, coord: tuple) -> bool:
        assert self.recovery is not None
        p = self.bt.params
        row = int(coord[0])
        col = int(np.ravel_multi_index([int(c) for c in coord[1:]], (p.n,) * (p.d - 1))) if p.d > 1 else 0
        bottoms = self.recovery.bands.bottoms[:, col]
        return bool((((row - bottoms) % p.m) < p.b).any())

    def add_fault(self, coord: tuple) -> RepairEvent:
        """Register one arriving fault; repair if needed.

        Raises :class:`ReconstructionError` when no placement exists any
        more (state keeps the previous valid placement and the new fault).
        """
        coord = tuple(int(c) for c in coord)
        self.faults[coord] = True
        if self._already_masked(coord):
            ev = RepairEvent(coord, "masked", self.num_faults)
            self.log.append(ev)
            return ev
        rec = self.bt.recover(self.faults)  # raises on failure
        self.recovery = rec
        ev = RepairEvent(coord, "replaced", self.num_faults)
        self.log.append(ev)
        return ev

    def repair_fraction(self) -> float:
        """Fraction of arrivals that needed a recomputation."""
        if not self.log:
            return 0.0
        return sum(e.action == "replaced" for e in self.log) / len(self.log)


def fault_lifetime(bt: BTorus, seed: int, *, max_faults: int | None = None) -> int:
    """Inject uniformly random distinct faults one at a time until recovery
    first fails; return how many were survived."""
    online = OnlineRecovery(bt)
    rng = spawn_rng(seed, "lifetime", bt.params.n, bt.params.d)
    order = rng.permutation(bt.params.num_nodes)
    limit = max_faults if max_faults is not None else len(order)
    codec_shape = bt.params.shape
    for count, flat in enumerate(order[:limit], start=1):
        coord = np.unravel_index(int(flat), codec_shape)
        try:
            online.add_fault(coord)
        except ReconstructionError:
            return count - 1
    return limit
