"""Online fault arrival with incremental repair, and lifetime measurement.

A deployed machine accumulates faults over its lifetime; the introduction's
quantitative claim is that ``B^d_n`` tolerates ``Theta(N log^{-3d} N)``
random faults — "larger than the best previously known constant-degree
construction [BCH93b] that tolerates Theta(N^{1/3})".

:class:`OnlineRecovery` maintains a fault set and a current valid band
placement; arriving faults are handled with the cheapest sufficient
response:

* ``"masked"``    — the fault already lies under a band of the current
  placement (shared predicate :meth:`BandSet.covers`; no recomputation,
  and the placement object identity is untouched);
* ``"replaced"``  — the placement is recomputed.  In incremental mode
  (the default) only the *placement* is recomputed from the maintained
  dim-0 fault-row profile (cost proportional to ``m``, not ``N``), and
  the embedding is rebuilt by :func:`extract_torus_straight`, which
  rewrites only the guest rows whose host row actually changed.  The
  full BFS + Lemma 7 + embedding-verification pipeline runs only when
  the straight cover fails and the paper strategy takes over.
* ``"repaired"``  — a faulty node was fixed (:meth:`remove_fault`).  The
  incremental-repair contract: repairs never recompute — a placement
  masking a fault superset stays valid for the subset.
* failure raises, leaving the previous placement intact.

``incremental=False`` is the *full-recompute* reference mode: every
unmasked arrival rebuilds bands and torus through ``BTorus.recover``.
Both modes run the identical placement chain (the same straight-cover
greedy on the same fault-row profile, the same paper fallback), so they
produce the same placements, the same event sequence and the same
lifetimes — hypothesis-asserted in tests/test_online.py, wall-clock
quantified in BENCH_lifetime.json.

:func:`fault_lifetime` drives uniformly random arrivals until recovery
first fails; :func:`run_online_timeline` drives any
:class:`~repro.api.protocol.LifetimeSpec` timeline and returns the full
:class:`~repro.api.lifetime.LifetimeOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.lifetime import LifetimeOutcome, drive_timeline
from repro.api.protocol import LifetimeSpec
from repro.core.bn import BTorus
from repro.core.placement import place_straight_rows
from repro.core.reconstruction import Recovery, extract_torus_straight
from repro.errors import ReconstructionError
from repro.util.rng import spawn_rng

__all__ = ["OnlineRecovery", "RepairEvent", "fault_lifetime", "run_online_timeline"]


@dataclass
class RepairEvent:
    fault: tuple
    action: str  # "masked" | "replaced" | "repaired"
    total_faults: int
    #: For "replaced": which pipeline recomputed ("incremental" | "full").
    mode: str = ""


@dataclass
class OnlineRecovery:
    """Incrementally maintained recovery for a ``BTorus``.

    ``incremental`` selects the repair pipeline (see module docstring);
    ``strategy`` is the band-placement strategy of the full-recompute
    path (``"paper"`` forces every repair through the full pipeline —
    paper placements are not straight, so there is nothing incremental
    to reuse).
    """

    bt: BTorus
    incremental: bool = True
    strategy: str = "auto"
    faults: np.ndarray = field(init=False)
    recovery: Recovery | None = field(init=False, default=None)
    log: list[RepairEvent] = field(init=False, default_factory=list)
    #: Faults per dim-0 row, maintained so placement never rescans the array.
    _row_faults: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.faults = np.zeros(self.bt.params.shape, dtype=bool)
        self._row_faults = np.zeros(self.bt.params.m, dtype=np.int64)
        self.recovery = self._recompute()

    @property
    def num_faults(self) -> int:
        return int(self.faults.sum())

    def _already_masked(self, coord: tuple) -> bool:
        assert self.recovery is not None
        return self.recovery.bands.covers_node(coord)

    def _recompute(self) -> Recovery:
        """One placement + extraction pass over the current fault set.

        The incremental path and the full path run the *same* placement
        chain — straight-cover greedy on the fault-row profile, then the
        paper pipeline — and differ only in how much extraction work they
        redo, which is what makes the two modes outcome-equivalent.
        """
        if self.incremental and self.strategy in ("auto", "straight"):
            try:
                bands = place_straight_rows(
                    self.bt.params, np.flatnonzero(self._row_faults)
                )
            except ReconstructionError:
                if self.strategy == "straight":
                    raise
                # Paper territory: non-straight bands need the full
                # extraction + verification pipeline.
                return self.bt.recover(self.faults, strategy="paper")
            return extract_torus_straight(self.bt.bn, bands, prev=self.recovery)
        return self.bt.recover(self.faults, strategy=self.strategy)

    def full_recompute(self) -> Recovery:
        """Ground-truth recovery of the current fault set via the full
        pipeline (never cached) — the fallback oracle the incremental
        path is tested against."""
        return self.bt.recover(self.faults, strategy=self.strategy)

    def add_fault(self, coord: tuple) -> RepairEvent:
        """Register one arriving fault; repair if needed.

        Raises :class:`ReconstructionError` when no placement exists any
        more (state keeps the previous valid placement and the new fault).
        """
        coord = tuple(int(c) for c in coord)
        was_faulty = bool(self.faults[coord])
        if not was_faulty:
            self.faults[coord] = True
            self._row_faults[coord[0]] += 1
        if was_faulty or self._already_masked(coord):
            ev = RepairEvent(coord, "masked", self.num_faults)
            self.log.append(ev)
            return ev
        rec = self._recompute()  # raises on failure
        self.recovery = rec
        mode = "incremental" if rec.stats.get("fast_straight") else "full"
        ev = RepairEvent(coord, "replaced", self.num_faults, mode=mode)
        self.log.append(ev)
        return ev

    def remove_fault(self, coord: tuple) -> RepairEvent:
        """A faulty node was repaired.  Never recomputes: the current
        placement masks a superset of the remaining faults, so it stays
        valid by monotonicity (the incremental-repair contract)."""
        coord = tuple(int(c) for c in coord)
        if self.faults[coord]:
            self.faults[coord] = False
            self._row_faults[coord[0]] -= 1
        ev = RepairEvent(coord, "repaired", self.num_faults)
        self.log.append(ev)
        return ev

    def repair_fraction(self) -> float:
        """Fraction of arrivals that needed a recomputation."""
        arrivals = [e for e in self.log if e.action != "repaired"]
        if not arrivals:
            return 0.0
        return sum(e.action == "replaced" for e in arrivals) / len(arrivals)


def run_online_timeline(
    online: OnlineRecovery,
    spec: LifetimeSpec,
    rng: np.random.Generator,
    *,
    observer=None,
) -> LifetimeOutcome:
    """Drive a fault timeline through an :class:`OnlineRecovery` until the
    first unrecoverable arrival (or the timeline runs dry).

    A thin backend over the shared :func:`~repro.api.lifetime.drive_timeline`
    loop — the step/tally/failure semantics live there, common with the
    generic full-recompute driver.  ``observer(arrivals_survived, online)``
    — when given — is called after every survived arrival; the
    traffic-snapshot machinery (:mod:`repro.sim.lifetime_traffic`) hooks
    checkpoints through it.
    """
    shape = online.bt.params.shape

    def on_fault(node: int) -> str:
        return online.add_fault(np.unravel_index(node, shape)).action

    def on_repair(node: int) -> None:
        online.remove_fault(np.unravel_index(node, shape))

    return drive_timeline(
        spec, shape, rng,
        on_fault=on_fault,
        on_repair=on_repair,
        observer=None if observer is None else (lambda n: observer(n, online)),
    )


def fault_lifetime(
    bt: BTorus,
    seed: int,
    *,
    max_faults: int | None = None,
    incremental: bool = True,
) -> int:
    """Inject uniformly random distinct faults one at a time until recovery
    first fails; return how many were survived.

    The RNG stream (``spawn_rng(seed, "lifetime", n, d)`` feeding one
    permutation draw) is unchanged from the pre-subsystem implementation,
    so historical lifetime numbers reproduce exactly.  ``incremental``
    switches between the incremental and full-recompute repair pipelines
    (same result either way; see :class:`OnlineRecovery`).
    """
    if max_faults == 0:  # LifetimeSpec requires max_steps >= 1
        return 0
    online = OnlineRecovery(bt, incremental=incremental)
    rng = spawn_rng(seed, "lifetime", bt.params.n, bt.params.d)
    spec = LifetimeSpec(timeline="uniform", max_steps=max_faults)
    return run_online_timeline(online, spec, rng).lifetime
