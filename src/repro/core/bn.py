"""High-level API for the ``B^d_n`` construction (Theorem 2).

>>> from repro.core import BnParams, BTorus
>>> bt = BTorus(BnParams(d=2, b=3, s=1, t=2))
>>> out = bt.trial(p=bt.params.paper_fault_probability, seed=7)
>>> out.success
True
"""

from __future__ import annotations

import numpy as np

from repro.api.outcome import TrialOutcome  # noqa: F401 - canonical home is
# repro.api.outcome; re-exported here because TrialOutcome lived in this
# module before the unified Construction protocol existed.
from repro.core.bands import BandSet
from repro.core.bn_graph import BnGraph
from repro.core.healthiness import HealthReport, check_healthiness
from repro.core.params import BnParams
from repro.core.placement import place_bands
from repro.core.reconstruction import Recovery, extract_torus
from repro.errors import ReconstructionError
from repro.faults.models import BernoulliNodeFaults, fold_edge_faults_into_nodes
from repro.topology.grid import TileGeometry
from repro.util.rng import spawn_rng

__all__ = ["BTorus", "TrialOutcome"]


class BTorus:
    """Theorem 2's construction with its recovery pipeline."""

    def __init__(self, params: BnParams) -> None:
        self.params = params
        self.bn = BnGraph(params)
        self.geo = TileGeometry(params.shape, params.b)

    # -- fault sampling -----------------------------------------------------

    def sample_faults(
        self,
        p: float,
        rng: np.random.Generator,
        *,
        q: float = 0.0,
    ) -> np.ndarray:
        """I.i.d. node faults at rate ``p``; optional edge faults at rate
        ``q`` folded into node faults (paper's reduction for constant-degree
        constructions)."""
        faults = BernoulliNodeFaults(p).sample(self.params.shape, rng)
        if q > 0.0:
            faults = fold_edge_faults_into_nodes(faults, q, self.params.degree, rng)
        return faults

    def sample_edge_faults(self, q: float, rng: np.random.Generator) -> np.ndarray:
        """Explicit i.i.d. edge faults at rate ``q``: an ``(F, 2)`` array of
        faulty edges of the materialised ``B^d_n`` graph.

        Theorem 2's statement covers edge failures; the paper reduces them
        to node failures ("consider an edge fault to be the fault of one of
        the incident nodes").  :meth:`recover` applies that reduction for
        *placement* but verifies the final embedding against the true edge
        set — the honest form of the reduction.
        """
        edges = self.bn.graph().edges()
        if q <= 0.0:
            return edges[:0]
        return edges[rng.random(len(edges)) < q]

    # -- recovery -----------------------------------------------------------

    def check_health(self, faults: np.ndarray) -> HealthReport:
        return check_healthiness(self.params, faults, self.geo)

    def check_health_batch(self, faults: np.ndarray) -> "list[HealthReport]":
        """Healthiness of a ``(T, *shape)`` fault stack in one vectorized
        pass (reports identical to per-slice :meth:`check_health`)."""
        from repro.core.healthiness import check_healthiness_batch

        return check_healthiness_batch(self.params, faults, self.geo)

    def recover(
        self,
        faults: np.ndarray,
        faulty_edges: np.ndarray | None = None,
        *,
        strategy: str = "auto",
        verify: bool = True,
    ) -> Recovery:
        """Mask the faults with bands and extract a verified fault-free torus.

        ``faulty_edges`` (optional ``(F, 2)`` array): each is ascribed to its
        first endpoint for placement (the paper's reduction) and the final
        embedding is additionally verified to use none of them.
        Raises :class:`ReconstructionError` (with a category) on failure.
        """
        effective = faults
        if faulty_edges is not None and len(faulty_edges):
            effective = faults.copy()
            blamed = np.asarray(faulty_edges, dtype=np.int64)[:, 0]
            effective.ravel()[blamed] = True
        bands = place_bands(self.params, effective, strategy=strategy, geo=self.geo)
        rec = extract_torus(self.bn, bands, effective, verify=verify)
        if verify and faulty_edges is not None and len(faulty_edges):
            self._verify_no_faulty_edges(rec, faulty_edges)
        return rec

    def _verify_no_faulty_edges(self, rec: Recovery, faulty_edges: np.ndarray) -> None:
        """The embedding must avoid every *actual* faulty edge (not just the
        blamed endpoints) — checked against the true edge list."""
        from repro.errors import EmbeddingError

        n_nodes = self.bn.num_nodes
        fe = np.asarray(faulty_edges, dtype=np.int64)
        keys = np.sort(np.minimum(fe[:, 0], fe[:, 1]) * n_nodes + np.maximum(fe[:, 0], fe[:, 1]))
        guest = rec.guest_shape()
        from repro.topology.coords import CoordCodec

        gc = CoordCodec(guest)
        idx = gc.all_indices()
        for axis in range(len(guest)):
            us = rec.phi[idx]
            vs = rec.phi[gc.shift(idx, axis, +1, wrap=True)]
            k = np.minimum(us, vs) * n_nodes + np.maximum(us, vs)
            pos = np.clip(np.searchsorted(keys, k), 0, len(keys) - 1)
            bad = (len(keys) > 0) & (keys[pos] == k)
            if bad.any():
                raise EmbeddingError(
                    f"embedding uses {int(bad.sum())} faulty edges (axis {axis})"
                )

    def survives(self, faults: np.ndarray, *, strategy: str = "auto") -> bool:
        try:
            self.recover(faults, strategy=strategy)
            return True
        except ReconstructionError:
            return False

    # -- one-shot trials ------------------------------------------------------

    def trial(
        self,
        p: float,
        seed: int,
        *,
        q: float = 0.0,
        strategy: str = "auto",
        check_health: bool = False,
        keep_recovery: bool = False,
    ) -> TrialOutcome:
        """Sample faults, attempt recovery, classify the outcome."""
        rng = spawn_rng(seed, "bn-trial", self.params.n, self.params.d)
        faults = self.sample_faults(p, rng, q=q)
        health = self.check_health(faults) if check_health else None
        try:
            rec = self.recover(faults, strategy=strategy)
            used = "straight" if _is_straight(rec.bands) else "paper"
            return TrialOutcome(
                success=True,
                category="ok",
                healthy=None if health is None else health.healthy,
                num_faults=int(faults.sum()),
                strategy_used=used,
                health=health,
                recovery=rec if keep_recovery else None,
            )
        except ReconstructionError as exc:
            return TrialOutcome(
                success=False,
                category=exc.category,
                healthy=None if health is None else health.healthy,
                num_faults=int(faults.sum()),
                health=health,
            )


def _is_straight(bands: BandSet) -> bool:
    return bands.is_straight
