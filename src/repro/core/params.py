"""Validated parameter sets for the three constructions.

The paper states its constructions asymptotically (``b ~ log n``,
``m ~ (1+eps) n``, implicit round-offs).  For an executable reproduction
every divisibility the proofs rely on must hold *exactly*, so we re-express
the free parameters so that all derived quantities are integers:

``B^d_n`` (Theorem 2)
    Given band width ``b >= 3``, segments-per-tile-row ``s`` (the paper's
    ``eps * b``) and a scale factor ``t``:

    * ``n = t * b^2 * (b - s)``   (torus side)
    * ``m = t * b^3``             (augmented first-dimension side)

    Then ``m - n = t b^2 s``, the number of bands is
    ``(m-n)/b = t b s = s * (m / b^2)`` — exactly ``s`` per tile-row — and
    both ``n`` and ``m`` are multiples of the tile side ``b^2``.  The node
    redundancy is ``m/n = 1/(1 - s/b) = 1 + eps + O(eps^2)``.

``D^d_{n,k}`` (Theorem 3/13)
    Given base width ``b`` and dimension ``d``: ``b_i = b^(2^(i-1))``,
    tolerated faults ``k = b^(2^d - 1)``.  Per-dimension side ``m_i`` is the
    smallest value ``>= n + b^(2^d)`` with ``(b_i + 1) | m_i`` and
    ``b_i | (m_i - n)`` (CRT; ``b_i`` and ``b_i+1`` are coprime), so the
    separator/pigeonhole machinery needs no round-off cases.

``A^2_n`` (Theorem 1)
    Built over a ``BnParams`` host with supernode size ``h`` and submesh
    side ``k``; ``n = k * n_B``.  The paper's constants ``c, alpha`` are
    recovered as ``c = h (1+eps) / k^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["BnParams", "DnParams", "AnParams", "suggest_bn_params"]


@dataclass(frozen=True)
class BnParams:
    """Parameters of the ``B^d_n`` construction (Theorem 2).

    Attributes
    ----------
    d: dimension (>= 2 in the paper; we also allow d == 1 for testing).
    b: band width, the paper's ``b ~ log n`` (>= 3 so s-frames exist).
    s: straight band segments per tile-row; the paper's ``eps * b``.
       Must satisfy ``1 <= s`` and ``s/b < 1/2``.
    t: scale factor (>= ceil(b / (b - s)) so that ``n >= b^3`` and the tile
       grid is at least ``b`` tiles wide in every dimension).
    """

    d: int
    b: int
    s: int
    t: int

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ParameterError("d must be >= 1")
        if self.b < 3:
            raise ParameterError("b must be >= 3 (frames need s in [3, b])")
        if not (1 <= self.s):
            raise ParameterError("s must be >= 1")
        if 2 * self.s >= self.b:
            raise ParameterError(
                f"s/b = {self.s}/{self.b} must be < 1/2 (paper: 0 < eps < 1/2)"
            )
        if self.t * (self.b - self.s) < self.b:
            raise ParameterError(
                f"t={self.t} too small: need t*(b-s) >= b so the tile grid "
                f"is at least b tiles wide (got {self.t * (self.b - self.s)} < {self.b})"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def n(self) -> int:
        """Torus side length."""
        return self.t * self.b * self.b * (self.b - self.s)

    @property
    def m(self) -> int:
        """Augmented side length of the first dimension."""
        return self.t * self.b ** 3

    @property
    def eps(self) -> float:
        """Masking fraction ``eps = s/b``: ``m = n / (1 - eps)``."""
        return self.s / self.b

    @property
    def eps_redundancy(self) -> float:
        """Node-redundancy epsilon: ``|B| = (1 + eps') n^d`` with
        ``eps' = s/(b-s)``.  (The paper's single ``eps`` plays both roles up
        to O(eps^2); with exact divisibility they split.)"""
        return self.s / (self.b - self.s)

    @property
    def tile(self) -> int:
        """Tile side ``b^2``."""
        return self.b * self.b

    @property
    def shape(self) -> tuple[int, ...]:
        """Node shape ``(m, n, ..., n)`` with ``d`` axes."""
        return (self.m,) + (self.n,) * (self.d - 1)

    @property
    def num_nodes(self) -> int:
        return self.m * self.n ** (self.d - 1)

    @property
    def num_bands(self) -> int:
        """Total bands = (m - n) / b = s bands per tile-row."""
        return (self.m - self.n) // self.b

    @property
    def tile_rows(self) -> int:
        """Number of tile-rows (strips of ``b^2`` consecutive dim-0 rows)."""
        return self.m // self.tile

    @property
    def degree(self) -> int:
        """The paper's degree bound ``6d - 2`` (exact for this construction)."""
        return 6 * self.d - 2

    @property
    def redundancy(self) -> float:
        """Node overhead ``|B| / n^d = m / n``."""
        return self.m / self.n

    @property
    def paper_fault_probability(self) -> float:
        """Theorem 2's regime expressed through the *actual* band width:
        ``p = b^{-3d}`` (the paper sets ``b ~ log n``)."""
        return float(self.b) ** (-3 * self.d)

    def describe(self) -> str:
        return (
            f"B^{self.d}_{self.n}: b={self.b} s={self.s} t={self.t} "
            f"m={self.m} nodes={self.num_nodes} bands={self.num_bands} "
            f"degree={self.degree} redundancy={self.redundancy:.3f}"
        )


def suggest_bn_params(n_target: int, d: int = 2, s: int = 1) -> BnParams:
    """A ``BnParams`` with ``b ~ log2(n)`` and ``n`` as close to
    ``n_target`` as the divisibility allows (the paper's asymptotic recipe)."""
    if n_target < 8:
        raise ParameterError("n_target too small")
    b = max(3, int(round(math.log2(n_target))))
    while 2 * s >= b:
        b += 1
    denom = b * b * (b - s)
    t = max(1, int(round(n_target / denom)))
    while t * (b - s) < b:
        t += 1
    return BnParams(d=d, b=b, s=s, t=t)


@dataclass(frozen=True)
class DnParams:
    """Parameters of the worst-case construction ``D^d_{n,k}`` (Theorem 3/13).

    Attributes
    ----------
    d: dimension (>= 1).
    n: target torus side.
    b: base band width (>= 2).  The construction tolerates
       ``k = b^(2^d - 1)`` worst-case node+edge faults.
    """

    d: int
    n: int
    b: int
    #: Derived per-dimension sides; filled in __post_init__.
    m: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ParameterError("d must be >= 1")
        if self.b < 2:
            raise ParameterError("b must be >= 2")
        if self.n < self.k:
            raise ParameterError(
                f"n={self.n} must be >= k={self.k} (need at least k separator rows)"
            )
        object.__setattr__(self, "m", tuple(self._solve_side(i) for i in range(1, self.d + 1)))

    def _solve_side(self, i: int) -> int:
        """Smallest ``m >= n + b^(2^d)`` with ``(b_i+1) | m`` and ``b_i | m - n``."""
        bi = self.width(i)
        lo = self.n + self.b ** (2 ** self.d)
        # CRT: m ≡ 0 (mod bi+1), m ≡ n (mod bi); bi and bi+1 coprime.
        period = bi * (bi + 1)
        for m in range(lo, lo + period + 1):
            if m % (bi + 1) == 0 and (m - self.n) % bi == 0:
                return m
        raise ParameterError("unreachable: CRT window exhausted")

    # -- derived -------------------------------------------------------------

    def width(self, i: int) -> int:
        """Band width along dimension ``i`` (1-based): ``b_i = b^(2^(i-1))``."""
        if not (1 <= i <= self.d):
            raise ValueError(f"dimension {i} out of [1, {self.d}]")
        return self.b ** (2 ** (i - 1))

    @property
    def k(self) -> int:
        """Number of worst-case faults tolerated: ``b^(2^d - 1)``."""
        return self.b ** (2 ** self.d - 1)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.m

    @property
    def num_nodes(self) -> int:
        out = 1
        for mi in self.m:
            out *= mi
        return out

    @property
    def degree(self) -> int:
        """``4d``: 2d torus edges + 2d jump edges."""
        return 4 * self.d

    def capacity(self, i: int) -> int:
        """Number of bands available along dimension ``i``."""
        return (self.m[i - 1] - self.n) // self.width(i)

    @property
    def paper_node_bound(self) -> int:
        """The theorem's bound ``(n + k^(2^d/(2^d-1)))^d`` (d=2: ``(n+k^{4/3})^2``)."""
        extra = self.b ** (2 ** self.d)
        return (self.n + extra + self.width(self.d) * (self.width(self.d) + 1)) ** self.d

    def describe(self) -> str:
        return (
            f"D^{self.d}_(n={self.n}, k={self.k}): b={self.b} m={self.m} "
            f"nodes={self.num_nodes} degree={self.degree}"
        )


@dataclass(frozen=True)
class AnParams:
    """Parameters of ``A^d_n`` (Theorem 1).

    The host is ``B^d_{n_B}`` given by ``base``; every host node becomes a
    clique *supernode* of ``h`` nodes and the final torus side is
    ``n = k_sub * n_B`` (each supernode receives a ``(k_sub)^d`` submesh).
    The paper proves ``d = 2`` and notes the general case follows "by
    simply changing some constants"; we implement general ``d`` with the
    constants spelled out: the good-supernode threshold becomes
    ``k^d + 4d sqrt(q) h`` (a node has at most ``2d`` already-embedded
    neighbours, each forbidding at most ``2 sqrt(q) h`` good nodes).

    For the theorem's guarantees one needs
    ``(1-p) h > k_sub^d + 4d sqrt(q) h`` with slack — checked by
    :meth:`feasible_for`.
    """

    base: BnParams
    k_sub: int
    h: int

    def __post_init__(self) -> None:
        if self.base.d < 2:
            raise ParameterError("A^d_n needs a d >= 2 dimensional B host")
        if self.k_sub < 1:
            raise ParameterError("k_sub must be >= 1")
        if self.h < self.k_sub ** self.base.d:
            raise ParameterError(
                f"h={self.h} must be >= k_sub^d={self.k_sub ** self.base.d} "
                "(a supernode must fit a k x ... x k submesh)"
            )

    @property
    def d(self) -> int:
        return self.base.d

    @property
    def n(self) -> int:
        """Side of the target torus."""
        return self.k_sub * self.base.n

    @property
    def num_supernodes(self) -> int:
        return self.base.num_nodes

    @property
    def num_nodes(self) -> int:
        return self.num_supernodes * self.h

    @property
    def c_effective(self) -> float:
        """Theorem 1's ``c``: total nodes / n^d."""
        return self.num_nodes / float(self.n ** self.d)

    @property
    def degree(self) -> int:
        """Exact degree: ``h - 1`` clique edges + ``h`` per adjacent supernode."""
        return (self.h - 1) + self.base.degree * self.h

    def good_node_threshold(self, q: float) -> float:
        """Per-supernode good-node requirement ``k^d + 4d sqrt(q) h``
        (paper, d=2: ``k^2 + 8 sqrt(q) h``)."""
        return self.k_sub ** self.d + 4.0 * self.d * math.sqrt(q) * self.h

    def feasible_for(self, p: float, q: float) -> bool:
        """Whether the expected good-node count clears the threshold
        (the paper's inequality (1): ``1-p > (1+eps)/c + 8 sqrt(q)``)."""
        return (1.0 - p) * self.h > self.good_node_threshold(q)

    def describe(self) -> str:
        return (
            f"A^{self.d}_{self.n}: host {self.base.describe()}, "
            f"k={self.k_sub} h={self.h} "
            f"nodes={self.num_nodes} c={self.c_effective:.2f} degree={self.degree}"
        )
