"""The worst-case construction ``D^d_{n,k}`` (Theorem 3 / Theorem 13).

Structure: an ``m_1 x ... x m_d`` torus augmented with per-dimension jump
edges ``(..., x_i, ...) ~ (..., x_i ± (b_i + 1), ...)`` where
``b_i = b^(2^(i-1))``.  Degree ``4d`` exactly.

Recovery against an *arbitrary* set of ``k = b^(2^d - 1)`` node+edge
faults (edge faults are ascribed to one endpoint, as in the paper) is a
cascading pigeonhole:

    dimension ``i`` places ``(m_i - n)/b_i`` straight width-``b_i`` bands:
    separator coordinates are every ``(b_i+1)``-th position at the offset
    whose separator class contains the fewest faults; every non-separator
    fault's gap is masked; at most ``k_i / (b_i + 1) < k_{i+1}`` faults
    survive into dimension ``i+1``.  The last dimension has capacity for
    everything that can reach it.

Because ``(b_i + 1) | m_i`` and ``b_i | (m_i - n)`` (see ``DnParams``),
every masked run has exactly the width of one band, so consecutive
unmasked coordinates differ by ``1`` (torus edge) or ``b_i + 1`` (jump
edge) — the unmasked nodes form the ``n^d`` torus directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import DnParams
from repro.errors import BandPlacementError, EmbeddingError
from repro.topology.coords import CoordCodec
from repro.topology.embeddings import verify_torus_embedding
from repro.topology.graph import CSRGraph

__all__ = ["DTorus", "DnRecovery"]


@dataclass
class DnRecovery:
    """Verified recovery: per-dimension band bottoms and the embedding."""

    params: DnParams
    #: per-dimension sorted band bottoms (straight bands)
    bottoms: list[np.ndarray]
    #: per-dimension sorted unmasked coordinates (length n each)
    unmasked: list[np.ndarray]
    #: flat guest index -> flat host index
    phi: np.ndarray
    stats: dict


class DTorus:
    """Theorem 3/13's construction with its recovery pipeline."""

    def __init__(self, params: DnParams) -> None:
        self.params = params
        self.codec = CoordCodec(params.shape)

    # -- structure ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.codec.size

    def edges(self) -> np.ndarray:
        """Undirected edge array (one orientation each); cached, matching
        :meth:`graph` — callers may hold the returned array."""
        if hasattr(self, "_edges"):
            return self._edges
        p = self.params
        idx = self.codec.all_indices()
        us, vs = [], []
        for axis in range(p.d):
            for delta in (1, p.width(axis + 1) + 1):
                us.append(idx)
                vs.append(self.codec.shift(idx, axis, delta, wrap=True))
        self._edges = np.stack([np.concatenate(us), np.concatenate(vs)], axis=1)
        return self._edges

    def graph(self) -> CSRGraph:
        if not hasattr(self, "_graph"):
            self._graph = CSRGraph(self.num_nodes, self.edges())
        return self._graph

    def is_adjacent(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised adjacency: one axis differs by ±1 or ±(b_i+1)."""
        p = self.params
        cu = self.codec.unravel(np.asarray(us, dtype=np.int64))
        cv = self.codec.unravel(np.asarray(vs, dtype=np.int64))
        ok_axis = []
        diff_axis = []
        for axis in range(p.d):
            mi = p.shape[axis]
            delta = (cv[..., axis] - cu[..., axis]) % mi
            w = p.width(axis + 1) + 1
            good = (delta == 1) | (delta == mi - 1) | (delta == w) | (delta == mi - w)
            ok_axis.append(good)
            diff_axis.append(delta != 0)
        ok = np.stack(ok_axis, axis=-1)
        diff = np.stack(diff_axis, axis=-1)
        one_diff = diff.sum(axis=-1) == 1
        which = diff.argmax(axis=-1)
        sel = np.take_along_axis(ok, which[..., None], axis=-1).squeeze(-1)
        return one_diff & sel

    # -- recovery ------------------------------------------------------------

    def fold_edge_faults(
        self, node_faults: np.ndarray, faulty_edges: np.ndarray | None
    ) -> np.ndarray:
        """Ascribe each faulty edge to its first endpoint (paper, §5)."""
        if faulty_edges is None or len(faulty_edges) == 0:
            return node_faults
        out = node_faults.copy()
        out.ravel()[np.asarray(faulty_edges, dtype=np.int64)[:, 0]] = True
        return out

    def recover(
        self,
        node_faults: np.ndarray | None = None,
        faulty_edges: np.ndarray | None = None,
        *,
        fault_coords: np.ndarray | None = None,
        verify: bool = True,
        assemble_phi: bool = True,
    ) -> DnRecovery:
        """Mask an arbitrary fault set (<= k faults guaranteed; more is
        attempted best-effort) and return the verified embedding.

        Faults may be given densely (``node_faults`` boolean array) or
        sparsely (``fault_coords`` of shape (F, d)) — the sparse path never
        materialises the host, so million-node-per-side instances cost
        O(faults) memory.  ``assemble_phi=False`` skips materialising the
        ``n^d`` guest->host map (use :meth:`map_guest` instead).
        """
        p = self.params
        if fault_coords is not None:
            if node_faults is not None:
                raise ValueError("pass either node_faults or fault_coords")
            coords = np.asarray(fault_coords, dtype=np.int64).reshape(-1, p.d)
            if faulty_edges is not None and len(faulty_edges):
                extra = self.codec.unravel(
                    np.asarray(faulty_edges, dtype=np.int64)[:, 0]
                )
                coords = np.concatenate([coords, extra], axis=0)
            coords = np.unique(coords, axis=0) if len(coords) else coords
            faults = None
        else:
            faults = self.fold_edge_faults(
                np.asarray(node_faults, dtype=bool), faulty_edges
            )
            if faults.shape != p.shape:
                raise ValueError(f"fault shape {faults.shape} != {p.shape}")
            coords = np.argwhere(faults)  # (F, d)
        bottoms: list[np.ndarray] = []
        passed = coords
        for axis in range(p.d):
            bots, passed = self._mask_dimension(axis, passed)
            bottoms.append(bots)
        if len(passed):
            raise BandPlacementError(
                f"{len(passed)} faults survive all dimensions", category="capacity"
            )
        unmasked = []
        for axis in range(p.d):
            mask = np.zeros(p.shape[axis], dtype=bool)
            for bot in bottoms[axis]:
                mask[(bot + np.arange(p.width(axis + 1))) % p.shape[axis]] = True
            um = np.flatnonzero(~mask)
            if len(um) != p.n:
                raise BandPlacementError(
                    f"axis {axis}: {len(um)} unmasked coords, expected {p.n}",
                    category="band-invalid",
                )
            unmasked.append(um)
        # Sparse coverage check (always): every fault coordinate must be
        # masked along at least one dimension.
        if len(coords):
            masked_any = np.zeros(len(coords), dtype=bool)
            for axis in range(p.d):
                keep = np.ones(p.shape[axis], dtype=bool)
                keep[unmasked[axis]] = False
                masked_any |= keep[coords[:, axis]]
            if not masked_any.all():
                raise BandPlacementError(
                    "a fault coordinate survived every dimension's bands",
                    category="coverage",
                )
        phi = self._assemble_phi(unmasked) if assemble_phi else np.empty(0, dtype=np.int64)
        stats: dict = {"num_faults": int(len(coords))}
        rec = DnRecovery(params=p, bottoms=bottoms, unmasked=unmasked, phi=phi, stats=stats)
        if verify and not assemble_phi:
            raise ValueError("verify=True requires assemble_phi=True")
        if verify:
            if faults is None:
                # Sparse fault membership for the embedding check.
                fkeys = (
                    np.sort(self.codec.ravel(coords))
                    if len(coords)
                    else np.empty(0, dtype=np.int64)
                )

                def fault_lookup(ids):
                    ids = np.asarray(ids, dtype=np.int64)
                    if len(fkeys) == 0:
                        return np.zeros(ids.shape, dtype=bool)
                    pos = np.clip(np.searchsorted(fkeys, ids), 0, len(fkeys) - 1)
                    return fkeys[pos] == ids

            else:
                fault_flat_dense = faults.ravel()

                def fault_lookup(ids):
                    return fault_flat_dense[np.asarray(ids, dtype=np.int64)]

            edge_set = None
            if faulty_edges is not None and len(faulty_edges):
                fe = np.asarray(faulty_edges, dtype=np.int64)
                lo = np.minimum(fe[:, 0], fe[:, 1])
                hi = np.maximum(fe[:, 0], fe[:, 1])
                edge_set = set((int(a) * self.num_nodes + int(b)) for a, b in zip(lo, hi))

            def node_ok(ids):
                return ~fault_lookup(ids)

            def edge_ok(us_, vs_):
                ok = self.is_adjacent(us_, vs_) & ~fault_lookup(us_) & ~fault_lookup(vs_)
                if edge_set:
                    lo_ = np.minimum(us_, vs_)
                    hi_ = np.maximum(us_, vs_)
                    keys = lo_ * self.num_nodes + hi_
                    bad = np.fromiter(
                        (int(kk) in edge_set for kk in keys), dtype=bool, count=len(keys)
                    )
                    ok &= ~bad
                return ok

            rec.stats.update(
                verify_torus_embedding((p.n,) * p.d, phi, node_ok, edge_ok)
            )
        return rec

    def map_guest(self, rec: DnRecovery, guest_coords: np.ndarray) -> np.ndarray:
        """Map guest torus coordinates (..., d) to host flat ids without a
        materialised ``phi`` (for ``assemble_phi=False`` recoveries)."""
        guest_coords = np.asarray(guest_coords, dtype=np.int64)
        host = np.empty_like(guest_coords)
        for axis in range(self.params.d):
            host[..., axis] = rec.unmasked[axis][guest_coords[..., axis]]
        return self.codec.ravel(host)

    def tolerates(
        self, node_faults: np.ndarray, faulty_edges: np.ndarray | None = None
    ) -> bool:
        try:
            self.recover(node_faults, faulty_edges)
            return True
        except (BandPlacementError, EmbeddingError):
            return False

    # -- internals -------------------------------------------------------------

    def _mask_dimension(
        self, axis: int, fault_coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Place straight bands along ``axis``; return (bottoms, survivors)."""
        p = self.params
        mi = p.shape[axis]
        w = p.width(axis + 1)
        period = w + 1
        capacity = (mi - p.n) // w
        if len(fault_coords) == 0:
            bottoms = self._pad_bands(np.array([], dtype=np.int64), mi, w, capacity)
            return bottoms, fault_coords
        rows = fault_coords[:, axis]
        # Pigeonhole: the separator offset whose class holds fewest faults.
        counts = np.bincount(rows % period, minlength=period)
        phi = int(np.argmin(counts))
        on_sep = rows % period == phi
        # Mask every gap (the w positions after a separator) containing a fault.
        gap_idx = np.unique(((rows[~on_sep] - phi) % mi - 1) // period)
        needed = phi + 1 + gap_idx * period
        if len(needed) > capacity:
            raise BandPlacementError(
                f"axis {axis}: need {len(needed)} bands > capacity {capacity}",
                category="capacity",
            )
        bottoms = self._pad_bands(np.sort(needed) % mi, mi, w, capacity)
        # Survivors: faults not covered by any band of this axis.
        covered = np.zeros(len(rows), dtype=bool)
        for bot in bottoms:
            covered |= (rows - bot) % mi < w
        return bottoms, fault_coords[~covered]

    @staticmethod
    def _pad_bands(needed: np.ndarray, mi: int, w: int, capacity: int) -> np.ndarray:
        """Add fault-free bands until exactly ``capacity``, keeping >= 1 gaps."""
        need = capacity - len(needed)
        if need == 0:
            return needed
        out = list(int(x) for x in needed)
        if not out:
            spacing = mi // capacity
            if spacing < w + 1:
                raise BandPlacementError("no room to pad bands", category="capacity")
            return np.array([i * spacing for i in range(capacity)], dtype=np.int64)
        srt = sorted(out)
        extras: list[int] = []
        for idx in range(len(srt)):
            if need - len(extras) <= 0:
                break
            a = srt[idx]
            nxt = srt[(idx + 1) % len(srt)] + (mi if idx == len(srt) - 1 else 0)
            cap = (nxt - a) // (w + 1) - 1
            for j in range(1, cap + 1):
                if len(extras) >= need:
                    break
                extras.append((a + (w + 1) * j) % mi)
        if len(extras) < need:
            raise BandPlacementError(
                f"cannot pad to capacity {capacity} (placed {len(extras)}/{need} extras)",
                category="capacity",
            )
        return np.sort(np.array(out + extras, dtype=np.int64))

    def _assemble_phi(self, unmasked: list[np.ndarray]) -> np.ndarray:
        """Guest (x_1..x_d) -> host (U_1[x_1], ..., U_d[x_d]), vectorised."""
        p = self.params
        guest_codec = CoordCodec((p.n,) * p.d)
        idx = guest_codec.all_indices()
        coords = guest_codec.unravel(idx)
        host = np.empty_like(coords)
        for axis in range(p.d):
            host[:, axis] = unmasked[axis][coords[:, axis]]
        return self.codec.ravel(host)
