"""Mesh views of recovered tori (Section 2; the paper's title claim).

Section 2: the ``s_1 x ... x s_d`` *submesh* of a torus is the subgraph
induced by a coordinate box; in particular the torus contains the
same-size mesh ("... still contains the N-node torus, **and hence the
mesh of the same size**").  Because all our recoveries produce a verified
torus embedding, the mesh follows by restriction — these helpers make that
restriction explicit, verified, and available for arbitrary submeshes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.reconstruction import Recovery
from repro.topology.coords import CoordCodec
from repro.topology.embeddings import verify_mesh_embedding

__all__ = ["submesh_phi", "mesh_phi", "verify_recovered_mesh"]


def submesh_phi(
    torus_shape: Sequence[int],
    phi: np.ndarray,
    corner: Sequence[int],
    sizes: Sequence[int],
) -> np.ndarray:
    """Restrict a torus embedding to the ``sizes`` submesh at ``corner``.

    Returns the flat guest->host map of the submesh (row-major over
    ``sizes``).  Wraps cyclically, exactly like the paper's submesh
    definition (coordinates ``corner_j <= i'_j < corner_j + sizes_j``
    taken mod ``n_j``).
    """
    torus_shape = tuple(int(x) for x in torus_shape)
    corner = tuple(int(x) for x in corner)
    sizes = tuple(int(x) for x in sizes)
    if len(corner) != len(torus_shape) or len(sizes) != len(torus_shape):
        raise ValueError("corner/sizes dimensionality mismatch")
    for s, n in zip(sizes, torus_shape):
        if not (1 <= s <= n):
            raise ValueError(f"submesh size {s} out of [1, {n}]")
    codec = CoordCodec(torus_shape)
    grids = [
        (corner[a] + np.arange(sizes[a])) % torus_shape[a]
        for a in range(len(torus_shape))
    ]
    mesh = np.meshgrid(*grids, indexing="ij")
    coords = np.stack([mm.ravel() for mm in mesh], axis=-1)
    return np.asarray(phi, dtype=np.int64)[codec.ravel(coords)]


def mesh_phi(recovery: Recovery) -> np.ndarray:
    """The full same-size mesh inside a recovered torus (corner 0)."""
    shape = recovery.guest_shape()
    return submesh_phi(shape, recovery.phi, (0,) * len(shape), shape)


def verify_recovered_mesh(
    recovery: Recovery,
    faults: np.ndarray | None,
    bn,
    corner: Sequence[int] | None = None,
    sizes: Sequence[int] | None = None,
) -> dict:
    """Verify a (sub)mesh restriction of a ``B^d_n`` recovery edge-by-edge.

    ``bn`` is the hosting :class:`~repro.core.bn_graph.BnGraph`.  Raises
    :class:`EmbeddingError` on any violation.
    """
    shape = recovery.guest_shape()
    corner = (0,) * len(shape) if corner is None else corner
    sizes = shape if sizes is None else tuple(sizes)
    phi = submesh_phi(shape, recovery.phi, corner, sizes)
    fault_flat = (
        faults.ravel() if faults is not None else np.zeros(bn.codec.size, dtype=bool)
    )

    def node_ok(ids):
        return ~fault_flat[ids]

    def edge_ok(us, vs):
        return bn.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs]

    return verify_mesh_embedding(sizes, phi, node_ok, edge_ok)
