"""The painting procedure (proof of Lemma 5, step 1).

Localises faults:  every faulty tile must end up *black*, enclosed by
fault-free *white* frames; the connected components of black tiles
("black regions") are small (fit inside a ``b^3``-cube of tiles) and
pairwise well-separated, so straight band segments can be laid per region
and interpolated through the white area.

Implementation notes (see DESIGN.md §2):

* Regions are labelled with **king-move connectivity** (paper: torus-edge
  adjacency).  Overriding paint can make two frames' interiors touch
  diagonally; king connectivity merges them, which is always safe.
* After painting, black regions are **dilated by one tile along dim 0** so
  that straight segments whose masked window pokes across a tile-row
  boundary are still pinned by black tiles at every column they mask.
* Extent invariants are verified: a region may span at most ``b`` tiles in
  every column axis and ``b + 2`` tiles along dim 0 (b from the frame
  interior + 2 from dilation); violations raise ``region-overflow``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.healthiness import find_enclosing_frame
from repro.core.params import BnParams
from repro.errors import ReconstructionError
from repro.topology.grid import TileGeometry

__all__ = ["PaintResult", "Region", "paint_tiles"]


@dataclass
class Region:
    """A black region: a king-connected set of black tiles."""

    label: int
    tiles_flat: np.ndarray  # flat tile-grid indices
    #: contiguous cyclic range of tile-rows covered: (first_strip, num_strips)
    strip_start: int = 0
    strip_count: int = 0


@dataclass
class PaintResult:
    black: np.ndarray  # boolean tile grid (True = black), after dilation
    labels: np.ndarray  # int tile grid, -1 = white, else region label
    regions: list[Region]


def paint_tiles(params: BnParams, faults: np.ndarray, geo: TileGeometry) -> PaintResult:
    """Run the painting procedure; raises ``no-frame`` / ``region-overflow``."""
    tile_faulty = geo.tile_fault_counts(faults) > 0
    flat_faulty = tile_faulty.ravel()
    # 0 = unpainted, 1 = white, 2 = black
    color = np.zeros(geo.grid.size, dtype=np.int8)

    for tile_flat in np.flatnonzero(flat_faulty):
        if color[tile_flat] == 2:  # already enclosed in black
            continue
        tile = tuple(geo.grid.unravel(int(tile_flat)))
        found = find_enclosing_frame(geo, flat_faulty, tile)
        if found is None:
            raise ReconstructionError(
                f"no fault-free enclosing frame for faulty tile {tile}",
                category="no-frame",
            )
        corner, size = found
        frame, interior = geo.frame_and_interior(corner, size)
        color[frame] = 1
        color[interior] = 2

    # Sanity: every faulty tile is black; every white tile is fault-free.
    if (flat_faulty & (color != 2)).any():
        raise ReconstructionError(
            "painting left a faulty tile outside black", category="no-frame"
        )

    black = (color == 2).reshape(geo.grid_shape)
    black = _dilate_dim0(black)
    labels, regions = _label_regions(black, geo, params)
    return PaintResult(black=black, labels=labels, regions=regions)


def _dilate_dim0(black: np.ndarray) -> np.ndarray:
    """Black := black ∪ shift(black, ±1 along axis 0) (cyclic)."""
    return black | np.roll(black, 1, axis=0) | np.roll(black, -1, axis=0)


def _label_regions(
    black: np.ndarray, geo: TileGeometry, params: BnParams
) -> tuple[np.ndarray, list[Region]]:
    """Cyclic king-connectivity components of the black tile set."""
    grid_shape = black.shape
    labels = np.full(grid_shape, -1, dtype=np.int64)
    flat_black = black.ravel()
    ndim = black.ndim
    offsets = _king_offsets(ndim)

    regions: list[Region] = []
    for start in np.flatnonzero(flat_black):
        if labels.ravel()[start] != -1:
            continue
        label = len(regions)
        stack = [int(start)]
        members = []
        lab_flat = labels.ravel()
        lab_flat[start] = label
        while stack:
            cur = stack.pop()
            members.append(cur)
            cc = np.unravel_index(cur, grid_shape)
            for off in offsets:
                nb = tuple((cc[a] + off[a]) % grid_shape[a] for a in range(ndim))
                nb_flat = int(np.ravel_multi_index(nb, grid_shape))
                if flat_black[nb_flat] and lab_flat[nb_flat] == -1:
                    lab_flat[nb_flat] = label
                    stack.append(nb_flat)
        region = Region(label=label, tiles_flat=np.array(sorted(members), dtype=np.int64))
        _finish_region(region, geo, params)
        regions.append(region)
    return labels, regions


def _king_offsets(ndim: int):
    import itertools

    return [
        off
        for off in itertools.product((-1, 0, 1), repeat=ndim)
        if any(o != 0 for o in off)
    ]


def _finish_region(region: Region, geo: TileGeometry, params: BnParams) -> None:
    """Compute the strip range and verify extent bounds."""
    b = params.b
    # Column-axis extent <= b tiles (a region fits in a b^3-cube).
    for axis in range(1, geo.ndim):
        ext = geo.tile_extent(region.tiles_flat, axis)
        if ext > b:
            raise ReconstructionError(
                f"black region {region.label} spans {ext} tiles on axis {axis} "
                f"(> b = {b})",
                category="region-overflow",
            )
    # Dim-0 extent <= b + 2 tiles (b from the frame interior + dilation).
    ext0 = geo.tile_extent(region.tiles_flat, 0)
    if ext0 > b + 2:
        raise ReconstructionError(
            f"black region {region.label} spans {ext0} tile-rows (> b+2 = {b + 2})",
            category="region-overflow",
        )
    # Contiguous cyclic strip range.
    rows = np.unique(geo.grid.unravel(region.tiles_flat)[..., 0])
    n_rows = geo.grid_shape[0]
    present = np.zeros(n_rows, dtype=bool)
    present[rows] = True
    if present.all():
        region.strip_start, region.strip_count = 0, n_rows
        return
    # Find the largest cyclic gap; the range starts right after it.
    from repro.util.cyclic import max_free_run

    gap = max_free_run(present)
    idx = np.flatnonzero(present)
    ext = np.concatenate([idx, [idx[0] + n_rows]])
    runs = np.diff(ext) - 1
    j = int(np.argmax(runs))
    region.strip_start = int(ext[j] + 1 + runs[j]) % n_rows
    region.strip_count = n_rows - int(gap)
