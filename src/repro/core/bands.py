"""Bands on ``B^d_n`` (Section 3).

A **band** is a mapping ``beta : (C_n)^{d-1} -> [m]`` with the *slope
condition* ``beta(z') in {beta(z)-1, beta(z), beta(z)+1} (mod m)`` for
adjacent columns ``z, z'``.  It masks the ``b`` rows
``beta(z), ..., beta(z)+b-1`` of every column ``z``.

Two bands are **untouching** when, on every column, at least one unmasked
row separates them — i.e. their bottoms differ by at least ``b+1``
cyclically.

A valid :class:`BandSet` carries exactly ``(m-n)/b`` mutually untouching
bands; Lemma 6 then guarantees the unmasked nodes contain ``(C_n)^d``.
This module implements the representation and *checks*; placement lives in
:mod:`repro.core.placement`, extraction in :mod:`repro.core.reconstruction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import BnParams
from repro.errors import BandPlacementError
from repro.topology.coords import CoordCodec

__all__ = ["Band", "BandSet"]


@dataclass(frozen=True)
class Band:
    """A single band: bottom row per column (flattened column grid)."""

    bottoms: np.ndarray  # shape (num_columns,)
    b: int
    m: int

    def masks(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Element-wise: does this band mask node (rows[i], cols[i])?"""
        return (np.asarray(rows) - self.bottoms[np.asarray(cols)]) % self.m < self.b


class BandSet:
    """An ordered collection of bands over a ``B^d_n`` instance.

    Parameters
    ----------
    params:
        The host construction's parameters.
    bottoms:
        Integer array of shape ``(K, num_columns)`` (columns flattened
        row-major over the ``(n,)*(d-1)`` column grid); entry ``[k, z]`` is
        the bottom row of band ``k`` on column ``z``, in ``[0, m)``.
    """

    def __init__(self, params: BnParams, bottoms: np.ndarray) -> None:
        self.params = params
        self.col_codec = CoordCodec((params.n,) * (params.d - 1)) if params.d > 1 else CoordCodec((1,))
        bottoms = np.asarray(bottoms, dtype=np.int64)
        if bottoms.ndim != 2 or bottoms.shape[1] != self.col_codec.size:
            raise ValueError(
                f"bottoms shape {bottoms.shape} != (K, {self.col_codec.size})"
            )
        self.bottoms = bottoms % params.m

    # -- basic queries ------------------------------------------------------

    @property
    def num_bands(self) -> int:
        return int(self.bottoms.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.bottoms.shape[1])

    def band(self, k: int) -> Band:
        return Band(self.bottoms[k], self.params.b, self.params.m)

    @property
    def is_straight(self) -> bool:
        """True when every band is constant across columns (straight)."""
        return bool((self.bottoms == self.bottoms[:, :1]).all())

    def mask(self) -> np.ndarray:
        """Full boolean mask of shape ``params.shape`` (True = masked)."""
        p = self.params
        out = np.zeros((p.m, self.num_columns), dtype=bool)
        rows = (self.bottoms[..., None] + np.arange(p.b)) % p.m  # (K, C, b)
        cols = np.broadcast_to(
            np.arange(self.num_columns)[None, :, None], rows.shape
        )
        out[rows.ravel(), cols.ravel()] = True
        return out.reshape((p.m,) + (p.n,) * (p.d - 1))

    def covers(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Element-wise band-coverage predicate: is node ``(rows[i],
        cols[i])`` (flattened column index) masked by *some* band?

        The one implementation of "is this fault masked" — shared by
        coverage validation and by the online-repair masked check, so the
        two can never drift apart.
        """
        p = self.params
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        return (((rows[None, :] - self.bottoms[:, cols]) % p.m) < p.b).any(axis=0)

    def covers_node(self, coord: "tuple[int, ...]") -> bool:
        """Coverage of one node given as a full ``params.shape`` coordinate."""
        col = self.col_codec.ravel(
            np.asarray([coord[1:]], dtype=np.int64)
        )[0] if self.params.d > 1 else 0
        return bool(self.covers(int(coord[0]), int(col))[0])

    def unmasked_rows(self, col: int) -> np.ndarray:
        """Sorted unmasked row indices of flattened column ``col``."""
        p = self.params
        masked = np.zeros(p.m, dtype=bool)
        rows = (self.bottoms[:, col][:, None] + np.arange(p.b)) % p.m
        masked[rows.ravel()] = True
        return np.flatnonzero(~masked)

    # -- validation -----------------------------------------------------------

    def validate(self, faults: np.ndarray | None = None) -> None:
        """Raise :class:`BandPlacementError` unless this is a valid placement.

        Checks (in order): band count, slope condition along every column-grid
        axis (cyclically), mutual untouching on every column, and — if
        ``faults`` is given — that every faulty node is masked.
        """
        p = self.params
        if self.num_bands != p.num_bands:
            raise BandPlacementError(
                f"band count {self.num_bands} != (m-n)/b = {p.num_bands}",
                category="band-invalid",
            )
        if p.d > 1:
            grid = self.bottoms.reshape((self.num_bands,) + (p.n,) * (p.d - 1))
            for axis in range(1, p.d):
                diff = (np.roll(grid, -1, axis=axis) - grid) % p.m
                ok = (diff == 0) | (diff == 1) | (diff == p.m - 1)
                if not ok.all():
                    bad = int((~ok).sum())
                    raise BandPlacementError(
                        f"slope condition violated on {bad} adjacent column "
                        f"pairs along axis {axis}",
                        category="band-invalid",
                    )
        # Untouching: cyclic gaps between sorted bottoms >= b+1 per column.
        if self.num_bands > 1:
            s = np.sort(self.bottoms, axis=0)
            gaps = np.diff(s, axis=0)
            wrap = (s[0] + p.m - s[-1])[None, :]
            all_gaps = np.concatenate([gaps, wrap], axis=0)
            if (all_gaps < p.b + 1).any():
                bad_cols = np.unique(np.nonzero(all_gaps < p.b + 1)[1])
                raise BandPlacementError(
                    f"untouching violated on {len(bad_cols)} columns "
                    f"(first: column {int(bad_cols[0])}, min gap "
                    f"{int(all_gaps[:, bad_cols[0]].min())} < b+1={p.b + 1})",
                    category="band-invalid",
                )
        if faults is not None:
            self._check_coverage(faults)

    def _check_coverage(self, faults: np.ndarray) -> None:
        p = self.params
        flat = faults.reshape(p.m, -1)
        frows, fcols = np.nonzero(flat)
        if len(frows) == 0:
            return
        covered = self.covers(frows, fcols)
        if not covered.all():
            miss = int((~covered).sum())
            i = int(np.flatnonzero(~covered)[0])
            raise BandPlacementError(
                f"{miss} faults unmasked (first: row {int(frows[i])}, "
                f"column {int(fcols[i])})",
                category="coverage",
            )

    def is_valid(self, faults: np.ndarray | None = None) -> bool:
        try:
            self.validate(faults)
            return True
        except BandPlacementError:
            return False

    # -- constructors ------------------------------------------------------------

    @classmethod
    def straight(cls, params: BnParams, bottoms_1d: np.ndarray) -> "BandSet":
        """A set of straight (constant) bands at the given bottom rows."""
        cols = params.n ** (params.d - 1) if params.d > 1 else 1
        b1 = np.asarray(bottoms_1d, dtype=np.int64).reshape(-1, 1)
        return cls(params, np.broadcast_to(b1, (b1.shape[0], cols)).copy())
