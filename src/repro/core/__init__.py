"""The paper's constructions and recovery algorithms.

* ``BTorus``  — Theorem 2 (`B^d_n`): constant degree ``6d-2``.
* ``ATorus``  — Theorem 1 (`A^2_n`): degree ``O(log log n)``.
* ``DTorus``  — Theorem 3/13 (`D^d_{n,k}`): worst-case faults, degree ``4d``.
"""

from repro.core.params import BnParams, DnParams, AnParams
from repro.core.bn_graph import BnGraph
from repro.core.bn import BTorus
from repro.core.dn import DTorus
from repro.core.an import ATorus
from repro.core.bands import Band, BandSet
from repro.core.healthiness import HealthReport, check_healthiness
from repro.core.placement import place_bands
from repro.core.reconstruction import extract_torus
from repro.core.mesh import mesh_phi, submesh_phi, verify_recovered_mesh

__all__ = [
    "BnParams",
    "DnParams",
    "AnParams",
    "BnGraph",
    "BTorus",
    "DTorus",
    "ATorus",
    "Band",
    "BandSet",
    "HealthReport",
    "check_healthiness",
    "place_bands",
    "extract_torus",
    "mesh_phi",
    "submesh_phi",
    "verify_recovered_mesh",
]
