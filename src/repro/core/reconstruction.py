"""Extracting the fault-free torus from the unmasked nodes (Lemmas 6-8).

Given a valid :class:`~repro.core.bands.BandSet` on ``B^d_n``:

* each column's ``n`` unmasked rows form a cycle (torus edges where rows
  are consecutive, a *vertical jump* ``+(b+1)`` where they hop over a band);
* rows are traced column-to-column: if the current row is masked at the
  next column, the path jumps ``±b`` with a *diagonal jump* — upward when
  the offending band moved up onto it, downward otherwise (Lemma 6's two
  cases);
* Lemma 7 guarantees the result is path-independent; we do not take that
  on faith — the BFS transition is *verified on every non-tree edge* of the
  column graph, and the final mapping goes through
  :func:`repro.topology.embeddings.verify_torus_embedding`.

The output maps guest torus node ``(i, z)`` to host node ``(psi_z[i], z)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bands import BandSet
from repro.core.bn_graph import BnGraph
from repro.core.params import BnParams
from repro.errors import ReconstructionError
from repro.topology.embeddings import verify_torus_embedding

__all__ = ["Recovery", "extract_torus", "extract_torus_straight"]


@dataclass
class Recovery:
    """A verified embedding of the fault-free ``n^d`` torus into ``B^d_n``."""

    params: BnParams
    bands: BandSet
    #: flat guest index -> flat host index, shape (n^d,)
    phi: np.ndarray
    stats: dict

    def guest_shape(self) -> tuple[int, ...]:
        return (self.params.n,) * self.params.d


def extract_torus(
    bn: BnGraph,
    bands: BandSet,
    faults: np.ndarray | None = None,
    *,
    verify: bool = True,
) -> Recovery:
    """Build and (by default) fully verify the torus embedding."""
    p = bn.params
    m, n, b = p.m, p.n, p.b
    col_codec = bands.col_codec
    num_cols = col_codec.size

    # psi[z] = array of n host rows, in column-cycle order.
    psi = np.full((num_cols, n), -1, dtype=np.int64)
    psi[0] = bands.unmasked_rows(0)
    if psi[0].shape[0] != n:
        raise ReconstructionError(
            f"column 0 has {psi[0].shape[0]} unmasked rows, expected {n}",
            category="band-invalid",
        )

    # BFS over the column torus (C_n)^{d-1}.
    visited = np.zeros(num_cols, dtype=bool)
    visited[0] = True
    frontier = [0]
    col_axes = p.d - 1
    tree_edges = 0
    while frontier:
        nxt_frontier = []
        for z in frontier:
            for axis in range(col_axes):
                for delta in (+1, -1):
                    z2 = int(col_codec.shift(np.array([z]), axis, delta, wrap=True)[0])
                    if visited[z2]:
                        continue
                    psi[z2] = _transition(psi[z], bands.bottoms[:, z], bands.bottoms[:, z2], m, b)
                    visited[z2] = True
                    tree_edges += 1
                    nxt_frontier.append(z2)
        frontier = nxt_frontier
    if not visited.all():
        raise ReconstructionError("column graph BFS did not reach all columns", category="band-invalid")

    # Lemma 7 check: every column-graph edge must be transition-consistent.
    checked = 0
    if col_axes:
        idx = col_codec.all_indices()
        for axis in range(col_axes):
            z2s = col_codec.shift(idx, axis, +1, wrap=True)
            for z, z2 in zip(idx, z2s):
                got = _transition(psi[z], bands.bottoms[:, z], bands.bottoms[:, z2], m, b)
                if not (got == psi[z2]).all():
                    raise ReconstructionError(
                        f"Lemma 7 consistency violated on column edge {z}->{z2}",
                        category="band-invalid",
                    )
                checked += 1

    # Assemble phi: guest (i, z) -> host (psi[z][i], z).
    host_codec = bn.codec
    guest = np.empty((num_cols, n), dtype=np.int64)
    if col_axes:
        col_coords = col_codec.unravel(col_codec.all_indices())  # (C, d-1)
        host_coords = np.empty((num_cols, n, p.d), dtype=np.int64)
        host_coords[:, :, 0] = psi
        host_coords[:, :, 1:] = col_coords[:, None, :]
        guest = host_codec.ravel(host_coords)  # (C, n)
    else:
        guest[0] = psi[0]
        guest = guest[:1]
    # Guest index layout: torus (n, n, ..., n) with dim-0 = i, rest = z.
    # flat guest = i * num_cols + ... careful: row-major (i, z1..z_{d-1})
    # => flat = i * (n^{d-1}) + z_flat.
    phi = np.empty(n * num_cols, dtype=np.int64)
    for i in range(n):
        phi[i * num_cols : (i + 1) * num_cols] = guest[:, i]

    stats = {"tree_edges": tree_edges, "consistency_edges": checked}
    rec = Recovery(params=p, bands=bands, phi=phi, stats=stats)
    if verify:
        fault_flat = (
            faults.ravel() if faults is not None else np.zeros(host_codec.size, dtype=bool)
        )

        def node_ok(ids):
            return ~fault_flat[ids]

        def edge_ok(us, vs):
            return bn.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs]

        rec.stats.update(
            verify_torus_embedding((n,) * p.d, phi, node_ok, edge_ok)
        )
    return rec


def extract_torus_straight(
    bn: BnGraph, bands: BandSet, *, prev: Recovery | None = None
) -> Recovery:
    """O(N) torus extraction for a *validated straight* band set.

    For straight bands every Lemma 6 transition is the identity (no band
    moves between adjacent columns), so the whole embedding is determined
    by column 0's unmasked rows and the BFS / Lemma 7 consistency /
    embedding-verification passes of :func:`extract_torus` can only
    re-prove what :meth:`BandSet.validate` already established — the same
    argument the batched backend rests on (docs/fastpath.md).  ``phi`` is
    assembled directly with array ops.

    When ``prev`` is an earlier *straight* recovery of the same instance,
    only guest rows whose host row changed are rewritten (the online
    path's "re-extract only affected torus rows" contract);
    ``stats["rows_updated"]`` records how many.
    """
    p = bn.params
    if not bands.is_straight:
        raise ValueError("extract_torus_straight needs a straight band set")
    psi = bands.unmasked_rows(0)
    if psi.shape[0] != p.n:
        raise ReconstructionError(
            f"column 0 has {psi.shape[0]} unmasked rows, expected {p.n}",
            category="band-invalid",
        )
    num_cols = bands.col_codec.size
    cols = np.arange(num_cols, dtype=np.int64)
    if (
        prev is not None
        and prev.bands.is_straight
        and prev.phi.shape == (p.n * num_cols,)
    ):
        old_psi = prev.bands.unmasked_rows(0)
        changed = np.flatnonzero(old_psi != psi)
        phi = prev.phi.copy()
        phi.reshape(p.n, num_cols)[changed] = psi[changed, None] * num_cols + cols
        rows_updated = int(len(changed))
    else:
        phi = (psi[:, None] * num_cols + cols).ravel()
        rows_updated = int(p.n)
    stats = {"fast_straight": True, "rows_updated": rows_updated}
    return Recovery(params=p, bands=bands, phi=phi, stats=stats)


def _transition(
    rows: np.ndarray, bot_from: np.ndarray, bot_to: np.ndarray, m: int, b: int
) -> np.ndarray:
    """Move every tracked row from column ``z`` (bottoms ``bot_from``) to the
    adjacent column ``z2`` (bottoms ``bot_to``) — Lemma 6's jump rule."""
    # Which band (if any) masks each row at the destination column?
    offs = (rows[None, :] - bot_to[:, None]) % m  # (K, n)
    masked = offs < b
    k = masked.argmax(axis=0)
    is_masked = masked.any(axis=0)
    bt_to = bot_to[k]
    bt_from = bot_from[k]
    up = (bt_from - (rows + 1)) % m == 0  # band sat just above the row at z
    down = (rows - 1 - (bt_from + b - 1)) % m == 0  # band sat just below
    new_rows = np.where(up, (rows + b) % m, (rows - b) % m)
    if (is_masked & ~(up | down)).any():
        raise ReconstructionError(
            "row masked at destination but source band position inconsistent "
            "(slope condition broken?)",
            category="band-invalid",
        )
    return np.where(is_masked, new_rows, rows)
