"""Multilinear interpolation through white tiles (Lemmas 9-11).

Bands are built one *tile-row* (strip of ``b^2`` consecutive dim-0 rows) at
a time.  Within a strip, band ``j``'s value on a column ``z`` is determined
by a **corner lattice**: the tile grid of the column space ``(C_n)^{d-1}``
has ``n/b^2`` corners per axis (cyclic); every tile is spanned by its
``2^{d-1}`` corners; a column sits at fractional position
``(offset + 0.5) / b^2`` inside its tile (the paper embeds each tile in a
side-``b^2`` hypercube with boundary-bisected edges).

Corner values (local to the strip, i.e. in ``[0, b^2)``):

* corners touching a black tile take that tile's region stack value
  (Lemma 9's boundary conditions — all black tiles sharing a corner belong
  to one region, so the conditions never conflict);
* free corners take the default ``c_j = b + j (b+1)`` (0-based ``j``),
  which realises the paper's "at least b" rule for the bottom band and
  keeps every consecutive pair of bands corner-wise ``b+1`` apart, so by
  Lemma 10 they stay untouching everywhere;
* values are rounded with **floor** — by Lemma 11 the real function has
  slope ``< 1`` along every torus edge, and flooring preserves both the
  slope-1 bound and integer ``>= b+1`` corner gaps (round-to-nearest would
  not; see DESIGN.md §2).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.params import BnParams

__all__ = ["default_corner_value", "interpolate_strip_band", "multilinear_on_columns"]


def default_corner_value(params: BnParams, j: int) -> int:
    """Free-corner default for (0-based) band ``j`` of a strip.

    Satisfies ``c_0 = b`` (paper's bottom-band rule), consecutive gaps of
    exactly ``b+1``, and ``c_{s-1} <= b^2 - b - 1`` (cross-strip rule) —
    guaranteed by ``s < b/2`` for every ``b >= 3``.
    """
    c = params.b + j * (params.b + 1)
    assert c <= params.tile - params.b - 1, "default corner rule violated"
    return c


def multilinear_on_columns(
    corner_values: np.ndarray, n: int, tile_side: int
) -> np.ndarray:
    """Evaluate the per-tile multilinear extension on every column.

    Parameters
    ----------
    corner_values:
        Float array over the cyclic corner lattice, shape ``(n//tile_side,)*k``.
    n, tile_side:
        Column-axis length and tile side ``b^2``.

    Returns a float array of shape ``(n,)*k``: the interpolated value at
    each column.  ``k == 0`` (d = 1 hosts) returns a scalar array.
    """
    k = corner_values.ndim
    if k == 0:
        return corner_values.copy()
    g_count = corner_values.shape[0]
    pos = np.arange(n)
    g = pos // tile_side  # tile index per axis
    x = ((pos % tile_side) + 0.5) / tile_side  # fractional position in tile
    out = np.zeros((n,) * k, dtype=np.float64)
    for corner in itertools.product((0, 1), repeat=k):
        idx = [((g + c) % g_count) for c in corner]
        vals = corner_values[np.ix_(*idx)]
        weight = np.ones((n,) * k, dtype=np.float64)
        for axis, c in enumerate(corner):
            w = x if c == 1 else 1.0 - x
            shape = [1] * k
            shape[axis] = n
            weight = weight * w.reshape(shape)
        out += vals * weight
    return out


def interpolate_strip_band(
    params: BnParams,
    j: int,
    corner_black: np.ndarray,
    corner_value: np.ndarray,
) -> np.ndarray:
    """Band ``j``'s *local* bottoms for one strip, every column.

    ``corner_black``: bool array over the corner lattice — corner touches a
    black tile of this strip.  ``corner_value``: the region-stack value at
    black corners (ignored elsewhere).
    Returns an int array over the full column grid, values in ``[0, b^2)``.
    """
    default = default_corner_value(params, j)
    V = np.where(corner_black, corner_value, default).astype(np.float64)
    real = multilinear_on_columns(V, params.n, params.tile)
    # The uniform epsilon keeps exact-integer corner values (e.g. constant
    # black tiles, whose convex combination can evaluate to 5.999...) from
    # flooring one too low; it shifts all values equally, so the slope and
    # untouching guarantees — which only involve differences — are intact.
    out = np.floor(real + 1e-7).astype(np.int64)
    # Lemma 11 + floor guarantees the slope bound; the values stay inside
    # the strip because corners do (multilinear = convex combination).
    assert out.min() >= 0 and out.max() < params.tile
    return out
