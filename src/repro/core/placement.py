"""Band placement strategies (the constructive content of Lemma 5).

``place_bands(params, faults, strategy=...)`` returns a *validated*
:class:`~repro.core.bands.BandSet` masking every fault, or raises a
:class:`~repro.errors.BandPlacementError` with a failure category.

Strategies
----------
``"straight"``
    Fast path: try to cover all *faulty rows* (dim-0 coordinates that
    contain at least one fault, across all columns) with ``(m-n)/b``
    straight bands.  Succeeds whenever fault rows are sparse — the common
    case in Theorem 2's ``p = b^{-3d}`` regime — and costs O(m + faults).

``"paper"``
    The paper's full pipeline: painting -> black regions -> per-block
    pigeonhole segments -> per-strip padding -> multilinear interpolation
    through white tiles.  Works whenever the instance is healthy (Lemma 5)
    and often beyond.

``"auto"``
    ``straight`` first, fall back to ``paper`` (the ablation benchmark
    E12 quantifies how often each path wins).
"""

from __future__ import annotations

import numpy as np

from repro.core.bands import BandSet
from repro.core.blocks import build_region_stacks
from repro.core.interpolation import default_corner_value, interpolate_strip_band
from repro.core.painting import paint_tiles
from repro.core.params import BnParams
from repro.errors import BandPlacementError, ReconstructionError
from repro.topology.grid import TileGeometry

__all__ = ["place_bands", "place_straight", "place_straight_rows", "place_paper"]


def place_bands(
    params: BnParams,
    faults: np.ndarray,
    *,
    strategy: str = "auto",
    geo: TileGeometry | None = None,
) -> BandSet:
    """Place and validate a full band set masking ``faults``."""
    if faults.shape != params.shape:
        raise ValueError(f"fault array shape {faults.shape} != {params.shape}")
    if strategy == "straight":
        return place_straight(params, faults)
    if strategy == "paper":
        return place_paper(params, faults, geo=geo)
    if strategy == "auto":
        try:
            return place_straight(params, faults)
        except ReconstructionError:
            return place_paper(params, faults, geo=geo)
    raise ValueError(f"unknown strategy {strategy!r}")


# ---------------------------------------------------------------------------
# straight strategy
# ---------------------------------------------------------------------------


def place_straight(params: BnParams, faults: np.ndarray) -> BandSet:
    """Cover all faulty rows with straight bands (greedy, then pad)."""
    fault_rows = np.flatnonzero(faults.reshape(params.m, -1).any(axis=1))
    return place_straight_rows(params, fault_rows)


def place_straight_rows(params: BnParams, fault_rows: np.ndarray) -> BandSet:
    """Straight cover from a precomputed faulty-*row* index set.

    The online-repair path maintains the dim-0 fault profile incrementally,
    so placement never rescans the full fault array.  For straight bands,
    row-profile coverage is equivalent to full node coverage (a straight
    band masks a node iff it masks the node's row, identically on every
    column), which is why validation here checks structure plus the row
    profile and nothing more.
    """
    m, b, K = params.m, params.b, params.num_bands
    fault_rows = np.asarray(fault_rows, dtype=np.int64)
    bottoms = _cover_rows_cyclic(fault_rows, m, b, K)
    bs = BandSet.straight(params, np.asarray(sorted(bottoms), dtype=np.int64))
    bs.validate()
    if len(fault_rows) and not bs.covers(
        fault_rows, np.zeros(len(fault_rows), dtype=np.int64)
    ).all():
        raise BandPlacementError(
            "straight cover left a faulty row unmasked", category="coverage"
        )
    return bs


def _cover_rows_cyclic(rows: np.ndarray, m: int, b: int, K: int) -> list[int]:
    """Choose K window bottoms (width b, cyclic, bottom gaps >= b+1) covering
    every row in ``rows``; raise ``capacity`` when both greedy variants fail.

    Two complementary greedy sweeps: *latest-bottom* (each window starts at
    the fault it must cover, maximising forward coverage and minimising the
    window count) and *earliest-bottom* (each window starts as low as the
    spacing allows, which resolves tight chains of faults exactly ``b``
    apart that defeat the latest variant).
    """
    if len(rows) == 0:
        spacing = m // K
        if spacing < b + 1:
            raise BandPlacementError("no room for fault-free padding", category="capacity")
        return [i * spacing for i in range(K)]
    rows = np.sort(rows)
    # Cut the circle at the largest gap between consecutive fault rows.
    gaps = np.diff(np.concatenate([rows, [rows[0] + m]]))
    cut = int(np.argmax(gaps))
    if gaps[cut] < b + 1:
        raise BandPlacementError(
            f"fault rows leave no {b + 1}-row gap anywhere on the cycle",
            category="capacity",
        )
    order = np.concatenate([rows[cut + 1 :], rows[: cut + 1] + m]).astype(np.int64)

    errors = []
    for variant in ("latest", "earliest"):
        try:
            bottoms = _cover_linear(order, b, variant)
        except BandPlacementError as exc:
            errors.append(str(exc))
            continue
        # Cyclic closure: last bottom vs first bottom across the cut gap.
        if len(bottoms) > 1 and (bottoms[0] + m) - bottoms[-1] < b + 1:
            errors.append("cyclic closure gap too small")
            continue
        if len(bottoms) > K:
            errors.append(f"needs {len(bottoms)} bands > capacity {K}")
            continue
        bottoms = _pad_cyclic(bottoms, m, b, K)
        return [x % m for x in bottoms]
    raise BandPlacementError(
        "straight cover failed: " + "; ".join(errors), category="capacity"
    )


def _cover_linear(order: np.ndarray, b: int, variant: str) -> list[int]:
    """One greedy sweep over linearised fault rows."""
    bottoms: list[int] = []
    covered_until: int | None = None
    for r in order:
        r = int(r)
        if covered_until is not None and r < covered_until:
            continue
        if variant == "latest":
            bottom = r
            if bottoms and bottom - bottoms[-1] < b + 1:
                raise BandPlacementError(
                    f"bottom gap violation at rows {bottoms[-1]}, {bottom}",
                    category="capacity",
                )
        else:  # earliest
            low = bottoms[-1] + b + 1 if bottoms else r - b + 1
            bottom = max(low, r - b + 1)
            if bottom > r:
                raise BandPlacementError(
                    f"cannot cover row {r} after bottom {bottoms[-1]}",
                    category="capacity",
                )
        bottoms.append(bottom)
        covered_until = bottom + b
    return bottoms


def _pad_cyclic(bottoms: list[int], m: int, b: int, K: int) -> list[int]:
    """Insert extra bottoms into the free arcs until there are exactly K."""
    need = K - len(bottoms)
    if need == 0:
        return bottoms
    out = list(bottoms)
    # Arcs between consecutive bottoms (cyclic, linear coords).
    i = 0
    while need > 0:
        arcs = []
        srt = sorted(out)
        for idx in range(len(srt)):
            a = srt[idx]
            nxt = srt[(idx + 1) % len(srt)] + (m if idx == len(srt) - 1 else 0)
            cap = (nxt - a) // (b + 1) - 1  # extra bottoms that fit strictly inside
            arcs.append((cap, a, nxt))
        arcs.sort(reverse=True)
        cap, a, nxt = arcs[0]
        if cap <= 0:
            raise BandPlacementError(
                f"cannot pad straight bands to K={K} (free arcs exhausted)",
                category="capacity",
            )
        take = min(cap, need)
        for j in range(1, take + 1):
            out.append(a + (b + 1) * j)
        need -= take
        i += 1
        if i > K + 1:
            raise BandPlacementError("padding loop failed to converge", category="capacity")
    return out


# ---------------------------------------------------------------------------
# paper strategy
# ---------------------------------------------------------------------------


def place_paper(
    params: BnParams, faults: np.ndarray, *, geo: TileGeometry | None = None
) -> BandSet:
    """The paper's painting + pigeonhole + interpolation pipeline."""
    p = params
    geo = geo or TileGeometry(p.shape, p.b)
    paint = paint_tiles(p, faults, geo)
    stacks = {
        r.label: build_region_stacks(r, faults, p, geo) for r in paint.regions
    }

    tile_rows = p.tile_rows
    col_axes = p.d - 1
    corner_shape = (p.n // p.tile,) * col_axes
    labels_grid = paint.labels  # tile grid, -1 white

    all_bottoms = []
    for strip in range(tile_rows):
        # Black/label info of this strip's column-tile grid.
        strip_labels = labels_grid[strip] if col_axes else np.array(labels_grid[strip])
        strip_black = strip_labels >= 0
        corner_black, corner_label = _corner_classification(strip_black, strip_labels)
        # Region-stack lookup table for this strip: (num_regions, s).
        lut = np.zeros((max(len(paint.regions), 1), p.s), dtype=np.int64)
        for lbl, st in stacks.items():
            if strip in st.local:
                lut[lbl] = st.local[strip]
            # else: region has no tiles in this strip; never looked up.
        for j in range(p.s):
            if col_axes == 0:
                local = np.array(
                    [lut[corner_label, j] if corner_black else default_corner_value(p, j)]
                )
            else:
                corner_value = lut[corner_label, j]
                local = interpolate_strip_band(p, j, corner_black, corner_value)
            all_bottoms.append((strip * p.tile + local.reshape(-1)) % p.m)

    bs = BandSet(p, np.stack(all_bottoms, axis=0))
    bs.validate(faults)
    return bs


def _corner_classification(strip_black: np.ndarray, strip_labels: np.ndarray):
    """Classify corner-lattice points of one strip.

    A corner touches the ``2^{d-1}`` tiles whose corner coordinate is
    ``corner - c`` for ``c in {0,1}^{d-1}``.  Returns ``(corner_black,
    corner_label)``; raises if two different regions share a corner (they
    cannot, under king connectivity — checked defensively).
    """
    import itertools

    k = strip_black.ndim
    if k == 0:
        return bool(strip_black), int(strip_labels) if strip_black else 0
    corner_black = np.zeros_like(strip_black)
    corner_min = np.full(strip_labels.shape, np.iinfo(np.int64).max, dtype=np.int64)
    corner_max = np.full(strip_labels.shape, -1, dtype=np.int64)
    for c in itertools.product((0, 1), repeat=k):
        rolled_black = strip_black
        rolled_labels = strip_labels
        for axis, ci in enumerate(c):
            if ci:
                rolled_black = np.roll(rolled_black, 1, axis=axis)
                rolled_labels = np.roll(rolled_labels, 1, axis=axis)
        corner_black |= rolled_black
        corner_min = np.where(
            rolled_black & (rolled_labels < corner_min), rolled_labels, corner_min
        )
        corner_max = np.where(
            rolled_black & (rolled_labels > corner_max), rolled_labels, corner_max
        )
    mixed = corner_black & (corner_min != corner_max)
    if mixed.any():
        raise ReconstructionError(
            "two distinct regions share a corner (king connectivity violated)",
            category="region-overflow",
        )
    corner_label = np.where(corner_black, corner_max, 0)
    return corner_black, corner_label
