"""Straight band segments inside black regions (proof of Lemma 5, step 2).

For one black region:

1. Collect the region's faulty rows and split them into **blocks** —
   maximal clusters not separated by ``>= 2b`` consecutive fault-free rows.
2. Inside each block, cyclically number rows mod ``b+1`` relative to the
   block's first fault; some residue ``i*`` is fault-free (pigeonhole:
   a healthy block has at most ``2s <= b-1`` faults).  The rows congruent
   to ``i*`` split the block into width-``b`` gaps; every gap containing a
   fault becomes one straight **segment** (bottom = row after the
   separator), masking exactly that gap.
3. Segments are binned by *tile-row* (strip) of their bottom row and each
   (region, strip) stack is **padded** to exactly ``s`` segments, keeping
   all cyclic gaps ``>= b+1`` (so bands built from the stacks are mutually
   untouching inside the region).

Every step verifies the invariant the proof promises; violations raise
``block-overflow`` / ``segment-overflow`` / ``padding`` errors that the
Monte-Carlo driver tallies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.painting import Region
from repro.core.params import BnParams
from repro.errors import BandPlacementError
from repro.topology.grid import TileGeometry

__all__ = ["RegionStacks", "build_region_stacks"]


@dataclass
class RegionStacks:
    """Per-strip segment stacks of one region.

    ``local[strip]`` is an int array of ``s`` *local* bottoms (relative to
    the strip's first row, in ``[0, b^2)``), sorted ascending.
    """

    region: Region
    local: dict[int, np.ndarray]


def region_fault_rows(
    region: Region, faults: np.ndarray, geo: TileGeometry
) -> np.ndarray:
    """Sorted unique dim-0 rows of the faults inside the region's tiles."""
    in_region = np.zeros(geo.grid.size, dtype=bool)
    in_region[region.tiles_flat] = True
    flat = faults.reshape(faults.shape[0], -1)
    frows, fcols = np.nonzero(flat)
    if len(frows) == 0:
        return np.array([], dtype=np.int64)
    # Tile of each fault.
    col_codec_shape = faults.shape[1:]
    col_coords = (
        np.stack(np.unravel_index(fcols, col_codec_shape), axis=-1)
        if col_codec_shape
        else np.zeros((len(fcols), 0), dtype=np.int64)
    )
    tile_coords = np.concatenate(
        [frows[:, None] // geo.tile_side, col_coords // geo.tile_side], axis=1
    )
    tiles = geo.grid.ravel(tile_coords)
    keep = in_region[tiles]
    return np.unique(frows[keep])


def split_blocks(rows: np.ndarray, b: int, m: int) -> list[np.ndarray]:
    """Split cyclic fault rows into blocks separated by >= 2b fault-free rows.

    Each returned block is an *unwrapped* ascending array (values may exceed
    ``m``; take mod ``m`` for absolute rows) so that within-block arithmetic
    is linear.
    """
    if len(rows) == 0:
        return []
    rows = np.sort(rows)
    if len(rows) == 1:
        return [rows]
    gaps = np.diff(np.concatenate([rows, [rows[0] + m]])) - 1
    # Cut the circle at the largest gap (must be >= 2b unless single block).
    cut = int(np.argmax(gaps))
    order = np.concatenate([rows[cut + 1 :], rows[: cut + 1] + m])
    inner_gaps = np.diff(order) - 1
    split_at = np.flatnonzero(inner_gaps >= 2 * b)
    blocks = []
    start = 0
    for sp in split_at:
        blocks.append(order[start : sp + 1])
        start = sp + 1
    blocks.append(order[start:])
    if gaps[cut] < 2 * b and len(blocks) > 1:
        # The circle could not be cut cleanly: merge last and first blocks
        # across the cut (they are closer than 2b).
        merged = np.concatenate([blocks[-1] - m, blocks[0]])
        blocks = [merged] + blocks[1:-1]
    return blocks


def segments_for_block(block: np.ndarray, params: BnParams) -> list[int]:
    """Pigeonhole segment bottoms (unwrapped coords) covering one block."""
    b = params.b
    lo = int(block[0])
    span = int(block[-1]) - lo + 1
    if span > 2 * params.tile:
        raise BandPlacementError(
            f"block spans {span} rows (> 2b^2 = {2 * params.tile})",
            category="block-overflow",
        )
    residues = np.unique((block - lo) % (b + 1))
    free = np.setdiff1d(np.arange(b + 1), residues)
    if len(free) == 0:
        raise BandPlacementError(
            f"no fault-free residue class mod b+1 in block of {len(block)} fault rows",
            category="block-overflow",
        )
    # Choose the free residue minimising (segment count, max segments that
    # land in one tile-row): every strip has only s band slots, so packing
    # segments into one strip is the dominant overflow risk.
    best: tuple[tuple[int, int], list[int]] | None = None
    for i_star in free:
        shifts = block - lo - int(i_star)
        gap_idx = np.unique((shifts - 1) // (b + 1))  # floor-div handles negatives
        bottoms = [lo + int(i_star) + (b + 1) * int(g) + 1 for g in gap_idx]
        strips = [(x % params.m) // params.tile for x in bottoms]
        load = max(np.bincount(strips).max(), 1) if strips else 1
        key = (len(bottoms), int(load))
        if best is None or key < best[0]:
            best = (key, bottoms)
    assert best is not None
    return best[1]


def build_region_stacks(
    region: Region,
    faults: np.ndarray,
    params: BnParams,
    geo: TileGeometry,
) -> RegionStacks:
    """Needed segments + padding for one region; verified output."""
    b, s, tile, m = params.b, params.s, params.tile, params.m
    rows = region_fault_rows(region, faults, geo)
    needed: list[int] = []
    for block in split_blocks(rows, b, m):
        needed.extend(segments_for_block(block, params))
    # Verify segments cover all region fault rows and are mutually untouching.
    _check_needed(needed, rows, params)

    # Bin by strip.  Unwrapped coords are normalised into the region's strip
    # window so cross-boundary ordering stays linear.
    start_row = region.strip_start * tile
    local_positions = sorted(((x - start_row) % m) for x in needed)
    strip_span = region.strip_count * tile
    if local_positions and local_positions[-1] >= strip_span:
        raise BandPlacementError(
            "segment bottom outside the region's strip range "
            f"(offset {local_positions[-1]} >= {strip_span})",
            category="segment-overflow",
        )
    per_strip: dict[int, list[int]] = {
        (region.strip_start + i) % (m // tile): [] for i in range(region.strip_count)
    }
    for pos in local_positions:
        strip = (region.strip_start + pos // tile) % (m // tile)
        per_strip[strip].append(pos % tile)

    # Pad each strip's stack to exactly s, chaining the >= b+1 gap constraint
    # through consecutive strips (linear coordinates relative to the region).
    local: dict[int, np.ndarray] = {}
    prev: int | None = None  # linear coordinate of the last placed bottom
    for i in range(region.strip_count):
        strip = (region.strip_start + i) % (m // tile)
        existing = [i * tile + x for x in sorted(per_strip[strip])]
        if len(existing) > s:
            raise BandPlacementError(
                f"strip {strip} needs {len(existing)} segments for region "
                f"{region.label} (> s = {s})",
                category="segment-overflow",
            )
        stack, prev = _pad_stack(existing, s, i * tile, (i + 1) * tile - 1, prev, b)
        local[strip] = np.array([x - i * tile for x in stack], dtype=np.int64)
    return RegionStacks(region=region, local=local)


def _check_needed(needed: list[int], rows: np.ndarray, params: BnParams) -> None:
    b, m = params.b, params.m
    if len(needed) > 1:
        arr = np.sort(np.asarray(needed) % m)
        gaps = np.diff(np.concatenate([arr, [arr[0] + m]]))
        if (gaps < b + 1).any():
            raise BandPlacementError(
                f"needed segments touch (min bottom gap {int(gaps.min())} < {b + 1})",
                category="block-overflow",
            )
    if len(rows):
        covered = np.zeros(len(rows), dtype=bool)
        for bot in needed:
            covered |= (rows - bot) % m < b
        if not covered.all():
            raise BandPlacementError(
                "pigeonhole segments failed to cover every region fault row",
                category="block-overflow",
            )


def _pad_stack(
    existing: list[int],
    s: int,
    strip_lo: int,
    strip_hi: int,
    prev: int | None,
    b: int,
) -> tuple[list[int], int]:
    """Pad ``existing`` (linear coords within the region window) to exactly
    ``s`` bottoms in ``[strip_lo, strip_hi]`` with all gaps >= b+1."""
    out: list[int] = []
    queue = deque(existing)
    for slot in range(s):
        low = strip_lo if prev is None else max(strip_lo, prev + b + 1)
        if queue:
            nxt = queue[0]
            if nxt < low:
                raise BandPlacementError(
                    f"cannot keep >= b+1 gap before needed segment at {nxt} "
                    f"(low bound {low})",
                    category="padding",
                )
            if nxt - low < b + 1 or (s - slot) == len(queue):
                prev = queue.popleft()
                out.append(prev)
                continue
        if low > strip_hi:
            raise BandPlacementError(
                f"strip [{strip_lo}, {strip_hi}] cannot fit {s} segments",
                category="padding",
            )
        prev = low
        out.append(prev)
    if queue:
        raise BandPlacementError("padding did not consume all needed segments", category="padding")
    return out, prev
