"""The ``A^d_n`` construction (Theorem 1, Section 4).

Take ``B^d_{n/k}`` and replace every node by an ``h``-clique **supernode**;
between adjacent supernodes put all possible edges.  Nodes fail i.i.d. with
constant probability ``p``; *half-edges* fail i.i.d. with ``sqrt(q)`` and an
edge is faulty iff both halves are (Section 4's trick, making supernode
goodness independent across supernodes).

Recovery:

1. A node is **good** if non-faulty and, toward every relevant supernode
   (its own and each neighbour), at most ``2 sqrt(q) h`` of its half-edges
   are faulty.
2. A supernode is **good** if it has at least ``k^d + 4d sqrt(q) h`` good
   nodes (paper, d=2: ``k^2 + 8 sqrt(q) h``).
3. Bad supernodes are treated as faulty nodes of the ``B^d_{n/k}`` host;
   Theorem 2's recovery yields a torus of good supernodes.
4. The ``n^d`` torus is cut into ``k^d`` submeshes; submesh ``(I_1..I_d)``
   is embedded into supernode ``U_{I_1..I_d}`` by a greedy that always
   finds a good, unused node with non-faulty edges to all
   previously-embedded neighbours (the paper's counting argument; we
   verify instead of trust).

The paper proves ``d = 2`` and states the general case follows by changing
constants; this implementation is dimension-generic (raster order over the
guest torus gives each node at most ``2d`` already-embedded neighbours:
the ``-1`` neighbour per axis plus the wrap neighbour on the last slice).

The ``A^d_n`` edge set is *never materialised*: half-edge fault bits are
drawn lazily per ordered supernode pair from a keyed RNG, so both sides of
a pair see identical bits without storing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.bn import BTorus
from repro.core.params import AnParams, BnParams
from repro.core.reconstruction import Recovery
from repro.errors import ReconstructionError
from repro.faults.models import HalfEdgeFaults
from repro.topology.coords import CoordCodec
from repro.topology.embeddings import verify_torus_embedding
from repro.util.rng import spawn_rng

__all__ = [
    "ATorus",
    "AnFaultState",
    "AnRecovery",
    "an_params_for",
    "an_params_for_reliability",
]


def an_params_for(base: BnParams, k_sub: int, c: float) -> AnParams:
    """Supernode size realising overhead ``c``: ``h = c k^d / (1 + eps')``."""
    kd = k_sub ** base.d
    h = max(kd, int(round(c * kd / (1.0 + base.eps_redundancy))))
    return AnParams(base=base, k_sub=k_sub, h=h)


def an_params_for_reliability(
    base: BnParams,
    k_sub: int,
    p: float,
    q: float = 0.0,
    *,
    super_fail_target: float | None = None,
) -> AnParams:
    """Smallest ``h`` whose supernode-failure probability clears the target.

    The paper sets ``h = c k^2/(1+eps)`` with ``k^2 = alpha log log n`` and
    hides the constant ``alpha`` in "choose alpha = 6 gamma'" — asymptotically
    any ``c > 1/(1-p)`` works.  At laptop scale ``k`` is a small constant, so
    we invert the exact binomial tail instead: find the least ``h`` with
    ``P[Bin(h, 1-p') < k^d + 4d sqrt(q) h] <= target``, where ``p'`` inflates
    ``p`` by the probability that a node violates the half-edge condition.
    Default target: ``b^{-3d}`` of the host (Theorem 2's regime), scaled down
    4x for union-bound slack.
    """
    from scipy.stats import binom

    d = base.d
    if 4.0 * d * math.sqrt(q) >= 1.0 - p:
        raise ValueError(
            f"(p={p}, q={q}) violates the paper's inequality (1): need "
            f"{4 * d} sqrt(q) = {4 * d * math.sqrt(q):.3f} < 1 - p = {1 - p:.3f} "
            "(Theorem 1, d=2, requires q < (1-p-1/c)^2/64)"
        )
    if super_fail_target is None:
        super_fail_target = base.paper_fault_probability / 4.0
    deg_b = base.degree
    kd = k_sub ** d
    for h in range(max(kd + 1, 4), 4096):
        threshold = kd + 4.0 * d * math.sqrt(q) * h
        if q > 0.0:
            p_half = float(binom.sf(math.floor(2.0 * math.sqrt(q) * h), h, math.sqrt(q)))
            p_eff = min(1.0, p + (deg_b + 1) * p_half)
        else:
            p_eff = p
        # good nodes ~ Bin(h, 1 - p_eff); supernode fails if < threshold
        fail = float(binom.cdf(math.ceil(threshold) - 1, h, 1.0 - p_eff))
        if fail <= super_fail_target:
            return AnParams(base=base, k_sub=k_sub, h=h)
    raise ValueError("no feasible h <= 4096 for the requested reliability")


@dataclass
class AnFaultState:
    """Sampled fault state of one trial (half-edge bits stay lazy)."""

    node_faults: np.ndarray  # bool (num_supernodes, h)
    half: HalfEdgeFaults
    p: float
    q: float


@dataclass
class AnRecovery:
    params: AnParams
    super_recovery: Recovery
    #: flat guest (n^d) -> global node id (supernode * h + slot)
    phi: np.ndarray
    stats: dict = field(default_factory=dict)


class ATorus:
    """Theorem 1's construction with its recovery pipeline (general d)."""

    def __init__(self, params: AnParams) -> None:
        self.params = params
        self.host = BTorus(params.base)
        self._adj = self.host.bn.graph()  # supernode-level adjacency
        self._guest_codec = CoordCodec((params.n,) * params.d)
        self._super_codec = CoordCodec((params.base.n,) * params.d)

    # -- structure -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.params.num_nodes

    @property
    def degree(self) -> int:
        return self.params.degree

    def global_id(self, supernode: int, slot: int) -> int:
        return supernode * self.params.h + slot

    # -- fault sampling ---------------------------------------------------------

    def sample_faults(self, p: float, q: float, seed: int) -> AnFaultState:
        rng = spawn_rng(seed, "an-nodes")
        h = self.params.h
        node_faults = rng.random((self.params.num_supernodes, h)) < p
        half_seed = int(spawn_rng(seed, "an-half").integers(0, 2**31))
        return AnFaultState(
            node_faults=node_faults, half=HalfEdgeFaults(q, half_seed), p=p, q=q
        )

    # -- recovery ------------------------------------------------------------------

    def good_nodes(self, state: AnFaultState) -> np.ndarray:
        """Boolean (num_supernodes, h): the paper's good-node predicate."""
        h = self.params.h
        good = ~state.node_faults
        if state.q == 0.0:
            return good
        limit = 2.0 * math.sqrt(state.q) * h
        for u in range(self.params.num_supernodes):
            targets = [u] + [int(w) for w in self._adj.neighbors(u)]
            for w in targets:
                block = state.half.half_block(u, w, (h, h))
                if w == u:
                    block = block.copy()
                    np.fill_diagonal(block, False)
                good[u] &= block.sum(axis=1) <= limit
        return good

    def good_supernodes(self, good_nodes: np.ndarray, q: float) -> np.ndarray:
        threshold = self.params.good_node_threshold(q)
        return good_nodes.sum(axis=1) >= threshold

    def recover(self, state: AnFaultState, *, verify: bool = True) -> AnRecovery:
        p = self.params
        h, k, d = p.h, p.k_sub, p.d
        good = self.good_nodes(state)
        super_ok = self.good_supernodes(good, state.q)
        faulty_super = (~super_ok).reshape(p.base.shape)
        super_rec = self.host.recover(faulty_super)

        # phi_super: guest supernode-torus flat index -> host supernode id
        phi_super = super_rec.phi

        n = p.n
        guest_codec = self._guest_codec
        super_codec = self._super_codec
        num_guest = guest_codec.size
        assign = np.full(num_guest, -1, dtype=np.int64)  # slot within supernode
        used = np.zeros((p.num_supernodes, h), dtype=bool)
        blocks: dict[tuple[int, int], np.ndarray] = {}

        def half(u: int, w: int) -> np.ndarray:
            key = (u, w)
            if key not in blocks:
                blk = state.half.half_block(u, w, (h, h))
                if u == w:
                    blk = blk.copy()
                    np.fill_diagonal(blk, False)
                blocks[key] = blk
            return blocks[key]

        # Supernode of every guest node, vectorised once.
        guest_coords = guest_codec.unravel(guest_codec.all_indices())
        sup_of = phi_super[super_codec.ravel(guest_coords // k)]

        q_zero = state.q == 0.0
        coords = guest_coords  # raster order == ascending flat index
        for g in range(num_guest):
            s = int(sup_of[g])
            cand = good[s] & ~used[s]
            if not q_zero:
                for g2 in _assigned_neighbors(coords[g], n, d, guest_codec):
                    s2 = int(sup_of[g2])
                    a2 = int(assign[g2])
                    # edge (a in s, a2 in s2) faulty iff both halves faulty
                    bad = half(s, s2)[:, a2] & half(s2, s)[a2, :]
                    cand &= ~bad
            slot = int(np.argmax(cand))
            if not cand[slot]:
                raise ReconstructionError(
                    f"greedy embedding ran dry in supernode {s} at guest {g}",
                    category="supernode",
                )
            assign[g] = slot
            used[s, slot] = True

        phi = sup_of * h + assign
        rec = AnRecovery(params=p, super_recovery=super_rec, phi=phi)
        rec.stats["good_supernode_fraction"] = float(super_ok.mean())
        rec.stats["good_node_fraction"] = float(good.mean())
        if verify:
            self._verify(rec, state, half)
        return rec

    def survives(self, p: float, q: float, seed: int) -> bool:
        try:
            self.recover(self.sample_faults(p, q, seed))
            return True
        except ReconstructionError:
            return False

    # -- verification ------------------------------------------------------------

    def _verify(self, rec: AnRecovery, state: AnFaultState, half) -> None:
        p = self.params
        h = p.h
        fault_flat = state.node_faults.ravel()

        def node_ok(ids):
            return ~fault_flat[ids]

        def edge_ok(us, vs):
            us = np.asarray(us)
            vs = np.asarray(vs)
            su, au = us // h, us % h
            sv, av = vs // h, vs % h
            same = su == sv
            adjacent = np.zeros(us.shape, dtype=bool)
            mixed = ~same
            if mixed.any():
                adjacent[mixed] = self.host.bn.is_adjacent(su[mixed], sv[mixed])
            exists = (same & (au != av)) | adjacent
            if state.q == 0.0:
                return exists
            ok = exists.copy()
            for i in np.flatnonzero(exists):
                s1, a1, s2, a2 = int(su[i]), int(au[i]), int(sv[i]), int(av[i])
                if half(s1, s2)[a1, a2] and half(s2, s1)[a2, a1]:
                    ok[i] = False
            return ok

        rec.stats.update(
            verify_torus_embedding((p.n,) * p.d, rec.phi, node_ok, edge_ok)
        )


def _assigned_neighbors(
    coord: np.ndarray, n: int, d: int, codec: CoordCodec
) -> list[int]:
    """Guest-torus neighbours of ``coord`` with smaller raster index.

    Raster (row-major ascending) order means the ``-1`` neighbour along
    every axis precedes, and the ``+1`` (wrap) neighbour precedes exactly
    when this node sits on the last slice of that axis.  At most ``2d``.
    """
    out: list[int] = []
    for axis in range(d):
        c = coord.copy()
        if coord[axis] > 0:
            c[axis] = coord[axis] - 1
            out.append(int(codec.ravel(c)))
        if coord[axis] == n - 1 and n > 2:
            c = coord.copy()
            c[axis] = 0
            out.append(int(codec.ravel(c)))
    return out
