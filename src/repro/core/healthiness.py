"""Healthiness of a faulty ``B^d_n`` (Section 3, Lemma 4).

A faulty instance is **healthy** when:

1. every *brick* (``b^2 x b^3 x ... x b^3`` tiled submesh) contains ``2b``
   consecutive fault-free rows,
2. every brick contains at most ``eps*b = s`` faults,
3. every node is enclosed by a fault-free *s-frame* with ``3 <= s <= b``
   (equivalently: every **tile** is, since frames enclose whole tiles).

Healthiness is *sufficient* for the paper's band placement to succeed
(Lemma 5); it is not necessary — the Monte-Carlo reports both quantities.

The checker enumerates all tile-aligned brick positions (cyclically) and,
for condition 3, searches frames centre-first.  Tile grids are small
(``O(t b) x O(t(b-s))^{d-1}``), so exhaustive enumeration is cheap compared
to the node-level work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import BnParams
from repro.topology.grid import TileGeometry

__all__ = ["HealthReport", "check_healthiness", "check_healthiness_batch"]


@dataclass
class HealthReport:
    """Outcome of a healthiness check, with per-condition diagnostics.

    Two grades are reported:

    * :attr:`healthy` — the paper's literal Lemma 4 statement (condition 3
      quantifies over *every* node).  This is what the w.h.p. bound is
      proved for.
    * :attr:`sufficient` — what Lemma 5's constructive proof actually
      consumes: condition 3 only for *faulty* nodes (the painting procedure
      only ever encloses faults).  ``healthy => sufficient``; at small ``b``
      the gap is large (with ``b = 3`` a single fault already breaks the
      strict condition for its neighbour tiles).
    """

    cond1_ok: bool
    cond2_ok: bool
    cond3_ok: bool
    #: condition 3 restricted to faulty tiles (what the painting needs)
    cond3_faulty_ok: bool = True
    #: brick corners (tile coords) violating condition 1 (bounded sample)
    cond1_violations: list = field(default_factory=list)
    #: (brick corner, fault count) violating condition 2 (bounded sample)
    cond2_violations: list = field(default_factory=list)
    #: tile coords with no fault-free enclosing frame (bounded sample)
    cond3_violations: list = field(default_factory=list)
    num_faults: int = 0
    max_brick_faults: int = 0

    @property
    def healthy(self) -> bool:
        """The paper's literal healthiness (Lemma 4)."""
        return self.cond1_ok and self.cond2_ok and self.cond3_ok

    @property
    def sufficient(self) -> bool:
        """The precondition Lemma 5's constructive proof actually uses."""
        return self.cond1_ok and self.cond2_ok and self.cond3_faulty_ok

    def summary(self) -> str:
        flags = "".join(
            "Y" if ok else "n" for ok in (self.cond1_ok, self.cond2_ok, self.cond3_ok)
        )
        return (
            f"healthy={self.healthy} sufficient={self.sufficient} "
            f"[conditions {flags}] faults={self.num_faults} "
            f"max_brick_faults={self.max_brick_faults}"
        )


def _linear_max_free_run(marked: np.ndarray) -> int:
    """Longest run of False in a *linear* (non-cyclic) boolean array."""
    marked = np.asarray(marked, dtype=bool)
    if not marked.any():
        return len(marked)
    idx = np.flatnonzero(marked)
    runs = np.diff(np.concatenate([[-1], idx, [len(marked)]])) - 1
    return int(runs.max())


def check_healthiness(
    params: BnParams,
    faults: np.ndarray,
    geometry: TileGeometry | None = None,
    *,
    max_violations: int = 8,
) -> HealthReport:
    """Check Lemma 4's three conditions on a fault array of shape
    ``params.shape``.  Short-circuits nothing: all three conditions are
    evaluated so the Monte-Carlo can attribute failures."""
    geo = geometry or TileGeometry(params.shape, params.b)
    b, s = params.b, params.s
    report = HealthReport(True, True, True, num_faults=int(faults.sum()))

    # Conditions 1 & 2: scan every brick.
    for corner in geo.brick_corners():
        block = geo.brick_node_block(faults, corner)
        rows_faulty = block.reshape(block.shape[0], -1).any(axis=1)
        count = int(block.sum())
        report.max_brick_faults = max(report.max_brick_faults, count)
        if _linear_max_free_run(rows_faulty) < 2 * b:
            report.cond1_ok = False
            if len(report.cond1_violations) < max_violations:
                report.cond1_violations.append(tuple(corner))
        if count > s:
            report.cond2_ok = False
            if len(report.cond2_violations) < max_violations:
                report.cond2_violations.append((tuple(corner), count))

    # Condition 3: every tile has a fault-free enclosing frame (strict),
    # and separately for faulty tiles only (what Lemma 5 consumes).
    tile_faulty = geo.tile_fault_counts(faults) > 0
    flat_faulty = tile_faulty.ravel()
    for tile_flat in range(geo.grid.size):
        tile = tuple(geo.grid.unravel(tile_flat))
        if find_enclosing_frame(geo, flat_faulty, tile) is None:
            report.cond3_ok = False
            if flat_faulty[tile_flat]:
                report.cond3_faulty_ok = False
            if len(report.cond3_violations) < max_violations:
                report.cond3_violations.append(tile)
    return report


def check_healthiness_batch(
    params: BnParams,
    faults: np.ndarray,
    geometry: TileGeometry | None = None,
    *,
    max_violations: int = 8,
) -> "list[HealthReport]":
    """Vectorized form of :func:`check_healthiness` over a ``(T, *shape)``
    fault stack: the brick and tile scans become sliding-window array
    reductions over the trial axis, with reports identical slice-for-slice
    to the scalar checker.  Implemented in :mod:`repro.fastpath.health`
    (imported lazily — the fast path depends on this module, not vice
    versa)."""
    from repro.fastpath.health import check_healthiness_batch as _batch

    return _batch(params, faults, geometry, max_violations=max_violations)


def find_enclosing_frame(
    geo: TileGeometry, tile_faulty_flat: np.ndarray, tile: tuple[int, ...]
) -> tuple[tuple[int, ...], int] | None:
    """Smallest fault-free s-frame enclosing ``tile`` (centre-first search).

    Returns ``(corner, s)`` or ``None``.  Shared by the healthiness check
    and the painting procedure so "checked healthy" implies "painting finds
    a frame".
    """
    for size in range(3, geo.b + 1):
        for corner in geo.enclosing_corners(tile, size):
            frame, _ = geo.frame_and_interior(corner, size)
            if not tile_faulty_flat[frame].any():
                return corner, size
    return None
