"""The augmented torus ``B^d_n`` (Section 3).

``B^d_n`` is the torus ``C_m x (C_n)^{d-1}`` plus two extra edge families:

* **vertical jumps**:   ``(i, z) ~ (i ± (b+1) mod m, z)`` within a column,
* **diagonal jumps**:   ``(i, z) ~ (i ± b mod m, z')`` for every column
  ``z'`` adjacent to ``z`` in ``(C_n)^{d-1}``.

Per-node degree: ``2d`` torus + ``2`` vertical + ``4(d-1)`` diagonal
= ``6d - 2`` exactly (Theorem 2(2)).

Vertical jumps let a column's unmasked nodes hop over a band (gap of exactly
``b`` masked rows → span ``b+1``); diagonal jumps let a row shift by ``b``
when crossing a band sideways.  This is precisely what the reconstruction
(Lemma 6) consumes.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import BnParams
from repro.topology.coords import CoordCodec
from repro.topology.graph import CSRGraph
from repro.topology.grid import TileGeometry

__all__ = ["BnGraph"]


class BnGraph:
    """Structure (not state) of ``B^d_n``; fault state lives in plain arrays."""

    def __init__(self, params: BnParams) -> None:
        self.params = params
        self.codec = CoordCodec(params.shape)
        self.tiles = TileGeometry(params.shape, params.b)

    # -- counting / structure ---------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.codec.size

    def edge_families(self) -> dict[str, list[tuple[int, int]]]:
        """Edge generators as (axis, delta) shift descriptors.

        ``axis == 0`` shifts are within a column; diagonal jumps combine a
        dim-0 shift of ``±b`` with a ``±1`` shift along a later axis and are
        listed as (axis, ±1) paired with dim-0 delta — see :meth:`edges`.
        """
        p = self.params
        fam: dict[str, list[tuple[int, int]]] = {
            "torus": [(a, +1) for a in range(p.d)],
            "vertical": [(0, p.b + 1)],
            "diagonal": [],
        }
        for axis in range(1, p.d):
            fam["diagonal"].append((axis, +p.b))
            fam["diagonal"].append((axis, -p.b))
        return fam

    def edges(self) -> np.ndarray:
        """The full ``(E, 2)`` undirected edge array (one orientation each);
        cached, like :meth:`graph` — callers may hold the returned array."""
        if hasattr(self, "_edges"):
            return self._edges
        idx = self.codec.all_indices()
        p = self.params
        us, vs = [], []
        # torus edges: +1 along every axis
        for axis in range(p.d):
            us.append(idx)
            vs.append(self.codec.shift(idx, axis, +1, wrap=True))
        # vertical jumps: +(b+1) along axis 0
        us.append(idx)
        vs.append(self.codec.shift(idx, 0, p.b + 1, wrap=True))
        # diagonal jumps: (+1 along axis j) combined with (±b along axis 0)
        for axis in range(1, p.d):
            stepped = self.codec.shift(idx, axis, +1, wrap=True)
            for delta in (+p.b, -p.b):
                us.append(idx)
                vs.append(self.codec.shift(stepped, 0, delta, wrap=True))
        self._edges = np.stack([np.concatenate(us), np.concatenate(vs)], axis=1)
        return self._edges

    def graph(self) -> CSRGraph:
        """Materialised CSR graph (cached)."""
        if not hasattr(self, "_graph"):
            self._graph = CSRGraph(self.num_nodes, self.edges())
        return self._graph

    # -- adjacency predicate (no materialisation needed) ---------------------

    def is_adjacent(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorised: are ``us[i]`` and ``vs[i]`` adjacent in ``B^d_n``?

        Checked analytically against the three edge families.
        """
        p = self.params
        cu = self.codec.unravel(np.asarray(us, dtype=np.int64))
        cv = self.codec.unravel(np.asarray(vs, dtype=np.int64))
        m, n, b = p.m, p.n, p.b
        d0 = (cv[..., 0] - cu[..., 0]) % m  # dim-0 forward gap
        same0 = d0 == 0
        step0 = (d0 == 1) | (d0 == m - 1)
        jump0 = (d0 == b + 1) | (d0 == m - b - 1)
        diag0 = (d0 == b) | (d0 == m - b)

        if p.d == 1:
            return step0 | jump0

        rest_u = cu[..., 1:]
        rest_v = cv[..., 1:]
        dr = (rest_v - rest_u) % n
        is_step = (dr == 1) | (dr == n - 1)
        num_diff = (dr != 0).sum(axis=-1)
        col_same = num_diff == 0
        col_adj = (num_diff == 1) & np.take_along_axis(
            is_step, np.argmax(dr != 0, axis=-1)[..., None], axis=-1
        ).squeeze(-1)

        torus_col = col_same & (step0 | jump0)  # column cycle edges + vertical jump
        torus_row = col_adj & same0  # torus edge to adjacent column
        diagonal = col_adj & diag0  # diagonal jump
        return torus_col | torus_row | diagonal

    # -- invariants -----------------------------------------------------------

    def verify_structure(self) -> dict:
        """Check Theorem 2(1)/(2) exactly: node count and uniform degree."""
        p = self.params
        g = self.graph()
        degs = g.degrees()
        stats = {
            "num_nodes": g.num_nodes,
            "claimed_max_nodes": (1 + p.eps_redundancy) * p.n ** p.d,
            "degree_min": int(degs.min()),
            "degree_max": int(degs.max()),
            "claimed_degree": p.degree,
        }
        return stats
