"""Synchronous store-and-forward simulation on the (recovered) torus.

One message occupies one link per cycle; each directed link forwards one
message per cycle (deterministic lowest-id-first arbitration).  Messages
follow precomputed dimension-ordered routes.  This is deliberately simple — enough to show
latency/throughput *shape* and that recovered tori behave identically to
pristine ones (the embedding has dilation 1).

Injection models
----------------
By default every message is injected at cycle 0 (the closed-loop batch the
benchmarks historically used).  ``simulate(..., inject=times)`` runs the
same engine open-loop: message ``i`` enters the network at cycle
``times[i]`` and its latency is measured from that cycle.  Self-addressed
messages (``src == dst``) never enter the network — they are delivered at
injection with latency 0 and consume no link bandwidth.

This scalar engine is the reference semantics; the vectorized twin
(:func:`repro.fastpath.traffic_batch.simulate_batch`) reproduces its
:class:`SimResult` field-for-field (hypothesis-tested) at a large
wall-clock win — see docs/traffic.md.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.sim.routing import dimension_ordered_route

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    delivered: int
    total: int
    latencies: np.ndarray  # per *delivered* message only — never -1 sentinels
    cycles: int
    max_queue: int
    #: *Routed* messages still undelivered when ``max_cycles`` was hit
    #: (including ones whose injection time was never reached).
    #: Self-addressed messages are always delivered — they complete at
    #: injection without entering the network, whatever the horizon.  Kept
    #: separate so lifetime traffic checkpoints can report undelivered
    #: traffic instead of silently averaging sentinel values into latency
    #: stats.
    timed_out: int = 0
    #: Per-message latency in message-id order, ``-1`` for undelivered
    #: messages.  ``latencies`` is the compressed (sentinel-free) view of
    #: this array; the open-loop measurement window
    #: (:func:`repro.sim.workload.open_loop_stats`) needs the alignment
    #: with the injection schedule that only the full array provides.
    message_latencies: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def throughput(self) -> float:
        """Messages delivered per cycle.

        A run can deliver messages in zero cycles — every message
        self-addressed, so the network was never entered.  Those deliveries
        complete within the injection cycle, so the zero-cycle case counts
        the run as one cycle (``delivered / 1``) instead of dividing by
        zero or reporting ``0.0`` for work that *was* delivered.
        """
        return self.delivered / self.cycles if self.cycles else float(self.delivered)


def simulate(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    inject: np.ndarray | None = None,
    max_cycles: int = 10_000,
) -> SimResult:
    """Run all (src, dst) messages to completion (or ``max_cycles``).

    ``inject`` — optional per-message injection cycles (default: all 0,
    the closed-loop batch).  A message is eligible to cross its first link
    during cycle ``inject[i]`` and its latency counts from that cycle.
    """
    routes = [dimension_ordered_route(shape, int(s), int(d)) for s, d in traffic]
    # message state: position index into its route
    pos = np.zeros(len(routes), dtype=np.int64)
    if inject is None:
        start = np.zeros(len(routes), dtype=np.int64)  # injection at cycle 0
    else:
        start = np.asarray(inject, dtype=np.int64)
        if start.shape != (len(routes),):
            raise ValueError(f"inject shape {start.shape} != ({len(routes)},)")
        if len(start) and start.min() < 0:
            raise ValueError("inject cycles must be >= 0")
    done = np.zeros(len(routes), dtype=bool)
    latencies = np.full(len(routes), -1, dtype=np.int64)
    # per-directed-link FIFO of message ids wanting to cross it this cycle
    cycles = 0
    max_queue = 0
    live = []
    pending = []
    for i, r in enumerate(routes):
        if len(r) <= 1:
            # Self-addressed: delivered at injection, latency 0, no link use.
            done[i] = True
            latencies[i] = 0
        elif start[i] == 0:
            live.append(i)
        else:
            pending.append(i)
    while (live or pending) and cycles < max_cycles:
        if pending:
            arrived = [i for i in pending if start[i] <= cycles]
            if arrived:
                pending = [i for i in pending if start[i] > cycles]
                live = sorted(set(live) | set(arrived))
        wants: dict[tuple[int, int], list] = defaultdict(list)
        for i in live:
            r = routes[i]
            link = (int(r[pos[i]]), int(r[pos[i] + 1]))
            wants[link].append(i)
        nxt_live = []
        for link, q in wants.items():
            # Arbitration invariant: lowest message id wins the link this
            # cycle.  ``live`` is kept sorted, so each queue is built in
            # ascending id order already; the explicit sort normalises the
            # invariant instead of leaning on the iteration order of ``live``
            # (a no-op O(Q) pass when the invariant holds).
            q.sort()
            max_queue = max(max_queue, len(q))
            winner = q[0]
            pos[winner] += 1
            if pos[winner] == len(routes[winner]) - 1:
                done[winner] = True
                latencies[winner] = cycles + 1 - start[winner]
            else:
                nxt_live.append(winner)
            nxt_live.extend(q[1:])  # losers retry next cycle
        live = sorted(set(nxt_live))
        cycles += 1
    # Undelivered messages keep their -1 sentinel in ``latencies``; filter
    # them out so downstream stats can never average a sentinel, and count
    # them explicitly.
    lat = latencies[done & (latencies >= 0)]
    return SimResult(
        delivered=int(done.sum()),
        total=len(routes),
        latencies=np.asarray(lat),
        cycles=cycles,
        max_queue=max_queue,
        timed_out=int((~done).sum()),
        message_latencies=latencies,
    )
