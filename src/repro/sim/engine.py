"""Synchronous store-and-forward simulation on the (recovered) torus.

One message occupies one link per cycle; each directed link forwards one
message per cycle (deterministic lowest-id-first arbitration).  Messages
follow precomputed dimension-ordered routes.  This is deliberately simple — enough to show
latency/throughput *shape* and that recovered tori behave identically to
pristine ones (the embedding has dilation 1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.sim.routing import dimension_ordered_route

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    delivered: int
    total: int
    latencies: np.ndarray  # per *delivered* message only — never -1 sentinels
    cycles: int
    max_queue: int
    #: Messages still in flight when ``max_cycles`` was hit.  Kept separate
    #: so lifetime traffic checkpoints can report undelivered traffic
    #: instead of silently averaging sentinel values into latency stats.
    timed_out: int = 0

    @property
    def throughput(self) -> float:
        """Messages delivered per cycle."""
        return self.delivered / self.cycles if self.cycles else 0.0


def simulate(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    max_cycles: int = 10_000,
) -> SimResult:
    """Run all (src, dst) messages to completion (or ``max_cycles``)."""
    routes = [dimension_ordered_route(shape, int(s), int(d)) for s, d in traffic]
    # message state: position index into its route
    pos = np.zeros(len(routes), dtype=np.int64)
    start = np.zeros(len(routes), dtype=np.int64)  # injection at cycle 0
    done = np.zeros(len(routes), dtype=bool)
    latencies = np.full(len(routes), -1, dtype=np.int64)
    # per-directed-link FIFO of message ids wanting to cross it this cycle
    cycles = 0
    max_queue = 0
    live = [i for i, r in enumerate(routes) if len(r) > 1]
    for i, r in enumerate(routes):
        if len(r) <= 1:
            done[i] = True
            latencies[i] = 0
    while live and cycles < max_cycles:
        wants: dict[tuple[int, int], list] = defaultdict(list)
        for i in live:
            r = routes[i]
            link = (int(r[pos[i]]), int(r[pos[i] + 1]))
            wants[link].append(i)
        nxt_live = []
        for link, q in wants.items():
            # Arbitration invariant: lowest message id wins the link this
            # cycle.  ``live`` is kept sorted, so each queue is built in
            # ascending id order already; the explicit sort normalises the
            # invariant instead of leaning on the iteration order of ``live``
            # (a no-op O(Q) pass when the invariant holds).
            q.sort()
            max_queue = max(max_queue, len(q))
            winner = q[0]
            pos[winner] += 1
            if pos[winner] == len(routes[winner]) - 1:
                done[winner] = True
                latencies[winner] = cycles + 1 - start[winner]
            else:
                nxt_live.append(winner)
            nxt_live.extend(q[1:])  # losers retry next cycle
        live = sorted(set(nxt_live))
        cycles += 1
    # Undelivered messages keep their -1 sentinel in ``latencies``; filter
    # them out so downstream stats can never average a sentinel, and count
    # them explicitly.
    lat = latencies[done & (latencies >= 0)]
    return SimResult(
        delivered=int(done.sum()),
        total=len(routes),
        latencies=np.asarray(lat),
        cycles=cycles,
        max_queue=max_queue,
        timed_out=int((~done).sum()),
    )
