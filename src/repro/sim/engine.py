"""Synchronous store-and-forward simulation on the (recovered) torus.

One message occupies one link per cycle; each directed link forwards one
message per cycle (deterministic highest-priority-then-lowest-id
arbitration).  Messages follow precomputed routes from a selectable
router.  This is deliberately simple — enough to show latency/throughput
*shape* and that recovered tori behave identically to pristine ones (the
embedding has dilation 1).

Routers
-------
``router="dimension"`` (default) is the static e-cube route; with health
predicates given, a message whose static route crosses a broken element
is counted ``undeliverable``.  ``router="adaptive"`` detours around the
live fault set (:func:`repro.sim.routing.adaptive_route`): only messages
whose endpoints are disconnected in the live fault graph stay
undeliverable.  Undeliverable messages never enter the network; they
keep a ``-1`` sentinel in ``message_latencies`` and are counted in
``SimResult.undeliverable`` — separately from ``timed_out``.

QoS classes and credit flow control
-----------------------------------
``classes`` assigns each message a priority class (0 = highest).  Link
arbitration grants each contended link to the live message with the
lowest ``(class, id)`` — with a single class this reduces to the
historical lowest-id rule, decision for decision.  ``credits > 0``
switches on credit-based flow control: each class owns a pool of
``credits`` network entries; a message consumes one credit when it
enters the network and releases it on delivery, and injection is
deferred (in id order per class) while the pool is empty.  Latency is
measured from the *scheduled* injection cycle, so source queueing under
backpressure is visible in the numbers.  See docs/routing.md.

Injection models
----------------
By default every message is injected at cycle 0 (the closed-loop batch the
benchmarks historically used).  ``simulate(..., inject=times)`` runs the
same engine open-loop: message ``i`` enters the network at cycle
``times[i]`` and its latency is measured from that cycle.  Self-addressed
messages (``src == dst``) never enter the network — they are delivered at
injection with latency 0 and consume no link bandwidth or credits.

This scalar engine is the reference semantics; the vectorized twin
(:func:`repro.fastpath.traffic_batch.simulate_batch`) reproduces its
:class:`SimResult` field-for-field (hypothesis-tested) at a large
wall-clock win — see docs/traffic.md.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.sim.routing import (
    BYZ_CORRUPT,
    BYZ_DROP,
    BYZ_MISROUTE,
    ROUTERS,
    adaptive_route,
    dimension_ordered_route,
    route_is_healthy,
)

__all__ = [
    "MSG_DELIVERED",
    "MSG_DROPPED",
    "MSG_TIMED_OUT",
    "MSG_UNDELIVERABLE",
    "SimResult",
    "byzantine_counts",
    "classify_messages",
    "simulate",
]

#: Per-message outcome codes carried by :attr:`SimResult.message_status`.
#: The ``-1`` sentinel in ``message_latencies`` is shared by three distinct
#: fates (timed out, undeliverable, byzantine-dropped); the status array is
#: the disambiguation downstream stats must use instead of the sentinel.
MSG_DELIVERED = 0
MSG_TIMED_OUT = 1
MSG_UNDELIVERABLE = 2
MSG_DROPPED = 3


@dataclass
class SimResult:
    delivered: int
    total: int
    latencies: np.ndarray  # per *delivered* message only — never -1 sentinels
    cycles: int
    max_queue: int
    #: *Routed* messages still undelivered when ``max_cycles`` was hit
    #: (including ones whose injection time was never reached).
    #: Self-addressed messages are always delivered — they complete at
    #: injection without entering the network, whatever the horizon.  Kept
    #: separate so lifetime traffic checkpoints can report undelivered
    #: traffic instead of silently averaging sentinel values into latency
    #: stats.
    timed_out: int = 0
    #: Per-message latency in message-id order, ``-1`` for undelivered
    #: messages.  ``latencies`` is the compressed (sentinel-free) view of
    #: this array; the open-loop measurement window
    #: (:func:`repro.sim.workload.open_loop_stats`) needs the alignment
    #: with the injection schedule that only the full array provides.
    message_latencies: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: Messages the router could not route at all on the live fault graph
    #: (static route broken under ``router="dimension"``, endpoints
    #: disconnected under ``"adaptive"``).  Never counted in
    #: ``timed_out`` — these were refused at the door, not stranded by
    #: the horizon.
    undeliverable: int = 0
    #: Delivery-integrity accounting under a Byzantine plan (all zero
    #: without one).  ``dropped`` — swallowed by a traitor (never
    #: delivered, latency ``-1``, not in ``delivered`` or ``timed_out``);
    #: ``corrupted`` — delivered on time with damaged payload;
    #: ``misrouted`` — delivered late via a traitor's wrong forward.
    #: Corrupted/misrouted messages *are* counted in ``delivered`` — the
    #: network moved them; only their integrity is suspect.
    dropped: int = 0
    corrupted: int = 0
    misrouted: int = 0
    #: Per-message outcome code (``MSG_*``) in message-id order, aligned
    #: with ``message_latencies``.  This is what disambiguates the shared
    #: ``-1`` latency sentinel: a negative latency can mean timed out,
    #: undeliverable *or* byzantine-dropped, and only this array says
    #: which.  Empty on hand-built results predating the field; stats
    #: helpers fall back to the sentinel-only view then.
    message_status: np.ndarray = field(default_factory=lambda: np.empty(0, np.int8))

    @property
    def throughput(self) -> float:
        """Messages delivered per cycle.

        A run can deliver messages in zero cycles — every message
        self-addressed, so the network was never entered.  Those deliveries
        complete within the injection cycle, so the zero-cycle case counts
        the run as one cycle (``delivered / 1``) instead of dividing by
        zero or reporting ``0.0`` for work that *was* delivered.
        """
        return self.delivered / self.cycles if self.cycles else float(self.delivered)


def _build_routes(shape, traffic, router, node_ok, edge_ok):
    """Per-message route list; ``None`` entries are undeliverable."""
    if router not in ROUTERS:
        raise ValueError(f"unknown router {router!r}; options: {ROUTERS}")
    routes: list = []
    for s, d in traffic:
        r = dimension_ordered_route(shape, int(s), int(d))
        if node_ok is None and edge_ok is None:
            routes.append(r)
        elif route_is_healthy(r, node_ok, edge_ok):
            routes.append(r)
        elif router == "adaptive":
            routes.append(
                adaptive_route(shape, int(s), int(d), node_ok=node_ok, edge_ok=edge_ok)
            )
        else:
            routes.append(None)
    return routes


def byzantine_counts(actions, done, latencies):
    """Fold a Byzantine plan's per-message actions into integrity counts.

    Shared by the scalar engine and the vectorized kernel so their
    accounting cannot drift: messages a traitor dropped *completed* their
    truncated route (the engine "delivered" them to the traitor), so here
    their latency reverts to the ``-1`` sentinel and they leave the
    delivered count; corrupt/misroute deliveries keep their latency and
    only tick the integrity counters.  Returns
    ``(dropped, corrupted, misrouted)`` for the messages flagged done.
    """
    actions = np.asarray(actions)
    done = np.asarray(done, dtype=bool)
    drop = (actions == BYZ_DROP) & done
    latencies[drop] = -1
    return (
        int(drop.sum()),
        int(((actions == BYZ_CORRUPT) & done).sum()),
        int(((actions == BYZ_MISROUTE) & done).sum()),
    )


def classify_messages(done, routable, latencies) -> np.ndarray:
    """Per-message ``MSG_*`` status from the engines' terminal state.

    Shared by the scalar engine and the vectorized kernel so the
    classification cannot drift.  The four codes partition the messages:
    ``done`` with a non-negative latency is delivered; ``done`` with the
    ``-1`` sentinel is a byzantine drop (the only way a completed message
    keeps the sentinel); not routable means the router refused it at the
    door; everything else ran out of horizon (timed out).
    """
    done = np.asarray(done, dtype=bool)
    routable = np.asarray(routable, dtype=bool)
    latencies = np.asarray(latencies)
    status = np.full(len(done), MSG_TIMED_OUT, dtype=np.int8)
    status[~routable] = MSG_UNDELIVERABLE
    status[done & (latencies >= 0)] = MSG_DELIVERED
    status[done & (latencies < 0)] = MSG_DROPPED
    return status


def _check_classes(classes, m, credits):
    """Validated per-message class array (always present, default all-0)."""
    if classes is None:
        cls = np.zeros(m, dtype=np.int64)
    else:
        cls = np.asarray(classes, dtype=np.int64)
        if cls.shape != (m,):
            raise ValueError(f"classes shape {cls.shape} != ({m},)")
        if m and cls.min() < 0:
            raise ValueError("classes must be >= 0")
    if credits < 0:
        raise ValueError("credits must be >= 0 (0 = unlimited)")
    return cls


def simulate(
    shape: tuple[int, ...],
    traffic: np.ndarray,
    *,
    inject: np.ndarray | None = None,
    max_cycles: int = 10_000,
    router: str = "dimension",
    node_ok=None,
    edge_ok=None,
    classes: np.ndarray | None = None,
    credits: int = 0,
    byzantine=None,
) -> SimResult:
    """Run all (src, dst) messages to completion (or ``max_cycles``).

    ``inject`` — optional per-message injection cycles (default: all 0,
    the closed-loop batch).  A message is eligible to cross its first link
    during cycle ``inject[i]`` and its latency counts from that cycle.
    ``router``/``node_ok``/``edge_ok`` select fault-aware routing,
    ``classes``/``credits`` QoS arbitration and credit flow control (see
    the module docstring).  ``byzantine`` — an optional
    :class:`~repro.sim.routing.ByzantinePlan`: traitor nodes stay up
    (health predicates never see them) but the plan perturbs routes
    before the clock starts and the integrity counters report what the
    traitors did (see docs/faults.md).
    """
    routes = _build_routes(shape, traffic, router, node_ok, edge_ok)
    actions = None
    if byzantine is not None:
        routes, actions = byzantine.apply(shape, routes)
    cls = _check_classes(classes, len(routes), credits)
    num_classes = int(cls.max()) + 1 if len(cls) else 1
    # message state: position index into its route
    pos = np.zeros(len(routes), dtype=np.int64)
    if inject is None:
        start = np.zeros(len(routes), dtype=np.int64)  # injection at cycle 0
    else:
        start = np.asarray(inject, dtype=np.int64)
        if start.shape != (len(routes),):
            raise ValueError(f"inject shape {start.shape} != ({len(routes)},)")
        if len(start) and start.min() < 0:
            raise ValueError("inject cycles must be >= 0")
    done = np.zeros(len(routes), dtype=bool)
    latencies = np.full(len(routes), -1, dtype=np.int64)
    avail = [credits] * num_classes if credits else None
    cycles = 0
    max_queue = 0
    undeliverable = 0
    live: list[int] = []
    pending: list[int] = []
    for i, r in enumerate(routes):
        if r is None:
            undeliverable += 1
        elif len(r) <= 1:
            # Self-addressed: delivered at injection, latency 0, no link use.
            done[i] = True
            latencies[i] = 0
        else:
            pending.append(i)
    while (live or pending) and cycles < max_cycles:
        if pending:
            # Admission: arrivals whose scheduled cycle has come, in id
            # order; with credit flow control each class admits only while
            # its pool has credits — the rest wait at the source.
            arrived = [i for i in pending if start[i] <= cycles]
            if arrived:
                if avail is None:
                    admitted = arrived
                else:
                    admitted = []
                    for i in arrived:
                        if avail[cls[i]] > 0:
                            avail[cls[i]] -= 1
                            admitted.append(i)
                if admitted:
                    taken = set(admitted)
                    pending = [i for i in pending if start[i] > cycles or i not in taken]
                    live = sorted(set(live) | taken)
        wants: dict[tuple[int, int], list] = defaultdict(list)
        for i in live:
            r = routes[i]
            link = (int(r[pos[i]]), int(r[pos[i] + 1]))
            wants[link].append(i)
        nxt_live = []
        for link, q in wants.items():
            # Arbitration invariant: the lowest (class, id) wins the link
            # this cycle — with a single class, exactly the historical
            # lowest-message-id rule.  ``live`` is kept sorted, so each
            # queue is built in ascending id order already; the explicit
            # sort normalises the invariant instead of leaning on the
            # iteration order of ``live``.
            q.sort(key=lambda i: (cls[i], i))
            max_queue = max(max_queue, len(q))
            winner = q[0]
            pos[winner] += 1
            if pos[winner] == len(routes[winner]) - 1:
                done[winner] = True
                latencies[winner] = cycles + 1 - start[winner]
                if avail is not None:
                    # Credit released by this delivery is available to the
                    # next cycle's admission pass.
                    avail[cls[winner]] += 1
            else:
                nxt_live.append(winner)
            nxt_live.extend(q[1:])  # losers retry next cycle
        live = sorted(set(nxt_live))
        cycles += 1
    dropped = corrupted = misrouted = 0
    if actions is not None:
        dropped, corrupted, misrouted = byzantine_counts(actions, done, latencies)
    # Undelivered messages keep their -1 sentinel in ``latencies``; filter
    # them out so downstream stats can never average a sentinel, and count
    # them explicitly.
    lat = latencies[done & (latencies >= 0)]
    routable = np.array([r is not None for r in routes], dtype=bool)
    return SimResult(
        delivered=int(done.sum()) - dropped,
        total=len(routes),
        latencies=np.asarray(lat),
        cycles=cycles,
        max_queue=max_queue,
        timed_out=int((~done).sum()) - undeliverable,
        message_latencies=latencies,
        undeliverable=undeliverable,
        dropped=dropped,
        corrupted=corrupted,
        misrouted=misrouted,
        message_status=classify_messages(done, routable, latencies),
    )
