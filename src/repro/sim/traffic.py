"""Synthetic traffic patterns for the torus simulator.

Classic patterns from the mesh/torus routing literature — the workloads a
machine built on the paper's constructions would actually run:

* ``uniform``    — independent uniformly random destinations,
* ``transpose``  — coordinate rotation (x1, ..., xd) -> (xd, x1, ..., x_{d-1})
                   re-flattened in the rotated shape: adversarial for e-cube,
* ``neighbor``   — nearest-neighbour halo exchange (stencil codes),
* ``hotspot``    — all-to-one with background uniform traffic,
* ``bitreverse`` — index bit-reversal (FFT-style; power-of-two sizes only).

Count contract: :func:`make_traffic` returns **exactly** ``count`` rows for
every pattern.  Patterns that exclude self-addressed pairs (``src == dst``)
resample deterministically from the same generator until the quota is met,
instead of silently returning fewer rows.

Two interfaces per pattern:

* the closed-loop generators behind :func:`make_traffic` draw sources
  themselves (everything injected at once);
* :func:`pattern_destinations` answers "where does a message from *this*
  source go", which is what the open-loop injection model
  (:mod:`repro.sim.workload`) needs — there the *injection process* picks
  the sources.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.topology.coords import CoordCodec

__all__ = [
    "TRAFFIC_PATTERNS",
    "bitreverse_index",
    "make_traffic",
    "pattern_destinations",
    "transpose_index",
]

#: Fraction of hotspot messages aimed at the hot node (the rest are uniform).
HOTSPOT_FRACTION = 0.3


# ---------------------------------------------------------------------------
# Deterministic index maps (exposed for tests and the open-loop model)
# ---------------------------------------------------------------------------


def transpose_index(codec: CoordCodec, idx: np.ndarray) -> np.ndarray:
    """The generalized transpose permutation of flat indices.

    Coordinates rotate one axis — ``(x1, ..., xd) -> (xd, x1, ..., x_{d-1})``
    — and the rotated coordinate tuple is re-flattened **in the rotated
    shape**, which makes the map a bijection of ``[0, size)`` for *any*
    shape (the matrix-transpose / corner-turn permutation).  On shapes with
    all sides equal the rotated shape is the original shape and this reduces
    to the classic coordinate transpose (an involution for ``d == 2``).

    Raises :class:`ValueError` for shapes where the map degenerates to the
    identity (e.g. fewer than two axes of length > 1) — there is no
    transpose traffic to generate on those.
    """
    rolled_shape = tuple(int(s) for s in np.roll(codec.shape, 1))
    rolled_codec = CoordCodec(rolled_shape)
    # The map is linear in the (independently ranging) coordinates, so it is
    # the identity iff, on every axis of length > 1, the source stride equals
    # the stride of the axis the coordinate rotates into.
    d = codec.ndim
    identity = all(
        codec.shape[k] <= 1 or codec.strides[k] == rolled_codec.strides[(k + 1) % d]
        for k in range(d)
    )
    if identity:
        raise ValueError(
            f"transpose is the identity on shape {codec.shape} (needs at "
            "least two axes of length > 1 with distinct layouts); no "
            "transpose traffic exists there"
        )
    coords = codec.unravel(np.asarray(idx, dtype=np.int64))
    rolled = np.roll(coords, 1, axis=-1)
    return rolled_codec.ravel(rolled)


def bitreverse_index(codec: CoordCodec, idx: np.ndarray) -> np.ndarray:
    """The bit-reversal permutation of flat indices.

    Only defined when the number of nodes is a power of two — reversing
    ``log2(size)`` bits is a bijection of ``[0, size)`` exactly then.  The
    old behaviour of reducing the reversed value ``% size`` silently turned
    the pattern into an unrelated (non-injective) map on other sizes, so
    non-power-of-two shapes now raise :class:`ValueError` instead.  Sizes
    below 4 also raise: with 0 or 1 bits the reversal is the identity.
    """
    size = codec.size
    if size < 4 or size & (size - 1):
        raise ValueError(
            f"bitreverse needs a power-of-two number of nodes >= 4, got "
            f"{size} (shape {codec.shape}); the reversed index is only a "
            "permutation for power-of-two sizes"
        )
    bits = size.bit_length() - 1
    x = np.asarray(idx, dtype=np.int64).copy()
    out = np.zeros_like(x)
    for _ in range(bits):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


# ---------------------------------------------------------------------------
# Closed-loop generators (everything injected at cycle 0)
# ---------------------------------------------------------------------------


def _exact(count: int, draw: Callable[[int], np.ndarray]) -> np.ndarray:
    """Accumulate ``draw(k)`` batches until exactly ``count`` valid rows.

    ``draw(k)`` samples ``k`` candidate pairs and returns the valid subset;
    the shortfall is redrawn from the same generator, so the result is a
    deterministic function of the rng state while always honouring the
    requested count (the old generators returned whatever survived one
    filter pass, undercounting by a pattern- and seed-dependent amount).
    """
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    chunks = []
    have = 0
    while have < count:
        pairs = draw(count - have)
        if len(pairs):
            chunks.append(pairs)
            have += len(pairs)
    return np.concatenate(chunks, axis=0)[:count]


def _require_distinct_nodes(codec: CoordCodec, pattern: str) -> None:
    if codec.size < 2:
        raise ValueError(f"{pattern!r} traffic needs at least 2 nodes, got {codec.size}")


def _uniform(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    _require_distinct_nodes(codec, "uniform")

    def draw(k: int) -> np.ndarray:
        src = rng.integers(0, codec.size, k)
        dst = rng.integers(0, codec.size, k)
        keep = src != dst
        return np.stack([src[keep], dst[keep]], axis=1)

    return _exact(count, draw)


def _transpose(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    transpose_index(codec, np.int64(0))  # validate the shape up front

    def draw(k: int) -> np.ndarray:
        src = rng.integers(0, codec.size, k)
        dst = transpose_index(codec, src)
        keep = src != dst  # fixed points of the permutation have no message
        return np.stack([src[keep], dst[keep]], axis=1)

    return _exact(count, draw)


def _neighbor(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    if min(codec.shape) < 2:
        raise ValueError(
            f"neighbor traffic needs every side >= 2, got shape {codec.shape} "
            "(a length-1 axis wraps a node onto itself)"
        )
    src = rng.integers(0, codec.size, count)
    dst = _neighbor_destinations(codec, src, rng)
    return np.stack([src, dst], axis=1)


def _hotspot(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    _require_distinct_nodes(codec, "hotspot")
    hot = int(rng.integers(0, codec.size))

    def draw(k: int) -> np.ndarray:
        src = rng.integers(0, codec.size, k)
        dst = np.where(rng.random(k) < HOTSPOT_FRACTION, hot, rng.integers(0, codec.size, k))
        keep = src != dst
        return np.stack([src[keep], dst[keep]], axis=1)

    return _exact(count, draw)


def _bitreverse(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    bitreverse_index(codec, np.int64(0))  # validate the size up front

    def draw(k: int) -> np.ndarray:
        src = rng.integers(0, codec.size, k)
        dst = bitreverse_index(codec, src)
        keep = src != dst  # palindromic indices have no message
        return np.stack([src[keep], dst[keep]], axis=1)

    return _exact(count, draw)


def _neighbor_destinations(
    codec: CoordCodec, src: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly random torus neighbour of each source node."""
    axis = rng.integers(0, codec.ndim, len(src))
    sign = rng.choice([-1, 1], len(src))
    dst = src.copy()
    for a in range(codec.ndim):
        mask = axis == a
        if mask.any():
            dst[mask] = codec.shift(src[mask], a, +1, wrap=True) * (sign[mask] > 0) + codec.shift(
                src[mask], a, -1, wrap=True
            ) * (sign[mask] < 0)
    return dst


TRAFFIC_PATTERNS = {
    "uniform": _uniform,
    "transpose": _transpose,
    "neighbor": _neighbor,
    "hotspot": _hotspot,
    "bitreverse": _bitreverse,
}


def make_traffic(
    shape: tuple[int, ...], pattern: str, count: int, rng: np.random.Generator
) -> np.ndarray:
    """(count, 2) array of (src, dst) flat-index pairs on the ``shape`` torus.

    Always exactly ``count`` rows: patterns that exclude ``src == dst``
    resample (deterministically from ``rng``) until the quota is met.
    """
    if pattern not in TRAFFIC_PATTERNS:
        raise KeyError(f"unknown pattern {pattern!r}; options {sorted(TRAFFIC_PATTERNS)}")
    codec = CoordCodec(shape)
    out = TRAFFIC_PATTERNS[pattern](codec, count, rng)
    assert len(out) == count, f"{pattern}: {len(out)} rows != requested {count}"
    return out


# ---------------------------------------------------------------------------
# Open-loop interface: destinations for externally chosen sources
# ---------------------------------------------------------------------------


def pattern_destinations(
    shape: tuple[int, ...], src: np.ndarray, pattern: str, rng: np.random.Generator
) -> np.ndarray:
    """Destinations for messages whose sources the injection process chose.

    Random patterns (``uniform``, ``hotspot``, ``neighbor``) draw their
    destination per message, resampling ``dst == src`` where the pattern
    excludes it.  Deterministic patterns (``transpose``, ``bitreverse``)
    return their index map — fixed points come back as ``dst == src`` and
    the caller (:func:`repro.sim.workload.make_open_loop`) drops those
    messages, mirroring the closed-loop generators which never emit them.
    """
    codec = CoordCodec(shape)
    src = np.asarray(src, dtype=np.int64)
    if pattern == "uniform":
        _require_distinct_nodes(codec, pattern)
        dst = rng.integers(0, codec.size, len(src))
        bad = np.flatnonzero(dst == src)
        while len(bad):
            dst[bad] = rng.integers(0, codec.size, len(bad))
            bad = bad[dst[bad] == src[bad]]
        return dst
    if pattern == "hotspot":
        _require_distinct_nodes(codec, pattern)
        hot = int(rng.integers(0, codec.size))
        dst = np.where(
            rng.random(len(src)) < HOTSPOT_FRACTION,
            hot,
            rng.integers(0, codec.size, len(src)),
        )
        bad = np.flatnonzero(dst == src)
        while len(bad):
            dst[bad] = np.where(
                rng.random(len(bad)) < HOTSPOT_FRACTION,
                hot,
                rng.integers(0, codec.size, len(bad)),
            )
            bad = bad[dst[bad] == src[bad]]
        return dst
    if pattern == "neighbor":
        if min(codec.shape) < 2:
            raise ValueError(
                f"neighbor traffic needs every side >= 2, got shape {codec.shape}"
            )
        return _neighbor_destinations(codec, src, rng)
    if pattern == "transpose":
        return transpose_index(codec, src)
    if pattern == "bitreverse":
        return bitreverse_index(codec, src)
    raise KeyError(f"unknown pattern {pattern!r}; options {sorted(TRAFFIC_PATTERNS)}")
