"""Synthetic traffic patterns for the torus simulator.

Classic patterns from the mesh/torus routing literature — the workloads a
machine built on the paper's constructions would actually run:

* ``uniform``    — independent uniformly random destinations,
* ``transpose``  — (x, y, ...) -> (y, x, ...): adversarial for e-cube,
* ``neighbor``   — nearest-neighbour halo exchange (stencil codes),
* ``hotspot``    — all-to-one with background uniform traffic,
* ``bitreverse`` — index bit-reversal (FFT-style).
"""

from __future__ import annotations

import numpy as np

from repro.topology.coords import CoordCodec

__all__ = ["TRAFFIC_PATTERNS", "make_traffic"]


def _uniform(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    src = rng.integers(0, codec.size, count)
    dst = rng.integers(0, codec.size, count)
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


def _transpose(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    src = rng.integers(0, codec.size, count)
    coords = codec.unravel(src)
    rolled = np.roll(coords, 1, axis=-1) % np.array(codec.shape)
    dst = codec.ravel(rolled)
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


def _neighbor(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    src = rng.integers(0, codec.size, count)
    axis = rng.integers(0, codec.ndim, count)
    sign = rng.choice([-1, 1], count)
    dst = src.copy()
    for a in range(codec.ndim):
        mask = axis == a
        if mask.any():
            dst[mask] = codec.shift(src[mask], a, +1, wrap=True) * (sign[mask] > 0) + codec.shift(
                src[mask], a, -1, wrap=True
            ) * (sign[mask] < 0)
    return np.stack([src, dst], axis=1)


def _hotspot(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    hot = int(rng.integers(0, codec.size))
    src = rng.integers(0, codec.size, count)
    dst = np.where(rng.random(count) < 0.3, hot, rng.integers(0, codec.size, count))
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


def _bitreverse(codec: CoordCodec, count: int, rng: np.random.Generator) -> np.ndarray:
    bits = max(1, int(np.ceil(np.log2(codec.size))))
    src = rng.integers(0, codec.size, count)

    def rev(v: np.ndarray) -> np.ndarray:
        out = np.zeros_like(v)
        x = v.copy()
        for _ in range(bits):
            out = (out << 1) | (x & 1)
            x >>= 1
        return out % codec.size

    dst = rev(src)
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


TRAFFIC_PATTERNS = {
    "uniform": _uniform,
    "transpose": _transpose,
    "neighbor": _neighbor,
    "hotspot": _hotspot,
    "bitreverse": _bitreverse,
}


def make_traffic(
    shape: tuple[int, ...], pattern: str, count: int, rng: np.random.Generator
) -> np.ndarray:
    """(M, 2) array of (src, dst) flat-index pairs on the ``shape`` torus."""
    if pattern not in TRAFFIC_PATTERNS:
        raise KeyError(f"unknown pattern {pattern!r}; options {sorted(TRAFFIC_PATTERNS)}")
    codec = CoordCodec(shape)
    return TRAFFIC_PATTERNS[pattern](codec, count, rng)
