"""Traffic snapshots on the evolving (online-repaired) network.

The lifetime subsystem answers "how many faults before recovery fails";
this module answers "is the machine still serving traffic at full
fidelity while the faults accumulate".  At chosen arrival-count
checkpoints of a fault timeline it **verifies the current embedding
end-to-end against the host graph and the live fault set** — every guest
node on a healthy host node, every guest link on a healthy host edge —
which is the claim that *can* fail if the incremental repair pipeline
ever produced a stale or fault-crossing embedding.

The traffic numbers themselves are computed once: the embedding has
dilation 1, so a verified checkpoint serves the guest workload exactly
like the pristine machine (hop-for-hop, cycle-for-cycle) — rerunning the
deterministic guest-space simulation per checkpoint would recompute the
identical result.  Each snapshot therefore reports the shared latency
stats (including the explicit ``timed_out`` count, so undelivered
messages are counted rather than averaged in as sentinels) together with
the per-checkpoint verification verdict.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.protocol import LifetimeSpec
from repro.core.bn import BTorus
from repro.core.online import OnlineRecovery, run_online_timeline
from repro.errors import EmbeddingError
from repro.sim.engine import simulate
from repro.sim.metrics import latency_stats
from repro.sim.traffic import make_traffic
from repro.topology.embeddings import verify_torus_embedding
from repro.util.rng import spawn_rng

__all__ = ["lifetime_traffic_snapshots"]


def lifetime_traffic_snapshots(
    bt: BTorus,
    spec: LifetimeSpec,
    seed: int,
    checkpoints: Sequence[int],
    *,
    pattern: str = "uniform",
    messages: int = 200,
    max_cycles: int = 10_000,
    strategy: str = "auto",
) -> dict:
    """Run one lifetime trial, verifying service at each checkpoint.

    ``checkpoints`` are arrival counts (snapshots fire when the trial has
    survived exactly that many arrivals).  Per checkpoint the current
    embedding is re-verified against the host adjacency and fault set;
    ``matches_pristine`` is True iff that verification passed — the
    dilation-1 guarantee then makes the (shared) traffic stats exact for
    the aged machine.  Returns ``{"lifetime", "pristine", "snapshots"}``.
    """
    n, d = bt.params.n, bt.params.d
    guest_shape = (n,) * d
    traffic = make_traffic(
        guest_shape, pattern, messages, spawn_rng(seed, "lifetime-traffic", pattern)
    )
    pristine = latency_stats(simulate(guest_shape, traffic, max_cycles=max_cycles))
    wanted = sorted(set(int(c) for c in checkpoints))
    snapshots: list[dict] = []

    def observer(arrivals: int, online: OnlineRecovery) -> None:
        if arrivals not in wanted:
            return
        fault_flat = online.faults.ravel()

        def node_ok(ids):
            return ~fault_flat[ids]

        def edge_ok(us, vs):
            return bt.bn.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs]

        try:
            verify_torus_embedding(guest_shape, online.recovery.phi, node_ok, edge_ok)
            verified = True
        except EmbeddingError:
            verified = False
        snapshots.append(
            {
                "arrivals": arrivals,
                "num_faults": online.num_faults,
                "repair_fraction": online.repair_fraction(),
                "embedding_verified": verified,
                # Dilation 1: a verified embedding serves the workload
                # exactly like the pristine torus.
                "stats": pristine,
                "matches_pristine": verified,
            }
        )

    # Same pipeline configuration as BnConstruction.lifetime_trial, so a
    # snapshot trial agrees with the experiment's trial for the same seed.
    online = OnlineRecovery(bt, strategy=strategy)
    rng = spawn_rng(seed, "lifetime", n, d)
    outcome = run_online_timeline(online, spec, rng, observer=observer)
    return {
        "lifetime": outcome.lifetime,
        "pristine": pristine,
        "snapshots": snapshots,
    }
