"""Traffic snapshots on the evolving (online-repaired) network.

The lifetime subsystem answers "how many faults before recovery fails";
this module answers "is the machine still serving traffic at full
fidelity while the faults accumulate".  At chosen arrival-count
checkpoints of a fault timeline it **verifies the current embedding
end-to-end against the host graph and the live fault set** — every guest
node on a healthy host node, every guest link on a healthy host edge —
which is the claim that *can* fail if the incremental repair pipeline
ever produced a stale or fault-crossing embedding.

Traffic numbers come in two flavours:

* by default they are computed once on the pristine guest torus: the
  embedding has dilation 1, so a verified checkpoint serves the guest
  workload exactly like the pristine machine (hop-for-hop,
  cycle-for-cycle) and rerunning the deterministic guest-space simulation
  would reproduce the identical result;
* with ``live_traffic=True`` each checkpoint *measures* the aged
  machine: every message's e-cube route is mapped through the current
  embedding ``phi`` and each host node / host edge it would actually use
  is checked against the live fault set and host adjacency; messages
  whose mapped path crosses a broken element are ``undeliverable``, and
  the surviving traffic is re-simulated through the vectorized kernel
  (guest-space simulation is exact for routes whose mapped elements are
  healthy — dilation 1).  ``matches_pristine`` then requires zero
  undeliverable messages *and* measured-stats equality with the pristine
  run, so a stale or fault-crossing embedding shows up as degraded
  service, not as an assumed-good number.

Every requested checkpoint appears in the report: checkpoints the trial
died before reaching are explicit ``{"arrivals": c, "reached": False}``
entries rather than silent omissions, so a consumer can distinguish "not
measured" from "forgot to measure".
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro.api.protocol import LifetimeSpec
from repro.core.bn import BTorus
from repro.core.online import OnlineRecovery, run_online_timeline
from repro.errors import EmbeddingError
from repro.sim.engine import simulate
from repro.sim.metrics import latency_stats
from repro.sim.traffic import make_traffic
from repro.topology.embeddings import verify_torus_embedding
from repro.util.rng import spawn_rng

__all__ = ["lifetime_traffic_snapshots", "route_health_mask"]


def route_health_mask(
    guest_shape: tuple,
    traffic,
    phi,
    fault_flat,
    is_adjacent,
) -> "np.ndarray":
    """Per-message deliverability on the aged machine.

    Walks every message's e-cube route through the embedding ``phi``
    (guest flat index -> host flat index) and checks each host node and
    each host edge the route would actually use: ``mask[i]`` is True iff
    no element of message ``i``'s mapped path is faulty or non-adjacent.
    This is the measurement behind ``live_traffic`` snapshots — a stale or
    fault-crossing embedding shows up here as undeliverable messages.
    """
    from repro.fastpath.traffic_batch import routes_batch

    phi = np.asarray(phi, dtype=np.int64).ravel()
    nodes, _lengths = routes_batch(guest_shape, traffic)
    pad = nodes < 0
    host = phi[np.where(pad, 0, nodes)]
    node_bad = ~pad & fault_flat[host]
    u, v = host[:, :-1], host[:, 1:]
    hop = ~pad[:, 1:]
    edge_bad = hop & ~(is_adjacent(u, v) & ~fault_flat[u] & ~fault_flat[v])
    return ~(node_bad.any(axis=1) | edge_bad.any(axis=1))


def lifetime_traffic_snapshots(
    bt: BTorus,
    spec: LifetimeSpec,
    seed: int,
    checkpoints: Sequence[int],
    *,
    pattern: str = "uniform",
    messages: int = 200,
    max_cycles: int = 10_000,
    strategy: str = "auto",
    live_traffic: bool = False,
    router: str = "dimension",
) -> dict:
    """Run one lifetime trial, verifying service at each checkpoint.

    ``checkpoints`` are arrival counts (snapshots fire when the trial has
    survived exactly that many arrivals).  Per reached checkpoint the
    current embedding is re-verified against the host adjacency and fault
    set; with ``live_traffic`` each message's route is additionally walked
    through the embedding against the live fault set (undeliverable
    messages counted, the rest re-simulated) and ``matches_pristine``
    requires zero undeliverable plus measured-stats equality with the
    pristine run.  ``router="adaptive"`` (live snapshots only) lets the
    simulator detour each broken e-cube route around the live fault set
    instead of refusing the message — ``undeliverable`` then counts only
    messages whose endpoints are disconnected on the aged machine.
    Checkpoints beyond the trial's lifetime are reported as
    ``"reached": False`` entries.  Returns ``{"lifetime", "pristine",
    "snapshots"}``.
    """
    from repro.sim.routing import ROUTERS

    if router not in ROUTERS:
        raise ValueError(f"unknown router {router!r}; options: {ROUTERS}")
    n, d = bt.params.n, bt.params.d
    guest_shape = (n,) * d
    traffic = make_traffic(
        guest_shape, pattern, messages, spawn_rng(seed, "lifetime-traffic", pattern)
    )
    pristine = latency_stats(simulate(guest_shape, traffic, max_cycles=max_cycles))
    wanted = {int(c) for c in checkpoints}
    snapshots: list[dict] = []

    def observer(arrivals: int, online: OnlineRecovery) -> None:
        if arrivals not in wanted:
            return
        fault_flat = online.faults.ravel()

        def node_ok(ids):
            return ~fault_flat[ids]

        def edge_ok(us, vs):
            return bt.bn.is_adjacent(us, vs) & ~fault_flat[us] & ~fault_flat[vs]

        try:
            verify_torus_embedding(guest_shape, online.recovery.phi, node_ok, edge_ok)
            verified = True
        except EmbeddingError:
            verified = False
        if live_traffic:
            # Measure, don't assume: walk every message's route through the
            # *current* embedding and check each host node / host edge it
            # would use against the live fault set.  Messages whose mapped
            # path crosses a broken element are undeliverable on the aged
            # machine; the rest are re-simulated (guest-space simulation is
            # exact for healthy mapped routes — dilation 1).
            from repro.fastpath.traffic_batch import simulate_batch

            if router == "adaptive":
                # Route *around* the live fault set: each broken e-cube
                # route is replaced by a healthy detour through the same
                # embedding, so only disconnected endpoints stay refused.
                from repro.sim.routing import embedded_predicates

                g_ok, ge_ok = embedded_predicates(
                    online.recovery.phi, fault_flat, bt.bn.is_adjacent
                )
                result = simulate_batch(
                    guest_shape, traffic, max_cycles=max_cycles,
                    router="adaptive", node_ok=g_ok, edge_ok=ge_ok,
                )
                stats = latency_stats(result)
                stats["undeliverable"] = result.undeliverable
            else:
                deliverable = route_health_mask(
                    guest_shape, traffic, online.recovery.phi, fault_flat,
                    bt.bn.is_adjacent,
                )
                stats = latency_stats(
                    simulate_batch(
                        guest_shape, traffic[deliverable], max_cycles=max_cycles
                    )
                )
                stats["undeliverable"] = int((~deliverable).sum())
            # json round makes NaN == NaN (both sides computed identically).
            matches = (
                verified
                and stats["undeliverable"] == 0
                and json.dumps(
                    {k: s for k, s in stats.items() if k != "undeliverable"},
                    sort_keys=True,
                )
                == json.dumps(pristine, sort_keys=True)
            )
        else:
            # Dilation 1: a verified embedding serves the workload exactly
            # like the pristine torus, so the shared stats are exact.
            stats = pristine
            matches = verified
        snapshots.append(
            {
                "arrivals": arrivals,
                "reached": True,
                "num_faults": online.num_faults,
                "repair_fraction": online.repair_fraction(),
                "embedding_verified": verified,
                "stats": stats,
                "matches_pristine": matches,
            }
        )

    # Same pipeline configuration as BnConstruction.lifetime_trial, so a
    # snapshot trial agrees with the experiment's trial for the same seed.
    online = OnlineRecovery(bt, strategy=strategy)
    rng = spawn_rng(seed, "lifetime", n, d)
    outcome = run_online_timeline(online, spec, rng, observer=observer)
    reached = {s["arrivals"] for s in snapshots}
    for c in sorted(wanted - reached):
        # The trial died (or the timeline ran dry) before this checkpoint:
        # say so explicitly instead of omitting the entry.
        snapshots.append({"arrivals": c, "reached": False})
    snapshots.sort(key=lambda s: s["arrivals"])
    return {
        "lifetime": outcome.lifetime,
        "pristine": pristine,
        "snapshots": snapshots,
    }
