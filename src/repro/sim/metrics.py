"""Latency / throughput summaries for simulator output."""

from __future__ import annotations

import numpy as np

from repro.sim.engine import SimResult

__all__ = ["latency_stats"]


def latency_stats(result: SimResult) -> dict:
    """Mean / p50 / p99 / max latency plus delivery + throughput numbers."""
    lat = result.latencies
    if len(lat) == 0:
        return {
            "delivered": result.delivered,
            "total": result.total,
            "timed_out": result.timed_out,
            "mean": float("nan"),
            "p50": float("nan"),
            "p99": float("nan"),
            "max": float("nan"),
            "throughput": result.throughput,
        }
    return {
        "delivered": result.delivered,
        "total": result.total,
        "timed_out": result.timed_out,
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p99": float(np.percentile(lat, 99)),
        "max": int(lat.max()),
        "throughput": result.throughput,
    }
