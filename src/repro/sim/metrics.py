"""Latency / throughput summaries for simulator output."""

from __future__ import annotations

import numpy as np

from repro.sim.engine import SimResult

__all__ = ["latency_stats", "per_class_stats"]


def latency_stats(result: SimResult) -> dict:
    """Mean / p50 / p99 / max latency plus delivery + throughput numbers."""
    lat = result.latencies
    if len(lat) == 0:
        return {
            "delivered": result.delivered,
            "total": result.total,
            "timed_out": result.timed_out,
            "mean": float("nan"),
            "p50": float("nan"),
            "p99": float("nan"),
            "max": float("nan"),
            "throughput": result.throughput,
        }
    return {
        "delivered": result.delivered,
        "total": result.total,
        "timed_out": result.timed_out,
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p99": float(np.percentile(lat, 99)),
        "max": int(lat.max()),
        "throughput": result.throughput,
    }


def per_class_stats(
    result: SimResult,
    classes: np.ndarray,
    *,
    measured: np.ndarray | None = None,
) -> list[dict]:
    """Per-QoS-class delivery and latency summary, one dict per class.

    ``classes`` is the per-message class array the engine ran with
    (aligned with ``result.message_latencies``); ``measured`` optionally
    restricts to the open-loop measurement window (messages injected at
    or after warmup).  Classes are reported ``0..max`` even when a class
    delivered nothing — the JSON row then carries NaN latencies, never a
    silent omission.
    """
    classes = np.asarray(classes, dtype=np.int64)
    lat = result.message_latencies
    if classes.shape != lat.shape:
        raise ValueError(f"classes shape {classes.shape} != {lat.shape}")
    if measured is None:
        measured = np.ones(len(lat), dtype=bool)
    rows = []
    for c in range(int(classes.max()) + 1 if len(classes) else 0):
        in_class = measured & (classes == c)
        got = lat[in_class & (lat >= 0)]
        empty = len(got) == 0
        rows.append(
            {
                "qos_class": c,
                "offered": int(in_class.sum()),
                "delivered": int(len(got)),
                "timed_out": int((in_class & (lat < 0)).sum()),
                "mean": float("nan") if empty else float(got.mean()),
                "p50": float("nan") if empty else float(np.percentile(got, 50)),
                "p99": float("nan") if empty else float(np.percentile(got, 99)),
                "max": float("nan") if empty else float(got.max()),
            }
        )
    return rows
