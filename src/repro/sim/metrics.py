"""Latency / throughput summaries for simulator output.

Both summaries account for the full message population: a negative entry
in ``message_latencies`` is a shared sentinel for three distinct fates
(timed out, undeliverable, byzantine-dropped), disambiguated by
``SimResult.message_status``.  Fields that are zero for the historical
workloads (``undeliverable``, ``dropped``, ``corrupted``, ``misrouted``)
are serialised only when nonzero so pre-fault-model result JSON is
byte-identical.  Conservation holds per class and in aggregate::

    offered == delivered + timed_out + undeliverable + dropped
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import (
    MSG_DELIVERED,
    MSG_DROPPED,
    MSG_TIMED_OUT,
    MSG_UNDELIVERABLE,
    SimResult,
)

__all__ = ["latency_stats", "per_class_stats"]


def latency_stats(result: SimResult) -> dict:
    """Mean / p50 / p99 / max latency plus delivery + throughput numbers.

    ``max`` is always a float (it is NaN when nothing was delivered, and a
    type that flips with emptiness breaks strict differential comparison);
    ``undeliverable`` and the byzantine integrity counters appear only
    when nonzero, so ``delivered + timed_out + undeliverable + dropped ==
    total`` can be checked from the dict alone under adaptive routing and
    byzantine models without changing historical JSON.
    """
    lat = result.latencies
    empty = len(lat) == 0
    stats = {
        "delivered": result.delivered,
        "total": result.total,
        "timed_out": result.timed_out,
        "mean": float("nan") if empty else float(lat.mean()),
        "p50": float("nan") if empty else float(np.percentile(lat, 50)),
        "p99": float("nan") if empty else float(np.percentile(lat, 99)),
        "max": float("nan") if empty else float(lat.max()),
        "throughput": result.throughput,
    }
    for key in ("undeliverable", "dropped", "corrupted", "misrouted"):
        value = getattr(result, key)
        if value:
            stats[key] = value
    return stats


def _message_status(result: SimResult) -> np.ndarray:
    """Per-message status aligned with ``message_latencies``.

    Falls back to the sentinel-only view (negative latency == timed out,
    the pre-classification behaviour) for hand-built results whose
    ``message_status`` was never populated.
    """
    lat = result.message_latencies
    status = np.asarray(result.message_status)
    if status.shape == lat.shape:
        return status
    return np.where(lat >= 0, MSG_DELIVERED, MSG_TIMED_OUT).astype(np.int8)


def per_class_stats(
    result: SimResult,
    classes: np.ndarray,
    *,
    measured: np.ndarray | None = None,
) -> list[dict]:
    """Per-QoS-class delivery and latency summary, one dict per class.

    ``classes`` is the per-message class array the engine ran with
    (aligned with ``result.message_latencies``); ``measured`` optionally
    restricts to the open-loop measurement window (messages injected at
    or after warmup).  Classes are reported ``0..max`` even when a class
    delivered nothing — the JSON row then carries NaN latencies, never a
    silent omission.

    Each row's negative-latency messages are split by
    ``result.message_status`` into ``timed_out`` / ``undeliverable`` /
    ``dropped`` (the latter two serialised only when nonzero), so
    ``offered == delivered + timed_out + undeliverable + dropped`` holds
    per class.
    """
    classes = np.asarray(classes, dtype=np.int64)
    lat = result.message_latencies
    if classes.shape != lat.shape:
        raise ValueError(f"classes shape {classes.shape} != {lat.shape}")
    if measured is None:
        measured = np.ones(len(lat), dtype=bool)
    status = _message_status(result)
    rows = []
    for c in range(int(classes.max()) + 1 if len(classes) else 0):
        in_class = measured & (classes == c)
        got = lat[in_class & (status == MSG_DELIVERED)]
        empty = len(got) == 0
        row = {
            "qos_class": c,
            "offered": int(in_class.sum()),
            "delivered": int(len(got)),
            "timed_out": int((in_class & (status == MSG_TIMED_OUT)).sum()),
            "mean": float("nan") if empty else float(got.mean()),
            "p50": float("nan") if empty else float(np.percentile(got, 50)),
            "p99": float("nan") if empty else float(np.percentile(got, 99)),
            "max": float("nan") if empty else float(got.max()),
        }
        undeliverable = int((in_class & (status == MSG_UNDELIVERABLE)).sum())
        dropped = int((in_class & (status == MSG_DROPPED)).sum())
        if undeliverable:
            row["undeliverable"] = undeliverable
        if dropped:
            row["dropped"] = dropped
        rows.append(row)
    return rows
