"""Routing on the ``n^d`` torus: dimension-ordered and fault-adaptive.

Two routers (see docs/routing.md for the full algorithm and
deadlock-freedom notes):

* ``dimension`` — the classic e-cube route: dimension by dimension,
  always the shorter way around each cycle (ties break toward +).
  Minimal and deadlock-orderable — the standard choice for mesh/torus
  machines of the paper's era — but *static*: on an aged machine a route
  crossing a live fault simply cannot be used.
* ``adaptive`` — fault-aware: the e-cube route is used verbatim whenever
  every element it touches is healthy (so on a fault-free machine the
  two routers are *identical*, route for route), and otherwise a
  minimal-length detour is computed by breadth-first search over the
  healthy subgraph, expanding neighbours in weighted dimension order
  (lowest axis first, + before −) so detours are deterministic and
  shadow the e-cube escape order.  Only a source/destination pair that
  is genuinely disconnected in the live fault graph remains unroutable.

Health is expressed through two vectorized predicates so the same router
serves both the plain "guest torus with its own fault mask" case
(:func:`fault_predicates`) and the embedded case where guest routes must
map onto healthy host elements through ``phi``
(:func:`embedded_predicates`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.topology.coords import CoordCodec

__all__ = [
    "BYZ_CORRUPT",
    "BYZ_DROP",
    "BYZ_MISROUTE",
    "BYZ_NONE",
    "ByzantinePlan",
    "ROUTERS",
    "adaptive_route",
    "all_pairs_mean_distance",
    "dimension_ordered_route",
    "embedded_predicates",
    "fault_predicates",
    "route_is_healthy",
    "route_length",
]

#: Router names understood by the engines and :class:`~repro.api.protocol.TrafficSpec`.
ROUTERS = ("dimension", "adaptive")


def _axis_step(src: int, dst: int, n: int) -> int:
    """±1 step along the shorter cyclic direction (0 when equal)."""
    if src == dst:
        return 0
    fwd = (dst - src) % n
    bwd = (src - dst) % n
    return +1 if fwd <= bwd else -1


def dimension_ordered_route(shape: tuple[int, ...], src: int, dst: int) -> np.ndarray:
    """Node sequence of the e-cube route from ``src`` to ``dst`` (inclusive)."""
    codec = CoordCodec(shape)
    cur = codec.unravel(np.int64(src)).copy()
    goal = codec.unravel(np.int64(dst))
    path = [int(src)]
    for axis in range(len(shape)):
        n = shape[axis]
        step = _axis_step(int(cur[axis]), int(goal[axis]), n)
        while cur[axis] != goal[axis]:
            cur[axis] = (cur[axis] + step) % n
            path.append(int(codec.ravel(cur)))
    return np.array(path, dtype=np.int64)


def route_length(shape: tuple[int, ...], src: int, dst: int) -> int:
    """Hop count of the minimal route (sum of cyclic distances)."""
    codec = CoordCodec(shape)
    a = codec.unravel(np.int64(src))
    b = codec.unravel(np.int64(dst))
    total = 0
    for axis, n in enumerate(shape):
        d = int(abs(a[axis] - b[axis]))
        total += min(d, n - d)
    return total


def fault_predicates(
    fault_flat: np.ndarray,
) -> tuple[Callable, Callable]:
    """``(node_ok, edge_ok)`` for a guest torus carrying its own fault mask.

    A node is usable iff not faulty; a (torus-adjacent) edge is usable iff
    both endpoints are.  Both predicates are vectorized over flat index
    arrays — the form every router and engine in this module consumes.
    """
    fault_flat = np.asarray(fault_flat, dtype=bool).ravel()

    def node_ok(ids):
        return ~fault_flat[np.asarray(ids, dtype=np.int64)]

    def edge_ok(us, vs):
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        return ~fault_flat[us] & ~fault_flat[vs]

    return node_ok, edge_ok


def embedded_predicates(
    phi: np.ndarray,
    fault_flat: np.ndarray,
    is_adjacent: Callable,
) -> tuple[Callable, Callable]:
    """``(node_ok, edge_ok)`` for guest routes mapped through an embedding.

    Guest node ``g`` is usable iff its host image ``phi[g]`` is healthy;
    guest edge ``(u, v)`` iff the host images are adjacent *and* both
    healthy — exactly the per-element check of
    :func:`repro.sim.lifetime_traffic.route_health_mask`, packaged as
    predicates so the adaptive router can detour in guest space while
    every hop it commits to is a healthy host edge.
    """
    phi = np.asarray(phi, dtype=np.int64).ravel()
    fault_flat = np.asarray(fault_flat, dtype=bool).ravel()

    def node_ok(ids):
        return ~fault_flat[phi[np.asarray(ids, dtype=np.int64)]]

    def edge_ok(us, vs):
        hu = phi[np.asarray(us, dtype=np.int64)]
        hv = phi[np.asarray(vs, dtype=np.int64)]
        return is_adjacent(hu, hv) & ~fault_flat[hu] & ~fault_flat[hv]

    return node_ok, edge_ok


def route_is_healthy(route: np.ndarray, node_ok, edge_ok) -> bool:
    """Every node and every hop of ``route`` passes the predicates."""
    route = np.asarray(route, dtype=np.int64)
    if node_ok is not None and not bool(np.all(node_ok(route))):
        return False
    if edge_ok is not None and len(route) > 1:
        return bool(np.all(edge_ok(route[:-1], route[1:])))
    return True


def _torus_neighbors(codec: CoordCodec, node: int) -> list[int]:
    """Neighbours of ``node`` in weighted dimension order: axis 0 before
    axis 1, + before −.  This is the escape order the adaptive detour
    search expands in, so its BFS tree shadows e-cube's axis priority."""
    coords = codec.unravel(np.int64(node))
    out = []
    for axis, n in enumerate(codec.shape):
        stride = int(codec.strides[axis])
        c = int(coords[axis])
        for step in (+1, -1):
            nc = (c + step) % n
            if nc == c:  # n == 1: no move on this axis
                continue
            out.append(int(node) + (nc - c) * stride)
    return out


def adaptive_route(
    shape: tuple[int, ...],
    src: int,
    dst: int,
    *,
    node_ok=None,
    edge_ok=None,
) -> np.ndarray | None:
    """Fault-adaptive route from ``src`` to ``dst``; ``None`` if disconnected.

    The dimension-ordered route is used verbatim whenever it is healthy
    under the predicates — in particular, with no predicates (or no live
    faults) this router is *identical* to :func:`dimension_ordered_route`.
    Otherwise a minimal detour is found by BFS over the healthy subgraph,
    expanding neighbours in weighted dimension order (axis 0 first, +
    before −), which makes the detour deterministic and minimal in hop
    count among healthy paths.  Returns ``None`` exactly when ``src`` and
    ``dst`` lie in different components of the live fault graph (or an
    endpoint itself is broken) — the only messages that stay
    undeliverable under adaptive routing.
    """
    base = dimension_ordered_route(shape, src, dst)
    if node_ok is None and edge_ok is None:
        return base
    if route_is_healthy(base, node_ok, edge_ok):
        return base
    codec = CoordCodec(shape)
    src, dst = int(src), int(dst)
    if node_ok is not None and not (
        bool(node_ok(np.array([src]))[0]) and bool(node_ok(np.array([dst]))[0])
    ):
        return None
    # BFS in escape order over the healthy subgraph: parent pointers give
    # the (deterministic) minimal healthy path.
    parent = {src: src}
    frontier = [src]
    while frontier and dst not in parent:
        nxt: list[int] = []
        for u in frontier:
            for v in _torus_neighbors(codec, u):
                if v in parent:
                    continue
                if node_ok is not None and not bool(node_ok(np.array([v]))[0]):
                    continue
                if edge_ok is not None and not bool(
                    edge_ok(np.array([u]), np.array([v]))[0]
                ):
                    continue
                parent[v] = u
                nxt.append(v)
        frontier = nxt
    if dst not in parent:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    return np.array(path[::-1], dtype=np.int64)


#: Per-message Byzantine action codes (``SimResult`` accounting keys).
BYZ_NONE, BYZ_MISROUTE, BYZ_DROP, BYZ_CORRUPT = 0, 1, 2, 3


class ByzantinePlan:
    """Deterministic per-trial plan of Byzantine node behaviour.

    ``byz_mask`` marks the traitor nodes (they stay *up* — health
    predicates never see them); ``mix`` is the normalised
    ``(misroute, drop, corrupt)`` action distribution of
    :meth:`repro.faults.models.ByzantineNodeFaults.mix`; ``rng`` is the
    plan's own dedicated stream.  A message is perturbed at the *first*
    traitor its route traverses as an intermediate hop (endpoints are
    trusted to inject/consume their own messages — the classic
    convention), and at most once:

    * ``misroute`` — the traitor forwards it to a wrong neighbour; the
      tail is re-routed e-cube from there, so the message still arrives,
      late (the detour is genuine extra hops, visible in latency);
    * ``drop`` — the traitor swallows it: the route is truncated at the
      traitor and the message is never delivered (``latency -1``);
    * ``corrupt`` — delivered on time with damaged payload (route
      unchanged; only the integrity accounting notices).

    Determinism contract: actions are drawn in ascending message-id
    order and *only* for messages that actually traverse a traitor, so
    the scalar engine and the vectorized kernel — which detects touched
    messages differently — consume identical draws and produce identical
    plans.  The scalar and batched engines share :meth:`apply` outright.
    """

    def __init__(self, byz_mask, mix, rng) -> None:
        self.byz_flat = np.asarray(byz_mask, dtype=bool).ravel()
        self.mix = tuple(float(w) for w in mix)
        if len(self.mix) != 3:
            raise ValueError("mix must be (misroute, drop, corrupt)")
        self.rng = rng

    def first_traitor_hop(self, route) -> int:
        """Index of the first Byzantine *intermediate* hop, or -1."""
        route = np.asarray(route, dtype=np.int64)
        if len(route) <= 2:
            return -1
        hits = np.flatnonzero(self.byz_flat[route[1:-1]])
        return int(hits[0]) + 1 if len(hits) else -1

    def _perturb(self, shape, route, pos: int):
        """One action draw for a message whose hop ``pos`` is a traitor."""
        route = np.asarray(route, dtype=np.int64)
        u = float(self.rng.random())
        if u < self.mix[0]:
            codec = CoordCodec(shape)
            here, nxt, dst = int(route[pos]), int(route[pos + 1]), int(route[-1])
            wrongs = [v for v in _torus_neighbors(codec, here) if v != nxt]
            if not wrongs:  # degree-1 corner case: nowhere wrong to send it
                return BYZ_CORRUPT, route
            wrong = wrongs[int(self.rng.integers(len(wrongs)))]
            tail = dimension_ordered_route(shape, wrong, dst)
            return BYZ_MISROUTE, np.concatenate([route[: pos + 1], tail])
        if u < self.mix[0] + self.mix[1]:
            return BYZ_DROP, np.ascontiguousarray(route[: pos + 1])
        return BYZ_CORRUPT, route

    def apply(self, shape, routes):
        """Perturb ``routes`` in place-order; returns ``(routes, actions)``.

        ``routes`` is the engine's per-message route list (``None`` =
        undeliverable, untouched); ``actions`` the per-message
        ``BYZ_*`` codes.  Dropped messages keep their truncated route —
        the engine delivers them *to the traitor* and the accounting
        (:func:`repro.sim.engine.byzantine_counts`) reclassifies them.
        """
        actions = np.zeros(len(routes), dtype=np.int8)
        out = list(routes)
        for i, route in enumerate(out):
            if route is None:
                continue
            pos = self.first_traitor_hop(route)
            if pos < 0:
                continue
            actions[i], out[i] = self._perturb(shape, route, pos)
        return out, actions


def all_pairs_mean_distance(shape: tuple[int, ...]) -> float:
    """Closed-form mean torus distance (per-axis mean of cyclic distance)."""
    mean = 0.0
    for n in shape:
        d = np.arange(n)
        cyc = np.minimum(d, n - d)
        mean += float(cyc.mean())
    return mean
