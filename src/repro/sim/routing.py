"""Dimension-ordered (e-cube) routing on the ``n^d`` torus.

Routes go dimension by dimension, always taking the shorter way around
each cycle (ties break toward +).  On a torus this is minimal and
deadlock-orderable — the standard choice for mesh/torus machines of the
paper's era.
"""

from __future__ import annotations

import numpy as np

from repro.topology.coords import CoordCodec

__all__ = ["dimension_ordered_route", "route_length", "all_pairs_mean_distance"]


def _axis_step(src: int, dst: int, n: int) -> int:
    """±1 step along the shorter cyclic direction (0 when equal)."""
    if src == dst:
        return 0
    fwd = (dst - src) % n
    bwd = (src - dst) % n
    return +1 if fwd <= bwd else -1


def dimension_ordered_route(shape: tuple[int, ...], src: int, dst: int) -> np.ndarray:
    """Node sequence of the e-cube route from ``src`` to ``dst`` (inclusive)."""
    codec = CoordCodec(shape)
    cur = codec.unravel(np.int64(src)).copy()
    goal = codec.unravel(np.int64(dst))
    path = [int(src)]
    for axis in range(len(shape)):
        n = shape[axis]
        step = _axis_step(int(cur[axis]), int(goal[axis]), n)
        while cur[axis] != goal[axis]:
            cur[axis] = (cur[axis] + step) % n
            path.append(int(codec.ravel(cur)))
    return np.array(path, dtype=np.int64)


def route_length(shape: tuple[int, ...], src: int, dst: int) -> int:
    """Hop count of the minimal route (sum of cyclic distances)."""
    codec = CoordCodec(shape)
    a = codec.unravel(np.int64(src))
    b = codec.unravel(np.int64(dst))
    total = 0
    for axis, n in enumerate(shape):
        d = int(abs(a[axis] - b[axis]))
        total += min(d, n - d)
    return total


def all_pairs_mean_distance(shape: tuple[int, ...]) -> float:
    """Closed-form mean torus distance (per-axis mean of cyclic distance)."""
    mean = 0.0
    for n in shape:
        d = np.arange(n)
        cyc = np.minimum(d, n - d)
        mean += float(cyc.mean())
    return mean
