"""Open-loop workload model: messages injected over time at a given rate.

The historical simulator model — every message injected at cycle 0 —
cannot express *sustained* load at all: it measures how fast one batch
drains, not whether the network keeps up with an arrival process.  This
module closes that gap with the standard open-loop methodology from the
interconnection-network literature:

* an **injection process** per node — ``bernoulli`` (each node flips an
  independent coin of probability ``rate`` every cycle) or ``periodic``
  (each node injects every ``round(1/rate)`` cycles, phase-staggered by
  node id so the load is smooth) — over a horizon of ``cycles`` cycles;
* a **traffic pattern** supplying destinations for the injected sources
  (:func:`repro.sim.traffic.pattern_destinations`); deterministic
  patterns drop their fixed points (a transpose-diagonal node has no one
  to talk to), random patterns resample ``dst == src``;
* a **warmup + steady-state measurement window**: statistics are taken
  over messages injected at or after ``warmup``, so transient start-up
  behaviour does not pollute steady-state numbers;
* a **saturation sweep**: run the same pattern at increasing rates and
  watch delivered throughput peel away from offered load — the saturation
  point of the (possibly recovered) torus.

Both engines understand the resulting ``(traffic, inject)`` pair: the
scalar reference (:func:`repro.sim.engine.simulate`) and the vectorized
kernel (:func:`repro.fastpath.traffic_batch.simulate_batch`) accept the
injection schedule via ``inject=`` and return identical results.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sim.engine import SimResult, simulate
from repro.sim.traffic import pattern_destinations
from repro.topology.coords import CoordCodec
from repro.util.rng import spawn_rng

__all__ = ["INJECTIONS", "make_open_loop", "open_loop_stats", "saturation_sweep"]

#: Injection processes understood by :func:`make_open_loop`.
INJECTIONS = ("bernoulli", "periodic")


def make_open_loop(
    shape: tuple[int, ...],
    pattern: str,
    rate: float,
    cycles: int,
    rng: np.random.Generator,
    *,
    injection: str = "bernoulli",
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an open-loop workload: ``(traffic, inject)`` arrays.

    ``traffic`` is the usual ``(M, 2)`` array of (src, dst) pairs and
    ``inject[i]`` the cycle message ``i`` enters the network.  Messages
    are ordered injection-cycle-major, then source-node-ascending — a
    deterministic order, so message ids (and with them the engine's
    arbitration) are a pure function of ``(shape, pattern, rate, cycles,
    rng state, injection)``.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate={rate} out of (0, 1]")
    if cycles < 1:
        raise ValueError(f"cycles={cycles} must be >= 1")
    if injection not in INJECTIONS:
        raise ValueError(f"unknown injection {injection!r}; options {INJECTIONS}")
    codec = CoordCodec(shape)
    if injection == "bernoulli":
        # One coin per (cycle, node); nonzero of the matrix is row-major =
        # cycle-major then node-ascending, exactly the documented order.
        coins = rng.random((cycles, codec.size)) < rate
        when, src = np.nonzero(coins)
    else:  # periodic
        period = max(1, int(round(1.0 / rate)))
        node = codec.all_indices()
        phase = node % period  # stagger so the load is smooth, not bursty
        kmax = -(-cycles // period)  # repeats covering the horizon
        t = phase[:, None] + np.arange(kmax, dtype=np.int64)[None, :] * period
        mask = t < cycles
        src = np.broadcast_to(node[:, None], t.shape)[mask]
        when = t[mask]
        order = np.lexsort((src, when))
        src, when = src[order], when[order]
    dst = pattern_destinations(shape, src, pattern, rng)
    keep = dst != src  # deterministic patterns: fixed points have no message
    return (
        np.stack([src[keep], dst[keep]], axis=1),
        when[keep].astype(np.int64),
    )


def open_loop_stats(
    result: SimResult,
    inject: np.ndarray,
    *,
    warmup: int = 0,
    horizon: int | None = None,
) -> dict:
    """Steady-state summary over messages injected at or after ``warmup``.

    ``horizon`` is the injection span in cycles (the workload's ``cycles``
    argument; defaults to one past the last injection).  The measurement
    window is ``[warmup, horizon)`` — **not** the full run: a congested run
    keeps draining long after injection stops, and normalising by that
    drain-inclusive length would understate offered load exactly where
    saturation makes it interesting.  ``offered_rate`` is measured
    injections per window cycle; ``throughput`` counts deliveries whose
    completion cycle falls inside the window (deliveries during the
    post-horizon drain remain in ``delivered`` but are drain, not
    sustained service).  Latency statistics cover every measured delivery,
    drain included.
    """
    inject = np.asarray(inject, dtype=np.int64)
    lat = result.message_latencies
    if lat.shape != inject.shape:
        raise ValueError(f"result carries {lat.shape} latencies, schedule {inject.shape}")
    if horizon is None:
        horizon = int(inject.max()) + 1 if len(inject) else 1
    window = max(int(horizon) - warmup, 1)
    measured = inject >= warmup
    delivered = measured & (lat >= 0)
    # ``inject + latency`` is the 1-based completion cycle: a message that
    # finished *during* cycle c has latency c + 1 - inject, so it counts as
    # a window delivery when c = inject + latency - 1 lies in
    # [warmup, warmup + window) — deliveries in the window's final cycle
    # included, post-horizon drain excluded.
    completion = inject[delivered] + lat[delivered] - 1
    in_window = int(((completion >= warmup) & (completion < warmup + window)).sum())
    mlat = lat[delivered]
    empty = len(mlat) == 0
    return {
        "offered": int(measured.sum()),
        "delivered": int(delivered.sum()),
        "timed_out": int((measured & (lat < 0)).sum()),
        "window": window,
        "offered_rate": float(measured.sum() / window),
        "throughput": float(in_window / window),
        "mean": float("nan") if empty else float(mlat.mean()),
        "p50": float("nan") if empty else float(np.percentile(mlat, 50)),
        "p99": float("nan") if empty else float(np.percentile(mlat, 99)),
        "max": float("nan") if empty else int(mlat.max()),
    }


def saturation_sweep(
    shape: tuple[int, ...],
    pattern: str,
    rates: Sequence[float],
    *,
    cycles: int,
    warmup: int = 0,
    injection: str = "bernoulli",
    seed: int = 0,
    max_cycles: int = 10_000,
    engine: Callable[..., SimResult] = simulate,
) -> list[dict]:
    """Offered-load sweep: one open-loop run per rate, same seed discipline.

    Each rate draws a fresh generator keyed by ``(seed, pattern, injection,
    rate)``, so adding rates never perturbs existing points.  Pass
    ``engine=simulate_batch`` for the vectorized kernel (identical numbers).
    Returns one stats row per rate (:func:`open_loop_stats` plus the rate).
    """
    rows = []
    for rate in rates:
        rng = spawn_rng(seed, "workload", pattern, injection, f"{float(rate):g}")
        traffic, inject = make_open_loop(
            shape, pattern, float(rate), cycles, rng, injection=injection
        )
        result = engine(shape, traffic, inject=inject, max_cycles=max_cycles)
        rows.append(
            {
                "rate": float(rate),
                **open_loop_stats(result, inject, warmup=warmup, horizon=cycles),
            }
        )
    return rows
