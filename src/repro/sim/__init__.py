"""A small synchronous network simulator for recovered tori.

The paper's motivation is a massively parallel machine whose surviving
network still *behaves like* the torus.  This package closes the loop: it
routes synthetic traffic over a recovered embedding and measures latency /
throughput, demonstrating that recovery preserves the torus's communication
properties exactly (dilation-1 embedding => identical hop counts).
"""

from repro.sim.routing import (
    ROUTERS,
    adaptive_route,
    dimension_ordered_route,
    embedded_predicates,
    fault_predicates,
    route_length,
)
from repro.sim.traffic import (
    TRAFFIC_PATTERNS,
    bitreverse_index,
    make_traffic,
    pattern_destinations,
    transpose_index,
)
from repro.sim.engine import SimResult, simulate
from repro.sim.metrics import latency_stats, per_class_stats
from repro.sim.workload import INJECTIONS, make_open_loop, open_loop_stats, saturation_sweep

__all__ = [
    "ROUTERS",
    "adaptive_route",
    "dimension_ordered_route",
    "embedded_predicates",
    "fault_predicates",
    "per_class_stats",
    "route_length",
    "TRAFFIC_PATTERNS",
    "INJECTIONS",
    "bitreverse_index",
    "make_traffic",
    "make_open_loop",
    "open_loop_stats",
    "pattern_destinations",
    "saturation_sweep",
    "transpose_index",
    "SimResult",
    "simulate",
    "latency_stats",
    "lifetime_traffic_snapshots",
]


def __getattr__(name: str):
    # Lazy: lifetime_traffic pulls in the whole core/online stack, which
    # plain simulator users (and the sim tests) never need.
    if name == "lifetime_traffic_snapshots":
        from repro.sim.lifetime_traffic import lifetime_traffic_snapshots

        return lifetime_traffic_snapshots
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
