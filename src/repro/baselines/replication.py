"""FKP-style ``O(log N)``-degree replication construction.

Fraigniaud, Kenyon and Pelc [FKP93] achieve Theorem 1's goal — linear node
redundancy, constant-probability random faults — with degree ``O(log N)``.
The natural construction realising that bound (and the comparison point for
experiment E10) replaces every torus node by a *cluster* of
``r = ceil(c_r log2 n)`` nodes, fully joined within a cluster and between
adjacent clusters.  A cluster survives when it keeps at least one non-faulty
node; survival of all clusters lets us embed the torus by picking one good
node per cluster (greedy, edge-fault aware, like ``A``'s embedding).

Degree: ``(r - 1) + 2d * r = O(log n)`` versus ``A``'s ``O(log log n)`` —
the paper's headline improvement is exactly this gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ReconstructionError
from repro.topology.coords import CoordCodec
from repro.util.rng import spawn_rng

__all__ = ["ReplicatedTorus"]


@dataclass
class ReplicationRecovery:
    #: flat guest index -> global host node id (cluster * r + slot)
    phi: np.ndarray
    stats: dict


class ReplicatedTorus:
    """Cluster-replication construction over the ``n^d`` torus."""

    def __init__(self, n: int, d: int = 2, *, replication: int | None = None, c_r: float = 1.0):
        self.n = int(n)
        self.d = int(d)
        self.r = int(replication) if replication else max(1, math.ceil(c_r * math.log2(n)))
        self.codec = CoordCodec((n,) * d)

    @property
    def num_clusters(self) -> int:
        return self.codec.size

    @property
    def num_nodes(self) -> int:
        return self.num_clusters * self.r

    @property
    def degree(self) -> int:
        return (self.r - 1) + 2 * self.d * self.r

    @property
    def redundancy(self) -> float:
        return float(self.r)

    # -- faults ---------------------------------------------------------------

    def sample_faults(self, p: float, seed: int) -> np.ndarray:
        rng = spawn_rng(seed, "replication")
        return rng.random((self.num_clusters, self.r)) < p

    # -- recovery ---------------------------------------------------------------

    def recover(self, node_faults: np.ndarray) -> ReplicationRecovery:
        """Pick one good node per cluster; verified."""
        good = ~np.asarray(node_faults, dtype=bool)
        if good.shape != (self.num_clusters, self.r):
            raise ValueError("fault array shape mismatch")
        has_good = good.any(axis=1)
        if not has_good.all():
            dead = int((~has_good).sum())
            raise ReconstructionError(
                f"{dead} clusters have no surviving node", category="supernode"
            )
        slot = good.argmax(axis=1)
        phi = np.arange(self.num_clusters) * self.r + slot
        return ReplicationRecovery(
            phi=phi, stats={"dead_clusters": 0, "good_fraction": float(good.mean())}
        )

    def survives(self, p: float, seed: int) -> bool:
        try:
            self.recover(self.sample_faults(p, seed))
            return True
        except ReconstructionError:
            return False

    def survival_probability(self, p: float) -> float:
        """Exact: all clusters keep a good node, independently."""
        return float((1.0 - p ** self.r) ** self.num_clusters)

    def replication_for_target(self, p: float, target_failure: float) -> int:
        """Smallest r with ``1 - (1 - p^r)^C <= target_failure``."""
        for r in range(1, 256):
            if 1.0 - (1.0 - p ** r) ** self.num_clusters <= target_failure:
                return r
        raise ValueError("no r <= 256 reaches the target")
