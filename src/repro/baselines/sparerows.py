"""Naive spare-rows comparator: why D's band hierarchy matters.

Add ``sigma`` spare rows to an ``n x n`` torus and, to be able to skip any
masked run of rows, add vertical jump edges of *every* span ``2..sigma+1``.
Any ``k <= sigma`` faults are tolerated by discarding every faulty row —
but the degree is ``4 + 2*sigma = O(k)``.

Contrast with ``D^2_{n,k}``: constant degree 8 via two band widths and the
pigeonhole cascade.  Experiment E9 tabulates the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReconstructionError
from repro.topology.coords import CoordCodec

__all__ = ["SpareRowsTorus"]


@dataclass
class SpareRowsRecovery:
    kept_rows: np.ndarray
    phi: np.ndarray
    stats: dict


class SpareRowsTorus:
    """``(n + sigma) x n`` torus with all-span row jumps."""

    def __init__(self, n: int, sigma: int) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.n = int(n)
        self.sigma = int(sigma)
        self.m = self.n + self.sigma
        self.codec = CoordCodec((self.m, self.n))

    @property
    def num_nodes(self) -> int:
        return self.m * self.n

    @property
    def degree(self) -> int:
        """4 torus edges + 2 jump edges per span in 2..sigma+1."""
        return 4 + 2 * self.sigma

    @property
    def tolerated(self) -> int:
        return self.sigma

    def recover(self, faults: np.ndarray) -> SpareRowsRecovery:
        """Drop every faulty row; fail when more than sigma rows are hit."""
        faults = np.asarray(faults, dtype=bool)
        if faults.shape != (self.m, self.n):
            raise ValueError("fault shape mismatch")
        bad_rows = np.flatnonzero(faults.any(axis=1))
        if len(bad_rows) > self.sigma:
            raise ReconstructionError(
                f"{len(bad_rows)} faulty rows > sigma = {self.sigma}",
                category="capacity",
            )
        keep = np.setdiff1d(np.arange(self.m), bad_rows)[: self.n]
        if len(keep) < self.n:
            raise ReconstructionError("not enough clean rows", category="capacity")
        # Verify the jump spans suffice (they do by construction: any gap
        # between consecutive kept rows is <= sigma + 1).
        gaps = np.diff(np.concatenate([keep, [keep[0] + self.m]]))
        if gaps.max() > self.sigma + 1:
            raise ReconstructionError(
                f"row gap {int(gaps.max())} exceeds jump span {self.sigma + 1}",
                category="band-invalid",
            )
        guest = CoordCodec((self.n, self.n))
        idx = guest.all_indices()
        x = guest.axis_coord(idx, 0)
        y = guest.axis_coord(idx, 1)
        phi = self.codec.ravel(np.stack([keep[x], y], axis=-1))
        if faults.ravel()[phi].any():
            raise ReconstructionError("embedding touches fault", category="embedding")
        return SpareRowsRecovery(
            kept_rows=keep, phi=phi, stats={"dropped_rows": len(bad_rows)}
        )

    def tolerates(self, faults: np.ndarray) -> bool:
        try:
            self.recover(faults)
            return True
        except ReconstructionError:
            return False
