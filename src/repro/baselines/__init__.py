"""Baseline constructions the paper compares against.

* :mod:`repro.baselines.expander`   — explicit constant-degree expanders
  (Gabber–Galil) + spectral verification.
* :mod:`repro.baselines.alon_chung` — Theorem 12: linear-size fault-tolerant
  path networks, and the straightforward ``F_n x (L_n)^{d-1}`` mesh
  construction built from them (Section 5).
* :mod:`repro.baselines.replication` — FKP-style ``O(log N)``-degree cluster
  replication tolerating constant-probability faults (Introduction).
* :mod:`repro.baselines.sparerows`  — the naive spare-rows comparator whose
  degree grows with the fault budget (motivates D's band hierarchy).
* :mod:`repro.baselines.bch`        — Bruck–Cypher–Ho published bounds
  (analytic comparator for E9).
"""

from repro.baselines.expander import gabber_galil_expander, random_regular_expander, spectral_expansion
from repro.baselines.alon_chung import AlonChungPath, AlonChungMesh
from repro.baselines.replication import ReplicatedTorus
from repro.baselines.sparerows import SpareRowsTorus
from repro.baselines.bch import bch_mesh_nodes, bch_mesh_degree, bch_tolerated_for_linear_redundancy

__all__ = [
    "gabber_galil_expander",
    "random_regular_expander",
    "spectral_expansion",
    "AlonChungPath",
    "AlonChungMesh",
    "ReplicatedTorus",
    "SpareRowsTorus",
    "bch_mesh_nodes",
    "bch_mesh_degree",
    "bch_tolerated_for_linear_redundancy",
]
