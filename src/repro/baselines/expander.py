"""Explicit constant-degree expanders.

The Alon–Chung construction (Theorem 12) consumes an expander.  We provide
two families:

* **Gabber–Galil**: vertex set ``Z_q x Z_q``, each vertex connected through
  the four affine maps ``(x, y) -> (x+y, y), (x+y+1, y), (x, y+x),
  (x, y+x+1)`` and their inverses — an 8-regular explicit expander with
  second eigenvalue bounded away from 8.
* **random regular**: a configuration-model ``r``-regular graph, re-sampled
  until the spectral gap clears a threshold (w.h.p. one draw suffices;
  Friedman: ``lambda_2 ~ 2 sqrt(r-1)``).

``spectral_expansion`` computes the second-largest adjacency eigenvalue
modulus via dense/sparse eigensolvers, used by tests and by the Alon–Chung
tolerance accounting.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import CSRGraph

__all__ = ["gabber_galil_expander", "random_regular_expander", "spectral_expansion"]


def gabber_galil_expander(q: int) -> CSRGraph:
    """The 8-regular Gabber–Galil expander on ``q^2`` vertices.

    Returned as a simple graph (parallel edges collapsed, self-images
    dropped), so small instances can have degree slightly below 8; the
    expansion is what matters to the baseline.
    """
    if q < 2:
        raise ValueError("q must be >= 2")
    xs, ys = np.meshgrid(np.arange(q), np.arange(q), indexing="ij")
    x = xs.ravel()
    y = ys.ravel()
    idx = x * q + y
    edges = []
    images = [
        ((x + y) % q, y),
        ((x + y + 1) % q, y),
        (x, (y + x) % q),
        (x, (y + x + 1) % q),
    ]
    for ix, iy in images:
        tgt = ix * q + iy
        keep = tgt != idx
        edges.append(np.stack([idx[keep], tgt[keep]], axis=1))
    return CSRGraph(q * q, np.concatenate(edges, axis=0))


def random_regular_expander(
    n: int, r: int, rng: np.random.Generator, *, gap_target: float | None = None, tries: int = 8
) -> CSRGraph:
    """An ``r``-regular graph on ``n`` nodes with verified spectral gap.

    ``gap_target``: maximum allowed second eigenvalue; defaults to
    ``2.3 * sqrt(r - 1)`` (slightly above the Ramanujan bound so one draw
    almost always passes).
    """
    import networkx as nx

    if gap_target is None:
        gap_target = 2.3 * float(np.sqrt(r - 1))
    last = None
    for t in range(tries):
        seed = int(rng.integers(0, 2**31))
        g = nx.random_regular_graph(r, n, seed=seed)
        csr = CSRGraph.from_networkx(g)
        lam = spectral_expansion(csr)
        last = csr
        if lam <= gap_target and nx.is_connected(g):
            return csr
    assert last is not None
    return last  # best effort; callers relying on the gap verify themselves


def spectral_expansion(g: CSRGraph) -> float:
    """Second-largest |eigenvalue| of the adjacency matrix."""
    n = g.num_nodes
    e = g.edges()
    if n <= 600:
        a = np.zeros((n, n))
        a[e[:, 0], e[:, 1]] = 1.0
        a[e[:, 1], e[:, 0]] = 1.0
        vals = np.linalg.eigvalsh(a)
        mags = np.sort(np.abs(vals))[::-1]
        return float(mags[1])
    from scipy.sparse import coo_matrix
    from scipy.sparse.linalg import eigsh

    data = np.ones(2 * len(e))
    rows = np.concatenate([e[:, 0], e[:, 1]])
    cols = np.concatenate([e[:, 1], e[:, 0]])
    a = coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    vals = eigsh(a, k=2, which="LM", return_eigenvectors=False, tol=1e-6)
    mags = np.sort(np.abs(vals))[::-1]
    return float(mags[1])
