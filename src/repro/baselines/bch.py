"""Bruck–Cypher–Ho analytic comparator (Section 1's comparison).

[BCH93b] gives, for the ``n x n`` mesh, a **degree-13** construction with
``n^2 + O(k^3)`` nodes tolerating any ``k`` worst-case faults.  The paper's
comparison (Section 1):

* BCH wins for small ``k`` (their node overhead is near-minimal),
* Tamaki's ``D^2`` wins when a *linear* amount of redundancy is allowed:
  BCH then tolerates only ``O(n^{2/3})`` faults versus ``D``'s
  ``O(n^{3/4})``.

We did not re-implement BCH's construction (it is not part of this paper);
experiment E9 uses their *published bounds* with unit constants, clearly
labelled as analytic.  These helpers centralise those formulas.
"""

from __future__ import annotations

import math

__all__ = [
    "bch_mesh_nodes",
    "bch_mesh_degree",
    "bch_tolerated_for_linear_redundancy",
    "tamaki_tolerated_for_linear_redundancy",
]


def bch_mesh_nodes(n: int, k: int, c3: float = 1.0) -> float:
    """Node count of the BCH degree-13 mesh construction: ``n^2 + c3 k^3``."""
    return n * n + c3 * k ** 3


def bch_mesh_degree() -> int:
    """Published degree of the [BCH93b] construction."""
    return 13


def bch_tolerated_for_linear_redundancy(n: int, overhead: float = 1.0, c3: float = 1.0) -> int:
    """Largest k with ``c3 k^3 <= overhead * n^2`` — i.e. ``Theta(n^{2/3})``."""
    return int(math.floor((overhead * n * n / c3) ** (1.0 / 3.0)))


def tamaki_tolerated_for_linear_redundancy(n: int, d: int = 2) -> int:
    """Theorem 3: ``k = Theta(n^{1 - 2^{-d}})`` with linear redundancy
    (d=2: ``n^{3/4}``)."""
    return int(math.floor(n ** (1.0 - 2.0 ** (-d))))
