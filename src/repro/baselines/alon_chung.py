"""Alon–Chung style fault-tolerant paths and meshes (Theorem 12, Section 5).

[AC88] builds, for any constant ``c < 1``, a constant-degree ``O(n)``-node
graph that contains an ``n``-node path after *any* ``c``-fraction of its
nodes/edges fail.  The construction is an expander; the survival argument is
spectral.  The paper uses it twice:

* as the 1-D answer to its open problems (linear worst-case faults,
  constant degree), and
* as the substrate of the "straightforward" ``F_n x (L_n)^{d-1}`` mesh
  construction that tolerates ``O(n)`` worst-case faults (Section 5) — the
  comparison point for ``D^d_{n,k}``.

Extraction: Alon–Chung's proof is existential.  We extract long paths with
the standard DFS argument (in any graph where every induced subgraph of
size ``>= z`` has expansion, a DFS tree has depth ``>= size - 2z``): run
iterative DFS from several roots and keep the deepest root-to-leaf path.
The returned path is *verified* (simple, alive, consecutive adjacency)
before use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.expander import gabber_galil_expander, random_regular_expander
from repro.errors import ReconstructionError
from repro.topology.coords import CoordCodec
from repro.topology.graph import CSRGraph

__all__ = ["AlonChungPath", "AlonChungMesh", "deep_dfs_path"]


def deep_dfs_path(
    g: CSRGraph, alive: np.ndarray, *, roots: int = 8, rng: np.random.Generator | None = None
) -> np.ndarray:
    """The deepest DFS root-to-leaf path over the alive subgraph.

    A DFS tree path is always a simple path of the graph.  On expanders
    with a constant fraction of nodes removed the deepest branch is a
    constant fraction of the surviving nodes (the Alon–Chung argument).
    """
    rng = rng or np.random.default_rng(0)
    alive_idx = np.flatnonzero(alive)
    if len(alive_idx) == 0:
        return np.array([], dtype=np.int64)
    best: list[int] = []
    starts = rng.choice(alive_idx, size=min(roots, len(alive_idx)), replace=False)
    for root in starts:
        path = _dfs_deepest_from(g, alive, int(root))
        if len(path) > len(best):
            best = path
    return np.array(best, dtype=np.int64)


def _dfs_deepest_from(g: CSRGraph, alive: np.ndarray, root: int) -> list[int]:
    """Iterative DFS; returns the deepest root-to-leaf path.

    Nodes are claimed when *popped* (true DFS order) — claiming at push
    time degenerates toward BFS and produces shallow trees, defeating the
    Alon–Chung depth argument.
    """
    n = g.num_nodes
    visited = np.zeros(n, dtype=bool)
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    stack: list[tuple[int, int]] = [(root, -1)]
    deepest, deepest_d = root, 0
    while stack:
        v, par = stack.pop()
        if visited[v]:
            continue
        visited[v] = True
        parent[v] = par
        depth[v] = depth[par] + 1 if par != -1 else 0
        if depth[v] > deepest_d:
            deepest, deepest_d = v, int(depth[v])
        for u in g.neighbors(v):
            u = int(u)
            if alive[u] and not visited[u]:
                stack.append((u, v))
    path: list[int] = []
    v = deepest
    while v != -1:
        path.append(v)
        v = int(parent[v])
    path.reverse()
    return path


@dataclass
class PathRecovery:
    path: np.ndarray  # host node ids forming the fault-free path
    requested: int


class AlonChungPath:
    """A linear-size constant-degree network containing a long path after
    a constant fraction of worst-case faults.

    Parameters
    ----------
    n: target path length.
    blowup: node redundancy — the host has ``~blowup * n`` nodes.
    kind: ``"gabber-galil"`` (explicit) or ``"random-regular"``.
    """

    def __init__(
        self,
        n: int,
        *,
        blowup: float = 2.0,
        kind: str = "gabber-galil",
        degree: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.n = int(n)
        target = int(math.ceil(blowup * n))
        if kind == "gabber-galil":
            q = int(math.ceil(math.sqrt(target)))
            self.graph = gabber_galil_expander(q)
        elif kind == "random-regular":
            rng = rng or np.random.default_rng(0)
            m = target + (target % 2)  # r-regular needs n*r even
            self.graph = random_regular_expander(m, degree, rng)
        else:
            raise ValueError(f"unknown expander kind {kind!r}")

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def recover(self, faulty: np.ndarray, rng: np.random.Generator | None = None) -> PathRecovery:
        """Find and verify a fault-free path of ``n`` nodes."""
        alive = ~np.asarray(faulty, dtype=bool).ravel()
        if alive.shape[0] != self.num_nodes:
            raise ValueError("fault array size mismatch")
        path = deep_dfs_path(self.graph, alive, rng=rng)
        if len(path) < self.n:
            raise ReconstructionError(
                f"deepest surviving path has {len(path)} < n = {self.n} nodes",
                category="capacity",
            )
        path = path[: self.n]
        self._verify(path, alive)
        return PathRecovery(path=path, requested=self.n)

    def survives(self, faulty: np.ndarray, rng: np.random.Generator | None = None) -> bool:
        try:
            self.recover(faulty, rng=rng)
            return True
        except ReconstructionError:
            return False

    def _verify(self, path: np.ndarray, alive: np.ndarray) -> None:
        if len(np.unique(path)) != len(path):
            raise ReconstructionError("path is not simple", category="embedding")
        if not alive[path].all():
            raise ReconstructionError("path touches faulty node", category="embedding")
        ok = self.graph.has_edges(path[:-1], path[1:])
        if not ok.all():
            raise ReconstructionError("path uses a non-edge", category="embedding")


class AlonChungMesh:
    """Section 5's straightforward construction: ``F_n x (L_n)^{d-1}``.

    Each node of the expander ``F_n`` carries a copy of the
    ``(d-1)``-dimensional mesh (*supernode*); a supernode is faulty when it
    contains any faulty node.  A surviving path of ``n`` supernodes yields
    the ``d``-dimensional mesh.  Tolerates ``O(n)`` worst-case node faults
    (each fault kills at most one supernode).
    """

    def __init__(self, n: int, d: int, *, blowup: float = 2.0) -> None:
        if d < 1:
            raise ValueError("d must be >= 1")
        self.n = int(n)
        self.d = int(d)
        self.path_host = AlonChungPath(n, blowup=blowup)
        self.super_size = n ** (d - 1)

    @property
    def num_nodes(self) -> int:
        return self.path_host.num_nodes * self.super_size

    def supernode_of(self, node: int) -> int:
        return node // self.super_size

    def recover(self, faulty_nodes: np.ndarray) -> np.ndarray:
        """Map mesh node (x_1, ..., x_d) -> host node; verified construction.

        ``faulty_nodes``: boolean over ``num_nodes`` host nodes.
        Returns ``phi`` of length ``n^d``.
        """
        faulty_nodes = np.asarray(faulty_nodes, dtype=bool).ravel()
        super_faulty = faulty_nodes.reshape(-1, self.super_size).any(axis=1)
        pr = self.path_host.recover(super_faulty)
        # mesh (x, z) -> host node pr.path[x] * super_size + flat(z)
        codec = CoordCodec((self.n,) * self.d)
        idx = codec.all_indices()
        x = codec.axis_coord(idx, 0)
        rest = idx % self.super_size if self.d > 1 else np.zeros_like(idx)
        return pr.path[x] * self.super_size + rest

    def tolerates(self, faulty_nodes: np.ndarray) -> bool:
        try:
            self.recover(faulty_nodes)
            return True
        except ReconstructionError:
            return False
